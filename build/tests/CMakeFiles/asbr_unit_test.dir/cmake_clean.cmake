file(REMOVE_RECURSE
  "CMakeFiles/asbr_unit_test.dir/asbr_unit_test.cpp.o"
  "CMakeFiles/asbr_unit_test.dir/asbr_unit_test.cpp.o.d"
  "asbr_unit_test"
  "asbr_unit_test.pdb"
  "asbr_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

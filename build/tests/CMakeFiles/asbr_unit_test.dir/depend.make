# Empty dependencies file for asbr_unit_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/bp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/asbr_unit_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")

# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_fig11_quick "/root/repo/build/bench/fig11_asbr" "--quick")
set_tests_properties(bench_fig11_quick PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;20;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_fig6_quick "/root/repo/build/bench/fig6_baseline" "--quick")
set_tests_properties(bench_fig6_quick PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;21;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_ext_predictors_quick "/root/repo/build/bench/ext_predictors" "--quick")
set_tests_properties(bench_ext_predictors_quick PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;22;add_test;/root/repo/bench/CMakeLists.txt;0;")

# Empty dependencies file for asbr_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/asbr_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/asbr_bench_util.dir/bench_util.cpp.o.d"
  "libasbr_bench_util.a"
  "libasbr_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

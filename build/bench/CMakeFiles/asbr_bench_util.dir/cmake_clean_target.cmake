file(REMOVE_RECURSE
  "libasbr_bench_util.a"
)

# Empty dependencies file for fig7_g721_branches.
# This may be replaced when dependencies are built.

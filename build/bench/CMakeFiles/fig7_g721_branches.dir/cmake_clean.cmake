file(REMOVE_RECURSE
  "CMakeFiles/fig7_g721_branches.dir/fig7_g721_branches.cpp.o"
  "CMakeFiles/fig7_g721_branches.dir/fig7_g721_branches.cpp.o.d"
  "fig7_g721_branches"
  "fig7_g721_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_g721_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

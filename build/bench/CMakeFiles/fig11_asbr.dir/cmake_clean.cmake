file(REMOVE_RECURSE
  "CMakeFiles/fig11_asbr.dir/fig11_asbr.cpp.o"
  "CMakeFiles/fig11_asbr.dir/fig11_asbr.cpp.o.d"
  "fig11_asbr"
  "fig11_asbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_asbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig11_asbr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_baseline.dir/fig6_baseline.cpp.o"
  "CMakeFiles/fig6_baseline.dir/fig6_baseline.cpp.o.d"
  "fig6_baseline"
  "fig6_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_bit_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_bit_size.dir/ablation_bit_size.cpp.o"
  "CMakeFiles/ablation_bit_size.dir/ablation_bit_size.cpp.o.d"
  "ablation_bit_size"
  "ablation_bit_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bit_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig9_10_adpcm_branches.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_10_adpcm_branches.dir/fig9_10_adpcm_branches.cpp.o"
  "CMakeFiles/fig9_10_adpcm_branches.dir/fig9_10_adpcm_branches.cpp.o.d"
  "fig9_10_adpcm_branches"
  "fig9_10_adpcm_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_10_adpcm_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

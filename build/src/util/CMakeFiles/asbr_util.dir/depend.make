# Empty dependencies file for asbr_util.
# This may be replaced when dependencies are built.

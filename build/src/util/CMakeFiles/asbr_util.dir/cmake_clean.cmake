file(REMOVE_RECURSE
  "CMakeFiles/asbr_util.dir/stats.cpp.o"
  "CMakeFiles/asbr_util.dir/stats.cpp.o.d"
  "CMakeFiles/asbr_util.dir/table.cpp.o"
  "CMakeFiles/asbr_util.dir/table.cpp.o.d"
  "libasbr_util.a"
  "libasbr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

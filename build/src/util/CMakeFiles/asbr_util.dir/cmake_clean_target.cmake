file(REMOVE_RECURSE
  "libasbr_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/asbr_profile.dir/profiler.cpp.o"
  "CMakeFiles/asbr_profile.dir/profiler.cpp.o.d"
  "CMakeFiles/asbr_profile.dir/selection.cpp.o"
  "CMakeFiles/asbr_profile.dir/selection.cpp.o.d"
  "libasbr_profile.a"
  "libasbr_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

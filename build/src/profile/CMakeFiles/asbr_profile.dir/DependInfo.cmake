
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/profiler.cpp" "src/profile/CMakeFiles/asbr_profile.dir/profiler.cpp.o" "gcc" "src/profile/CMakeFiles/asbr_profile.dir/profiler.cpp.o.d"
  "/root/repo/src/profile/selection.cpp" "src/profile/CMakeFiles/asbr_profile.dir/selection.cpp.o" "gcc" "src/profile/CMakeFiles/asbr_profile.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/asbr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asbr/CMakeFiles/asbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/asbr_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asbr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/bp/CMakeFiles/asbr_bp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/asbr_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

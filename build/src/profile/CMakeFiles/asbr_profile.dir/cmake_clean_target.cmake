file(REMOVE_RECURSE
  "libasbr_profile.a"
)

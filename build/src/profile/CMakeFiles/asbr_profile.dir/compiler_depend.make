# Empty compiler generated dependencies file for asbr_profile.
# This may be replaced when dependencies are built.

# Empty dependencies file for asbr_mem.
# This may be replaced when dependencies are built.

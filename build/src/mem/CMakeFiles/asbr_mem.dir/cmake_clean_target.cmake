file(REMOVE_RECURSE
  "libasbr_mem.a"
)

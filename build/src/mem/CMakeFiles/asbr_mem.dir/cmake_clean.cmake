file(REMOVE_RECURSE
  "CMakeFiles/asbr_mem.dir/cache.cpp.o"
  "CMakeFiles/asbr_mem.dir/cache.cpp.o.d"
  "CMakeFiles/asbr_mem.dir/memory.cpp.o"
  "CMakeFiles/asbr_mem.dir/memory.cpp.o.d"
  "libasbr_mem.a"
  "libasbr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

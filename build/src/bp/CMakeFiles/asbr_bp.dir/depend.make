# Empty dependencies file for asbr_bp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libasbr_bp.a"
)

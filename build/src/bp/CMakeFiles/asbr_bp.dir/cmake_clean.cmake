file(REMOVE_RECURSE
  "CMakeFiles/asbr_bp.dir/predictor.cpp.o"
  "CMakeFiles/asbr_bp.dir/predictor.cpp.o.d"
  "libasbr_bp.a"
  "libasbr_bp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_bp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

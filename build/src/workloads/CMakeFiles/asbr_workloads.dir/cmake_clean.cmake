file(REMOVE_RECURSE
  "CMakeFiles/asbr_workloads.dir/adpcm.cpp.o"
  "CMakeFiles/asbr_workloads.dir/adpcm.cpp.o.d"
  "CMakeFiles/asbr_workloads.dir/g711.cpp.o"
  "CMakeFiles/asbr_workloads.dir/g711.cpp.o.d"
  "CMakeFiles/asbr_workloads.dir/g721.cpp.o"
  "CMakeFiles/asbr_workloads.dir/g721.cpp.o.d"
  "CMakeFiles/asbr_workloads.dir/input_gen.cpp.o"
  "CMakeFiles/asbr_workloads.dir/input_gen.cpp.o.d"
  "CMakeFiles/asbr_workloads.dir/workloads.cpp.o"
  "CMakeFiles/asbr_workloads.dir/workloads.cpp.o.d"
  "libasbr_workloads.a"
  "libasbr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

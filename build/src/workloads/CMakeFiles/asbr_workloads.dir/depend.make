# Empty dependencies file for asbr_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libasbr_workloads.a"
)

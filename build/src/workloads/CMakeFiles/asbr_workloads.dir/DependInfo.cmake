
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adpcm.cpp" "src/workloads/CMakeFiles/asbr_workloads.dir/adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/asbr_workloads.dir/adpcm.cpp.o.d"
  "/root/repo/src/workloads/g711.cpp" "src/workloads/CMakeFiles/asbr_workloads.dir/g711.cpp.o" "gcc" "src/workloads/CMakeFiles/asbr_workloads.dir/g711.cpp.o.d"
  "/root/repo/src/workloads/g721.cpp" "src/workloads/CMakeFiles/asbr_workloads.dir/g721.cpp.o" "gcc" "src/workloads/CMakeFiles/asbr_workloads.dir/g721.cpp.o.d"
  "/root/repo/src/workloads/input_gen.cpp" "src/workloads/CMakeFiles/asbr_workloads.dir/input_gen.cpp.o" "gcc" "src/workloads/CMakeFiles/asbr_workloads.dir/input_gen.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/workloads/CMakeFiles/asbr_workloads.dir/workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/asbr_workloads.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc/CMakeFiles/asbr_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/asbr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/asbr_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/asbr_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

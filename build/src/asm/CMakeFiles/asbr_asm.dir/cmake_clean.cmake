file(REMOVE_RECURSE
  "CMakeFiles/asbr_asm.dir/assembler.cpp.o"
  "CMakeFiles/asbr_asm.dir/assembler.cpp.o.d"
  "libasbr_asm.a"
  "libasbr_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

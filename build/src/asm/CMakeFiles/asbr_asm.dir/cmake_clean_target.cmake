file(REMOVE_RECURSE
  "libasbr_asm.a"
)

# Empty compiler generated dependencies file for asbr_asm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libasbr_cc.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/asbr_cc.dir/codegen.cpp.o"
  "CMakeFiles/asbr_cc.dir/codegen.cpp.o.d"
  "CMakeFiles/asbr_cc.dir/compile.cpp.o"
  "CMakeFiles/asbr_cc.dir/compile.cpp.o.d"
  "CMakeFiles/asbr_cc.dir/lexer.cpp.o"
  "CMakeFiles/asbr_cc.dir/lexer.cpp.o.d"
  "CMakeFiles/asbr_cc.dir/parser.cpp.o"
  "CMakeFiles/asbr_cc.dir/parser.cpp.o.d"
  "CMakeFiles/asbr_cc.dir/schedule.cpp.o"
  "CMakeFiles/asbr_cc.dir/schedule.cpp.o.d"
  "libasbr_cc.a"
  "libasbr_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

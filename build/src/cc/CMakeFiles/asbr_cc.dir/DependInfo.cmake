
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/codegen.cpp" "src/cc/CMakeFiles/asbr_cc.dir/codegen.cpp.o" "gcc" "src/cc/CMakeFiles/asbr_cc.dir/codegen.cpp.o.d"
  "/root/repo/src/cc/compile.cpp" "src/cc/CMakeFiles/asbr_cc.dir/compile.cpp.o" "gcc" "src/cc/CMakeFiles/asbr_cc.dir/compile.cpp.o.d"
  "/root/repo/src/cc/lexer.cpp" "src/cc/CMakeFiles/asbr_cc.dir/lexer.cpp.o" "gcc" "src/cc/CMakeFiles/asbr_cc.dir/lexer.cpp.o.d"
  "/root/repo/src/cc/parser.cpp" "src/cc/CMakeFiles/asbr_cc.dir/parser.cpp.o" "gcc" "src/cc/CMakeFiles/asbr_cc.dir/parser.cpp.o.d"
  "/root/repo/src/cc/schedule.cpp" "src/cc/CMakeFiles/asbr_cc.dir/schedule.cpp.o" "gcc" "src/cc/CMakeFiles/asbr_cc.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/asbr_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/asbr_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/asbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for asbr_cc.
# This may be replaced when dependencies are built.

# Empty dependencies file for asbr_isa.
# This may be replaced when dependencies are built.

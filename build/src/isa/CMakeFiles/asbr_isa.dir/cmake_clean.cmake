file(REMOVE_RECURSE
  "CMakeFiles/asbr_isa.dir/disasm.cpp.o"
  "CMakeFiles/asbr_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/asbr_isa.dir/encoding.cpp.o"
  "CMakeFiles/asbr_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/asbr_isa.dir/isa.cpp.o"
  "CMakeFiles/asbr_isa.dir/isa.cpp.o.d"
  "libasbr_isa.a"
  "libasbr_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

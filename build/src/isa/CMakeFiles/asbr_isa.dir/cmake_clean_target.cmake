file(REMOVE_RECURSE
  "libasbr_isa.a"
)

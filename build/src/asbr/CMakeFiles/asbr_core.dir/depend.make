# Empty dependencies file for asbr_core.
# This may be replaced when dependencies are built.

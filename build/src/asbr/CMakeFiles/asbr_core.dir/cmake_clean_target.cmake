file(REMOVE_RECURSE
  "libasbr_core.a"
)

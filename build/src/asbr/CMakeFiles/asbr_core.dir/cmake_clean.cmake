file(REMOVE_RECURSE
  "CMakeFiles/asbr_core.dir/asbr_unit.cpp.o"
  "CMakeFiles/asbr_core.dir/asbr_unit.cpp.o.d"
  "CMakeFiles/asbr_core.dir/extract.cpp.o"
  "CMakeFiles/asbr_core.dir/extract.cpp.o.d"
  "libasbr_core.a"
  "libasbr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

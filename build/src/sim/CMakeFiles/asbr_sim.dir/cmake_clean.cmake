file(REMOVE_RECURSE
  "CMakeFiles/asbr_sim.dir/exec.cpp.o"
  "CMakeFiles/asbr_sim.dir/exec.cpp.o.d"
  "CMakeFiles/asbr_sim.dir/functional.cpp.o"
  "CMakeFiles/asbr_sim.dir/functional.cpp.o.d"
  "CMakeFiles/asbr_sim.dir/pipeline.cpp.o"
  "CMakeFiles/asbr_sim.dir/pipeline.cpp.o.d"
  "libasbr_sim.a"
  "libasbr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for asbr_sim.
# This may be replaced when dependencies are built.

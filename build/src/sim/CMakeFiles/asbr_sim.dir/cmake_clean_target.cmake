file(REMOVE_RECURSE
  "libasbr_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/compile_and_customize.dir/compile_and_customize.cpp.o"
  "CMakeFiles/compile_and_customize.dir/compile_and_customize.cpp.o.d"
  "compile_and_customize"
  "compile_and_customize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_and_customize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for compile_and_customize.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fold_my_branch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fold_my_branch.dir/fold_my_branch.cpp.o"
  "CMakeFiles/fold_my_branch.dir/fold_my_branch.cpp.o.d"
  "fold_my_branch"
  "fold_my_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fold_my_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

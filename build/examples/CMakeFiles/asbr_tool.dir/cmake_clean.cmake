file(REMOVE_RECURSE
  "CMakeFiles/asbr_tool.dir/asbr_tool.cpp.o"
  "CMakeFiles/asbr_tool.dir/asbr_tool.cpp.o.d"
  "asbr_tool"
  "asbr_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asbr_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

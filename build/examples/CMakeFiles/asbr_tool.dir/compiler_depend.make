# Empty compiler generated dependencies file for asbr_tool.
# This may be replaced when dependencies are built.

// asbr-sweep — parameter-grid sweeps over the driver engine.
//
// Cross-products workload x predictor x BIT-size x update-stage axes into
// one SimJob batch, runs it on the engine worker pool (--threads=N), and
// emits a schema-versioned asbr.sweep_report (engine counters + one
// asbr.sim_report run object per grid point).  Expansion order is fixed and
// results merge in submission order, so the report is byte-identical at any
// thread count — ci and the determinism tests diff whole files to prove it.
//
// Examples:
//   asbr-sweep --quick --bits=1,4,16 --predictors=bi512 --json=-
//   asbr-sweep --workload=g721-enc --stages=commit,mem_end,ex_end
//              --baseline --threads=8 --json=sweep.json
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/sweep.hpp"
#include "report/sweep_report.hpp"

using namespace asbr;
using namespace asbr::bench;

namespace {

[[noreturn]] void usage(int code) {
    std::fputs(
        "usage: asbr-sweep [options]\n"
        "\n"
        "grid axes (comma-separated lists; the cross-product is simulated):\n"
        "  --workloads=W1,W2,...   default: all six benchmarks\n"
        "  --predictors=P1,P2,...  default: bimodal\n"
        "  --bits=N1,N2,...        BIT entries; 0 = the paper's per-benchmark\n"
        "                          count (default: 0)\n"
        "  --stages=S1,S2,...      ex_end|mem_end|commit (default: mem_end)\n"
        "\n"
        "grid flags (applied to every ASBR point):\n"
        "  --protected             enable BDT/BIT parity protection\n"
        "  --static-folds          two-class selection + static fold table\n"
        "  --baseline              also run each workload x predictor point\n"
        "                          without ASBR, before its ASBR points\n"
        "\n"
        "output:\n"
        "  --json=FILE             write the asbr.sweep_report (\"-\" = stdout)\n"
        "\n"
        "shared options: --quick --seed=N --adpcm=N --g721=N --threads=N\n"
        "                --workload=W (single-workload shorthand) --csv\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

std::vector<std::string> splitList(const std::string& text) {
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end = comma == std::string::npos ? text.size() : comma;
        if (end > start) items.push_back(text.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return items;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options options;
    driver::SweepGrid grid;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string error;
        if (driver::consumeSharedOption(arg, options, error)) {
            if (!error.empty()) driver::cliFail(argv[0], error);
        } else if (arg.rfind("--workloads=", 0) == 0) {
            grid.workloads.clear();
            for (const std::string& token : splitList(arg.substr(12))) {
                const auto id = driver::benchFromToken(token);
                if (!id)
                    driver::cliFail(argv[0], "unknown workload '" + token +
                                                 "' (" +
                                                 driver::benchTokenList() + ")");
                grid.workloads.push_back(*id);
            }
        } else if (arg.rfind("--predictors=", 0) == 0) {
            grid.predictors.clear();
            for (const std::string& token : splitList(arg.substr(13))) {
                if (driver::makePredictorByToken(token) == nullptr)
                    driver::cliFail(argv[0],
                                    "unknown predictor '" + token + "' (" +
                                        driver::predictorTokenList() + ")");
                grid.predictors.push_back(token);
            }
        } else if (arg.rfind("--bits=", 0) == 0) {
            grid.bitSizes.clear();
            for (const std::string& token : splitList(arg.substr(7)))
                grid.bitSizes.push_back(std::strtoull(token.c_str(), nullptr, 10));
        } else if (arg.rfind("--stages=", 0) == 0) {
            grid.stages.clear();
            for (const std::string& token : splitList(arg.substr(9))) {
                const auto stage = driver::stageFromToken(token);
                if (!stage)
                    driver::cliFail(argv[0], "unknown stage '" + token +
                                                 "' (ex_end|mem_end|commit)");
                grid.stages.push_back(*stage);
            }
        } else if (arg == "--protected") {
            grid.parityProtected = true;
        } else if (arg == "--static-folds") {
            grid.staticFolds = true;
        } else if (arg == "--baseline") {
            grid.includeBaseline = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            driver::cliFail(argv[0],
                            "unknown option '" + arg + "' (try --help)");
        }
    }
    if (grid.predictors.empty() || grid.bitSizes.empty() ||
        grid.stages.empty())
        driver::cliFail(argv[0], "every grid axis needs at least one value");
    // --workload=W is shorthand for --workloads=W.
    if (options.workload.has_value()) grid.workloads = {*options.workload};

    const std::vector<SimJob> jobs = driver::expandSweep(grid, options);
    SimEngine engine({.threads = options.threads});
    const std::vector<JobResult> results = engine.run(jobs);

    TextTable table("asbr-sweep: " + std::to_string(jobs.size()) +
                    " grid point(s)");
    table.setHeader({"benchmark", "predictor", "ASBR", "BIT", "stage",
                     "cycles", "CPI", "folds"});
    for (const JobResult& r : results) {
        table.addRow({r.report.meta.benchmark, r.report.meta.predictor,
                      r.asbr ? "yes" : "no",
                      r.asbr ? std::to_string(r.report.meta.bitEntries) : "-",
                      r.asbr ? r.report.meta.updateStage : "-",
                      formatWithCommas(r.stats.cycles),
                      formatFixed(r.stats.cpi(), 3),
                      formatWithCommas(r.unitStats.folds)});
    }
    printTable(options, table);

    const driver::EngineStats stats = engine.stats();
    std::fprintf(stderr,
                 "engine: %llu job(s), %llu cache hit(s), %llu busy cycle(s)\n",
                 static_cast<unsigned long long>(stats.jobsRun),
                 static_cast<unsigned long long>(stats.cacheHits),
                 static_cast<unsigned long long>(stats.workerBusyCycles));

    if (!options.jsonPath.empty()) {
        // The options block records what determined the document's bytes —
        // deliberately NOT --threads, which must not change them.
        JsonObject optionsJson;
        optionsJson.emplace_back(
            "adpcm_samples", static_cast<std::uint64_t>(options.adpcmSamples));
        optionsJson.emplace_back(
            "g721_samples", static_cast<std::uint64_t>(options.g721Samples));
        optionsJson.emplace_back("seed", options.seed);
        SweepEngineStats engineJson;
        engineJson.jobsRun = stats.jobsRun;
        engineJson.cacheHits = stats.cacheHits;
        engineJson.workerBusyCycles = stats.workerBusyCycles;
        std::vector<SimReport> runs;
        runs.reserve(results.size());
        for (const JobResult& r : results) runs.push_back(r.report);
        const JsonValue doc = sweepReportJson(
            "asbr-sweep", JsonValue(std::move(optionsJson)), engineJson, runs);
        const std::string text = doc.dump(2) + "\n";
        if (options.jsonPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(options.jsonPath);
            if (!out) {
                std::fprintf(stderr, "cannot open %s for writing\n",
                             options.jsonPath.c_str());
                return 1;
            }
            out << text;
            std::fprintf(stderr, "wrote sweep report (%zu runs) to %s\n",
                         runs.size(), options.jsonPath.c_str());
        }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asbr-sweep: error: %s\n", e.what());
    return 1;
  }
}

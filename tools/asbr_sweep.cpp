// asbr-sweep — parameter-grid sweeps over the driver engine.
//
// Cross-products workload x predictor x BIT-size x update-stage axes into
// one SimJob batch and runs it through the engine's durable executor
// (docs/robustness.md): an optional write-ahead job journal (--journal=DIR,
// --resume), a per-job wall-clock watchdog (--job-timeout=MS), bounded
// retry (--max-attempts=N) and quarantine — a persistently failing cell
// lands in the report's failed_jobs section instead of aborting the grid.
// Expansion order is fixed and results merge in submission order, so the
// asbr.sweep_report is byte-identical at any thread count and across a
// kill/--resume cycle — ci/resume.sh diffs whole files to prove it.
//
// Exit codes: 0 success, 2 bad command line, 3 at least one cell
// quarantined, 130 interrupted (journal checkpointed; rerun with --resume).
//
// Examples:
//   asbr-sweep --quick --bits=1,4,16 --predictors=bi512 --json=-
//   asbr-sweep --workload=g721-enc --stages=commit,mem_end,ex_end
//              --baseline --threads=8 --json=sweep.json
//   asbr-sweep --journal=sweep.j --resume --json=sweep.json
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bp/registry.hpp"
#include "driver/sweep.hpp"
#include "report/sweep_report.hpp"

using namespace asbr;
using namespace asbr::bench;

namespace {

[[noreturn]] void usage(int code) {
    FILE* out = code == 0 ? stdout : stderr;
    std::fputs(
        "usage: asbr-sweep [options]\n"
        "\n"
        "grid axes (comma-separated lists; the cross-product is simulated):\n"
        "  --workloads=W1,W2,...   default: all six benchmarks\n"
        "  --predictors=P1,P2,...  default: bimodal; registered tokens:\n",
        out);
    for (const PredictorFamily& family : PredictorRegistry::instance().families())
        std::fprintf(out, "                            %-28s %s\n",
                     family.grammar.c_str(), family.summary.c_str());
    std::fputs(
        "  --bits=N1,N2,...        BIT entries; 0 = the paper's per-benchmark\n"
        "                          count (default: 0)\n"
        "  --stages=S1,S2,...      ex_end|mem_end|commit (default: mem_end)\n"
        "\n"
        "grid flags (applied to every ASBR point):\n"
        "  --protected             enable BDT/BIT parity protection\n"
        "  --static-folds          two-class selection + static fold table\n"
        "  --predictor-aware       fold only branches each point's own\n"
        "                          predictor demonstrably loses\n"
        "  --baseline              also run each workload x predictor point\n"
        "                          without ASBR, before its ASBR points\n"
        "\n"
        "durability (docs/robustness.md):\n"
        "  --journal=DIR           write-ahead job journal + result artifacts\n"
        "  --resume                resume DIR's journal: completed cells are\n"
        "                          spliced, the rest re-run (byte-identical)\n"
        "  --job-timeout=MS        per-attempt wall-clock watchdog (0 = off)\n"
        "  --max-attempts=N        attempts before a cell is quarantined\n"
        "\n"
        "output:\n"
        "  --json=FILE             write the asbr.sweep_report (\"-\" = stdout)\n"
        "\n"
        "shared options: --quick --seed=N --adpcm=N --g721=N --threads=N\n"
        "                --workload=W (single-workload shorthand) --csv\n"
        "                --sample=W:M:S\n",
        out);
    std::exit(code);
}

std::vector<std::string> splitList(const std::string& text) {
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end = comma == std::string::npos ? text.size() : comma;
        if (end > start) items.push_back(text.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return items;
}

const char* stageToken(ValueStage stage) {
    switch (stage) {
        case ValueStage::kExEnd: return "ex_end";
        case ValueStage::kMemEnd: return "mem_end";
        case ValueStage::kCommit: return "commit";
    }
    return "?";
}

std::atomic<bool> gInterrupted{false};

extern "C" void onSignal(int) { gInterrupted.store(true); }

/// counters["<name>"] from a serialized asbr.sim_report, 0 when absent.
std::uint64_t reportCounter(const JsonValue& report, const char* name) {
    const JsonValue* counters = report.find("counters");
    if (counters == nullptr) return 0;
    const JsonValue* v = counters->find(name);
    return v != nullptr && v->isNumber() ? v->asUint() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options options;
    driver::SweepGrid grid;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string error;
        if (driver::consumeSharedOption(arg, options, error)) {
            if (!error.empty()) driver::cliFail(argv[0], error);
        } else if (arg.rfind("--workloads=", 0) == 0) {
            grid.workloads.clear();
            for (const std::string& token : splitList(arg.substr(12))) {
                const auto id = driver::benchFromToken(token);
                if (!id)
                    driver::cliFail(argv[0], "unknown workload '" + token +
                                                 "' (" +
                                                 driver::benchTokenList() + ")");
                grid.workloads.push_back(*id);
            }
        } else if (arg.rfind("--predictors=", 0) == 0) {
            grid.predictors.clear();
            for (const std::string& token : splitList(arg.substr(13))) {
                std::string tokenError;
                if (driver::makePredictorByToken(token, &tokenError) == nullptr)
                    driver::cliFail(argv[0], tokenError);
                grid.predictors.push_back(token);
            }
        } else if (arg.rfind("--bits=", 0) == 0) {
            grid.bitSizes.clear();
            for (const std::string& token : splitList(arg.substr(7)))
                grid.bitSizes.push_back(std::strtoull(token.c_str(), nullptr, 10));
        } else if (arg.rfind("--stages=", 0) == 0) {
            grid.stages.clear();
            for (const std::string& token : splitList(arg.substr(9))) {
                const auto stage = driver::stageFromToken(token);
                if (!stage)
                    driver::cliFail(argv[0], "unknown stage '" + token +
                                                 "' (ex_end|mem_end|commit)");
                grid.stages.push_back(*stage);
            }
        } else if (arg == "--protected") {
            grid.parityProtected = true;
        } else if (arg == "--static-folds") {
            grid.staticFolds = true;
        } else if (arg == "--predictor-aware") {
            grid.predictorAware = true;
        } else if (arg == "--baseline") {
            grid.includeBaseline = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            driver::cliFail(argv[0],
                            "unknown option '" + arg + "' (try --help)");
        }
    }
    if (grid.predictors.empty() || grid.bitSizes.empty() ||
        grid.stages.empty())
        driver::cliFail(argv[0], "every grid axis needs at least one value");
    if (grid.staticFolds && grid.predictorAware)
        driver::cliFail(argv[0],
                        "--static-folds and --predictor-aware are exclusive");
    if (options.resume && options.journalDir.empty())
        driver::cliFail(argv[0], "--resume requires --journal=DIR");
    // --workload=W is shorthand for --workloads=W.
    if (options.workload.has_value()) grid.workloads = {*options.workload};

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    const std::vector<SimJob> jobs = driver::expandSweep(grid, options);
    SimEngine engine(driver::engineConfigFor(options));

    driver::DurablePolicy policy;
    policy.journalDir = options.journalDir;
    policy.resume = options.resume;
    policy.maxAttempts = options.maxAttempts;
    policy.jobTimeoutMs = options.jobTimeoutMs;
    policy.interrupted = &gInterrupted;
    const driver::DurableRunResult outcome = engine.runDurable(jobs, policy);

    TextTable table("asbr-sweep: " + std::to_string(jobs.size()) +
                    " grid point(s)");
    table.setHeader({"benchmark", "predictor", "ASBR", "BIT", "stage",
                     "cycles", "CPI", "folds", "status"});
    for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
        const SimJob& job = jobs[i];
        const driver::CellOutcome& cell = outcome.cells[i];
        std::string cycles = "-";
        std::string cpi = "-";
        std::string folds = "-";
        std::string status;
        switch (cell.status) {
            case driver::CellStatus::kOk: {
                cycles = formatWithCommas(
                    reportCounter(cell.report, "pipeline.cycles"));
                const JsonValue* derived = cell.report.find("derived");
                const JsonValue* cpiValue =
                    derived != nullptr ? derived->find("cpi") : nullptr;
                if (cpiValue != nullptr && cpiValue->isNumber())
                    cpi = formatFixed(cpiValue->asDouble(), 3);
                folds = formatWithCommas(
                    reportCounter(cell.report, "asbr.folds"));
                status = cell.resumed ? "ok (resumed)" : "ok";
                break;
            }
            case driver::CellStatus::kFailed:
                status = "failed x" + std::to_string(cell.attempts);
                break;
            case driver::CellStatus::kSkipped:
                status = "skipped";
                break;
        }
        table.addRow({driver::benchToken(job.workload), job.predictor,
                      job.asbr ? "yes" : "no",
                      job.asbr ? std::to_string(job.bitEntries) : "-",
                      job.asbr ? stageToken(job.updateStage) : "-", cycles, cpi,
                      folds, status});
    }
    printTable(options, table);

    const driver::EngineStats stats = engine.stats();
    std::fprintf(stderr,
                 "engine: %llu job(s), %llu cache hit(s), %llu busy cycle(s), "
                 "%llu resumed\n",
                 static_cast<unsigned long long>(stats.jobsRun),
                 static_cast<unsigned long long>(stats.cacheHits),
                 static_cast<unsigned long long>(stats.workerBusyCycles),
                 static_cast<unsigned long long>(stats.jobsResumed));
    for (const driver::CellOutcome& cell : outcome.cells)
        if (cell.status == driver::CellStatus::kFailed)
            std::fprintf(stderr,
                         "asbr-sweep: quarantined %s after %llu attempt(s): "
                         "%s\n",
                         cell.key.c_str(),
                         static_cast<unsigned long long>(cell.attempts),
                         cell.error.c_str());

    if (outcome.interrupted) {
        std::fprintf(stderr,
                     "asbr-sweep: interrupted — journal checkpointed; rerun "
                     "with --resume to continue\n");
        return 130;
    }

    if (!options.jsonPath.empty()) {
        // The options block records what determined the document's bytes —
        // deliberately NOT --threads / --journal / --resume, which must not
        // change them.
        JsonObject optionsJson;
        optionsJson.emplace_back(
            "adpcm_samples", static_cast<std::uint64_t>(options.adpcmSamples));
        optionsJson.emplace_back(
            "g721_samples", static_cast<std::uint64_t>(options.g721Samples));
        optionsJson.emplace_back("seed", options.seed);
        std::vector<SweepCell> cells;
        cells.reserve(outcome.cells.size());
        for (const driver::CellOutcome& cell : outcome.cells) {
            SweepCell out;
            out.job = cell.key;
            out.status =
                cell.status == driver::CellStatus::kOk ? "ok" : "failed";
            out.attempts = cell.attempts;
            out.report = cell.report;
            out.error = cell.error;
            cells.push_back(std::move(out));
        }
        const JsonValue doc = sweepReportJson(
            "asbr-sweep", JsonValue(std::move(optionsJson)), cells);
        const std::string text = doc.dump(2) + "\n";
        if (options.jsonPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(options.jsonPath);
            if (!out) {
                std::fprintf(stderr, "cannot open %s for writing\n",
                             options.jsonPath.c_str());
                return 1;
            }
            out << text;
            std::fprintf(stderr, "wrote sweep report (%zu cells) to %s\n",
                         cells.size(), options.jsonPath.c_str());
        }
    }
    return outcome.countWith(driver::CellStatus::kFailed) > 0 ? 3 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "asbr-sweep: error: %s\n", e.what());
    return 1;
  }
}

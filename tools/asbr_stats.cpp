// asbr-stats — the observability CLI.
//
// One binary that exercises the whole reporting layer end to end:
//   counters   print the canonical metric catalogue (docs/metrics.md is
//              checked against this list by ci/docs-check.sh)
//   run        simulate one benchmark under a chosen predictor (optionally
//              with ASBR folding, a pipeline trace, or --sample=W:M:S sampled
//              simulation) and export a schema-versioned asbr.sim_report or
//              asbr.sampling_report
//   report     regenerate the Figure 6 + Figure 11 sweeps as one
//              asbr.bench_report document (what ci/bench-report.sh runs)
//   validate   schema-check any report document produced above
//
// Every command is a thin job-spec builder over driver::SimEngine; `report`
// runs its whole batch on the engine worker pool (--threads=N) and is
// byte-identical at any thread count.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <fstream>
#include <sstream>
#include <string>

#include "bp/bimodal.hpp"
#include "bp/perceptron.hpp"
#include "bp/registry.hpp"
#include "bp/tage.hpp"
#include "bench_util.hpp"
#include "profile/selection.hpp"
#include "report/analysis_report.hpp"
#include "report/ipa_report.hpp"
#include "report/fault_report.hpp"
#include "report/sampling_report.hpp"
#include "report/sweep_report.hpp"
#include "report/wcet_report.hpp"
#include "sim/sampling.hpp"
#include "util/trace.hpp"

using namespace asbr;
using namespace asbr::bench;

namespace {

[[noreturn]] void usage(int code) {
    std::fputs(
        "usage: asbr-stats <command> [options]\n"
        "\n"
        "commands:\n"
        "  counters              list every metric name the simulator registers\n"
        "  predictors            list predictor families, tokens, storage bits\n"
        "  run --bench=B [...]   simulate one benchmark; export report / trace\n"
        "  report [--out=FILE]   Figure 6 + 11 sweep as one asbr.bench_report (default out: BENCH_asbr.json)\n"
        "  validate FILE         schema-check a report document\n"
        "\n"
        "run options:\n"
        "  --bench=adpcm-enc|adpcm-dec|g721-enc|g721-dec|g711-enc|g711-dec\n"
        "  --predictor=TOKEN     predictor registry token (family, optionally\n"
        "                        parameterized — 'asbr-stats predictors' lists\n"
        "                        the grammar; default bimodal)\n"
        "  --asbr [--bit=N] [--stage=ex_end|mem_end|commit] [--protected]\n"
        "  --static-folds        fold statically-decided branches from the\n"
        "                        static table (implies --asbr)\n"
        "  --predictor-aware     fold only branches the run's own predictor\n"
        "                        demonstrably loses (implies --asbr)\n"
        "  --sample=W:M:S        sampled simulation: W warmup / M measure\n"
        "                        instructions per window, S fast-forwarded\n"
        "                        between windows; exports asbr.sampling_report\n"
        "  --sample-ref          also run the full cycle-accurate reference\n"
        "                        and report the achieved sampling error\n"
        "  --min-mips=N          exit 3 if host sim speed falls below N MIPS\n"
        "  --json=FILE           write an asbr.sim_report (\"-\" = stdout)\n"
        "  --trace=FILE          record a pipeline trace to FILE\n"
        "  --trace-format=chrome|jsonl   (default chrome)\n"
        "  --trace-start=N --trace-end=N --trace-max=N   trace window / cap\n"
        "\n"
        "shared options: --quick --seed=N --adpcm=N --g721=N --threads=N\n"
        "                --workload=W --csv --json=FILE --sample=W:M:S\n"
        "                --job-timeout=MS --max-attempts=N\n"
        "                (--journal=DIR / --resume are durable-sweep flags —\n"
        "                 asbr-sweep and asbr-faults campaign only; rejected\n"
        "                 here with a clear error)\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

/// Single-run commands have no journal: fail fast instead of silently
/// ignoring a flag the user expected to persist something.
bool rejectJournalFlags(const char* command, const Options& options) {
    if (options.journalDir.empty() && !options.resume) return false;
    std::fprintf(stderr,
                 "%s: --journal/--resume apply to asbr-sweep and asbr-faults "
                 "campaign (docs/robustness.md)\n",
                 command);
    return true;
}

void writeTextTo(const std::string& path, const std::string& text,
                 const char* what) {
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    out << text;
    std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
}

int cmdCounters() {
    // Zero-valued publishes from every metric-owning component enumerate the
    // complete namespace without running a simulation.
    MetricRegistry registry;
    PipelineStats{}.publish(registry);
    makeBimodal2048()->publishMetrics(registry);
    // Family-specific counters only: bp.storage_bits is already claimed.
    makeTage()->publishFamilyMetrics(registry);
    makePerceptron()->publishFamilyMetrics(registry);
    AsbrUnit().publishMetrics(registry);
    driver::SimEngine().publishMetrics(registry);
    analysis::timing::WcetMetrics{}.publish(registry);
    StaticCostSelectionMetrics{}.publish(registry);
    PredictorAwareSelectionMetrics{}.publish(registry);
    SampledResult{}.publish(registry);
    SimSpeed{}.publish(registry);
    for (const auto& entry : registry.catalogue()) {
        const char* kind = "counter";
        if (entry.kind == MetricRegistry::Entry::Kind::kHistogram)
            kind = "histogram";
        else if (entry.kind == MetricRegistry::Entry::Kind::kSites)
            kind = "sites";
        std::printf("%-34s %-9s %s\n", entry.name.c_str(), kind,
                    entry.help.c_str());
    }
    return 0;
}

int cmdPredictors() {
    // One row per registered family: prefix, default storage bits, token
    // grammar, then the one-line summary.  The prefix is the first word so
    // scripted consumers (ci/docs-check.sh) can lift the token list with awk.
    for (const PredictorFamily& family :
         PredictorRegistry::instance().families()) {
        const std::uint64_t bits =
            PredictorRegistry::instance().storageBits(family.prefix);
        std::printf("%-12s %8llu bits  %-34s %s\n", family.prefix.c_str(),
                    static_cast<unsigned long long>(bits),
                    family.grammar.c_str(), family.summary.c_str());
    }
    return 0;
}

int cmdRun(int argc, char** argv) {
    Options options;
    std::string bench;
    SimJob job;
    job.figure = "run";
    std::string tracePath;
    std::string traceFormat = "chrome";
    std::optional<std::uint64_t> minMips;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string error;
        if (driver::consumeSharedOption(arg, options, error)) {
            if (!error.empty()) {
                std::fprintf(stderr, "run: %s\n", error.c_str());
                return 2;
            }
        } else if (arg.rfind("--bench=", 0) == 0) {
            bench = arg.substr(8);
        } else if (arg.rfind("--predictor=", 0) == 0) {
            job.predictor = arg.substr(12);
        } else if (arg == "--asbr") {
            job.asbr = true;
        } else if (arg == "--static-folds") {
            job.staticFolds = true;
            job.asbr = true;
        } else if (arg == "--predictor-aware") {
            job.predictorAware = true;
            job.asbr = true;
        } else if (arg == "--protected") {
            job.parityProtected = true;
            job.asbr = true;
        } else if (const auto v = driver::numArg(arg, "--bit=")) {
            job.bitEntries = *v;
            job.asbr = true;
        } else if (arg.rfind("--stage=", 0) == 0) {
            const auto s = driver::stageFromToken(arg.substr(8));
            if (!s) {
                std::fprintf(stderr, "run: unknown --stage '%s'\n",
                             arg.substr(8).c_str());
                return 2;
            }
            job.updateStage = *s;
            job.asbr = true;
        } else if (arg == "--sample-ref") {
            job.sampleReference = true;
        } else if (const auto v = driver::numArg(arg, "--min-mips=")) {
            minMips = *v;
        } else if (arg.rfind("--trace=", 0) == 0) {
            tracePath = arg.substr(8);
        } else if (arg.rfind("--trace-format=", 0) == 0) {
            traceFormat = arg.substr(15);
            if (traceFormat != "chrome" && traceFormat != "jsonl") {
                std::fprintf(stderr, "run: unknown --trace-format '%s'\n",
                             traceFormat.c_str());
                return 2;
            }
        } else if (const auto v = driver::numArg(arg, "--trace-start=")) {
            job.traceConfig.startCycle = *v;
        } else if (const auto v = driver::numArg(arg, "--trace-end=")) {
            job.traceConfig.endCycle = *v;
        } else if (const auto v = driver::numArg(arg, "--trace-max=")) {
            job.traceConfig.maxEvents = *v;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "run: unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }

    // --workload= (shared spelling) and --bench= (historical) are aliases.
    auto id = bench.empty() ? options.workload : driver::benchFromToken(bench);
    if (!id) {
        std::fprintf(stderr, "run: --bench is required (%s)\n",
                     driver::benchTokenList());
        return 2;
    }
    std::string predictorError;
    if (driver::makePredictorByToken(job.predictor, &predictorError) ==
        nullptr) {
        std::fprintf(stderr, "run: %s\n", predictorError.c_str());
        return 2;
    }
    if (job.staticFolds && job.predictorAware) {
        std::fprintf(stderr,
                     "run: --static-folds and --predictor-aware are "
                     "exclusive\n");
        return 2;
    }
    if (rejectJournalFlags("run", options)) return 2;
    job.workload = *id;
    job.seed = options.seed;
    job.samples = samplesFor(options, *id);
    if (options.sample) {
        job.sampled = true;
        job.sampling = *options.sample;
    }
    if (job.sampleReference && !job.sampled) {
        std::fprintf(stderr, "run: --sample-ref requires --sample=W:M:S\n");
        return 2;
    }
    if (!tracePath.empty()) {
#ifndef ASBR_TRACING
        std::fprintf(stderr,
                     "warning: built without ASBR_TRACING; the trace file "
                     "will contain no events\n");
#endif
        job.trace = true;
    }

    SimEngine engine(driver::engineConfigFor(options));
    const JobResult r = engine.runOne(job);
    // Simulation-phase wall clock, measured by the engine around the
    // pipeline / sampled / reference runs only — compile/profile/select
    // artifact work is cached across jobs and must not skew the speed line.
    const double hostSeconds = r.simSeconds;
    if (job.staticFolds)
        std::fprintf(stderr,
                     "static folds: %zu branch(es) in the static table, "
                     "%llu BIT slot(s) reclaimed\n",
                     r.staticFoldCount,
                     static_cast<unsigned long long>(r.bitSlotsReclaimed));

    if (r.sampled != nullptr) {
        const SampledResult& s = *r.sampled;
        TextTable table(std::string("asbr-stats run (sampled): ") +
                        benchName(*id) + " / " + r.report.meta.predictor +
                        (job.asbr ? " + ASBR" : ""));
        table.setHeader({"windows", "measured instr", "fast-forwarded",
                         "CPI estimate", "ci95 +/-", "fold rate"});
        table.addRow({formatWithCommas(s.windows.size()),
                      formatWithCommas(s.measuredInstructions),
                      formatWithCommas(s.fastForwardInstructions),
                      formatFixed(s.cpiEstimate, 3),
                      formatFixed(s.ci95HalfWidth, 4),
                      formatPercent(s.stats.foldRate())});
        printTable(options, table);
        if (r.hasReference && r.referenceCommitted > 0) {
            const double refCpi = static_cast<double>(r.referenceCycles) /
                                  static_cast<double>(r.referenceCommitted);
            const double errPct =
                refCpi == 0.0
                    ? 0.0
                    : 100.0 * std::fabs(s.cpiEstimate - refCpi) / refCpi;
            std::fprintf(
                stderr,
                "reference: %s cycles over %s instructions (CPI %s); "
                "sampled estimate off by %.2f%%\n",
                formatWithCommas(r.referenceCycles).c_str(),
                formatWithCommas(r.referenceCommitted).c_str(),
                formatFixed(refCpi, 3).c_str(), errPct);
        }
    } else {
        TextTable table(std::string("asbr-stats run: ") + benchName(*id) +
                        " / " + r.report.meta.predictor +
                        (job.asbr ? " + ASBR" : ""));
        table.setHeader(
            {"cycles", "CPI", "resolution acc", "folds", "fold rate"});
        table.addRow({formatWithCommas(r.stats.cycles),
                      formatFixed(r.stats.cpi(), 3),
                      formatPercent(r.stats.resolutionAccuracy()),
                      formatWithCommas(r.stats.foldedBranches),
                      formatPercent(r.stats.foldRate())});
        printTable(options, table);
    }

    if (!options.jsonPath.empty()) {
        if (r.sampled != nullptr) {
            std::optional<SamplingReference> reference;
            if (r.hasReference)
                reference =
                    SamplingReference{r.referenceCycles, r.referenceCommitted};
            const JsonValue doc = samplingReportJson(
                r.report.meta, job.sampling, *r.sampled, reference);
            writeTextTo(options.jsonPath, doc.dump(2) + "\n",
                        "sampling report");
        } else {
            const JsonValue doc = simReportJson(r.report);
            writeTextTo(options.jsonPath, doc.dump(2) + "\n", "sim report");
        }
    }

    if (!tracePath.empty()) {
        std::ostringstream out;
        if (traceFormat == "jsonl")
            r.tracer->writeJsonl(out);
        else
            r.tracer->writeChrome(out);
        writeTextTo(tracePath, out.str(), "pipeline trace");
        if (r.tracer->truncated())
            std::fprintf(stderr,
                         "note: trace truncated at %zu events "
                         "(raise --trace-max or narrow the window)\n",
                         r.tracer->events().size());
    }

    // Host throughput is hardware-dependent by construction, so it stays on
    // stderr (never in the JSON artifacts CI byte-compares).
    const std::uint64_t simulated =
        (r.sampled != nullptr ? r.sampled->totalInstructions
                              : r.stats.committed) +
        r.referenceCommitted;
    const double mips = hostSeconds > 0.0
                            ? static_cast<double>(simulated) / 1e6 / hostSeconds
                            : 0.0;
    std::fprintf(stderr, "sim speed: %.1f MIPS (%s instructions in %.2fs)\n",
                 mips, formatWithCommas(simulated).c_str(), hostSeconds);
    if (minMips && mips < static_cast<double>(*minMips)) {
        std::fprintf(stderr,
                     "run: sim speed %.1f MIPS below --min-mips floor %llu\n",
                     mips, static_cast<unsigned long long>(*minMips));
        return 3;
    }
    return 0;
}

int cmdReport(int argc, char** argv) {
    Options options;
    options.jsonPath = "BENCH_asbr.json";
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string error;
        if (arg.rfind("--out=", 0) == 0) {
            options.jsonPath = arg.substr(6);
        } else if (driver::consumeSharedOption(arg, options, error)) {
            if (!error.empty()) {
                std::fprintf(stderr, "report: %s\n", error.c_str());
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "report: unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }

    if (rejectJournalFlags("report", options)) return 2;

    // The whole Figure 6 + Figure 11 grid as one engine batch: per bench,
    // the three baseline predictors, then ASBR with the paper's BIT size
    // under each auxiliary predictor.  Submission order fixes report order.
    SimEngine engine(driver::engineConfigFor(options));
    ReportSink sink("asbr-stats report", options);
    std::vector<SimJob> jobs;
    for (const BenchId id : benchList(options, kAllBenches)) {
        for (const char* predictor : {"not-taken", "bimodal", "gshare"})
            jobs.push_back(baseJob(options, id, predictor, "fig6"));
        for (const char* aux : {"not-taken", "bi512", "bi256"}) {
            SimJob job = baseJob(options, id, aux, "fig11");
            job.asbr = true;
            jobs.push_back(job);
        }
    }
    for (const JobResult& r : engine.run(jobs)) sink.add(r);

    const std::string text = sink.write();

    // Self-check: the document we just wrote must pass its own validator.
    const JsonParseResult parsed = parseJson(text);
    if (!parsed.ok()) {
        std::fprintf(stderr, "internal error: emitted invalid JSON: %s\n",
                     parsed.error.c_str());
        return 1;
    }
    const ReportValidation validation = validateBenchReportJson(*parsed.value);
    for (const std::string& error : validation.errors)
        std::fprintf(stderr, "schema error: %s\n", error.c_str());
    if (!validation.ok()) return 1;
    std::fprintf(stderr, "report validates against %s v%llu (%zu runs)\n",
                 kBenchReportSchema,
                 static_cast<unsigned long long>(kReportSchemaVersion),
                 sink.runCount());
    return 0;
}

int cmdValidate(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const JsonParseResult parsed = parseJson(buffer.str());
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s: JSON parse error: %s\n", path,
                     parsed.error.c_str());
        return 1;
    }
    const JsonValue* schema = parsed.value->find("schema");
    if (schema == nullptr || !schema->isString()) {
        std::fprintf(stderr, "%s: missing string member 'schema'\n", path);
        return 1;
    }
    ReportValidation validation;
    // The sweep/fault schemas carry their own version constants (bumped to 2
    // for the durable-execution failed_jobs sections); everything else is
    // still at the shared kReportSchemaVersion.
    std::uint64_t version = kReportSchemaVersion;
    if (schema->asString() == kSimReportSchema) {
        validation = validateSimReportJson(*parsed.value);
    } else if (schema->asString() == kBenchReportSchema) {
        validation = validateBenchReportJson(*parsed.value);
    } else if (schema->asString() == kFaultReportSchema) {
        validation = validateFaultReportJson(*parsed.value);
        version = kFaultReportVersion;
    } else if (schema->asString() == kAnalysisReportSchema) {
        validation = validateAnalysisReportJson(*parsed.value);
    } else if (schema->asString() == kIpaReportSchema) {
        validation = validateIpaReportJson(*parsed.value);
    } else if (schema->asString() == kSweepReportSchema) {
        validation = validateSweepReportJson(*parsed.value);
        version = kSweepReportVersion;
    } else if (schema->asString() == kWcetReportSchema) {
        validation = validateWcetReportJson(*parsed.value);
    } else if (schema->asString() == kSamplingReportSchema) {
        validation = validateSamplingReportJson(*parsed.value);
    } else {
        std::fprintf(stderr, "%s: unknown schema '%s'\n", path,
                     schema->asString().c_str());
        return 1;
    }
    for (const std::string& error : validation.errors)
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    if (!validation.ok()) return 1;
    std::printf("%s: valid %s v%llu document\n", path,
                schema->asString().c_str(),
                static_cast<unsigned long long>(version));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) usage(2);
        const std::string command = argv[1];
        if (command == "--help" || command == "-h" || command == "help")
            usage(0);
        if (command == "counters") return cmdCounters();
        if (command == "predictors") return cmdPredictors();
        if (command == "run") return cmdRun(argc - 2, argv + 2);
        if (command == "report") return cmdReport(argc - 2, argv + 2);
        if (command == "validate") {
            if (argc != 3) usage(2);
            return cmdValidate(argv[2]);
        }
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        usage(2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-stats: error: %s\n", e.what());
        return 1;
    }
}

// asbr-stats — the observability CLI.
//
// One binary that exercises the whole reporting layer end to end:
//   counters   print the canonical metric catalogue (docs/metrics.md is
//              checked against this list by ci/docs-check.sh)
//   run        simulate one benchmark under a chosen predictor (optionally
//              with ASBR folding and/or a pipeline trace) and export a
//              schema-versioned asbr.sim_report
//   report     regenerate the Figure 6 + Figure 11 sweeps as one
//              asbr.bench_report document (what ci/bench-report.sh runs)
//   validate   schema-check any report document produced above
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "report/analysis_report.hpp"
#include "report/fault_report.hpp"
#include "util/trace.hpp"

using namespace asbr;
using namespace asbr::bench;

namespace {

[[noreturn]] void usage(int code) {
    std::fputs(
        "usage: asbr-stats <command> [options]\n"
        "\n"
        "commands:\n"
        "  counters              list every metric name the simulator registers\n"
        "  run --bench=B [...]   simulate one benchmark; export report / trace\n"
        "  report [--out=FILE]   Figure 6 + 11 sweep as one asbr.bench_report\n"
        "                        (default out: BENCH_asbr.json)\n"
        "  validate FILE         schema-check a report document\n"
        "\n"
        "run options:\n"
        "  --bench=adpcm-enc|adpcm-dec|g721-enc|g721-dec|g711-enc|g711-dec\n"
        "  --predictor=not-taken|taken|bimodal|gshare|tournament|bi512|bi256\n"
        "  --asbr [--bit=N] [--stage=ex_end|mem_end|commit] [--protected]\n"
        "  --static-folds        fold statically-decided branches from the\n"
        "                        static table (implies --asbr)\n"
        "  --json=FILE           write an asbr.sim_report (\"-\" = stdout)\n"
        "  --trace=FILE          record a pipeline trace to FILE\n"
        "  --trace-format=chrome|jsonl   (default chrome)\n"
        "  --trace-start=N --trace-end=N --trace-max=N   trace window / cap\n"
        "\n"
        "shared options: --quick --seed=N --adpcm=N --g721=N\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

std::optional<std::uint64_t> numArg(const std::string& arg, const char* prefix) {
    const std::size_t len = std::strlen(prefix);
    if (arg.rfind(prefix, 0) != 0) return std::nullopt;
    return std::strtoull(arg.c_str() + len, nullptr, 10);
}

std::optional<BenchId> benchFromName(const std::string& s) {
    if (s == "adpcm-enc") return BenchId::kAdpcmEncode;
    if (s == "adpcm-dec") return BenchId::kAdpcmDecode;
    if (s == "g721-enc") return BenchId::kG721Encode;
    if (s == "g721-dec") return BenchId::kG721Decode;
    if (s == "g711-enc") return BenchId::kG711Encode;
    if (s == "g711-dec") return BenchId::kG711Decode;
    return std::nullopt;
}

std::unique_ptr<BranchPredictor> predictorFromName(const std::string& s) {
    if (s == "not-taken") return makeNotTaken();
    if (s == "taken") return std::make_unique<AlwaysTakenPredictor>(2048);
    if (s == "bimodal") return makeBimodal2048();
    if (s == "gshare") return makeGshare2048();
    if (s == "tournament") return makeTournament2048();
    if (s == "bi512") return makeAux512();
    if (s == "bi256") return makeAux256();
    return nullptr;
}

std::optional<ValueStage> stageFromName(const std::string& s) {
    if (s == "ex_end") return ValueStage::kExEnd;
    if (s == "mem_end") return ValueStage::kMemEnd;
    if (s == "commit") return ValueStage::kCommit;
    return std::nullopt;
}

void writeTextTo(const std::string& path, const std::string& text,
                 const char* what) {
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        std::exit(1);
    }
    out << text;
    std::fprintf(stderr, "wrote %s to %s\n", what, path.c_str());
}

int cmdCounters() {
    // Zero-valued publishes from every metric-owning component enumerate the
    // complete namespace without running a simulation.
    MetricRegistry registry;
    PipelineStats{}.publish(registry);
    makeBimodal2048()->publishMetrics(registry);
    AsbrUnit().publishMetrics(registry);
    for (const auto& entry : registry.catalogue()) {
        const char* kind = "counter";
        if (entry.kind == MetricRegistry::Entry::Kind::kHistogram)
            kind = "histogram";
        else if (entry.kind == MetricRegistry::Entry::Kind::kSites)
            kind = "sites";
        std::printf("%-34s %-9s %s\n", entry.name.c_str(), kind,
                    entry.help.c_str());
    }
    return 0;
}

int cmdRun(int argc, char** argv) {
    Options options;
    std::string bench;
    std::string predictorName = "bimodal";
    bool asbr = false;
    bool staticFolds = false;
    bool protectedMode = false;
    std::size_t bitEntries = 0;  // 0 = the paper's count for the benchmark
    ValueStage stage = ValueStage::kMemEnd;
    std::string jsonPath;
    std::string tracePath;
    std::string traceFormat = "chrome";
    TracerConfig traceConfig;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.adpcmSamples = 8'000;
            options.g721Samples = 2'000;
        } else if (const auto v = numArg(arg, "--seed=")) {
            options.seed = *v;
        } else if (const auto v = numArg(arg, "--adpcm=")) {
            options.adpcmSamples = *v;
        } else if (const auto v = numArg(arg, "--g721=")) {
            options.g721Samples = *v;
        } else if (arg.rfind("--bench=", 0) == 0) {
            bench = arg.substr(8);
        } else if (arg.rfind("--predictor=", 0) == 0) {
            predictorName = arg.substr(12);
        } else if (arg == "--asbr") {
            asbr = true;
        } else if (arg == "--static-folds") {
            staticFolds = true;
            asbr = true;
        } else if (arg == "--protected") {
            protectedMode = true;
            asbr = true;
        } else if (const auto v = numArg(arg, "--bit=")) {
            bitEntries = *v;
            asbr = true;
        } else if (arg.rfind("--stage=", 0) == 0) {
            const auto s = stageFromName(arg.substr(8));
            if (!s) {
                std::fprintf(stderr, "run: unknown --stage '%s'\n",
                             arg.substr(8).c_str());
                return 2;
            }
            stage = *s;
            asbr = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            tracePath = arg.substr(8);
        } else if (arg.rfind("--trace-format=", 0) == 0) {
            traceFormat = arg.substr(15);
            if (traceFormat != "chrome" && traceFormat != "jsonl") {
                std::fprintf(stderr, "run: unknown --trace-format '%s'\n",
                             traceFormat.c_str());
                return 2;
            }
        } else if (const auto v = numArg(arg, "--trace-start=")) {
            traceConfig.startCycle = *v;
        } else if (const auto v = numArg(arg, "--trace-end=")) {
            traceConfig.endCycle = *v;
        } else if (const auto v = numArg(arg, "--trace-max=")) {
            traceConfig.maxEvents = *v;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "run: unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }

    const auto id = benchFromName(bench);
    if (!id) {
        std::fprintf(stderr,
                     "run: --bench is required (adpcm-enc|adpcm-dec|g721-enc|"
                     "g721-dec|g711-enc|g711-dec)\n");
        return 2;
    }
    auto predictor = predictorFromName(predictorName);
    if (predictor == nullptr) {
        std::fprintf(stderr, "run: unknown --predictor '%s'\n",
                     predictorName.c_str());
        return 2;
    }

    const Prepared prepared = prepare(*id, options);

    AsbrSetup setup;
    FetchCustomizer* customizer = nullptr;
    if (asbr) {
        // Selection uses a bimodal-2048 profiling run as the accuracy
        // reference, exactly as the figure regenerators do.
        auto baseline = makeBimodal2048();
        const PipelineResult base = runPipeline(prepared, *baseline);
        setup = prepareAsbr(prepared,
                            bitEntries != 0 ? bitEntries : paperBitEntries(*id),
                            stage, accuracyMap(base.stats), protectedMode,
                            staticFolds);
        customizer = setup.unit.get();
        if (staticFolds)
            std::fprintf(stderr,
                         "static folds: %zu branch(es) in the static table, "
                         "%llu BIT slot(s) reclaimed\n",
                         setup.staticCandidates.size(),
                         static_cast<unsigned long long>(
                             setup.bitSlotsReclaimed));
    }

    Tracer tracer(traceConfig);
    PipelineConfig config;
    if (!tracePath.empty()) {
#ifndef ASBR_TRACING
        std::fprintf(stderr,
                     "warning: built without ASBR_TRACING; the trace file "
                     "will contain no events\n");
#endif
        config.tracer = &tracer;
    }

    const PipelineResult r = runPipeline(prepared, *predictor, customizer,
                                         config);

    TextTable table(std::string("asbr-stats run: ") + benchName(*id) + " / " +
                    predictor->name() + (asbr ? " + ASBR" : ""));
    table.setHeader({"cycles", "CPI", "resolution acc", "folds", "fold rate"});
    table.addRow({formatWithCommas(r.stats.cycles),
                  formatFixed(r.stats.cpi(), 3),
                  formatPercent(r.stats.resolutionAccuracy()),
                  formatWithCommas(r.stats.foldedBranches),
                  formatPercent(r.stats.foldRate())});
    printTable(options, table);

    if (!jsonPath.empty()) {
        RunMeta meta;
        meta.benchmark = benchName(*id);
        meta.predictor = predictor->name();
        meta.figure = "run";
        meta.seed = options.seed;
        meta.samples = samplesFor(options, *id);
        meta.scheduled = prepared.scheduled;
        if (setup.unit != nullptr) {
            meta.asbr = true;
            meta.bitEntries = setup.unit->config().bitCapacity;
            meta.updateStage = valueStageName(setup.unit->config().updateStage);
        }
        const JsonValue doc = simReportJson(makeSimReport(
            std::move(meta), r.stats, predictor.get(), setup.unit.get()));
        writeTextTo(jsonPath, doc.dump(2) + "\n", "sim report");
    }

    if (!tracePath.empty()) {
        std::ostringstream out;
        if (traceFormat == "jsonl")
            tracer.writeJsonl(out);
        else
            tracer.writeChrome(out);
        writeTextTo(tracePath, out.str(), "pipeline trace");
        if (tracer.truncated())
            std::fprintf(stderr,
                         "note: trace truncated at %zu events "
                         "(raise --trace-max or narrow the window)\n",
                         tracer.events().size());
    }
    return 0;
}

int cmdReport(int argc, char** argv) {
    Options options;
    options.jsonPath = "BENCH_asbr.json";
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            options.adpcmSamples = 8'000;
            options.g721Samples = 2'000;
        } else if (const auto v = numArg(arg, "--seed=")) {
            options.seed = *v;
        } else if (const auto v = numArg(arg, "--adpcm=")) {
            options.adpcmSamples = *v;
        } else if (const auto v = numArg(arg, "--g721=")) {
            options.g721Samples = *v;
        } else if (arg.rfind("--out=", 0) == 0) {
            options.jsonPath = arg.substr(6);
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "report: unknown option '%s'\n", arg.c_str());
            return 2;
        }
    }

    ReportSink sink("asbr-stats report", options);
    for (const BenchId id : kAllBenches) {
        const Prepared prepared = prepare(id, options);

        // Figure 6: the three baseline predictors.
        std::unique_ptr<BranchPredictor> refs[] = {
            makeNotTaken(), makeBimodal2048(), makeGshare2048()};
        std::map<std::uint32_t, double> accuracy;
        for (std::size_t p = 0; p < 3; ++p) {
            const PipelineResult r = runPipeline(prepared, *refs[p]);
            sink.add("fig6", prepared, r, *refs[p]);
            if (p == 1) accuracy = accuracyMap(r.stats);
        }

        // Figure 11: ASBR with the paper's BIT size + auxiliary predictors.
        const AsbrSetup setup = prepareAsbr(prepared, paperBitEntries(id),
                                            ValueStage::kMemEnd, accuracy);
        std::unique_ptr<BranchPredictor> auxes[] = {
            makeNotTaken(), makeAux512(), makeAux256()};
        for (auto& aux : auxes) {
            const PipelineResult r =
                runPipeline(prepared, *aux, setup.unit.get());
            sink.add("fig11", prepared, r, *aux, &setup);
        }
    }

    const std::string text = sink.write();

    // Self-check: the document we just wrote must pass its own validator.
    const JsonParseResult parsed = parseJson(text);
    if (!parsed.ok()) {
        std::fprintf(stderr, "internal error: emitted invalid JSON: %s\n",
                     parsed.error.c_str());
        return 1;
    }
    const ReportValidation validation = validateBenchReportJson(*parsed.value);
    for (const std::string& error : validation.errors)
        std::fprintf(stderr, "schema error: %s\n", error.c_str());
    if (!validation.ok()) return 1;
    std::fprintf(stderr, "report validates against %s v%llu (%zu runs)\n",
                 kBenchReportSchema,
                 static_cast<unsigned long long>(kReportSchemaVersion),
                 sink.runCount());
    return 0;
}

int cmdValidate(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const JsonParseResult parsed = parseJson(buffer.str());
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s: JSON parse error: %s\n", path,
                     parsed.error.c_str());
        return 1;
    }
    const JsonValue* schema = parsed.value->find("schema");
    if (schema == nullptr || !schema->isString()) {
        std::fprintf(stderr, "%s: missing string member 'schema'\n", path);
        return 1;
    }
    ReportValidation validation;
    if (schema->asString() == kSimReportSchema) {
        validation = validateSimReportJson(*parsed.value);
    } else if (schema->asString() == kBenchReportSchema) {
        validation = validateBenchReportJson(*parsed.value);
    } else if (schema->asString() == kFaultReportSchema) {
        validation = validateFaultReportJson(*parsed.value);
    } else if (schema->asString() == kAnalysisReportSchema) {
        validation = validateAnalysisReportJson(*parsed.value);
    } else {
        std::fprintf(stderr, "%s: unknown schema '%s'\n", path,
                     schema->asString().c_str());
        return 1;
    }
    for (const std::string& error : validation.errors)
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    if (!validation.ok()) return 1;
    std::printf("%s: valid %s v%llu document\n", path,
                schema->asString().c_str(),
                static_cast<unsigned long long>(kReportSchemaVersion));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) usage(2);
        const std::string command = argv[1];
        if (command == "--help" || command == "-h" || command == "help")
            usage(0);
        if (command == "counters") return cmdCounters();
        if (command == "run") return cmdRun(argc - 2, argv + 2);
        if (command == "report") return cmdReport(argc - 2, argv + 2);
        if (command == "validate") {
            if (argc != 3) usage(2);
            return cmdValidate(argv[2]);
        }
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        usage(2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-stats: error: %s\n", e.what());
        return 1;
    }
}

// asbr-verify — static fold-legality linter for assembled/compiled programs.
//
// Builds the CFG, the abstract-interpretation value analysis and the
// reaching-producer dataflow over the linked program, verifies the fold
// legality of either the profiler-driven selection (default) or every
// conditional branch (--all), checks the BIT geometry for conflicts and the
// extracted bank for BTA/BTI/BFI consistency, and exits nonzero when any
// verified branch is Illegal (or any conflict / inconsistency is found) —
// suitable as a CI gate.
//
//   asbr-verify prog.c                      # verify the default selection
//   asbr-verify prog.s --all                # lint every conditional branch
//   asbr-verify prog.c --threshold=2 --require-safe
//   asbr-verify prog.s --all --no-profile   # purely static verdicts
//   asbr-verify prog.s --strict             # value-analysis lints are fatal
//   asbr-verify prog.s --dump-cfg=cfg.dot   # Graphviz render of the analysis
//   asbr-verify analyze --bench=adpcm-enc --out=report.json
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <thread>

#include "analysis/dot.hpp"
#include "analysis/timing/wcet.hpp"
#include "analysis/verify.hpp"
#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "cc/compile.hpp"
#include "cc/schedule.hpp"
#include "driver/artifacts.hpp"
#include "driver/names.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "report/analysis_report.hpp"
#include "report/ipa_report.hpp"
#include "report/wcet_report.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace asbr;

[[noreturn]] void usage(int code) {
    std::fputs(
        "usage: asbr-verify <file.c|file.s> [options]\n"
        "       asbr-verify analyze <file.c|file.s> | --bench=B [options]\n"
        "       asbr-verify wcet <file.c|file.s> | --bench=B [options]\n"
        "       asbr-verify ipa <file.c|file.s> | --bench=B [options]\n"
        "       asbr-verify callgraph <file.c|file.s> | --bench=B [options]\n"
        "  --threshold=2|3|4   fold-distance threshold (default 3)\n"
        "  --bit=N             BIT ways per set (default 16)\n"
        "  --sets=N            BIT sets (default 1 = fully associative)\n"
        "  --all               verify every conditional branch, not just the\n"
        "                      profiler-driven selection\n"
        "  --no-profile        skip the dynamic profile (purely static run;\n"
        "                      implies --all)\n"
        "  --require-safe      selection drops Illegal candidates\n"
        "  --no-schedule       disable the condition-scheduling pass\n"
        "  --dump-cfg=FILE     write the analyzed CFG as a Graphviz digraph\n"
        "  --strict            unreachable-block / dead-branch-arm lints are\n"
        "                      errors (nonzero exit)\n"
        "  --quiet             summary only, no per-branch table\n"
        "analyze options:\n"
        "  --bench=adpcm-enc|adpcm-dec|g721-enc|g721-dec|g711-enc|g711-dec\n"
        "  --out=FILE          asbr.analysis_report destination (default -)\n"
        "wcet options:\n"
        "  --bench=B           workload token (same set as analyze)\n"
        "  --out=FILE          asbr.wcet_report destination (default -)\n"
        "  --seed=N            workload input seed (default 2001)\n"
        "  --samples=N         workload input samples (0 = capacity)\n"
        "  --threads=N         run the two measured pipeline runs in\n"
        "                      parallel (the report is byte-identical at any\n"
        "                      N; default 1)\n"
        "ipa options:\n"
        "  --bench=B           workload token (same set as analyze)\n"
        "  --out=FILE          asbr.ipa_report destination (default -)\n"
        "callgraph options:\n"
        "  --bench=B           workload token (same set as analyze)\n"
        "  --out=FILE          Graphviz digraph destination (default -)\n"
        "durable sweeps (--journal=DIR --resume --job-timeout=MS\n"
        "--max-attempts=N) live in asbr-sweep and asbr-faults campaign — see\n"
        "docs/robustness.md.\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

std::size_t parseCount(const std::string& arg, const std::string& value) {
    try {
        std::size_t end = 0;
        const unsigned long n = std::stoul(value, &end);
        if (end == value.size() && !value.empty()) return n;
    } catch (const std::exception&) {
    }
    std::fprintf(stderr, "asbr-verify: '%s' needs a numeric value\n",
                 arg.c_str());
    std::exit(2);
}

std::optional<BenchId> benchFromName(const std::string& s) {
    if (s == "adpcm-enc") return BenchId::kAdpcmEncode;
    if (s == "adpcm-dec") return BenchId::kAdpcmDecode;
    if (s == "g721-enc") return BenchId::kG721Encode;
    if (s == "g721-dec") return BenchId::kG721Decode;
    if (s == "g711-enc") return BenchId::kG711Encode;
    if (s == "g711-dec") return BenchId::kG711Decode;
    return std::nullopt;
}

/// Compile/assemble `path` (.s/.asm = assembly, anything else = mcc C).
/// Exits with a diagnostic on unreadable files or front-end errors.
Program loadProgram(const std::string& path, bool schedule) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
        const bool isAsm = path.ends_with(".s") || path.ends_with(".asm");
        if (isAsm) {
            Program program = assemble(buffer.str());
            if (schedule) cc::scheduleConditionChains(program);
            return program;
        }
        cc::CompileOptions options;
        options.scheduleConditions = schedule;
        return cc::compile(buffer.str(), options).program;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
    }
}

/// --dump-cfg=FILE: Graphviz render of the analyzed supergraph.  A bad path
/// is a hard error — CI must not silently lose the artifact.
void dumpCfgTo(const std::string& path,
               const analysis::FoldLegalityVerifier& verifier,
               const analysis::VerifyConfig& config) {
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "asbr-verify: cannot open '%s' for writing the CFG dump\n",
                     path.c_str());
        std::exit(1);
    }
    analysis::dumpCfgDot(out, verifier, config);
    out.flush();
    if (!out) {
        std::fprintf(stderr, "asbr-verify: write to '%s' failed\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(stderr, "wrote CFG dump to %s\n", path.c_str());
}

/// Print the value-analysis lints; returns the number of *error* lints
/// (see isErrorLint — refinement wins and the SSA diagnostics are
/// informational).  Lints are diagnostics, so they go to stderr —
/// `analyze --out=-` owns stdout for the JSON document.
std::size_t printLints(const analysis::FoldLegalityVerifier& verifier,
                       const analysis::VerifyConfig& config, bool quiet) {
    std::size_t errors = 0;
    for (const analysis::StaticLint& lint : verifier.lints(config)) {
        if (analysis::isErrorLint(lint.kind)) ++errors;
        if (!quiet)
            std::fprintf(stderr, "lint: %s\n",
                         analysis::formatLint(lint).c_str());
    }
    return errors;
}

int cmdAnalyze(int argc, char** argv) {
    std::string path;
    std::string benchToken;
    std::string outPath = "-";
    std::string dumpCfgPath;
    std::uint32_t threshold = 3;
    bool schedule = true;
    bool strict = false;
    bool quiet = false;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--bench=", 0) == 0)
            benchToken = arg.substr(8);
        else if (arg.rfind("--out=", 0) == 0)
            outPath = arg.substr(6);
        else if (arg.rfind("--threshold=", 0) == 0)
            threshold =
                static_cast<std::uint32_t>(parseCount(arg, arg.substr(12)));
        else if (arg.rfind("--dump-cfg=", 0) == 0)
            dumpCfgPath = arg.substr(11);
        else if (arg == "--no-schedule") schedule = false;
        else if (arg == "--strict") strict = true;
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--help" || arg == "-h") usage(0);
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "asbr-verify analyze: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "asbr-verify analyze: extra argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (path.empty() == benchToken.empty()) {
        std::fprintf(stderr,
                     "asbr-verify analyze: need exactly one of <file> or "
                     "--bench=B\n");
        return 2;
    }

    Program program;
    AnalysisReportMeta meta;
    meta.threshold = threshold;
    meta.scheduled = schedule;
    if (!benchToken.empty()) {
        const auto id = benchFromName(benchToken);
        if (!id) {
            std::fprintf(stderr, "asbr-verify analyze: unknown bench '%s'\n",
                         benchToken.c_str());
            return 2;
        }
        program = buildBench(*id, schedule);
        meta.benchmark = benchToken;
    } else {
        program = loadProgram(path, schedule);
        const std::size_t slash = path.find_last_of('/');
        meta.benchmark = slash == std::string::npos ? path
                                                    : path.substr(slash + 1);
    }

    try {
        analysis::VerifyConfig config;
        config.threshold = threshold;
        const analysis::FoldLegalityVerifier verifier(program);

        const JsonValue doc = analysisReportJson(meta, verifier, config);
        const std::string text = doc.dump(2) + "\n";

        // Self-check before anything touches disk: the document must pass
        // its own schema validator.
        const ReportValidation validation = validateAnalysisReportJson(doc);
        for (const std::string& error : validation.errors)
            std::fprintf(stderr, "schema error: %s\n", error.c_str());
        if (!validation.ok()) return 1;

        if (outPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(outPath);
            if (!out) {
                std::fprintf(stderr,
                             "asbr-verify analyze: cannot open '%s' for "
                             "writing\n",
                             outPath.c_str());
                return 1;
            }
            out << text;
            std::fprintf(stderr, "wrote analysis report to %s\n",
                         outPath.c_str());
        }

        if (!dumpCfgPath.empty()) dumpCfgTo(dumpCfgPath, verifier, config);
        const std::size_t errorLints = printLints(verifier, config, quiet);
        if (!verifier.values().converged) {
            std::fprintf(stderr,
                         "asbr-verify analyze: fixpoint iteration budget "
                         "exhausted (verdicts degraded to Dynamic)\n");
            return 1;
        }
        return strict && errorLints != 0 ? 1 : 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-verify: %s\n", e.what());
        return 1;
    }
}

/// `asbr-verify wcet`: static cycle bound vs measured pipeline cycles.
///
/// Computes the structured-IPET WCET twice — once with no folds (baseline)
/// and once with the cost-aware static-cost selection folded — runs the
/// pipeline under the same two configurations, and emits the schema-
/// versioned asbr.wcet_report.  Exits nonzero when either bound is missing
/// or below its measured run (an unsound cost model is a bug, not a
/// warning).
int cmdWcet(int argc, char** argv) {
    std::string path;
    std::string benchToken;
    std::string outPath = "-";
    std::uint32_t threshold = 3;
    std::uint64_t seed = 2001;
    std::size_t samples = 0;
    std::size_t threads = 1;
    bool schedule = true;
    bool strict = false;
    bool quiet = false;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--bench=", 0) == 0)
            benchToken = arg.substr(8);
        else if (arg.rfind("--out=", 0) == 0)
            outPath = arg.substr(6);
        else if (arg.rfind("--threshold=", 0) == 0)
            threshold =
                static_cast<std::uint32_t>(parseCount(arg, arg.substr(12)));
        else if (arg.rfind("--seed=", 0) == 0)
            seed = parseCount(arg, arg.substr(7));
        else if (arg.rfind("--samples=", 0) == 0)
            samples = parseCount(arg, arg.substr(10));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = parseCount(arg, arg.substr(10));
        else if (arg == "--no-schedule") schedule = false;
        else if (arg == "--strict") strict = true;
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--help" || arg == "-h") usage(0);
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "asbr-verify wcet: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "asbr-verify wcet: extra argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }
    if (path.empty() == benchToken.empty()) {
        std::fprintf(stderr,
                     "asbr-verify wcet: need exactly one of <file> or "
                     "--bench=B\n");
        return 2;
    }
    if (threshold < 2 || threshold > 4) {
        std::fprintf(stderr, "asbr-verify wcet: threshold must be 2, 3 or 4\n");
        return 2;
    }

    Program program;
    std::optional<driver::Prepared> prepared;
    WcetReportMeta meta;
    meta.threshold = threshold;
    meta.scheduled = schedule;
    meta.seed = seed;
    if (!benchToken.empty()) {
        const auto id = benchFromName(benchToken);
        if (!id) {
            std::fprintf(stderr, "asbr-verify wcet: unknown bench '%s'\n",
                         benchToken.c_str());
            return 2;
        }
        const std::size_t resolved =
            samples == 0 ? benchMaxSamples(*id)
                         : std::min(samples, benchMaxSamples(*id));
        prepared = driver::prepare(*id, schedule, seed, resolved);
        program = prepared->program;
        meta.benchmark = benchToken;
        meta.samples = resolved;
    } else {
        program = loadProgram(path, schedule);
        const std::size_t slash = path.find_last_of('/');
        meta.benchmark = slash == std::string::npos ? path
                                                    : path.substr(slash + 1);
        meta.samples = 0;
    }

    try {
        analysis::VerifyConfig config;
        config.threshold = threshold;
        const analysis::FoldLegalityVerifier verifier(program);

        const PipelineConfig pipeConfig;
        analysis::timing::WcetEngine engine(
            verifier.cfg(), verifier.values(),
            analysis::timing::TimingCostModel::fromPipeline(pipeConfig),
            &verifier.ipa().resolution.map);

        // Loops neither annotation nor inference could bound fall back to a
        // measured per-entry maximum (flagged `profile` in the report).
        {
            Memory observeMemory;
            if (prepared) {
                observeMemory = driver::makeMemory(*prepared);
            } else {
                observeMemory.loadProgram(program);
            }
            engine.applyObservedBounds(analysis::timing::observeLoopBounds(
                program, observeMemory, engine.loops()));
        }

        const analysis::timing::WcetResult baseline = engine.compute({});

        // Cost-aware selection from the baseline ranking; the fold set of
        // the folded bound is exactly what the measured folded run loads.
        SelectionConfig selCfg;
        selCfg.threshold = threshold;
        const FoldSelection selection =
            selectBranchesByStaticCost(program, baseline.branches, selCfg);
        std::set<std::uint32_t> foldedPcs;
        for (const StaticFoldCandidate& s : selection.statics)
            foldedPcs.insert(s.pc);
        for (const Candidate& c : selection.dynamic) foldedPcs.insert(c.pc);

        const analysis::timing::WcetResult folded = engine.compute(foldedPcs);

        // Publish the run's counters through the metric registry — the same
        // duplicate-rejecting namespace `asbr-stats counters` catalogues.
        MetricRegistry metrics;
        analysis::timing::WcetMetrics wcetMetrics;
        wcetMetrics.countLoops(engine.loops());
        wcetMetrics.boundBaselineCycles = baseline.bounded ? baseline.cycles : 0;
        wcetMetrics.boundFoldedCycles = folded.bounded ? folded.cycles : 0;
        wcetMetrics.publish(metrics);
        StaticCostSelectionMetrics selectionMetrics;
        selectionMetrics.candidates = baseline.branches.size();
        selectionMetrics.countSelection(selection);
        selectionMetrics.publish(metrics);

        const auto makeUnit = [&] {
            AsbrConfig unitConfig;
            unitConfig.updateStage = threshold == 2   ? ValueStage::kExEnd
                                     : threshold == 3 ? ValueStage::kMemEnd
                                                      : ValueStage::kCommit;
            auto unit = std::make_unique<AsbrUnit>(unitConfig);
            std::vector<std::uint32_t> pcs;
            for (const Candidate& c : selection.dynamic) pcs.push_back(c.pc);
            unit->loadBank(0, extractBranchInfos(program, pcs));
            std::vector<StaticFoldEntry> statics;
            for (const StaticFoldCandidate& s : selection.statics)
                statics.push_back(extractStaticFold(program, s.pc, s.taken));
            unit->loadStaticFolds(std::move(statics),
                                  selection.bitSlotsReclaimed);
            return unit;
        };

        // The two measured runs are independent; --threads=2 overlaps them.
        // Either way each run builds its own memory/predictor/unit, so the
        // cycle counts (and therefore the report) never depend on N.
        const auto measure = [&](AsbrUnit* unit) -> std::uint64_t {
            const auto predictor = driver::makePredictorByToken("bimodal");
            if (prepared)
                return driver::runPipeline(*prepared, *predictor, unit,
                                           pipeConfig)
                    .stats.cycles;
            Memory memory;
            memory.loadProgram(program);
            predictor->reset();
            PipelineSim sim(program, memory, *predictor, pipeConfig, unit);
            const PipelineResult result = sim.run();
            ASBR_ENSURE(result.exited && result.exitCode == 0,
                        "program did not exit cleanly");
            return result.stats.cycles;
        };
        std::uint64_t measuredBaseline = 0;
        std::uint64_t measuredFolded = 0;
        if (threads > 1) {
            std::thread baselineThread(
                [&] { measuredBaseline = measure(nullptr); });
            const auto unit = makeUnit();
            measuredFolded = measure(unit.get());
            baselineThread.join();
        } else {
            measuredBaseline = measure(nullptr);
            const auto unit = makeUnit();
            measuredFolded = measure(unit.get());
        }

        const JsonValue doc =
            wcetReportJson(meta, engine, baseline, folded, foldedPcs,
                           measuredBaseline, measuredFolded);
        const std::string text = doc.dump(2) + "\n";
        const ReportValidation validation = validateWcetReportJson(doc);
        for (const std::string& error : validation.errors)
            std::fprintf(stderr, "schema error: %s\n", error.c_str());
        if (!validation.ok()) return 1;

        if (outPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(outPath);
            if (!out) {
                std::fprintf(stderr,
                             "asbr-verify wcet: cannot open '%s' for "
                             "writing\n",
                             outPath.c_str());
                return 1;
            }
            out << text;
            std::fprintf(stderr, "wrote wcet report to %s\n", outPath.c_str());
        }

        std::size_t unbounded = 0;
        for (const auto& loop : engine.loops())
            if (!loop.bound.bounded()) ++unbounded;
        if (!quiet)
            std::fprintf(stderr,
                         "asbr-verify wcet: baseline bound %llu (measured "
                         "%llu), folded bound %llu (measured %llu), %zu "
                         "loops (%zu unbounded), %zu branches folded\n",
                         static_cast<unsigned long long>(baseline.cycles),
                         static_cast<unsigned long long>(measuredBaseline),
                         static_cast<unsigned long long>(folded.cycles),
                         static_cast<unsigned long long>(measuredFolded),
                         engine.loops().size(), unbounded, foldedPcs.size());
        if (!quiet)
            for (const auto& [name, counter] : metrics.counters())
                std::fprintf(stderr, "  %s = %llu\n", name.c_str(),
                             static_cast<unsigned long long>(counter.value()));

        const std::size_t errorLints = printLints(verifier, config, quiet);

        int exitCode = 0;
        if (!baseline.bounded) {
            std::fprintf(stderr, "asbr-verify wcet: no baseline bound: %s\n",
                         baseline.reason.c_str());
            exitCode = 1;
        } else if (baseline.cycles < measuredBaseline) {
            std::fprintf(stderr,
                         "asbr-verify wcet: UNSOUND baseline bound (%llu < "
                         "measured %llu)\n",
                         static_cast<unsigned long long>(baseline.cycles),
                         static_cast<unsigned long long>(measuredBaseline));
            exitCode = 1;
        }
        if (!folded.bounded) {
            std::fprintf(stderr, "asbr-verify wcet: no folded bound: %s\n",
                         folded.reason.c_str());
            exitCode = 1;
        } else if (folded.cycles < measuredFolded) {
            std::fprintf(stderr,
                         "asbr-verify wcet: UNSOUND folded bound (%llu < "
                         "measured %llu)\n",
                         static_cast<unsigned long long>(folded.cycles),
                         static_cast<unsigned long long>(measuredFolded));
            exitCode = 1;
        }
        if (strict && errorLints != 0) {
            std::fprintf(stderr,
                         "asbr-verify wcet: %zu lint error(s) under "
                         "--strict\n",
                         errorLints);
            exitCode = 1;
        }
        return exitCode;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-verify: %s\n", e.what());
        return 1;
    }
}

/// Shared <file>|--bench loader for the ipa/callgraph subcommands: resolves
/// the program and a display name, or exits via usage diagnostics.
Program loadForSubcommand(const char* sub, const std::string& path,
                          const std::string& benchToken, bool schedule,
                          std::string& displayName) {
    if (path.empty() == benchToken.empty()) {
        std::fprintf(stderr,
                     "asbr-verify %s: need exactly one of <file> or "
                     "--bench=B\n",
                     sub);
        std::exit(2);
    }
    if (!benchToken.empty()) {
        const auto id = benchFromName(benchToken);
        if (!id) {
            std::fprintf(stderr, "asbr-verify %s: unknown bench '%s'\n", sub,
                         benchToken.c_str());
            std::exit(2);
        }
        displayName = benchToken;
        return buildBench(*id, schedule);
    }
    const std::size_t slash = path.find_last_of('/');
    displayName = slash == std::string::npos ? path : path.substr(slash + 1);
    return loadProgram(path, schedule);
}

/// `asbr-verify ipa`: emit the schema-versioned asbr.ipa_report — SSA/SCCP
/// pipeline statistics, indirect-jump resolution, call-graph summaries and
/// the resolution-aware static WCET.  Purely static and byte-stable.
int cmdIpa(int argc, char** argv) {
    std::string path;
    std::string benchToken;
    std::string outPath = "-";
    bool schedule = true;
    bool quiet = false;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--bench=", 0) == 0)
            benchToken = arg.substr(8);
        else if (arg.rfind("--out=", 0) == 0)
            outPath = arg.substr(6);
        else if (arg == "--no-schedule") schedule = false;
        else if (arg == "--quiet") quiet = true;
        else if (arg == "--help" || arg == "-h") usage(0);
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "asbr-verify ipa: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "asbr-verify ipa: extra argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    IpaReportMeta meta;
    const Program program =
        loadForSubcommand("ipa", path, benchToken, schedule, meta.benchmark);
    try {
        const analysis::FoldLegalityVerifier verifier(program);
        const JsonValue doc = ipaReportJson(meta, verifier);
        const std::string text = doc.dump(2) + "\n";

        // Self-check before anything touches disk.
        const ReportValidation validation = validateIpaReportJson(doc);
        for (const std::string& error : validation.errors)
            std::fprintf(stderr, "schema error: %s\n", error.c_str());
        if (!validation.ok()) return 1;

        if (outPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(outPath);
            if (!out) {
                std::fprintf(stderr,
                             "asbr-verify ipa: cannot open '%s' for writing\n",
                             outPath.c_str());
                return 1;
            }
            out << text;
            std::fprintf(stderr, "wrote ipa report to %s\n", outPath.c_str());
        }
        if (!quiet) {
            const analysis::ipa::IpaAnalysis& ipa = verifier.ipa();
            std::fprintf(
                stderr,
                "asbr-verify ipa: %zu round(s), %zu defs (%zu phis), "
                "%zu/%zu indirect sites resolved, %zu functions, "
                "%zu decided branches (dense %zu)\n",
                ipa.stats.rounds, ipa.stats.ssaDefs, ipa.stats.ssaPhis,
                ipa.resolution.map.size(),
                ipa.resolution.map.size() + ipa.resolution.unresolvedSites,
                ipa.callGraph.functions.size(), ipa.stats.mergedDecided,
                ipa.stats.denseDecided);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-verify: %s\n", e.what());
        return 1;
    }
}

/// `asbr-verify callgraph`: Graphviz render of the whole-program call graph
/// with the per-function WCET bounds filled in.
int cmdCallgraph(int argc, char** argv) {
    std::string path;
    std::string benchToken;
    std::string outPath = "-";
    bool schedule = true;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--bench=", 0) == 0)
            benchToken = arg.substr(8);
        else if (arg.rfind("--out=", 0) == 0)
            outPath = arg.substr(6);
        else if (arg == "--no-schedule") schedule = false;
        else if (arg == "--help" || arg == "-h") usage(0);
        else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "asbr-verify callgraph: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        } else if (path.empty()) {
            path = arg;
        } else {
            std::fprintf(stderr, "asbr-verify callgraph: extra argument '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    std::string name;
    const Program program =
        loadForSubcommand("callgraph", path, benchToken, schedule, name);
    try {
        const analysis::FoldLegalityVerifier verifier(program);
        const analysis::ipa::IpaAnalysis& ipa = verifier.ipa();

        // Fill the per-function WCET bounds from a resolution-aware static
        // run (default cost model, no profile) before rendering.
        analysis::ipa::CallGraph graph = ipa.callGraph;
        analysis::timing::WcetEngine engine(
            ipa.cfg, ipa.values, analysis::timing::TimingCostModel{},
            &ipa.resolution.map);
        const analysis::timing::WcetResult wcet = engine.compute({});
        for (const auto& [entryPc, cycles] : wcet.functionCycles)
            for (analysis::ipa::FunctionSummary& f : graph.functions)
                if (f.entryPc == entryPc) {
                    f.wcetCycles = cycles;
                    f.wcetBounded = true;
                }

        const std::string dot = analysis::ipa::callGraphDot(graph);
        if (outPath == "-") {
            std::fputs(dot.c_str(), stdout);
        } else {
            std::ofstream out(outPath);
            if (!out) {
                std::fprintf(stderr,
                             "asbr-verify callgraph: cannot open '%s' for "
                             "writing\n",
                             outPath.c_str());
                return 1;
            }
            out << dot;
            std::fprintf(stderr, "wrote call graph to %s\n", outPath.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-verify: %s\n", e.what());
        return 1;
    }
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--help" || std::string(argv[i]) == "-h")
            usage(0);
    if (argc < 2) usage(2);
    if (std::string(argv[1]) == "analyze")
        return cmdAnalyze(argc - 2, argv + 2);
    if (std::string(argv[1]) == "wcet") return cmdWcet(argc - 2, argv + 2);
    if (std::string(argv[1]) == "ipa") return cmdIpa(argc - 2, argv + 2);
    if (std::string(argv[1]) == "callgraph")
        return cmdCallgraph(argc - 2, argv + 2);
    const std::string path = argv[1];

    std::uint32_t threshold = 3;
    std::size_t ways = 16;
    std::size_t sets = 1;
    bool all = false;
    bool useProfile = true;
    bool requireSafe = false;
    bool schedule = true;
    bool strict = false;
    bool quiet = false;
    std::string dumpCfgPath;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--threshold=", 0) == 0)
            threshold =
                static_cast<std::uint32_t>(parseCount(arg, arg.substr(12)));
        else if (arg.rfind("--bit=", 0) == 0)
            ways = parseCount(arg, arg.substr(6));
        else if (arg.rfind("--sets=", 0) == 0)
            sets = parseCount(arg, arg.substr(7));
        else if (arg.rfind("--dump-cfg=", 0) == 0)
            dumpCfgPath = arg.substr(11);
        else if (arg == "--all") all = true;
        else if (arg == "--no-profile") { useProfile = false; all = true; }
        else if (arg == "--require-safe") requireSafe = true;
        else if (arg == "--no-schedule") schedule = false;
        else if (arg == "--strict") strict = true;
        else if (arg == "--quiet") quiet = true;
        else {
            std::fprintf(stderr, "asbr-verify: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    const Program program = loadProgram(path, schedule);

    analysis::VerifyConfig config;
    config.threshold = threshold;
    config.geometry = {sets, ways};

    try {
        const analysis::FoldLegalityVerifier verifier(program);

        ProgramProfile profile;
        analysis::ObservedMinDistances observed;
        if (useProfile) {
            Memory memory;
            memory.loadProgram(program);
            profile = profileProgram(program, memory);
            for (const auto& [pc, bp] : profile.branches)
                if (bp.execs > 0) observed.emplace(pc, bp.minDistance);
        }

        analysis::VerifyReport report;
        if (all) {
            const auto pcs = allConditionalBranches(program);
            // Non-extractable branches never make it into allConditional-
            // Branches; fold them back in so --all lints those too.
            std::vector<std::uint32_t> lintSet = pcs;
            for (std::size_t i = 0; i < program.code.size(); ++i) {
                const std::uint32_t pc =
                    program.textBase +
                    static_cast<std::uint32_t>(i) * kInstrBytes;
                if (isCondBranch(program.code[i].op) &&
                    !isExtractableBranch(program, pc))
                    lintSet.push_back(pc);
            }
            // --all lints the whole program, not one BIT bank: disable the
            // capacity/conflict geometry checks unless explicitly set.
            analysis::VerifyConfig allConfig = config;
            if (sets == 1) allConfig.geometry.ways = lintSet.size() + 1;
            report = verifier.verify(lintSet, allConfig,
                                     useProfile ? &observed : nullptr);
        } else {
            SelectionConfig selCfg;
            selCfg.bitCapacity = sets * ways;
            selCfg.threshold = threshold;
            selCfg.minExecFraction = 0.0;
            selCfg.requireStaticallySafe = requireSafe;
            const auto candidates =
                selectFoldableBranches(program, profile, {}, selCfg);
            const auto bank =
                extractBranchInfos(program, candidatePcs(candidates));
            report = verifier.verifyBank(bank, config,
                                         useProfile ? &observed : nullptr);
        }

        if (!quiet) {
            std::printf("%-10s %-6s %-8s %-12s %-21s %s\n", "pc", "line",
                        "static", "direction", "verdict", "why");
            for (const auto& b : report.branches) {
                char dist[16];
                if (b.staticMinDistance >= analysis::kFarAway)
                    std::snprintf(dist, sizeof dist, "far");
                else
                    std::snprintf(dist, sizeof dist, "%u",
                                  unsigned{b.staticMinDistance});
                std::printf("0x%08x %-6d %-8s %-12s %-21s %s\n", b.pc,
                            b.sourceLine, dist,
                            analysis::branchDirectionName(b.direction),
                            analysis::foldLegalityName(b.verdict),
                            b.reason.c_str());
            }
            for (const auto& c : report.conflicts)
                std::printf("conflict: %s\n", c.c_str());
            for (const auto& m : report.inconsistencies)
                std::printf("inconsistent: %s\n", m.c_str());
        }
        const std::size_t errorLints = printLints(verifier, config, quiet);

        if (!dumpCfgPath.empty()) dumpCfgTo(dumpCfgPath, verifier, config);

        std::printf(
            "asbr-verify: %zu branches, %zu provably safe, %zu safe on "
            "profiled paths, %zu illegal, %zu conflicts, %zu inconsistencies "
            "(threshold %u)\n",
            report.branches.size(),
            report.count(analysis::FoldLegality::kProvablySafe),
            report.count(analysis::FoldLegality::kSafeOnProfiledPaths),
            report.count(analysis::FoldLegality::kIllegal),
            report.conflicts.size(), report.inconsistencies.size(), threshold);
        if (strict && errorLints != 0) {
            std::printf("asbr-verify: %zu lint error(s) under --strict\n",
                        errorLints);
            return 1;
        }
        return report.ok() ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-verify: %s\n", e.what());
        return 1;
    }
}

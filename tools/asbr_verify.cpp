// asbr-verify — static fold-legality linter for assembled/compiled programs.
//
// Builds the CFG + reaching-producer dataflow over the linked program,
// verifies the fold legality of either the profiler-driven selection
// (default) or every conditional branch (--all), checks the BIT geometry
// for conflicts and the extracted bank for BTA/BTI/BFI consistency, and
// exits nonzero when any verified branch is Illegal (or any conflict /
// inconsistency is found) — suitable as a CI gate.
//
//   asbr-verify prog.c                      # verify the default selection
//   asbr-verify prog.s --all                # lint every conditional branch
//   asbr-verify prog.c --threshold=2 --require-safe
//   asbr-verify prog.s --all --no-profile   # purely static verdicts
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/verify.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "cc/compile.hpp"
#include "cc/schedule.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"

namespace {

using namespace asbr;

[[noreturn]] void usage(int code) {
    std::puts(
        "usage: asbr-verify <file.c|file.s> [options]\n"
        "  --threshold=2|3|4   fold-distance threshold (default 3)\n"
        "  --bit=N             BIT ways per set (default 16)\n"
        "  --sets=N            BIT sets (default 1 = fully associative)\n"
        "  --all               verify every conditional branch, not just the\n"
        "                      profiler-driven selection\n"
        "  --no-profile        skip the dynamic profile (purely static run;\n"
        "                      implies --all)\n"
        "  --require-safe      selection drops Illegal candidates\n"
        "  --no-schedule       disable the condition-scheduling pass\n"
        "  --quiet             summary only, no per-branch table");
    std::exit(code);
}

std::size_t parseCount(const std::string& arg, const std::string& value) {
    try {
        std::size_t end = 0;
        const unsigned long n = std::stoul(value, &end);
        if (end == value.size() && !value.empty()) return n;
    } catch (const std::exception&) {
    }
    std::fprintf(stderr, "asbr-verify: '%s' needs a numeric value\n",
                 arg.c_str());
    std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--help" || std::string(argv[i]) == "-h")
            usage(0);
    if (argc < 2) usage(2);
    const std::string path = argv[1];

    std::uint32_t threshold = 3;
    std::size_t ways = 16;
    std::size_t sets = 1;
    bool all = false;
    bool useProfile = true;
    bool requireSafe = false;
    bool schedule = true;
    bool quiet = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--threshold=", 0) == 0)
            threshold =
                static_cast<std::uint32_t>(parseCount(arg, arg.substr(12)));
        else if (arg.rfind("--bit=", 0) == 0)
            ways = parseCount(arg, arg.substr(6));
        else if (arg.rfind("--sets=", 0) == 0)
            sets = parseCount(arg, arg.substr(7));
        else if (arg == "--all") all = true;
        else if (arg == "--no-profile") { useProfile = false; all = true; }
        else if (arg == "--require-safe") requireSafe = true;
        else if (arg == "--no-schedule") schedule = false;
        else if (arg == "--quiet") quiet = true;
        else {
            std::fprintf(stderr, "asbr-verify: unknown option '%s'\n",
                         arg.c_str());
            usage(2);
        }
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    Program program;
    try {
        const bool isAsm = path.ends_with(".s") || path.ends_with(".asm");
        if (isAsm) {
            program = assemble(buffer.str());
            if (schedule) cc::scheduleConditionChains(program);
        } else {
            cc::CompileOptions options;
            options.scheduleConditions = schedule;
            program = cc::compile(buffer.str(), options).program;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    analysis::VerifyConfig config;
    config.threshold = threshold;
    config.geometry = {sets, ways};

    try {
        const analysis::FoldLegalityVerifier verifier(program);

        ProgramProfile profile;
        analysis::ObservedMinDistances observed;
        if (useProfile) {
            Memory memory;
            memory.loadProgram(program);
            profile = profileProgram(program, memory);
            for (const auto& [pc, bp] : profile.branches)
                if (bp.execs > 0) observed.emplace(pc, bp.minDistance);
        }

        analysis::VerifyReport report;
        if (all) {
            const auto pcs = allConditionalBranches(program);
            // Non-extractable branches never make it into allConditional-
            // Branches; fold them back in so --all lints those too.
            std::vector<std::uint32_t> lintSet = pcs;
            for (std::size_t i = 0; i < program.code.size(); ++i) {
                const std::uint32_t pc =
                    program.textBase +
                    static_cast<std::uint32_t>(i) * kInstrBytes;
                if (isCondBranch(program.code[i].op) &&
                    !isExtractableBranch(program, pc))
                    lintSet.push_back(pc);
            }
            // --all lints the whole program, not one BIT bank: disable the
            // capacity/conflict geometry checks unless explicitly set.
            analysis::VerifyConfig allConfig = config;
            if (sets == 1) allConfig.geometry.ways = lintSet.size() + 1;
            report = verifier.verify(lintSet, allConfig,
                                     useProfile ? &observed : nullptr);
        } else {
            SelectionConfig selCfg;
            selCfg.bitCapacity = sets * ways;
            selCfg.threshold = threshold;
            selCfg.minExecFraction = 0.0;
            selCfg.requireStaticallySafe = requireSafe;
            const auto candidates =
                selectFoldableBranches(program, profile, {}, selCfg);
            const auto bank =
                extractBranchInfos(program, candidatePcs(candidates));
            report = verifier.verifyBank(bank, config,
                                         useProfile ? &observed : nullptr);
        }

        if (!quiet) {
            std::printf("%-10s %-6s %-8s %-21s %s\n", "pc", "line", "static",
                        "verdict", "why");
            for (const auto& b : report.branches) {
                char dist[16];
                if (b.staticMinDistance >= analysis::kFarAway)
                    std::snprintf(dist, sizeof dist, "far");
                else
                    std::snprintf(dist, sizeof dist, "%u",
                                  unsigned{b.staticMinDistance});
                std::printf("0x%08x %-6d %-8s %-21s %s\n", b.pc, b.sourceLine,
                            dist, analysis::foldLegalityName(b.verdict),
                            b.reason.c_str());
            }
            for (const auto& c : report.conflicts)
                std::printf("conflict: %s\n", c.c_str());
            for (const auto& m : report.inconsistencies)
                std::printf("inconsistent: %s\n", m.c_str());
        }

        std::printf(
            "asbr-verify: %zu branches, %zu provably safe, %zu safe on "
            "profiled paths, %zu illegal, %zu conflicts, %zu inconsistencies "
            "(threshold %u)\n",
            report.branches.size(),
            report.count(analysis::FoldLegality::kProvablySafe),
            report.count(analysis::FoldLegality::kSafeOnProfiledPaths),
            report.count(analysis::FoldLegality::kIllegal),
            report.conflicts.size(), report.inconsistencies.size(), threshold);
        return report.ok() ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-verify: %s\n", e.what());
        return 1;
    }
}

// asbr-faults — deterministic fault-injection campaigns against the ASBR
// hardware state (docs/fault-injection.md).
//
//   campaign   sweep seeded single-bit flips over BDT/BIT/predictor state on
//              one benchmark, classify every run against the golden model and
//              print/export the outcome histogram (asbr.fault_report)
//   replay     re-run one recorded injection from a fault report and check
//              that it reproduces the recorded outcome
//   validate   schema-check an asbr.fault_report document
//
// Everything is seeded and integer-valued: the same command line produces a
// byte-identical report, which ci/faults.sh diffs against committed goldens.
// Campaigns run on the driver::SimEngine worker pool — injections are
// sampled in serial RNG order and merged by index, so --threads=8 emits the
// same bytes as --threads=1.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "fault/campaign.hpp"
#include "report/fault_report.hpp"

using namespace asbr;
using namespace asbr::bench;

namespace {

[[noreturn]] void usage(int code) {
    std::fputs(
        "usage: asbr-faults <command> [options]\n"
        "\n"
        "commands:\n"
        "  campaign [options]      run a seeded injection campaign\n"
        "  replay FILE --index=K   re-run injection K of a fault report\n"
        "  validate FILE           schema-check a fault report\n"
        "\n"
        "campaign options:\n"
        "  --bench=adpcm-enc|adpcm-dec|g721-enc|g721-dec|g711-enc|g711-dec\n"
        "  --predictor=TOKEN     predictor registry token ('asbr-stats\n"
        "                        predictors' lists the grammar)\n"
        "  --protected             enable BDT/BIT parity protection\n"
        "  --injections=N          injected runs (default 48)\n"
        "  --fault-seed=N          site/cycle sampling seed (default 1)\n"
        "  --stage=ex_end|mem_end|commit   BDT update stage (default mem_end)\n"
        "  --no-bdt --no-bit --no-bp       exclude a fault class\n"
        "  --json=FILE             write the asbr.fault_report (\"-\" = stdout)\n"
        "\n"
        "campaign durability (docs/robustness.md):\n"
        "  --journal=DIR           write-ahead injection journal\n"
        "  --resume                resume DIR's journal (byte-identical)\n"
        "  --job-timeout=MS        per-injection wall-clock watchdog (0 = off)\n"
        "  --max-attempts=N        attempts before an injection lands in\n"
        "                          failed_jobs instead of aborting the grid\n"
        "  (--sample is rejected: injections are classified against the full\n"
        "   cycle-accurate golden run)\n"
        "\n"
        "shared options: --quick --seed=N --adpcm=N --g721=N --threads=N\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

std::atomic<bool> gInterrupted{false};

extern "C" void onSignal(int) { gInterrupted.store(true); }

/// The ASBR job a campaign (or replay) simulates: the paper's BIT size for
/// the benchmark, bimodal-2048 accuracy reference, chosen aux predictor.
SimJob campaignJob(BenchId id, const Options& options,
                   const std::string& predictor, bool protectedMode,
                   ValueStage stage) {
    SimJob job;
    job.workload = id;
    job.seed = options.seed;
    job.samples = samplesFor(options, id);
    job.predictor = predictor;
    job.figure = "faults";
    job.asbr = true;
    job.updateStage = stage;
    job.parityProtected = protectedMode;
    return job;
}

/// Report metadata in CLI tokens, so replay can rebuild the run.
FaultReportMeta metaFor(const SimEngine& engine, const SimJob& job) {
    FaultReportMeta meta;
    meta.benchmark = driver::benchToken(job.workload);
    meta.predictor = job.predictor;
    meta.seed = job.seed;
    meta.samples = engine.workloadKeyFor(job).samples;
    meta.protectedMode = job.parityProtected;
    meta.bitEntries = engine.selectionKeyFor(job).bitEntries;
    meta.updateStage = valueStageName(job.updateStage);
    return meta;
}

void printOutcomes(const CampaignResult& result) {
    std::printf("outcomes:");
    for (std::size_t o = 0; o < kNumFaultOutcomes; ++o)
        std::printf(" %s=%llu", faultOutcomeName(static_cast<FaultOutcome>(o)),
                    static_cast<unsigned long long>(result.outcomes[o]));
    std::printf("\n");
}

int cmdCampaign(int argc, char** argv) {
    Options options;
    std::string bench;
    std::string predictorName = "bimodal";
    bool protectedMode = false;
    ValueStage stage = ValueStage::kMemEnd;
    CampaignConfig campaign;
    campaign.injections = 48;

    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string error;
        if (driver::consumeSharedOption(arg, options, error)) {
            if (!error.empty()) {
                std::fprintf(stderr, "campaign: %s\n", error.c_str());
                return 2;
            }
        } else if (arg.rfind("--bench=", 0) == 0) {
            bench = arg.substr(8);
        } else if (arg.rfind("--predictor=", 0) == 0) {
            predictorName = arg.substr(12);
        } else if (arg == "--protected") {
            protectedMode = true;
        } else if (const auto v = driver::numArg(arg, "--injections=")) {
            campaign.injections = *v;
        } else if (const auto v = driver::numArg(arg, "--fault-seed=")) {
            campaign.seed = *v;
        } else if (arg.rfind("--stage=", 0) == 0) {
            const auto s = driver::stageFromToken(arg.substr(8));
            if (!s) {
                std::fprintf(stderr, "campaign: unknown --stage '%s'\n",
                             arg.substr(8).c_str());
                return 2;
            }
            stage = *s;
        } else if (arg == "--no-bdt") {
            campaign.faultBdt = false;
        } else if (arg == "--no-bit") {
            campaign.faultBit = false;
        } else if (arg == "--no-bp") {
            campaign.faultBp = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "campaign: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    auto id = bench.empty() ? options.workload : driver::benchFromToken(bench);
    if (!id) {
        std::fprintf(stderr, "campaign: --bench is required (%s)\n",
                     driver::benchTokenList());
        return 2;
    }
    std::string predictorError;
    if (driver::makePredictorByToken(predictorName, &predictorError) ==
        nullptr) {
        std::fprintf(stderr, "campaign: %s\n", predictorError.c_str());
        return 2;
    }
    if (options.sample.has_value()) {
        std::fprintf(stderr,
                     "campaign: --sample is not supported here — injections "
                     "are classified against the full cycle-accurate golden "
                     "run\n");
        return 2;
    }
    if (options.resume && options.journalDir.empty()) {
        std::fprintf(stderr, "campaign: --resume requires --journal=DIR\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    SimEngine engine(driver::engineConfigFor(options));
    const SimJob job =
        campaignJob(*id, options, predictorName, protectedMode, stage);
    const FaultReportMeta meta = metaFor(engine, job);

    driver::DurablePolicy policy;
    policy.journalDir = options.journalDir;
    policy.resume = options.resume;
    policy.maxAttempts = options.maxAttempts;
    policy.jobTimeoutMs = options.jobTimeoutMs;
    policy.interrupted = &gInterrupted;
    const driver::DurableCampaignResult durable =
        engine.runCampaignDurable(job, campaign, policy);
    const CampaignResult& result = durable.result;

    std::printf("campaign: %s / %s%s, %llu injections, fault seed %llu\n",
                meta.benchmark.c_str(), predictorName.c_str(),
                protectedMode ? " [protected]" : "",
                static_cast<unsigned long long>(campaign.injections),
                static_cast<unsigned long long>(campaign.seed));
    std::printf("clean cycles: %llu\n",
                static_cast<unsigned long long>(result.context.cleanCycles));
    printOutcomes(result);
    for (const FailedInjection& failed : durable.failed)
        std::fprintf(stderr,
                     "campaign: quarantined injection #%llu (%s @ cycle %llu) "
                     "after %llu attempt(s): %s\n",
                     static_cast<unsigned long long>(failed.index),
                     describeSite(failed.injection.site).c_str(),
                     static_cast<unsigned long long>(failed.injection.cycle),
                     static_cast<unsigned long long>(failed.attempts),
                     failed.error.c_str());

    if (durable.interrupted) {
        std::fprintf(stderr,
                     "campaign: interrupted — journal checkpointed; rerun "
                     "with --resume to continue\n");
        return 130;
    }

    if (!options.jsonPath.empty()) {
        const JsonValue doc =
            faultReportJson(meta, campaign, result, durable.failed);
        const std::string text = doc.dump(2) + "\n";
        if (options.jsonPath == "-") {
            std::fputs(text.c_str(), stdout);
        } else {
            std::ofstream out(options.jsonPath);
            if (!out) {
                std::fprintf(stderr, "cannot open %s for writing\n",
                             options.jsonPath.c_str());
                return 1;
            }
            out << text;
            std::fprintf(stderr, "wrote fault report to %s\n",
                         options.jsonPath.c_str());
        }
    }
    return durable.failed.empty() ? 0 : 3;
}

/// Load + parse + schema-check a fault report file.  Returns nullopt (after
/// printing a one-line diagnosis) on any failure.
std::optional<JsonValue> loadFaultReport(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const JsonParseResult parsed = parseJson(buffer.str());
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s: JSON parse error: %s\n", path,
                     parsed.error.c_str());
        return std::nullopt;
    }
    return *parsed.value;
}

int cmdReplay(int argc, char** argv) {
    const char* path = nullptr;
    std::uint64_t index = 0;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (const auto v = driver::numArg(arg, "--index=")) {
            index = *v;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "replay: unknown option '%s'\n", arg.c_str());
            return 2;
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            std::fprintf(stderr, "replay: unexpected argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }
    if (path == nullptr) {
        std::fprintf(stderr, "replay: a fault report FILE is required\n");
        return 2;
    }

    const auto doc = loadFaultReport(path);
    if (!doc) return 1;
    const ReportValidation validation = validateFaultReportJson(*doc);
    if (!validation.ok()) {
        std::fprintf(stderr, "%s: not a valid fault report (%s)\n", path,
                     validation.errors.front().c_str());
        return 1;
    }

    const JsonValue& meta = *doc->find("meta");
    const JsonValue& campaignJson = *doc->find("campaign");
    const JsonArray& injections = doc->find("injections")->asArray();
    if (index >= injections.size()) {
        std::fprintf(stderr, "%s: --index=%llu out of range (%zu injections)\n",
                     path, static_cast<unsigned long long>(index),
                     injections.size());
        return 2;
    }

    const auto id = driver::benchFromToken(meta.find("benchmark")->asString());
    if (!id) {
        std::fprintf(stderr, "%s: meta.benchmark is not a known workload\n",
                     path);
        return 1;
    }
    const auto stage =
        driver::stageFromToken(meta.find("update_stage")->asString());
    if (!stage) {
        std::fprintf(stderr, "%s: meta.update_stage is not a known stage\n",
                     path);
        return 1;
    }
    const std::string predictorName = meta.find("predictor")->asString();
    std::string predictorError;
    if (driver::makePredictorByToken(predictorName, &predictorError) ==
        nullptr) {
        std::fprintf(stderr, "%s: meta.predictor: %s\n", path,
                     predictorError.c_str());
        return 1;
    }

    Options options;
    options.seed = meta.find("seed")->asUint();
    const std::uint64_t samples = meta.find("samples")->asUint();
    options.adpcmSamples = samples;
    options.g721Samples = samples;

    const JsonValue& record = injections[index];
    Injection injection;
    injection.site = faultSiteFromJson(*record.find("site"));
    injection.cycle = record.find("cycle")->asUint();
    const std::string expected = record.find("outcome")->asString();

    SimEngine engine;
    const SimJob job =
        campaignJob(*id, options, predictorName,
                    meta.find("protected")->asBool(), *stage);
    const InjectionRecord replayed = engine.replayInjection(
        job, injection, campaignJson.find("max_cycle_factor")->asUint());

    const char* got = faultOutcomeName(replayed.outcome);
    std::printf("replay #%llu: %s @ cycle %llu -> %s (recorded %s)%s%s\n",
                static_cast<unsigned long long>(index),
                describeSite(injection.site).c_str(),
                static_cast<unsigned long long>(injection.cycle), got,
                expected.c_str(),
                replayed.detail.empty() ? "" : " — ",
                replayed.detail.c_str());
    if (expected != got) {
        std::fprintf(stderr, "replay: outcome mismatch (report not "
                             "reproducible)\n");
        return 1;
    }
    return 0;
}

int cmdValidate(const char* path) {
    const auto doc = loadFaultReport(path);
    if (!doc) return 1;
    const ReportValidation validation = validateFaultReportJson(*doc);
    for (const std::string& error : validation.errors)
        std::fprintf(stderr, "%s: %s\n", path, error.c_str());
    if (!validation.ok()) return 1;
    std::printf("%s: valid %s v%llu document\n", path, kFaultReportSchema,
                static_cast<unsigned long long>(kFaultReportVersion));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) usage(2);
        const std::string command = argv[1];
        if (command == "--help" || command == "-h" || command == "help")
            usage(0);
        if (command == "campaign") return cmdCampaign(argc - 2, argv + 2);
        if (command == "replay") return cmdReplay(argc - 2, argv + 2);
        if (command == "validate") {
            if (argc != 3) usage(2);
            return cmdValidate(argv[2]);
        }
        std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
        usage(2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "asbr-faults: error: %s\n", e.what());
        return 1;
    }
}

// Figures 9 and 10 — Execution statistics for the branches selected for the
// ADPCM encode (Figure 9, 4 branches) and decode (Figure 10, 3 branches)
// benchmarks: execution counts and per-predictor accuracy for each selected
// site.  The table logic is shared with Figure 7 (bench_util.cpp).
#include <cstdio>

#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("fig9_10_adpcm_branches", options);
    reportSelectedBranches(engine, options, BenchId::kAdpcmEncode, "9", &sink);
    reportSelectedBranches(engine, options, BenchId::kAdpcmDecode, "10", &sink);
    sink.write();
    std::puts("Paper reference: 4 encoder branches / 3 decoder branches, each");
    std::puts("executed once per sample (147,520 in the paper), with predictor");
    std::puts("accuracies in the 0.3-0.9 band — hard-to-predict data-dependent");
    std::puts("branches inside the tight quantizer loop.");
    return 0;
}

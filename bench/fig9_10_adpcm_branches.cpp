// Figures 9 and 10 — Execution statistics for the branches selected for the
// ADPCM encode (Figure 9, 4 branches) and decode (Figure 10, 3 branches)
// benchmarks: execution counts and per-predictor accuracy for each selected
// site.
#include <cstdio>

#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

namespace {

void reportBench(const Options& options, BenchId id, const char* figure) {
    const Prepared prepared = prepare(id, options);

    std::unique_ptr<BranchPredictor> predictors[] = {
        makeNotTaken(), makeBimodal2048(), makeGshare2048()};
    std::map<std::uint32_t, BranchSiteStats> sites[3];
    for (int p = 0; p < 3; ++p)
        sites[p] = runPipeline(prepared, *predictors[p]).stats.branchSites;

    const AsbrSetup setup = prepareAsbr(prepared, paperBitEntries(id),
                                        ValueStage::kMemEnd,
                                        accuracyMap({.branchSites = sites[1]}));

    TextTable table(std::string("Figure ") + figure + ": branches selected for " +
                    benchName(id));
    table.setHeader({"branch", "pc", "exec #", "taken", "acc not-taken",
                     "acc bimodal", "acc gshare", "foldable@3"});
    int index = 0;
    for (const Candidate& c : setup.candidates) {
        char pcText[16];
        std::snprintf(pcText, sizeof pcText, "0x%05x", c.pc);
        auto accOf = [&](int p) {
            const auto it = sites[p].find(c.pc);
            return it == sites[p].end() ? 0.0 : it->second.accuracy();
        };
        table.addRow({"br" + std::to_string(index++), pcText,
                      formatWithCommas(c.execs), formatFixed(c.takenRate, 2),
                      formatFixed(accOf(0), 2), formatFixed(accOf(1), 2),
                      formatFixed(accOf(2), 2),
                      formatFixed(c.foldableFraction, 2)});
    }
    printTable(options, table);
}

}  // namespace

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    reportBench(options, BenchId::kAdpcmEncode, "9");
    reportBench(options, BenchId::kAdpcmDecode, "10");
    std::puts("Paper reference: 4 encoder branches / 3 decoder branches, each");
    std::puts("executed once per sample (147,520 in the paper), with predictor");
    std::puts("accuracies in the 0.3-0.9 band — hard-to-predict data-dependent");
    std::puts("branches inside the tight quantizer loop.");
    return 0;
}

// Shared plumbing for the table/figure regeneration binaries.
//
// Every binary in bench/ reproduces one table or figure from the paper's
// evaluation (Section 8) or an ablation of a design choice DESIGN.md calls
// out.  Since the driver layer landed, each binary is a thin job-spec
// builder: it expands its figure into declarative driver::SimJobs, hands the
// batch to one driver::SimEngine (which caches load/profile/select artifacts
// and runs jobs on --threads workers), and renders tables from the results —
// all of the orchestration that used to live here (workload preparation,
// pipeline invocation, the profile->select->extract pipeline) now lives in
// src/driver.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "driver/cli.hpp"
#include "driver/engine.hpp"
#include "driver/job.hpp"
#include "driver/names.hpp"
#include "report/report.hpp"
#include "util/table.hpp"
#include "workloads/workloads.hpp"

namespace asbr::bench {

using driver::JobResult;
using driver::SimEngine;
using driver::SimJob;
using Options = driver::CliOptions;

using driver::paperBitEntries;
using driver::samplesFor;
using driver::thresholdFor;

/// Parse the shared driver options (--quick --seed=N --adpcm=N --g721=N
/// --threads=N --workload=W --csv --json=FILE); unknown arguments are
/// rejected with a one-line structured error and exit code 2.
[[nodiscard]] Options parseOptions(int argc, char** argv);

/// The workloads a figure loop covers: the --workload= filter when given,
/// otherwise the full list passed in (kAllBenches / kAllBenchesExtended).
[[nodiscard]] std::vector<BenchId> benchList(
    const Options& options, std::span<const BenchId> all);

/// Baseline (non-ASBR) job spec for one workload under these options.
/// Binaries flip the ASBR fields on copies to build their grids.
[[nodiscard]] SimJob baseJob(const Options& options, BenchId id,
                             std::string predictor, std::string figure);

/// Print a rendered table (and CSV when requested).
void printTable(const Options& options, const TextTable& table);

/// Collects one SimReport per recorded run and writes them as a single
/// `asbr.bench_report` JSON document when the user passed --json=FILE.
/// This is the ONLY path through which bench binaries emit machine-readable
/// results (ci/bench-report.sh and EXPERIMENTS.md build on it).
class ReportSink {
public:
    ReportSink(std::string generator, const Options& options);

    /// Record one finished run.
    void add(const JobResult& result);

    /// Write the document (no-op without --json).  Returns the serialized
    /// text so callers/tests can reuse it.
    std::string write() const;

    [[nodiscard]] std::size_t runCount() const { return runs_.size(); }

private:
    std::string generator_;
    Options options_;
    std::vector<SimReport> runs_;
};

/// Shared implementation of Figures 7/9/10: run the three reference
/// predictors, resolve the paper's branch selection through the engine's
/// artifact cache, and print the per-site exec/taken/accuracy table for the
/// selected branches.  Runs are also recorded into `sink` when non-null.
void reportSelectedBranches(SimEngine& engine, const Options& options,
                            BenchId id, const std::string& figureLabel,
                            ReportSink* sink);

}  // namespace asbr::bench

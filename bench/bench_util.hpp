// Shared plumbing for the table/figure regeneration binaries.
//
// Every binary in bench/ reproduces one table or figure from the paper's
// evaluation (Section 8) or an ablation of a design choice DESIGN.md calls
// out.  This header provides workload preparation, pipeline invocation and
// the ASBR profile->select->extract pipeline so each binary stays a short,
// readable script.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "asbr/asbr_unit.hpp"
#include "bp/predictor.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "report/report.hpp"
#include "sim/pipeline.hpp"
#include "util/table.hpp"
#include "workloads/workloads.hpp"

namespace asbr::bench {

/// Command-line options shared by all bench binaries.
///   --quick        small inputs (CI-speed smoke run)
///   --seed=N       input generator seed
///   --adpcm=N      ADPCM sample count
///   --g721=N       G.721 sample count
///   --csv          additionally print tables as CSV
///   --json=FILE    write every run as an asbr.bench_report document
struct Options {
    std::size_t adpcmSamples = 100'000;
    std::size_t g721Samples = 20'000;
    std::uint64_t seed = 2001;
    bool csv = false;
    std::string jsonPath;  ///< empty = no JSON export; "-" = stdout
};

[[nodiscard]] Options parseOptions(int argc, char** argv);

/// Samples to feed a given benchmark under these options.
[[nodiscard]] std::size_t samplesFor(const Options& options, BenchId id);

/// A compiled benchmark plus its input data (decoders get codes produced by
/// the native encoder, mirroring how MediaBench chains encode -> decode).
struct Prepared {
    BenchId id;
    bool scheduled = true;  ///< condition-scheduling pass was enabled
    Program program;
    std::vector<std::int16_t> pcm;
    std::vector<std::uint8_t> codes;
};

[[nodiscard]] Prepared prepare(BenchId id, const Options& options,
                               bool scheduleConditions = true);

/// Fresh memory image holding program + input.
[[nodiscard]] Memory makeMemory(const Prepared& prepared);

/// One cycle-accurate run.
[[nodiscard]] PipelineResult runPipeline(const Prepared& prepared,
                                         BranchPredictor& predictor,
                                         FetchCustomizer* customizer = nullptr,
                                         const PipelineConfig& config = {});

/// Functional profile of the prepared benchmark.
[[nodiscard]] ProgramProfile profileOf(const Prepared& prepared);

/// Per-site accuracy map from a pipeline run (reference-predictor input to
/// branch selection).
[[nodiscard]] std::map<std::uint32_t, double> accuracyMap(
    const PipelineStats& stats);

/// Paper branch-selection counts: 16 for G.721 encode, 15 for decode, 4 for
/// ADPCM encode, 3 for decode.
[[nodiscard]] std::size_t paperBitEntries(BenchId id);

/// Profile + select + extract, returning a ready ASBR unit and the chosen
/// candidates.
struct AsbrSetup {
    std::vector<Candidate> candidates;
    /// Statically-decided branches loaded into the unit's static fold table
    /// (empty unless prepareAsbr ran with staticFolds = true).
    std::vector<StaticFoldCandidate> staticCandidates;
    std::uint64_t bitSlotsReclaimed = 0;
    std::unique_ptr<AsbrUnit> unit;
};

/// `staticFolds` opts into the two-class selection (selectWithStaticVerdicts):
/// statically-decided branches fold from the static table, freeing their BIT
/// slots.  Default off — the classic dynamic-only customization, which keeps
/// existing goldens (fault campaigns, bench reports) byte-identical.
[[nodiscard]] AsbrSetup prepareAsbr(
    const Prepared& prepared, std::size_t bitEntries,
    ValueStage updateStage = ValueStage::kMemEnd,
    const std::map<std::uint32_t, double>& accuracyByPc = {},
    bool parityProtected = false, bool staticFolds = false);

/// Threshold (2/3/4) implied by a BDT update stage.
[[nodiscard]] std::uint32_t thresholdFor(ValueStage stage);

/// Auxiliary predictors used in Figure 11: bi-512 / bi-256 with the BTB cut
/// to a quarter of the baseline's 2048 entries.
[[nodiscard]] std::unique_ptr<BranchPredictor> makeAux512();
[[nodiscard]] std::unique_ptr<BranchPredictor> makeAux256();

/// Print a rendered table (and CSV when requested).
void printTable(const Options& options, const TextTable& table);

/// Collects one SimReport per pipeline run and writes them as a single
/// `asbr.bench_report` JSON document when the user passed --json=FILE.
/// This is the ONLY path through which bench binaries emit machine-readable
/// results (ci/bench-report.sh and EXPERIMENTS.md build on it).
class ReportSink {
public:
    ReportSink(std::string generator, const Options& options);

    /// Record one finished run.  `figure` tags the paper context ("fig6",
    /// "fig11", ...); `setup` (optional) contributes the ASBR meta/metrics.
    void add(const std::string& figure, const Prepared& prepared,
             const PipelineResult& result, const BranchPredictor& predictor,
             const AsbrSetup* setup = nullptr);

    /// Write the document (no-op without --json).  Returns the serialized
    /// text so callers/tests can reuse it.
    std::string write() const;

    [[nodiscard]] std::size_t runCount() const { return runs_.size(); }

private:
    std::string generator_;
    Options options_;
    std::vector<SimReport> runs_;
};

/// Shared implementation of Figures 7/9/10: run the three reference
/// predictors, select the paper's branch count, and print the per-site
/// exec/taken/accuracy table for the selected branches.  Runs are also
/// recorded into `sink` when non-null.
void reportSelectedBranches(const Options& options, BenchId id,
                            const std::string& figureLabel, ReportSink* sink);

}  // namespace asbr::bench

#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "asbr/extract.hpp"
#include "sim/functional.hpp"
#include "util/ensure.hpp"
#include "workloads/input_gen.hpp"

namespace asbr::bench {

Options parseOptions(int argc, char** argv) {
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto numArg = [&arg](const char* prefix) -> std::optional<std::uint64_t> {
            const std::size_t len = std::strlen(prefix);
            if (arg.rfind(prefix, 0) != 0) return std::nullopt;
            return std::strtoull(arg.c_str() + len, nullptr, 10);
        };
        if (arg == "--quick") {
            options.adpcmSamples = 8'000;
            options.g721Samples = 2'000;
        } else if (const auto v = numArg("--seed=")) {
            options.seed = *v;
        } else if (const auto v = numArg("--adpcm=")) {
            options.adpcmSamples = *v;
        } else if (const auto v = numArg("--g721=")) {
            options.g721Samples = *v;
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            options.jsonPath = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options: --quick --seed=N --adpcm=N --g721=N --csv "
                "--json=FILE\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s' (try --help)\n",
                         arg.c_str());
            std::exit(2);
        }
    }
    return options;
}

std::size_t samplesFor(const Options& options, BenchId id) {
    const bool heavy =
        id == BenchId::kG721Encode || id == BenchId::kG721Decode;
    const std::size_t want = heavy ? options.g721Samples : options.adpcmSamples;
    return std::min(want, benchMaxSamples(id));
}

Prepared prepare(BenchId id, const Options& options, bool scheduleConditions) {
    Prepared prepared;
    prepared.id = id;
    prepared.scheduled = scheduleConditions;
    prepared.program = buildBench(id, scheduleConditions);
    prepared.pcm = generateSpeech(samplesFor(options, id), options.seed);
    if (!benchIsEncoder(id)) {
        // Decoders consume the matching encoder's output, as in MediaBench.
        switch (id) {
            case BenchId::kAdpcmDecode:
                prepared.codes = adpcmEncodeRef(prepared.pcm);
                break;
            case BenchId::kG721Decode:
                prepared.codes = g721EncodeRef(prepared.pcm);
                break;
            case BenchId::kG711Decode:
                prepared.codes = g711EncodeRef(prepared.pcm);
                break;
            default:
                ASBR_ENSURE(false, "prepare: unexpected decoder");
        }
    }
    return prepared;
}

Memory makeMemory(const Prepared& prepared) {
    Memory memory;
    memory.loadProgram(prepared.program);
    if (benchIsEncoder(prepared.id)) {
        loadPcmInput(memory, prepared.program, prepared.pcm);
    } else {
        loadCodeInput(memory, prepared.program, prepared.codes);
    }
    return memory;
}

PipelineResult runPipeline(const Prepared& prepared, BranchPredictor& predictor,
                           FetchCustomizer* customizer,
                           const PipelineConfig& config) {
    Memory memory = makeMemory(prepared);
    predictor.reset();
    PipelineSim sim(prepared.program, memory, predictor, config, customizer);
    PipelineResult result = sim.run();
    ASBR_ENSURE(result.exited && result.exitCode == 0,
                "benchmark did not exit cleanly");
    return result;
}

ProgramProfile profileOf(const Prepared& prepared) {
    Memory memory = makeMemory(prepared);
    return profileProgram(prepared.program, memory);
}

std::map<std::uint32_t, double> accuracyMap(const PipelineStats& stats) {
    std::map<std::uint32_t, double> out;
    for (const auto& [pc, site] : stats.branchSites) out[pc] = site.accuracy();
    return out;
}

std::size_t paperBitEntries(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode: return 4;
        case BenchId::kAdpcmDecode: return 3;
        case BenchId::kG721Encode: return 16;
        case BenchId::kG721Decode: return 15;
        case BenchId::kG711Encode:
        case BenchId::kG711Decode: return 8;  // extension: not in the paper
    }
    return 16;
}

std::uint32_t thresholdFor(ValueStage stage) {
    switch (stage) {
        case ValueStage::kExEnd: return 2;
        case ValueStage::kMemEnd: return 3;
        case ValueStage::kCommit: return 4;
    }
    return 3;
}

AsbrSetup prepareAsbr(const Prepared& prepared, std::size_t bitEntries,
                      ValueStage updateStage,
                      const std::map<std::uint32_t, double>& accuracyByPc,
                      bool parityProtected, bool staticFolds) {
    const ProgramProfile profile = profileOf(prepared);
    SelectionConfig config;
    config.bitCapacity = bitEntries;
    config.threshold = thresholdFor(updateStage);
    AsbrSetup setup;
    if (staticFolds) {
        FoldSelection selection = selectWithStaticVerdicts(
            prepared.program, profile, accuracyByPc, config);
        setup.candidates = std::move(selection.dynamic);
        setup.staticCandidates = std::move(selection.statics);
        setup.bitSlotsReclaimed = selection.bitSlotsReclaimed;
    } else {
        setup.candidates = selectFoldableBranches(prepared.program, profile,
                                                  accuracyByPc, config);
    }
    AsbrConfig unitConfig;
    unitConfig.updateStage = updateStage;
    unitConfig.bitCapacity = std::max<std::size_t>(bitEntries, 1);
    unitConfig.parityProtected = parityProtected;
    setup.unit = std::make_unique<AsbrUnit>(unitConfig);
    setup.unit->loadBank(
        0, extractBranchInfos(prepared.program, candidatePcs(setup.candidates)));
    if (!setup.staticCandidates.empty()) {
        std::vector<StaticFoldEntry> entries;
        entries.reserve(setup.staticCandidates.size());
        for (const StaticFoldCandidate& s : setup.staticCandidates)
            entries.push_back(extractStaticFold(prepared.program, s.pc, s.taken));
        setup.unit->loadStaticFolds(std::move(entries),
                                    setup.bitSlotsReclaimed);
    }
    return setup;
}

std::unique_ptr<BranchPredictor> makeAux512() { return makeBimodal(512, 512); }

std::unique_ptr<BranchPredictor> makeAux256() { return makeBimodal(256, 512); }

void printTable(const Options& options, const TextTable& table) {
    std::fputs(table.render().c_str(), stdout);
    if (options.csv) std::fputs(table.toCsv().c_str(), stdout);
    std::fputs("\n", stdout);
}

ReportSink::ReportSink(std::string generator, const Options& options)
    : generator_(std::move(generator)), options_(options) {}

void ReportSink::add(const std::string& figure, const Prepared& prepared,
                     const PipelineResult& result,
                     const BranchPredictor& predictor, const AsbrSetup* setup) {
    if (options_.jsonPath.empty()) return;  // nothing will consume the report
    RunMeta meta;
    meta.benchmark = benchName(prepared.id);
    meta.predictor = predictor.name();
    meta.figure = figure;
    meta.seed = options_.seed;
    meta.samples = samplesFor(options_, prepared.id);
    meta.scheduled = prepared.scheduled;
    const AsbrUnit* unit = setup != nullptr ? setup->unit.get() : nullptr;
    if (unit != nullptr) {
        meta.asbr = true;
        meta.bitEntries = unit->config().bitCapacity;
        meta.updateStage = valueStageName(unit->config().updateStage);
    }
    runs_.push_back(
        makeSimReport(std::move(meta), result.stats, &predictor, unit));
}

std::string ReportSink::write() const {
    if (options_.jsonPath.empty()) return {};
    JsonObject optionsJson;
    optionsJson.emplace_back(
        "adpcm_samples", static_cast<std::uint64_t>(options_.adpcmSamples));
    optionsJson.emplace_back("g721_samples",
                             static_cast<std::uint64_t>(options_.g721Samples));
    optionsJson.emplace_back("seed", options_.seed);
    const JsonValue doc =
        benchReportJson(generator_, JsonValue(std::move(optionsJson)), runs_);
    std::string text = doc.dump(2);
    text += '\n';
    if (options_.jsonPath == "-") {
        std::fputs(text.c_str(), stdout);
    } else {
        std::FILE* f = std::fopen(options_.jsonPath.c_str(), "w");
        ASBR_ENSURE(f != nullptr, "cannot open --json output file");
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %zu run report(s) to %s\n", runs_.size(),
                     options_.jsonPath.c_str());
    }
    return text;
}

void reportSelectedBranches(const Options& options, BenchId id,
                            const std::string& figureLabel, ReportSink* sink) {
    const Prepared prepared = prepare(id, options);

    // Per-site accuracies under each reference predictor.
    std::unique_ptr<BranchPredictor> predictors[] = {
        makeNotTaken(), makeBimodal2048(), makeGshare2048()};
    std::map<std::uint32_t, BranchSiteStats> sites[3];
    for (int p = 0; p < 3; ++p) {
        const PipelineResult r = runPipeline(prepared, *predictors[p]);
        sites[p] = r.stats.branchSites;
        if (sink != nullptr)
            sink->add(figureLabel, prepared, r, *predictors[p]);
    }

    // Selection uses the bimodal-2048 accuracies as the hardness reference.
    const AsbrSetup setup = prepareAsbr(prepared, paperBitEntries(id),
                                        ValueStage::kMemEnd,
                                        accuracyMap({.branchSites = sites[1]}));

    TextTable table("Figure " + figureLabel + ": branches selected for " +
                    std::string(benchName(id)));
    table.setHeader({"branch", "pc", "exec #", "taken", "acc not-taken",
                     "acc bimodal", "acc gshare", "foldable@3"});
    int index = 0;
    for (const Candidate& c : setup.candidates) {
        char pcText[16];
        std::snprintf(pcText, sizeof pcText, "0x%05x", c.pc);
        auto accOf = [&](int p) {
            const auto it = sites[p].find(c.pc);
            return it == sites[p].end() ? 0.0 : it->second.accuracy();
        };
        table.addRow({"br" + std::to_string(index++), pcText,
                      formatWithCommas(c.execs), formatFixed(c.takenRate, 2),
                      formatFixed(accOf(0), 2), formatFixed(accOf(1), 2),
                      formatFixed(accOf(2), 2),
                      formatFixed(c.foldableFraction, 2)});
    }
    printTable(options, table);
}

}  // namespace asbr::bench

#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/ensure.hpp"

namespace asbr::bench {

Options parseOptions(int argc, char** argv) {
    Options options;
    std::string error;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (driver::consumeSharedOption(arg, options, error)) {
            if (!error.empty()) driver::cliFail(argv[0], error);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("options: %s --csv\n"
                        "(--journal=DIR / --resume apply to asbr-sweep and "
                        "asbr-faults campaign only)\n",
                        driver::sharedOptionsHelp());
            std::exit(0);
        } else {
            driver::cliFail(argv[0],
                            "unknown option '" + arg + "' (try --help)");
        }
    }
    // The table regenerators have no journal; rejecting the flag beats
    // silently dropping a persistence request.
    if (!options.journalDir.empty() || options.resume)
        driver::cliFail(argv[0],
                        "--journal/--resume apply to asbr-sweep and "
                        "asbr-faults campaign (docs/robustness.md)");
    return options;
}

std::vector<BenchId> benchList(const Options& options,
                               std::span<const BenchId> all) {
    if (options.workload.has_value()) return {*options.workload};
    return {all.begin(), all.end()};
}

SimJob baseJob(const Options& options, BenchId id, std::string predictor,
               std::string figure) {
    SimJob job;
    job.workload = id;
    job.seed = options.seed;
    job.samples = samplesFor(options, id);
    job.predictor = std::move(predictor);
    job.figure = std::move(figure);
    return job;
}

void printTable(const Options& options, const TextTable& table) {
    std::fputs(table.render().c_str(), stdout);
    if (options.csv) std::fputs(table.toCsv().c_str(), stdout);
    std::fputs("\n", stdout);
}

ReportSink::ReportSink(std::string generator, const Options& options)
    : generator_(std::move(generator)), options_(options) {}

void ReportSink::add(const JobResult& result) {
    if (options_.jsonPath.empty()) return;  // nothing will consume the report
    runs_.push_back(result.report);
}

std::string ReportSink::write() const {
    if (options_.jsonPath.empty()) return {};
    JsonObject optionsJson;
    optionsJson.emplace_back(
        "adpcm_samples", static_cast<std::uint64_t>(options_.adpcmSamples));
    optionsJson.emplace_back("g721_samples",
                             static_cast<std::uint64_t>(options_.g721Samples));
    optionsJson.emplace_back("seed", options_.seed);
    const JsonValue doc =
        benchReportJson(generator_, JsonValue(std::move(optionsJson)), runs_);
    std::string text = doc.dump(2);
    text += '\n';
    if (options_.jsonPath == "-") {
        std::fputs(text.c_str(), stdout);
    } else {
        std::FILE* f = std::fopen(options_.jsonPath.c_str(), "w");
        ASBR_ENSURE(f != nullptr, "cannot open --json output file");
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::fprintf(stderr, "wrote %zu run report(s) to %s\n", runs_.size(),
                     options_.jsonPath.c_str());
    }
    return text;
}

void reportSelectedBranches(SimEngine& engine, const Options& options,
                            BenchId id, const std::string& figureLabel,
                            ReportSink* sink) {
    // Per-site accuracies under each reference predictor.
    const char* predictors[] = {"not-taken", "bimodal", "gshare"};
    std::vector<SimJob> jobs;
    for (const char* predictor : predictors)
        jobs.push_back(baseJob(options, id, predictor, figureLabel));
    const std::vector<JobResult> results = engine.run(jobs);
    if (sink != nullptr)
        for (const JobResult& result : results) sink->add(result);

    // Selection uses the bimodal-2048 accuracies as the hardness reference —
    // resolved through the artifact cache, no extra pipeline run needed.
    SimJob selectionJob = baseJob(options, id, "bimodal", figureLabel);
    selectionJob.asbr = true;
    const auto selection = engine.selectionFor(selectionJob);

    TextTable table("Figure " + figureLabel + ": branches selected for " +
                    std::string(benchName(id)));
    table.setHeader({"branch", "pc", "exec #", "taken", "acc not-taken",
                     "acc bimodal", "acc gshare", "foldable@3"});
    int index = 0;
    for (const Candidate& c : selection->candidates()) {
        char pcText[16];
        std::snprintf(pcText, sizeof pcText, "0x%05x", c.pc);
        auto accOf = [&](std::size_t p) {
            const auto& sites = results[p].stats.branchSites;
            const auto it = sites.find(c.pc);
            return it == sites.end() ? 0.0 : it->second.accuracy();
        };
        table.addRow({"br" + std::to_string(index++), pcText,
                      formatWithCommas(c.execs), formatFixed(c.takenRate, 2),
                      formatFixed(accOf(0), 2), formatFixed(accOf(1), 2),
                      formatFixed(accOf(2), 2),
                      formatFixed(c.foldableFraction, 2)});
    }
    printTable(options, table);
}

}  // namespace asbr::bench

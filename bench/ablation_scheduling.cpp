// Ablation C (paper Section 5.1) — compiler support.
//
// ASBR depends on the def-to-branch distance; the paper relied on
// (manual) instruction scheduling to widen it.  Compile each benchmark with
// and without mcc's branch-condition scheduling pass and compare how many
// dynamic branch executions are foldable at threshold 3 and what that does
// to ASBR's cycle count.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("ablation_scheduling", options);

    TextTable table(
        "Ablation: condition-scheduling pass vs foldability and ASBR cycles");
    table.setHeader({"benchmark", "scheduling", "foldable execs@3", "folds",
                     "cycles (ASBR, bi-512)", "improvement vs bimodal"});

    // Per benchmark x scheduling flag: a bimodal baseline and the ASBR run.
    // The two scheduling variants are distinct workload keys, so the engine
    // loads and profiles each variant exactly once.
    const std::vector<BenchId> benches = benchList(options, kAllBenches);
    std::vector<SimJob> jobs;
    for (const BenchId id : benches) {
        for (const bool schedule : {false, true}) {
            SimJob base = baseJob(options, id, "bimodal", "ablation_scheduling");
            base.scheduled = schedule;
            jobs.push_back(base);
            SimJob asbrJob =
                baseJob(options, id, "bi512", "ablation_scheduling");
            asbrJob.scheduled = schedule;
            asbrJob.asbr = true;
            jobs.push_back(asbrJob);
        }
    }
    const std::vector<JobResult> results = engine.run(jobs);

    for (std::size_t i = 0; i < jobs.size(); i += 2) {
        const JobResult& base = results[i];
        const JobResult& r = results[i + 1];
        sink.add(r);

        // Dynamic branch executions whose def-to-branch distance qualifies at
        // threshold 3, from the cached functional profile.
        const ProgramProfile& profile = engine.workloadFor(jobs[i])->profile();
        std::uint64_t foldable = 0;
        for (const auto& [pc, bp] : profile.branches) foldable += bp.distGe3;

        table.addRow(
            {r.report.meta.benchmark, jobs[i].scheduled ? "on" : "off",
             formatWithCommas(foldable), formatWithCommas(r.unitStats.folds),
             formatWithCommas(r.stats.cycles),
             formatPercent(improvement(base.stats.cycles, r.stats.cycles))});
    }
    printTable(options, table);
    sink.write();
    std::puts("Expected shape: scheduling on => more foldable executions, more");
    std::puts("folds, fewer cycles (the compiler support of paper Section 5.1).");
    return 0;
}

// Ablation C (paper Section 5.1) — compiler support.
//
// ASBR depends on the def-to-branch distance; the paper relied on
// (manual) instruction scheduling to widen it.  Compile each benchmark with
// and without mcc's branch-condition scheduling pass and compare how many
// dynamic branch executions are foldable at threshold 3 and what that does
// to ASBR's cycle count.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    ReportSink sink("ablation_scheduling", options);

    TextTable table(
        "Ablation: condition-scheduling pass vs foldability and ASBR cycles");
    table.setHeader({"benchmark", "scheduling", "foldable execs@3", "folds",
                     "cycles (ASBR, bi-512)", "improvement vs bimodal"});

    for (const BenchId id : kAllBenches) {
        for (const bool schedule : {false, true}) {
            const Prepared prepared = prepare(id, options, schedule);
            auto baseline = makeBimodal2048();
            const PipelineResult base = runPipeline(prepared, *baseline);

            const ProgramProfile profile = profileOf(prepared);
            std::uint64_t foldable = 0;
            for (const auto& [pc, bp] : profile.branches) foldable += bp.distGe3;

            const AsbrSetup setup =
                prepareAsbr(prepared, paperBitEntries(id), ValueStage::kMemEnd,
                            accuracyMap(base.stats));
            auto aux = makeAux512();
            const PipelineResult r =
                runPipeline(prepared, *aux, setup.unit.get());
            sink.add("ablation_scheduling", prepared, r, *aux, &setup);
            table.addRow(
                {benchName(id), schedule ? "on" : "off",
                 formatWithCommas(foldable),
                 formatWithCommas(setup.unit->stats().folds),
                 formatWithCommas(r.stats.cycles),
                 formatPercent(improvement(base.stats.cycles, r.stats.cycles))});
        }
    }
    printTable(options, table);
    sink.write();
    std::puts("Expected shape: scheduling on => more foldable executions, more");
    std::puts("folds, fewer cycles (the compiler support of paper Section 5.1).");
    return 0;
}

// Extension (not a paper table): full predictor shoot-out across all six
// workloads — the paper's three baselines plus McFarling's tournament
// predictor [cited as ref 3], always-taken, TAGE, the perceptron, and
// ASBR + bi-512 — laid out as cost (storage bits) vs performance (cycles).
// Answers the natural follow-up question: does a stronger general-purpose
// predictor close the gap ASBR closes?  (It narrows it but costs more
// storage than the ASBR unit, which does better with ~4x less.)
#include <cstdio>
#include <iterator>

#include "bp/registry.hpp"
#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("ext_predictors", options);

    TextTable table("Extension: predictor shoot-out (cycles; lower is better)");
    table.setHeader({"benchmark", "not taken", "always taken", "bimodal-2048",
                     "gshare-2048", "tournament", "tage", "perceptron",
                     "ASBR + bi-512", "ASBR folds"});

    // Per benchmark: the ASBR run first (matching the historical report
    // order), then the reference predictors.  This selection is the one
    // consumer that does NOT use a baseline accuracy reference — the
    // selector falls back to pure profile-driven ranking.
    const char* baselines[] = {"not-taken",  "taken", "bimodal", "gshare",
                               "tournament", "tage",  "perceptron"};
    constexpr std::size_t kBaselines = std::size(baselines);
    constexpr std::size_t kGroup = kBaselines + 1;
    const std::vector<BenchId> benches = benchList(options, kAllBenchesExtended);
    std::vector<SimJob> jobs;
    for (const BenchId id : benches) {
        SimJob asbrJob = baseJob(options, id, "bi512", "ext_predictors");
        asbrJob.asbr = true;
        asbrJob.accuracyRef = false;
        jobs.push_back(asbrJob);
        for (const char* predictor : baselines)
            jobs.push_back(baseJob(options, id, predictor, "ext_predictors"));
    }
    const std::vector<JobResult> results = engine.run(jobs);

    for (std::size_t b = 0; b < benches.size(); ++b) {
        const JobResult* group = &results[b * kGroup];
        for (std::size_t j = 0; j < kGroup; ++j) sink.add(group[j]);
        const JobResult& asbrRun = group[0];
        std::vector<std::string> row{benchName(benches[b])};
        for (std::size_t j = 1; j < kGroup; ++j)
            row.push_back(formatWithCommas(group[j].stats.cycles));
        row.push_back(formatWithCommas(asbrRun.stats.cycles));
        row.push_back(formatWithCommas(asbrRun.unitStats.folds));
        table.addRow(row);
    }
    printTable(options, table);
    sink.write();

    // Every storage figure comes from the registry — the same accounting the
    // sim reports publish as bp.storage_bits — so this line can never drift
    // from the predictors it benchmarks.
    const PredictorRegistry& registry = PredictorRegistry::instance();
    std::printf("storage bits:");
    const char* separator = " ";
    for (const char* token :
         {"bimodal", "gshare", "tournament", "tage", "perceptron"}) {
        std::printf("%s%s %llu", separator, token,
                    static_cast<unsigned long long>(registry.storageBits(token)));
        separator = " | ";
    }
    std::printf(" | ASBR+bi-512 %llu\n",
                static_cast<unsigned long long>(registry.storageBits("bi512") +
                                                AsbrUnit().storageBits()));
    return 0;
}

// Extension (not a paper table): full predictor shoot-out across all six
// workloads — the paper's three baselines plus McFarling's tournament
// predictor [cited as ref 3], always-taken, and ASBR + bi-512 — laid out as
// cost (storage bits) vs performance (cycles).  Answers the natural
// follow-up question: does a stronger general-purpose predictor close the
// gap ASBR closes?  (It narrows it but costs ~1.5x the baseline storage,
// while ASBR does better with ~4x less.)
#include <cstdio>

#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("ext_predictors", options);

    TextTable table("Extension: predictor shoot-out (cycles; lower is better)");
    table.setHeader({"benchmark", "not taken", "always taken", "bimodal-2048",
                     "gshare-2048", "tournament", "ASBR + bi-512",
                     "ASBR folds"});

    // Per benchmark: the ASBR run first (matching the historical report
    // order), then the five reference predictors.  This selection is the one
    // consumer that does NOT use a baseline accuracy reference — the
    // selector falls back to pure profile-driven ranking.
    const char* baselines[] = {"not-taken", "taken", "bimodal", "gshare",
                               "tournament"};
    const std::vector<BenchId> benches = benchList(options, kAllBenchesExtended);
    std::vector<SimJob> jobs;
    for (const BenchId id : benches) {
        SimJob asbrJob = baseJob(options, id, "bi512", "ext_predictors");
        asbrJob.asbr = true;
        asbrJob.accuracyRef = false;
        jobs.push_back(asbrJob);
        for (const char* predictor : baselines)
            jobs.push_back(baseJob(options, id, predictor, "ext_predictors"));
    }
    const std::vector<JobResult> results = engine.run(jobs);

    for (std::size_t b = 0; b < benches.size(); ++b) {
        const JobResult* group = &results[b * 6];
        for (std::size_t j = 0; j < 6; ++j) sink.add(group[j]);
        const JobResult& asbrRun = group[0];
        table.addRow({benchName(benches[b]),
                      formatWithCommas(group[1].stats.cycles),
                      formatWithCommas(group[2].stats.cycles),
                      formatWithCommas(group[3].stats.cycles),
                      formatWithCommas(group[4].stats.cycles),
                      formatWithCommas(group[5].stats.cycles),
                      formatWithCommas(asbrRun.stats.cycles),
                      formatWithCommas(asbrRun.unitStats.folds)});
    }
    printTable(options, table);
    sink.write();

    std::printf("storage bits: bimodal-2048 %llu | gshare-2048 %llu | "
                "tournament %llu | ASBR+bi-512 %llu\n",
                static_cast<unsigned long long>(makeBimodal2048()->storageBits()),
                static_cast<unsigned long long>(makeGshare2048()->storageBits()),
                static_cast<unsigned long long>(makeTournament2048()->storageBits()),
                static_cast<unsigned long long>(
                    driver::makePredictorByToken("bi512")->storageBits() +
                    AsbrUnit().storageBits()));
    return 0;
}

// Extension (not a paper table): full predictor shoot-out across all six
// workloads — the paper's three baselines plus McFarling's tournament
// predictor [cited as ref 3], always-taken, and ASBR + bi-512 — laid out as
// cost (storage bits) vs performance (cycles).  Answers the natural
// follow-up question: does a stronger general-purpose predictor close the
// gap ASBR closes?  (It narrows it but costs ~1.5x the baseline storage,
// while ASBR does better with ~4x less.)
#include <cstdio>

#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    ReportSink sink("ext_predictors", options);

    TextTable table("Extension: predictor shoot-out (cycles; lower is better)");
    table.setHeader({"benchmark", "not taken", "always taken", "bimodal-2048",
                     "gshare-2048", "tournament", "ASBR + bi-512",
                     "ASBR folds"});

    for (const BenchId id : kAllBenchesExtended) {
        const Prepared prepared = prepare(id, options);
        const AsbrSetup setup = prepareAsbr(prepared, paperBitEntries(id));
        auto run = [&](BranchPredictor& p, const AsbrSetup* asbr = nullptr) {
            const PipelineResult r = runPipeline(
                prepared, p, asbr != nullptr ? asbr->unit.get() : nullptr);
            sink.add("ext_predictors", prepared, r, p, asbr);
            return r.stats.cycles;
        };
        auto notTaken = makeNotTaken();
        AlwaysTakenPredictor alwaysTaken(2048);
        auto bimodal = makeBimodal2048();
        auto gshare = makeGshare2048();
        auto tournament = makeTournament2048();

        auto aux = makeAux512();
        const std::uint64_t asbrCycles = run(*aux, &setup);

        table.addRow({benchName(id), formatWithCommas(run(*notTaken)),
                      formatWithCommas(run(alwaysTaken)),
                      formatWithCommas(run(*bimodal)),
                      formatWithCommas(run(*gshare)),
                      formatWithCommas(run(*tournament)),
                      formatWithCommas(asbrCycles),
                      formatWithCommas(setup.unit->stats().folds)});
    }
    printTable(options, table);
    sink.write();

    std::printf("storage bits: bimodal-2048 %llu | gshare-2048 %llu | "
                "tournament %llu | ASBR+bi-512 %llu\n",
                static_cast<unsigned long long>(makeBimodal2048()->storageBits()),
                static_cast<unsigned long long>(makeGshare2048()->storageBits()),
                static_cast<unsigned long long>(makeTournament2048()->storageBits()),
                static_cast<unsigned long long>(makeAux512()->storageBits() +
                                                AsbrUnit().storageBits()));
    return 0;
}

// Ablation B (paper Sections 6-7) — BIT capacity sweep.
//
// "Since only the most frequently executed branches within the important
// application loops are targeted, a small number of BIT entries would
// suffice."  Sweep 1..32 entries on the G.721 encoder and report the
// cycles / hardware-cost trade-off: benefit should saturate well before 32.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    ReportSink sink("ablation_bit_size", options);

    const Prepared prepared = prepare(BenchId::kG721Encode, options);
    auto baseline = makeBimodal2048();
    const PipelineResult base = runPipeline(prepared, *baseline);
    const auto accuracy = accuracyMap(base.stats);

    TextTable table("Ablation: BIT entries vs cycles (G.721 Encode, bi-512 aux)");
    table.setHeader({"BIT entries", "selected", "folds", "cycles",
                     "improvement vs bimodal", "ASBR storage bits"});

    for (const std::size_t entries : {1, 2, 4, 8, 16, 32}) {
        const AsbrSetup setup =
            prepareAsbr(prepared, entries, ValueStage::kMemEnd, accuracy);
        auto aux = makeAux512();
        const PipelineResult r = runPipeline(prepared, *aux, setup.unit.get());
        sink.add("ablation_bit_size", prepared, r, *aux, &setup);
        table.addRow({std::to_string(entries),
                      std::to_string(setup.candidates.size()),
                      formatWithCommas(setup.unit->stats().folds),
                      formatWithCommas(r.stats.cycles),
                      formatPercent(improvement(base.stats.cycles, r.stats.cycles)),
                      formatWithCommas(setup.unit->storageBits())});
    }
    printTable(options, table);
    sink.write();
    std::puts("Expected shape: improvement grows with capacity and saturates —");
    std::puts("a 16-entry BIT captures nearly all of the benefit (the paper's size).");
    return 0;
}

// Ablation B (paper Sections 6-7) — BIT capacity sweep.
//
// "Since only the most frequently executed branches within the important
// application loops are targeted, a small number of BIT entries would
// suffice."  Sweep 1..32 entries on the G.721 encoder and report the
// cycles / hardware-cost trade-off: benefit should saturate well before 32.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("ablation_bit_size", options);

    // One baseline plus one ASBR job per capacity — the engine resolves the
    // shared workload/profile once and reuses it across every selection.
    const std::size_t sizes[] = {1, 2, 4, 8, 16, 32};
    std::vector<SimJob> jobs;
    jobs.push_back(
        baseJob(options, BenchId::kG721Encode, "bimodal", "ablation_bit_size"));
    for (const std::size_t entries : sizes) {
        SimJob job = baseJob(options, BenchId::kG721Encode, "bi512",
                             "ablation_bit_size");
        job.asbr = true;
        job.bitEntries = entries;
        jobs.push_back(job);
    }
    const std::vector<JobResult> results = engine.run(jobs);
    const JobResult& base = results[0];

    TextTable table("Ablation: BIT entries vs cycles (G.721 Encode, bi-512 aux)");
    table.setHeader({"BIT entries", "selected", "folds", "cycles",
                     "improvement vs bimodal", "ASBR storage bits"});

    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const JobResult& r = results[1 + i];
        sink.add(r);
        table.addRow({std::to_string(sizes[i]),
                      std::to_string(r.candidates.size()),
                      formatWithCommas(r.unitStats.folds),
                      formatWithCommas(r.stats.cycles),
                      formatPercent(improvement(base.stats.cycles, r.stats.cycles)),
                      formatWithCommas(r.unitStorageBits)});
    }
    printTable(options, table);
    sink.write();
    std::puts("Expected shape: improvement grows with capacity and saturates —");
    std::puts("a 16-entry BIT captures nearly all of the benefit (the paper's size).");
    return 0;
}

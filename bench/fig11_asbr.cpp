// Figure 11 — Application-specific branch resolution results.
//
// For each benchmark: profile, select the paper's number of BIT entries,
// fold those branches with the ASBR unit, and run with each auxiliary
// predictor the paper evaluates for the remaining branches:
//   not taken  — no auxiliary predictor; improvement vs the not-taken
//                baseline of Figure 6
//   bi-512     — 512-counter bimodal with a quarter-size (512-entry) BTB;
//                improvement vs the full bimodal-2048 baseline
//   bi-256     — 256 counters, same quarter-size BTB, same baseline
//
// Shape to check: every row improves on its baseline; ADPCM improves more
// than G.721; bi-512 and bi-256 rows are nearly identical (the BIT removed
// the aliasing-heavy branches), all at a fraction of the baseline
// predictor's storage.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("fig11_asbr", options);

    // Per benchmark: the two Figure 6 baselines this figure compares
    // against, then the three ASBR + auxiliary-predictor runs.
    const char* auxes[] = {"not-taken", "bi512", "bi256"};
    const std::vector<BenchId> benches = benchList(options, kAllBenches);
    std::vector<SimJob> jobs;
    for (const BenchId id : benches) {
        jobs.push_back(baseJob(options, id, "not-taken", "fig6"));
        jobs.push_back(baseJob(options, id, "bimodal", "fig6"));
        for (const char* aux : auxes) {
            SimJob job = baseJob(options, id, aux, "fig11");
            job.asbr = true;
            jobs.push_back(job);
        }
    }
    const std::vector<JobResult> results = engine.run(jobs);

    TextTable table("Figure 11: ASBR cycles and improvement per auxiliary predictor");
    table.setHeader({"benchmark", "aux predictor", "cycles", "improvement",
                     "folded", "fold rate", "pipeline activity",
                     "storage bits vs baseline"});

    for (std::size_t b = 0; b < benches.size(); ++b) {
        const JobResult* group = &results[b * 5];
        const JobResult& notTakenBase = group[0];
        const JobResult& bimodalBase = group[1];
        for (std::size_t a = 0; a < 3; ++a) {
            const JobResult& r = group[2 + a];
            sink.add(r);
            // not-taken improves vs the not-taken baseline; the bi-* aux
            // predictors vs the full bimodal-2048 baseline.
            const JobResult& baseline = a == 0 ? notTakenBase : bimodalBase;
            // Power proxy (paper Section 1): instructions entering the
            // pipeline, including wrong-path fetches, relative to baseline.
            const double activity = static_cast<double>(r.stats.fetched) /
                                    static_cast<double>(baseline.stats.fetched);
            const std::uint64_t storage =
                r.predictorStorageBits + r.unitStorageBits;
            char storageText[64];
            std::snprintf(storageText, sizeof storageText, "%llu / %llu",
                          static_cast<unsigned long long>(storage),
                          static_cast<unsigned long long>(
                              bimodalBase.predictorStorageBits));
            table.addRow(
                {r.report.meta.benchmark, r.report.meta.predictor,
                 formatWithCommas(r.stats.cycles),
                 formatPercent(
                     improvement(baseline.stats.cycles, r.stats.cycles)),
                 formatWithCommas(r.stats.foldedBranches),
                 formatPercent(r.stats.foldRate()), formatPercent(activity),
                 storageText});
        }
    }
    printTable(options, table);
    sink.write();

    std::puts("Paper reference (Figure 11):");
    std::puts("  ADPCM Enc: not-taken 10.3M (+16%) | bi-512 7.28M (+22%) | bi-256 7.28M (+22%)");
    std::puts("  ADPCM Dec: not-taken  9.4M (+13%) | bi-512 6.32M (+20%) | bi-256 6.32M (+20%)");
    std::puts("  G.721 Enc: not-taken 76.1M (+6%)  | bi-512 57.6M (+7%)  | bi-256 58.0M (+7%)");
    std::puts("  G.721 Dec: not-taken 80.4M (+5%)  | bi-512 58.9M (+6%)  | bi-256 59.2M (+6%)");
    std::puts("(bi-* improvements are vs the bimodal-2048 baseline; not-taken vs the");
    std::puts(" not-taken baseline.)");
    return 0;
}

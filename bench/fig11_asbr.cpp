// Figure 11 — Application-specific branch resolution results.
//
// For each benchmark: profile, select the paper's number of BIT entries,
// fold those branches with the ASBR unit, and run with each auxiliary
// predictor the paper evaluates for the remaining branches:
//   not taken  — no auxiliary predictor; improvement vs the not-taken
//                baseline of Figure 6
//   bi-512     — 512-counter bimodal with a quarter-size (512-entry) BTB;
//                improvement vs the full bimodal-2048 baseline
//   bi-256     — 256 counters, same quarter-size BTB, same baseline
//
// Shape to check: every row improves on its baseline; ADPCM improves more
// than G.721; bi-512 and bi-256 rows are nearly identical (the BIT removed
// the aliasing-heavy branches), all at a fraction of the baseline
// predictor's storage.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    ReportSink sink("fig11_asbr", options);

    TextTable table("Figure 11: ASBR cycles and improvement per auxiliary predictor");
    table.setHeader({"benchmark", "aux predictor", "cycles", "improvement",
                     "folded", "fold rate", "pipeline activity",
                     "storage bits vs baseline"});

    for (const BenchId id : kAllBenches) {
        const Prepared prepared = prepare(id, options);

        // Figure 6 baselines this figure compares against.
        auto baseNotTaken = makeNotTaken();
        auto baseBimodal = makeBimodal2048();
        const PipelineResult notTakenBase = runPipeline(prepared, *baseNotTaken);
        const PipelineResult bimodalBase = runPipeline(prepared, *baseBimodal);

        // Select hard-to-predict foldable branches using the bimodal
        // baseline's per-site accuracy, then fold them.
        const AsbrSetup setup =
            prepareAsbr(prepared, paperBitEntries(id), ValueStage::kMemEnd,
                        accuracyMap(bimodalBase.stats));

        struct AuxRow {
            std::unique_ptr<BranchPredictor> predictor;
            const PipelineResult* baseline;
        };
        AuxRow rows[] = {
            {makeNotTaken(), &notTakenBase},
            {makeAux512(), &bimodalBase},
            {makeAux256(), &bimodalBase},
        };
        for (AuxRow& row : rows) {
            const PipelineResult r =
                runPipeline(prepared, *row.predictor, setup.unit.get());
            sink.add("fig11", prepared, r, *row.predictor, &setup);
            const double foldRate = r.stats.foldRate();
            // Power proxy (paper Section 1): instructions entering the
            // pipeline, including wrong-path fetches, relative to baseline.
            const double activity =
                static_cast<double>(r.stats.fetched) /
                static_cast<double>(row.baseline->stats.fetched);
            const std::uint64_t storage =
                row.predictor->storageBits() + setup.unit->storageBits();
            char storageText[64];
            std::snprintf(storageText, sizeof storageText, "%llu / %llu",
                          static_cast<unsigned long long>(storage),
                          static_cast<unsigned long long>(
                              baseBimodal->storageBits()));
            table.addRow(
                {benchName(id), row.predictor->name(),
                 formatWithCommas(r.stats.cycles),
                 formatPercent(
                     improvement(row.baseline->stats.cycles, r.stats.cycles)),
                 formatWithCommas(r.stats.foldedBranches),
                 formatPercent(foldRate), formatPercent(activity), storageText});
        }
    }
    printTable(options, table);
    sink.write();

    std::puts("Paper reference (Figure 11):");
    std::puts("  ADPCM Enc: not-taken 10.3M (+16%) | bi-512 7.28M (+22%) | bi-256 7.28M (+22%)");
    std::puts("  ADPCM Dec: not-taken  9.4M (+13%) | bi-512 6.32M (+20%) | bi-256 6.32M (+20%)");
    std::puts("  G.721 Enc: not-taken 76.1M (+6%)  | bi-512 57.6M (+7%)  | bi-256 58.0M (+7%)");
    std::puts("  G.721 Dec: not-taken 80.4M (+5%)  | bi-512 58.9M (+6%)  | bi-256 59.2M (+6%)");
    std::puts("(bi-* improvements are vs the bimodal-2048 baseline; not-taken vs the");
    std::puts(" not-taken baseline.)");
    return 0;
}

// Ablation A (paper Section 5.2) — where the Early Condition Evaluation
// captures register values:
//   commit      threshold 4 (base scheme: update at register commit)
//   post-EX     threshold 3 (forwarding path right after execute)
//   EX-end      threshold 2 (evaluate inside the execute stage)
//
// A lower threshold makes more branches foldable (smaller def-to-branch
// distances qualify) and reduces validity-counter blocking, so folds rise
// and cycles fall monotonically from commit to EX-end.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("ablation_threshold", options);

    TextTable table(
        "Ablation: BDT update stage (threshold) vs foldability and cycles");
    table.setHeader({"benchmark", "update stage", "threshold", "BIT entries used",
                     "folds", "blocked (stale)", "cycles", "improvement vs bimodal"});

    struct StageRow {
        ValueStage stage;
        const char* name;
    };
    const StageRow stages[] = {
        {ValueStage::kCommit, "commit"},
        {ValueStage::kMemEnd, "post-EX forward"},
        {ValueStage::kExEnd, "EX-end"},
    };

    // Per benchmark: one bimodal baseline, then one ASBR job per update
    // stage.  All three selections share the cached workload + profile +
    // baseline-accuracy artifacts.
    const std::vector<BenchId> benches = benchList(options, kAllBenches);
    std::vector<SimJob> jobs;
    for (const BenchId id : benches) {
        jobs.push_back(baseJob(options, id, "bimodal", "ablation_threshold"));
        for (const StageRow& stage : stages) {
            SimJob job = baseJob(options, id, "bi512", "ablation_threshold");
            job.asbr = true;
            job.updateStage = stage.stage;
            jobs.push_back(job);
        }
    }
    const std::vector<JobResult> results = engine.run(jobs);

    for (std::size_t b = 0; b < benches.size(); ++b) {
        const JobResult* group = &results[b * 4];
        const JobResult& base = group[0];
        for (std::size_t s = 0; s < 3; ++s) {
            const JobResult& r = group[1 + s];
            sink.add(r);
            table.addRow(
                {benchName(benches[b]), stages[s].name,
                 std::to_string(thresholdFor(stages[s].stage)),
                 std::to_string(r.candidates.size()),
                 formatWithCommas(r.unitStats.folds),
                 formatWithCommas(r.unitStats.blockedInvalid),
                 formatWithCommas(r.stats.cycles),
                 formatPercent(improvement(base.stats.cycles, r.stats.cycles))});
        }
    }
    printTable(options, table);
    sink.write();
    std::puts("Expected shape: folds(commit) <= folds(post-EX) <= folds(EX-end)");
    std::puts("and cycles shrinking accordingly (the paper's threshold 4 -> 3 -> 2).");
    return 0;
}

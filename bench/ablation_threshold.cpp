// Ablation A (paper Section 5.2) — where the Early Condition Evaluation
// captures register values:
//   commit      threshold 4 (base scheme: update at register commit)
//   post-EX     threshold 3 (forwarding path right after execute)
//   EX-end      threshold 2 (evaluate inside the execute stage)
//
// A lower threshold makes more branches foldable (smaller def-to-branch
// distances qualify) and reduces validity-counter blocking, so folds rise
// and cycles fall monotonically from commit to EX-end.
#include <cstdio>

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    ReportSink sink("ablation_threshold", options);

    TextTable table(
        "Ablation: BDT update stage (threshold) vs foldability and cycles");
    table.setHeader({"benchmark", "update stage", "threshold", "BIT entries used",
                     "folds", "blocked (stale)", "cycles", "improvement vs bimodal"});

    struct StageRow {
        ValueStage stage;
        const char* name;
    };
    const StageRow stages[] = {
        {ValueStage::kCommit, "commit"},
        {ValueStage::kMemEnd, "post-EX forward"},
        {ValueStage::kExEnd, "EX-end"},
    };

    for (const BenchId id : kAllBenches) {
        const Prepared prepared = prepare(id, options);
        auto baseline = makeBimodal2048();
        const PipelineResult base = runPipeline(prepared, *baseline);
        const auto accuracy = accuracyMap(base.stats);

        for (const StageRow& stage : stages) {
            const AsbrSetup setup = prepareAsbr(prepared, paperBitEntries(id),
                                                stage.stage, accuracy);
            auto aux = makeAux512();
            const PipelineResult r =
                runPipeline(prepared, *aux, setup.unit.get());
            sink.add("ablation_threshold", prepared, r, *aux, &setup);
            table.addRow(
                {benchName(id), stage.name,
                 std::to_string(thresholdFor(stage.stage)),
                 std::to_string(setup.candidates.size()),
                 formatWithCommas(setup.unit->stats().folds),
                 formatWithCommas(setup.unit->stats().blockedInvalid),
                 formatWithCommas(r.stats.cycles),
                 formatPercent(improvement(base.stats.cycles, r.stats.cycles))});
        }
    }
    printTable(options, table);
    sink.write();
    std::puts("Expected shape: folds(commit) <= folds(post-EX) <= folds(EX-end)");
    std::puts("and cycles shrinking accordingly (the paper's threshold 4 -> 3 -> 2).");
    return 0;
}

// Figure 6 — Branch predictability of the benchmarks.
//
// Baseline architecture (no ASBR): total cycles, CPI and branch-resolution
// accuracy for each benchmark under the three general-purpose predictors the
// paper evaluates: always-not-taken, bimodal (2048 counters + 2048-entry
// BTB) and gshare (11-bit history, 2048 counters, 2048-entry BTB).
//
// Absolute numbers differ from the paper (synthetic input, our pipeline
// model); the shape to check is: not-taken is far worse than both dynamic
// predictors, accuracy ordering not-taken << bimodal ~ gshare, and G.721 is
// more predictable (~90%) than ADPCM (~70-80%).
#include <cstdio>

#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("fig6_baseline", options);

    const std::vector<BenchId> benches = benchList(options, kAllBenches);
    const char* predictors[] = {"not-taken", "bimodal", "gshare"};
    std::vector<SimJob> jobs;
    for (const BenchId id : benches)
        for (const char* predictor : predictors)
            jobs.push_back(baseJob(options, id, predictor, "fig6"));
    const std::vector<JobResult> results = engine.run(jobs);

    TextTable table("Figure 6: baseline cycles / CPI / accuracy per predictor");
    table.setHeader({"benchmark", "predictor", "cycles", "CPI", "acc",
                     "mispredicts", "branch fraction"});
    for (const JobResult& r : results) {
        sink.add(r);
        table.addRow({r.report.meta.benchmark, r.report.meta.predictor,
                      formatWithCommas(r.stats.cycles),
                      formatFixed(r.stats.cpi(), 2),
                      formatPercent(r.stats.predictorAccuracy()),
                      formatWithCommas(r.stats.mispredicts),
                      formatPercent(r.stats.branchFraction())});
    }
    printTable(options, table);
    sink.write();

    std::puts("Paper reference (Figure 6, authors' inputs/testbed):");
    std::puts("  ADPCM Enc : not-taken 12.2M cyc CPI 1.85 32% | bimodal 9.4M 1.41 69% | gshare 8.5M 1.28 82%");
    std::puts("  ADPCM Dec : not-taken 10.8M cyc CPI 1.96 31% | bimodal 7.9M 1.44 71% | gshare 7.3M 1.32 81%");
    std::puts("  G.721 Enc : not-taken 80.7M cyc CPI 1.73 53% | bimodal 62.1M 1.33 91% | gshare 62.3M 1.33 91%");
    std::puts("  G.721 Dec : not-taken 80.4M cyc CPI 1.83 53% | bimodal 62.8M 1.43 91% | gshare 63.1M 1.44 90%");
    return 0;
}

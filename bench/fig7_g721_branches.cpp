// Figure 7 — Execution statistics for the branches selected for G.721.
//
// For the 16 branches the selector picks for the G.721 encoder (15 for the
// decoder), print the dynamic execution count and the per-site accuracy of
// each general-purpose predictor — the paper's evidence that the selected
// branches are frequent and that several of them defeat every predictor.
#include <cstdio>

#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

namespace {

void reportBench(const Options& options, BenchId id) {
    const Prepared prepared = prepare(id, options);

    // Per-site accuracies under each predictor.
    std::unique_ptr<BranchPredictor> predictors[] = {
        makeNotTaken(), makeBimodal2048(), makeGshare2048()};
    std::map<std::uint32_t, BranchSiteStats> sites[3];
    for (int p = 0; p < 3; ++p)
        sites[p] = runPipeline(prepared, *predictors[p]).stats.branchSites;

    // Selection uses the bimodal-2048 accuracies as the hardness reference.
    const AsbrSetup setup = prepareAsbr(prepared, paperBitEntries(id),
                                        ValueStage::kMemEnd,
                                        accuracyMap({.branchSites = sites[1]}));

    TextTable table(std::string("Figure ") +
                    (id == BenchId::kG721Encode ? "7 (encode)" : "7 (decode)") +
                    ": branches selected for " + benchName(id));
    table.setHeader({"branch", "pc", "exec #", "taken", "acc not-taken",
                     "acc bimodal", "acc gshare", "foldable@3"});
    int index = 0;
    for (const Candidate& c : setup.candidates) {
        char pcText[16];
        std::snprintf(pcText, sizeof pcText, "0x%05x", c.pc);
        auto accOf = [&](int p) {
            const auto it = sites[p].find(c.pc);
            return it == sites[p].end() ? 0.0 : it->second.accuracy();
        };
        table.addRow({"br" + std::to_string(index++), pcText,
                      formatWithCommas(c.execs), formatFixed(c.takenRate, 2),
                      formatFixed(accOf(0), 2), formatFixed(accOf(1), 2),
                      formatFixed(accOf(2), 2),
                      formatFixed(c.foldableFraction, 2)});
    }
    printTable(options, table);
}

}  // namespace

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    reportBench(options, BenchId::kG721Encode);
    reportBench(options, BenchId::kG721Decode);
    std::puts("Paper reference (Figure 7): 16 branches for the encoder (15 for the");
    std::puts("decoder), exec counts 23k..1.76M, several sites where even gshare is");
    std::puts("stuck near 0.5-0.6 while others are >0.95.");
    return 0;
}

// Figure 7 — Execution statistics for the branches selected for G.721.
//
// For the 16 branches the selector picks for the G.721 encoder (15 for the
// decoder), print the dynamic execution count and the per-site accuracy of
// each general-purpose predictor — the paper's evidence that the selected
// branches are frequent and that several of them defeat every predictor.
// The table logic is shared with Figures 9/10 (bench_util.cpp).
#include <cstdio>

#include "bench_util.hpp"

using namespace asbr;
using namespace asbr::bench;

int main(int argc, char** argv) {
    const Options options = parseOptions(argc, argv);
    SimEngine engine({.threads = options.threads});
    ReportSink sink("fig7_g721_branches", options);
    reportSelectedBranches(engine, options, BenchId::kG721Encode, "7 (encode)",
                           &sink);
    reportSelectedBranches(engine, options, BenchId::kG721Decode, "7 (decode)",
                           &sink);
    sink.write();
    std::puts("Paper reference (Figure 7): 16 branches for the encoder (15 for the");
    std::puts("decoder), exec counts 23k..1.76M, several sites where even gshare is");
    std::puts("stuck near 0.5-0.6 while others are >0.95.");
    return 0;
}

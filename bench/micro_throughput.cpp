// Micro-benchmarks (google-benchmark) for the simulation infrastructure
// itself: simulator cycle throughput, predictor lookup/update cost, ASBR
// fold cost, assembler and compiler speed.  These are engineering numbers
// for users of the library, not paper results.
#include <benchmark/benchmark.h>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "bp/gshare.hpp"
#include "bp/perceptron.hpp"
#include "bp/tage.hpp"
#include "cc/compile.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "sim/sampling.hpp"
#include "util/rng.hpp"
#include "workloads/input_gen.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace asbr;

const Program& adpcmProgram() {
    static const Program program = buildBench(BenchId::kAdpcmEncode);
    return program;
}

const std::vector<std::int16_t>& pcmInput() {
    static const std::vector<std::int16_t> pcm = generateSpeech(4000, 5);
    return pcm;
}

void BM_FunctionalSim(benchmark::State& state) {
    const Program& p = adpcmProgram();
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        Memory mem;
        mem.loadProgram(p);
        loadPcmInput(mem, p, pcmInput());
        FunctionalSim sim(p, mem);
        instructions += sim.run().instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSim)->Unit(benchmark::kMillisecond);

void BM_PipelineSim(benchmark::State& state) {
    const Program& p = adpcmProgram();
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Memory mem;
        mem.loadProgram(p);
        loadPcmInput(mem, p, pcmInput());
        auto bp = makeBimodal2048();
        PipelineSim sim(p, mem, *bp);
        cycles += sim.run().stats.cycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSim)->Unit(benchmark::kMillisecond);

void BM_PipelineSimWithAsbr(benchmark::State& state) {
    const Program& p = adpcmProgram();
    const auto pcs = allConditionalBranches(p);
    std::vector<std::uint32_t> selected(
        pcs.begin(), pcs.begin() + std::min<std::size_t>(pcs.size(), 16));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        Memory mem;
        mem.loadProgram(p);
        loadPcmInput(mem, p, pcmInput());
        auto bp = makeBimodal(512, 512);
        AsbrUnit unit;
        unit.loadBank(0, extractBranchInfos(p, selected));
        PipelineSim sim(p, mem, *bp, PipelineConfig{}, &unit);
        cycles += sim.run().stats.cycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSimWithAsbr)->Unit(benchmark::kMillisecond);

void BM_SampledSim(benchmark::State& state) {
    const Program& p = adpcmProgram();
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        Memory mem;
        mem.loadProgram(p);
        loadPcmInput(mem, p, pcmInput());
        auto bp = makeBimodal2048();
        // Default window geometry (2k warmup / 10k measure / 100k skip);
        // instr/s here is the headline sim-speed number docs/simulation.md
        // quotes, measured on the same input as BM_PipelineSim above.
        instructions += runSampled(p, mem, *bp, SamplingConfig{})
                            .totalInstructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SampledSim)->Unit(benchmark::kMillisecond);

template <typename MakePredictor>
void predictorLoop(benchmark::State& state, MakePredictor make) {
    auto predictor = make();
    Xorshift64 rng(7);
    std::vector<std::uint32_t> pcs;
    std::vector<bool> outcomes;
    for (int i = 0; i < 4096; ++i) {
        pcs.push_back(0x1000 + static_cast<std::uint32_t>(rng.below(256)) * 4);
        outcomes.push_back(rng.chance(0.7));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const std::uint32_t pc = pcs[i & 4095];
        benchmark::DoNotOptimize(predictor->predict(pc));
        predictor->update(pc, outcomes[i & 4095], pc + 64);
        ++i;
    }
}

void BM_BimodalPredict(benchmark::State& state) {
    predictorLoop(state, [] { return makeBimodal2048(); });
}
BENCHMARK(BM_BimodalPredict);

void BM_GSharePredict(benchmark::State& state) {
    predictorLoop(state, [] { return makeGshare2048(); });
}
BENCHMARK(BM_GSharePredict);

void BM_TagePredict(benchmark::State& state) {
    predictorLoop(state, [] { return makeTage(); });
}
BENCHMARK(BM_TagePredict);

void BM_PerceptronPredict(benchmark::State& state) {
    predictorLoop(state, [] { return makePerceptron(); });
}
BENCHMARK(BM_PerceptronPredict);

void BM_BitLookup(benchmark::State& state) {
    const Program& p = adpcmProgram();
    const auto pcs = allConditionalBranches(p);
    AsbrUnit unit;
    unit.loadBank(0, extractBranchInfos(
                         p, std::span(pcs).subspan(
                                0, std::min<std::size_t>(pcs.size(), 16))));
    std::size_t i = 0;
    for (auto _ : state) {
        const std::uint32_t pc = pcs[i % pcs.size()];
        benchmark::DoNotOptimize(unit.bit().lookup(pc));
        ++i;
    }
}
BENCHMARK(BM_BitLookup);

void BM_Assemble(benchmark::State& state) {
    std::string src = "main:\n";
    for (int i = 0; i < 500; ++i)
        src += "  addiu t0, t0, 1\n  bnez t0, main\n";
    src += "  li v0, 1\n  li a0, 0\n  sys\n";
    for (auto _ : state) benchmark::DoNotOptimize(assemble(src));
    state.SetItemsProcessed(state.iterations() * 1003);
}
BENCHMARK(BM_Assemble)->Unit(benchmark::kMicrosecond);

void BM_CompileG721(benchmark::State& state) {
    const std::string src = g721EncoderSource();
    for (auto _ : state) benchmark::DoNotOptimize(cc::compile(src));
}
BENCHMARK(BM_CompileG721)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// ep32 code generation for mcc.
//
// Calling convention (o32-flavoured):
//   - arguments in a0..a3 (max 4), result in v0
//   - t0..t9 are caller-saved expression temporaries
//   - s0..s7 are callee-saved; the first 8 scalar locals/params of each
//     function live there, the rest in stack slots
//   - `at` is the code generator's address-forming scratch register
//   - gp addresses the small-data area (all globals)
//
// The generated program starts at `__start`, which calls main and passes its
// return value to the exit syscall.
#pragma once

#include <string>

#include "cc/ast.hpp"

namespace asbr::cc {

/// Generate ep32 assembly text for a parsed translation unit.
/// Requires a `main` function (signals the entry point).
[[nodiscard]] std::string generateAssembly(const TranslationUnit& unit);

}  // namespace asbr::cc

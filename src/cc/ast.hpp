// Abstract syntax tree for mcc, the mini-C compiler used to build the
// benchmark workloads (the paper compiled MediaBench with gcc for
// SimpleScalar; mcc plays that role for ep32).
//
// Language subset:
//   - types: int (32-bit), short, char; global scalars and 1-D global arrays;
//     locals and parameters are int scalars
//   - functions with up to 4 int parameters, int or void return
//   - statements: blocks, if/else, while, do-while, for, return, break,
//     continue, expression statements
//   - expressions: assignment (= and compound), ?:, || && | ^ & == != < <= >
//     >= << >> + - * / % unary - ! ~ ++ -- (pre/post), array indexing, calls,
//     integer literals
//   - intrinsics: __putint(e), __putchar(e), __bitbank(e)
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace asbr::cc {

/// Element type of a variable or array.
enum class BaseType { kVoid, kInt, kShort, kChar };

[[nodiscard]] inline int sizeOf(BaseType t) {
    switch (t) {
        case BaseType::kInt: return 4;
        case BaseType::kShort: return 2;
        case BaseType::kChar: return 1;
        case BaseType::kVoid: return 0;
    }
    return 0;
}

enum class ExprKind {
    kIntLit,
    kVar,       // identifier
    kIndex,     // base[index] — base must be a global array name
    kCall,      // callee(args)
    kUnary,     // op operand
    kBinary,    // lhs op rhs
    kAssign,    // target (kVar/kIndex) op= value ; op '=' for plain
    kTernary,   // cond ? thenExpr : elseExpr
    kIncDec,    // ++/-- on kVar/kIndex, prefix or postfix
};

enum class UnOp { kNeg, kNot, kBitNot };

enum class BinOp {
    kAdd, kSub, kMul, kDiv, kMod,
    kShl, kShr,
    kLt, kLe, kGt, kGe, kEq, kNe,
    kBitAnd, kBitOr, kBitXor,
    kLogAnd, kLogOr,
};

struct Expr {
    ExprKind kind = ExprKind::kIntLit;
    int line = 0;

    std::int64_t value = 0;   // kIntLit
    std::string name;         // kVar, kIndex (array), kCall (callee)
    UnOp unOp = UnOp::kNeg;
    BinOp binOp = BinOp::kAdd;  // kBinary; compound-assign op for kAssign
    bool compound = false;      // kAssign: += etc.
    bool increment = false;     // kIncDec: ++ vs --
    bool prefix = false;        // kIncDec
    std::unique_ptr<Expr> a;    // operand / lhs / cond / index target base...
    std::unique_ptr<Expr> b;    // rhs / then
    std::unique_ptr<Expr> c;    // else
    std::vector<std::unique_ptr<Expr>> args;  // kCall
};

enum class StmtKind {
    kExpr,
    kBlock,
    kIf,
    kWhile,
    kDoWhile,
    kFor,
    kReturn,
    kBreak,
    kContinue,
    kDecl,   // local declarations
    kEmpty,
};

struct LocalDecl {
    std::string name;
    std::unique_ptr<Expr> init;  // may be null
};

struct Stmt {
    StmtKind kind = StmtKind::kEmpty;
    int line = 0;
    std::unique_ptr<Expr> expr;   // kExpr, kReturn (may be null), conditions
    std::unique_ptr<Stmt> body;   // loop/if body
    std::unique_ptr<Stmt> elseBody;
    std::unique_ptr<Stmt> init;   // kFor
    std::unique_ptr<Expr> post;   // kFor
    std::vector<std::unique_ptr<Stmt>> block;  // kBlock
    std::vector<LocalDecl> decls;              // kDecl
};

struct GlobalDecl {
    std::string name;
    BaseType type = BaseType::kInt;
    bool isArray = false;
    std::int64_t arraySize = 0;
    std::vector<std::int64_t> init;  // const-evaluated initializers
    int line = 0;
};

struct Param {
    std::string name;
};

struct FuncDef {
    std::string name;
    BaseType returnType = BaseType::kInt;  // kInt or kVoid
    std::vector<Param> params;
    std::unique_ptr<Stmt> body;  // kBlock
    int line = 0;
};

struct TranslationUnit {
    std::vector<GlobalDecl> globals;
    std::vector<FuncDef> functions;
};

}  // namespace asbr::cc

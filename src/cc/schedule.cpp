#include "cc/schedule.hpp"

#include <algorithm>
#include <vector>

#include "util/ensure.hpp"

namespace asbr::cc {

namespace {

bool isBarrier(Op op) { return op == Op::kSys; }

bool endsBlock(Op op) { return isControl(op) || isBarrier(op); }

/// Basic-block leader flags for every instruction index.
std::vector<bool> computeLeaders(const Program& program) {
    const std::size_t n = program.code.size();
    std::vector<bool> leader(n, false);
    if (n == 0) return leader;
    leader[0] = true;
    for (std::size_t i = 0; i < n; ++i) {
        const Instruction& ins = program.code[i];
        if (isCondBranch(ins.op)) {
            const std::int64_t target =
                static_cast<std::int64_t>(i) + 1 + ins.imm;
            if (target >= 0 && target < static_cast<std::int64_t>(n))
                leader[static_cast<std::size_t>(target)] = true;
        } else if (ins.op == Op::kJ || ins.op == Op::kJal) {
            const std::uint32_t addr =
                static_cast<std::uint32_t>(ins.imm) * kInstrBytes;
            if (program.inText(addr))
                leader[(addr - program.textBase) / kInstrBytes] = true;
        }
        if (endsBlock(ins.op) && i + 1 < n) leader[i + 1] = true;
    }
    // The entry point is a leader too.
    if (program.inText(program.entry))
        leader[(program.entry - program.textBase) / kInstrBytes] = true;
    return leader;
}

/// Dependence-respecting list scheduler for one block [lo, hi) whose last
/// instruction (hi-1) is a conditional branch.  Returns the new order of the
/// body [lo, hi-1) as indices into the program.
std::vector<std::size_t> scheduleBlock(const Program& program, std::size_t lo,
                                       std::size_t hi) {
    const std::size_t branchIdx = hi - 1;
    const std::size_t bodyLen = branchIdx - lo;
    std::vector<std::size_t> order;
    order.reserve(bodyLen);

    // Build the dependence DAG over the body.
    // preds[k] = body-relative indices that must precede body instruction k.
    std::vector<std::vector<std::size_t>> preds(bodyLen);
    auto addEdge = [&preds](std::size_t from, std::size_t to) {
        preds[to].push_back(from);
    };
    for (std::size_t j = 0; j < bodyLen; ++j) {
        const Instruction& insJ = program.code[lo + j];
        const auto dstJ = destReg(insJ);
        const SrcRegs srcJ = srcRegs(insJ);
        const bool memJ = isLoad(insJ.op) || isStore(insJ.op);
        for (std::size_t i = 0; i < j; ++i) {
            const Instruction& insI = program.code[lo + i];
            const auto dstI = destReg(insI);
            const SrcRegs srcI = srcRegs(insI);
            bool dep = false;
            // RAW: j reads i's destination.
            if (dstI && *dstI != reg::zero) {
                for (int s = 0; s < srcJ.count; ++s)
                    if (srcJ.regs[s] == *dstI) dep = true;
                // WAW.
                if (dstJ && *dstJ == *dstI) dep = true;
            }
            // WAR: j writes a register i reads.
            if (dstJ && *dstJ != reg::zero) {
                for (int s = 0; s < srcI.count; ++s)
                    if (srcI.regs[s] == *dstJ) dep = true;
            }
            // Memory: conservative — keep all load/store pairs ordered except
            // load-load.
            const bool memI = isLoad(insI.op) || isStore(insI.op);
            if (memI && memJ && !(isLoad(insI.op) && isLoad(insJ.op))) dep = true;
            if (dep) addEdge(i, j);
        }
    }

    // Mark the condition chain: the last writer of the branch register and
    // its transitive true-dependence ancestors.
    const Instruction& branch = program.code[branchIdx];
    std::vector<bool> chain(bodyLen, false);
    std::int64_t condDef = -1;
    if (branch.rs != reg::zero) {
        for (std::size_t i = bodyLen; i-- > 0;) {
            const auto dst = destReg(program.code[lo + i]);
            if (dst && *dst == branch.rs) {
                condDef = static_cast<std::int64_t>(i);
                break;
            }
        }
    }
    if (condDef < 0) {
        // Condition defined outside this block: nothing to gain.
        for (std::size_t i = 0; i < bodyLen; ++i) order.push_back(lo + i);
        return order;
    }
    // Transitive ancestors through register true-dependences.
    std::vector<std::size_t> work{static_cast<std::size_t>(condDef)};
    chain[static_cast<std::size_t>(condDef)] = true;
    while (!work.empty()) {
        const std::size_t k = work.back();
        work.pop_back();
        const SrcRegs srcs = srcRegs(program.code[lo + k]);
        for (int s = 0; s < srcs.count; ++s) {
            const std::uint8_t r = srcs.regs[s];
            if (r == reg::zero) continue;
            for (std::size_t i = k; i-- > 0;) {
                const auto dst = destReg(program.code[lo + i]);
                if (dst && *dst == r) {
                    if (!chain[i]) {
                        chain[i] = true;
                        work.push_back(i);
                    }
                    break;  // only the last writer before k matters
                }
            }
        }
        // Memory/order predecessors must also be hoisted for the chain to
        // move: include them so a chain load can drag its store barrier.
        for (std::size_t p : preds[k]) {
            if (!chain[p]) {
                chain[p] = true;
                work.push_back(p);
            }
        }
    }

    // Priority list scheduling: chain instructions as early as possible.
    std::vector<std::size_t> remainingPreds(bodyLen, 0);
    for (std::size_t k = 0; k < bodyLen; ++k) {
        std::sort(preds[k].begin(), preds[k].end());
        preds[k].erase(std::unique(preds[k].begin(), preds[k].end()),
                       preds[k].end());
        remainingPreds[k] = preds[k].size();
    }
    std::vector<std::vector<std::size_t>> succs(bodyLen);
    for (std::size_t k = 0; k < bodyLen; ++k)
        for (std::size_t p : preds[k]) succs[p].push_back(k);

    std::vector<bool> emitted(bodyLen, false);
    for (std::size_t step = 0; step < bodyLen; ++step) {
        std::int64_t pick = -1;
        bool pickIsChain = false;
        for (std::size_t k = 0; k < bodyLen; ++k) {
            if (emitted[k] || remainingPreds[k] != 0) continue;
            if (pick < 0 || (chain[k] && !pickIsChain)) {
                pick = static_cast<std::int64_t>(k);
                pickIsChain = chain[k];
            }
        }
        ASBR_ENSURE(pick >= 0, "scheduler deadlock (cyclic dependence?)");
        const auto k = static_cast<std::size_t>(pick);
        emitted[k] = true;
        order.push_back(lo + k);
        for (std::size_t s : succs[k]) --remainingPreds[s];
    }
    return order;
}

}  // namespace

ScheduleStats scheduleConditionChains(Program& program) {
    ScheduleStats stats;
    const std::vector<bool> leaders = computeLeaders(program);
    const std::size_t n = program.code.size();

    std::vector<Instruction> newCode = program.code;
    std::vector<int> newLines = program.lineOf;
    newLines.resize(n, -1);

    std::size_t lo = 0;
    while (lo < n) {
        std::size_t hi = lo + 1;
        while (hi < n && !leaders[hi] && !endsBlock(program.code[hi - 1].op))
            ++hi;
        // [lo, hi) is one basic block.
        if (hi - lo >= 3 && isCondBranch(program.code[hi - 1].op)) {
            ++stats.blocksConsidered;
            const std::vector<std::size_t> order =
                scheduleBlock(program, lo, hi);
            bool changed = false;
            for (std::size_t k = 0; k < order.size(); ++k) {
                if (order[k] != lo + k) {
                    changed = true;
                    ++stats.instructionsMoved;
                }
                newCode[lo + k] = program.code[order[k]];
                newLines[lo + k] = order[k] < program.lineOf.size()
                                       ? program.lineOf[order[k]]
                                       : -1;
            }
            if (changed) ++stats.blocksChanged;
        }
        lo = hi;
    }
    program.code = std::move(newCode);
    program.lineOf = std::move(newLines);
    return stats;
}

}  // namespace asbr::cc

// Lexer for the mcc C subset.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace asbr::cc {

/// Compilation failure with 1-based source line information.
class CompileError : public std::runtime_error {
public:
    CompileError(int line, const std::string& message)
        : std::runtime_error("mcc:" + std::to_string(line) + ": " + message),
          line_(line) {}

    [[nodiscard]] int line() const { return line_; }

private:
    int line_;
};

enum class Tok {
    kEof,
    kIntLit,
    kIdent,
    // keywords
    kKwInt, kKwShort, kKwChar, kKwVoid, kKwConst,
    kKwIf, kKwElse, kKwWhile, kKwDo, kKwFor,
    kKwReturn, kKwBreak, kKwContinue,
    // punctuation / operators
    kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
    kSemi, kComma, kQuestion, kColon,
    kAssign,                        // =
    kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
    kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
    kPlus, kMinus, kStar, kSlash, kPercent,
    kAmp, kPipe, kCaret, kTilde, kBang,
    kAmpAmp, kPipePipe,
    kEq, kNe, kLt, kLe, kGt, kGe, kShl, kShr,
    kPlusPlus, kMinusMinus,
};

struct Token {
    Tok kind = Tok::kEof;
    int line = 1;
    std::int64_t value = 0;  // kIntLit
    std::string text;        // kIdent
};

/// Tokenize a full translation unit.  // and /* */ comments are skipped.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

/// Human-readable token name for diagnostics.
[[nodiscard]] const char* tokName(Tok t);

}  // namespace asbr::cc

// One-call compilation pipeline: C subset -> assembly -> linked Program.
#pragma once

#include <string>

#include "asm/assembler.hpp"
#include "cc/ast.hpp"
#include "cc/lexer.hpp"  // CompileError
#include "cc/schedule.hpp"

namespace asbr::cc {

struct CompileOptions {
    /// Run the branch-condition scheduling pass (Section 5.1 support).
    bool scheduleConditions = true;
    std::uint32_t textBase = kTextBase;
    std::uint32_t dataBase = kDataBase;
};

struct Compiled {
    std::string assembly;   ///< generated (pre-scheduling) assembly text
    Program program;        ///< linked image, scheduled when requested
    ScheduleStats schedule; ///< all-zero when scheduling was disabled
};

/// Compile a translation unit.  Throws CompileError / AsmError on failure.
[[nodiscard]] Compiled compile(const std::string& source,
                               const CompileOptions& options = {});

}  // namespace asbr::cc

#include "cc/compile.hpp"

#include "cc/codegen.hpp"
#include "cc/parser.hpp"

namespace asbr::cc {

Compiled compile(const std::string& source, const CompileOptions& options) {
    Compiled result;
    const TranslationUnit unit = parse(source);
    result.assembly = generateAssembly(unit);

    AsmOptions asmOptions;
    asmOptions.textBase = options.textBase;
    asmOptions.dataBase = options.dataBase;
    asmOptions.entrySymbol = "__start";
    result.program = assemble(result.assembly, asmOptions);

    if (options.scheduleConditions)
        result.schedule = scheduleConditionChains(result.program);
    return result;
}

}  // namespace asbr::cc

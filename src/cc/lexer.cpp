#include "cc/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace asbr::cc {

namespace {

const std::unordered_map<std::string, Tok>& keywordTable() {
    static const std::unordered_map<std::string, Tok> table = {
        {"int", Tok::kKwInt},         {"short", Tok::kKwShort},
        {"char", Tok::kKwChar},       {"void", Tok::kKwVoid},
        {"const", Tok::kKwConst},     {"if", Tok::kKwIf},
        {"else", Tok::kKwElse},       {"while", Tok::kKwWhile},
        {"do", Tok::kKwDo},           {"for", Tok::kKwFor},
        {"return", Tok::kKwReturn},   {"break", Tok::kKwBreak},
        {"continue", Tok::kKwContinue},
    };
    return table;
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;
    const std::size_t n = src.size();

    auto peek = [&](std::size_t k = 0) -> char {
        return i + k < n ? src[i + k] : '\0';
    };
    auto push = [&](Tok kind, std::size_t width) {
        out.push_back({kind, line, 0, {}});
        i += width;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && peek(1) == '/') {
            while (i < n && src[i] != '\n') ++i;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n') ++line;
                ++i;
            }
            if (i + 1 >= n) throw CompileError(line, "unterminated comment");
            i += 2;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::int64_t value = 0;
            if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
                i += 2;
                if (!std::isxdigit(static_cast<unsigned char>(peek())))
                    throw CompileError(line, "bad hex literal");
                while (std::isxdigit(static_cast<unsigned char>(peek()))) {
                    const char d = src[i++];
                    int digit = d <= '9' ? d - '0'
                                         : (std::tolower(d) - 'a' + 10);
                    value = value * 16 + digit;
                    if (value > 0xFFFFFFFFLL)
                        throw CompileError(line, "integer literal too large");
                }
            } else {
                while (std::isdigit(static_cast<unsigned char>(peek()))) {
                    value = value * 10 + (src[i++] - '0');
                    if (value > 0xFFFFFFFFLL)
                        throw CompileError(line, "integer literal too large");
                }
            }
            out.push_back({Tok::kIntLit, line, value, {}});
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_')
                ++i;
            const std::string text = src.substr(start, i - start);
            const auto it = keywordTable().find(text);
            if (it != keywordTable().end()) {
                out.push_back({it->second, line, 0, {}});
            } else {
                out.push_back({Tok::kIdent, line, 0, text});
            }
            continue;
        }
        switch (c) {
            case '(': push(Tok::kLParen, 1); break;
            case ')': push(Tok::kRParen, 1); break;
            case '{': push(Tok::kLBrace, 1); break;
            case '}': push(Tok::kRBrace, 1); break;
            case '[': push(Tok::kLBracket, 1); break;
            case ']': push(Tok::kRBracket, 1); break;
            case ';': push(Tok::kSemi, 1); break;
            case ',': push(Tok::kComma, 1); break;
            case '?': push(Tok::kQuestion, 1); break;
            case ':': push(Tok::kColon, 1); break;
            case '~': push(Tok::kTilde, 1); break;
            case '+':
                if (peek(1) == '+') push(Tok::kPlusPlus, 2);
                else if (peek(1) == '=') push(Tok::kPlusAssign, 2);
                else push(Tok::kPlus, 1);
                break;
            case '-':
                if (peek(1) == '-') push(Tok::kMinusMinus, 2);
                else if (peek(1) == '=') push(Tok::kMinusAssign, 2);
                else push(Tok::kMinus, 1);
                break;
            case '*':
                if (peek(1) == '=') push(Tok::kStarAssign, 2);
                else push(Tok::kStar, 1);
                break;
            case '/':
                if (peek(1) == '=') push(Tok::kSlashAssign, 2);
                else push(Tok::kSlash, 1);
                break;
            case '%':
                if (peek(1) == '=') push(Tok::kPercentAssign, 2);
                else push(Tok::kPercent, 1);
                break;
            case '&':
                if (peek(1) == '&') push(Tok::kAmpAmp, 2);
                else if (peek(1) == '=') push(Tok::kAmpAssign, 2);
                else push(Tok::kAmp, 1);
                break;
            case '|':
                if (peek(1) == '|') push(Tok::kPipePipe, 2);
                else if (peek(1) == '=') push(Tok::kPipeAssign, 2);
                else push(Tok::kPipe, 1);
                break;
            case '^':
                if (peek(1) == '=') push(Tok::kCaretAssign, 2);
                else push(Tok::kCaret, 1);
                break;
            case '!':
                if (peek(1) == '=') push(Tok::kNe, 2);
                else push(Tok::kBang, 1);
                break;
            case '=':
                if (peek(1) == '=') push(Tok::kEq, 2);
                else push(Tok::kAssign, 1);
                break;
            case '<':
                if (peek(1) == '<' && peek(2) == '=') push(Tok::kShlAssign, 3);
                else if (peek(1) == '<') push(Tok::kShl, 2);
                else if (peek(1) == '=') push(Tok::kLe, 2);
                else push(Tok::kLt, 1);
                break;
            case '>':
                if (peek(1) == '>' && peek(2) == '=') push(Tok::kShrAssign, 3);
                else if (peek(1) == '>') push(Tok::kShr, 2);
                else if (peek(1) == '=') push(Tok::kGe, 2);
                else push(Tok::kGt, 1);
                break;
            default:
                throw CompileError(line, std::string("unexpected character '") +
                                             c + "'");
        }
    }
    out.push_back({Tok::kEof, line, 0, {}});
    return out;
}

const char* tokName(Tok t) {
    switch (t) {
        case Tok::kEof: return "end of file";
        case Tok::kIntLit: return "integer literal";
        case Tok::kIdent: return "identifier";
        case Tok::kKwInt: return "'int'";
        case Tok::kKwShort: return "'short'";
        case Tok::kKwChar: return "'char'";
        case Tok::kKwVoid: return "'void'";
        case Tok::kKwConst: return "'const'";
        case Tok::kKwIf: return "'if'";
        case Tok::kKwElse: return "'else'";
        case Tok::kKwWhile: return "'while'";
        case Tok::kKwDo: return "'do'";
        case Tok::kKwFor: return "'for'";
        case Tok::kKwReturn: return "'return'";
        case Tok::kKwBreak: return "'break'";
        case Tok::kKwContinue: return "'continue'";
        case Tok::kLParen: return "'('";
        case Tok::kRParen: return "')'";
        case Tok::kLBrace: return "'{'";
        case Tok::kRBrace: return "'}'";
        case Tok::kLBracket: return "'['";
        case Tok::kRBracket: return "']'";
        case Tok::kSemi: return "';'";
        case Tok::kComma: return "','";
        case Tok::kQuestion: return "'?'";
        case Tok::kColon: return "':'";
        case Tok::kAssign: return "'='";
        default: return "operator";
    }
}

}  // namespace asbr::cc

#include "cc/parser.hpp"

#include <unordered_map>
#include <utility>

namespace asbr::cc {

namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    TranslationUnit parseUnit() {
        TranslationUnit unit;
        while (!at(Tok::kEof)) {
            // const? type ident  -> global or function
            accept(Tok::kKwConst);
            const BaseType type = parseType();
            const Token nameTok = expect(Tok::kIdent);
            if (at(Tok::kLParen)) {
                unit.functions.push_back(parseFunction(type, nameTok));
            } else {
                parseGlobal(unit, type, nameTok);
            }
        }
        return unit;
    }

private:
    // ------------------------------------------------------- token flow ----
    [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
    [[nodiscard]] bool at(Tok k) const { return cur().kind == k; }
    [[nodiscard]] int line() const { return cur().line; }

    bool accept(Tok k) {
        if (!at(k)) return false;
        ++pos_;
        return true;
    }

    Token expect(Tok k) {
        if (!at(k))
            throw CompileError(line(), std::string("expected ") + tokName(k) +
                                           ", got " + tokName(cur().kind));
        return toks_[pos_++];
    }

    // ------------------------------------------------------ declarations ----
    BaseType parseType() {
        if (accept(Tok::kKwInt)) return BaseType::kInt;
        if (accept(Tok::kKwShort)) return BaseType::kShort;
        if (accept(Tok::kKwChar)) return BaseType::kChar;
        if (accept(Tok::kKwVoid)) return BaseType::kVoid;
        throw CompileError(line(), "expected a type");
    }

    void parseGlobal(TranslationUnit& unit, BaseType type, const Token& first) {
        if (type == BaseType::kVoid)
            throw CompileError(first.line, "variables cannot be void");
        Token nameTok = first;
        while (true) {
            GlobalDecl g;
            g.name = nameTok.text;
            g.type = type;
            g.line = nameTok.line;
            if (accept(Tok::kLBracket)) {
                g.isArray = true;
                if (!at(Tok::kRBracket)) {
                    g.arraySize = evalConst(*parseExpr());
                    if (g.arraySize <= 0)
                        throw CompileError(g.line, "array size must be positive");
                }
                expect(Tok::kRBracket);
            }
            if (accept(Tok::kAssign)) {
                if (g.isArray) {
                    expect(Tok::kLBrace);
                    if (!at(Tok::kRBrace)) {
                        do {
                            g.init.push_back(evalConst(*parseAssignment()));
                        } while (accept(Tok::kComma));
                    }
                    expect(Tok::kRBrace);
                    if (g.arraySize == 0) {
                        g.arraySize = static_cast<std::int64_t>(g.init.size());
                    } else if (static_cast<std::int64_t>(g.init.size()) >
                               g.arraySize) {
                        throw CompileError(g.line, "too many initializers");
                    }
                } else {
                    g.init.push_back(evalConst(*parseAssignment()));
                }
            }
            if (g.isArray && g.arraySize == 0)
                throw CompileError(g.line, "array needs a size or initializer");
            unit.globals.push_back(std::move(g));
            if (!accept(Tok::kComma)) break;
            nameTok = expect(Tok::kIdent);
        }
        expect(Tok::kSemi);
    }

    FuncDef parseFunction(BaseType type, const Token& nameTok) {
        if (type == BaseType::kShort || type == BaseType::kChar)
            throw CompileError(nameTok.line,
                               "functions return int or void only");
        FuncDef fn;
        fn.name = nameTok.text;
        fn.returnType = type;
        fn.line = nameTok.line;
        expect(Tok::kLParen);
        if (!at(Tok::kRParen)) {
            if (at(Tok::kKwVoid) && toks_[pos_ + 1].kind == Tok::kRParen) {
                ++pos_;
            } else {
                do {
                    accept(Tok::kKwConst);
                    const BaseType pt = parseType();
                    if (pt == BaseType::kVoid)
                        throw CompileError(line(), "void parameter");
                    fn.params.push_back({expect(Tok::kIdent).text});
                } while (accept(Tok::kComma));
            }
        }
        expect(Tok::kRParen);
        if (fn.params.size() > 4)
            throw CompileError(fn.line, "at most 4 parameters supported");
        fn.body = parseBlock();
        return fn;
    }

    // --------------------------------------------------------- statements ----
    std::unique_ptr<Stmt> parseBlock() {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = StmtKind::kBlock;
        stmt->line = line();
        expect(Tok::kLBrace);
        while (!accept(Tok::kRBrace)) {
            if (at(Tok::kEof)) throw CompileError(line(), "unterminated block");
            stmt->block.push_back(parseStmt());
        }
        return stmt;
    }

    std::unique_ptr<Stmt> parseStmt() {
        const int ln = line();
        if (at(Tok::kLBrace)) return parseBlock();
        if (accept(Tok::kSemi)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kEmpty;
            s->line = ln;
            return s;
        }
        if (at(Tok::kKwInt) || at(Tok::kKwShort) || at(Tok::kKwChar) ||
            at(Tok::kKwConst)) {
            return parseLocalDecl();
        }
        if (accept(Tok::kKwIf)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kIf;
            s->line = ln;
            expect(Tok::kLParen);
            s->expr = parseExpr();
            expect(Tok::kRParen);
            s->body = parseStmt();
            if (accept(Tok::kKwElse)) s->elseBody = parseStmt();
            return s;
        }
        if (accept(Tok::kKwWhile)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kWhile;
            s->line = ln;
            expect(Tok::kLParen);
            s->expr = parseExpr();
            expect(Tok::kRParen);
            s->body = parseStmt();
            return s;
        }
        if (accept(Tok::kKwDo)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kDoWhile;
            s->line = ln;
            s->body = parseStmt();
            expect(Tok::kKwWhile);
            expect(Tok::kLParen);
            s->expr = parseExpr();
            expect(Tok::kRParen);
            expect(Tok::kSemi);
            return s;
        }
        if (accept(Tok::kKwFor)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kFor;
            s->line = ln;
            expect(Tok::kLParen);
            if (!at(Tok::kSemi)) {
                if (at(Tok::kKwInt)) {
                    s->init = parseLocalDecl();  // consumes ';'
                } else {
                    auto init = std::make_unique<Stmt>();
                    init->kind = StmtKind::kExpr;
                    init->line = line();
                    init->expr = parseExpr();
                    s->init = std::move(init);
                    expect(Tok::kSemi);
                }
            } else {
                expect(Tok::kSemi);
            }
            if (!at(Tok::kSemi)) s->expr = parseExpr();
            expect(Tok::kSemi);
            if (!at(Tok::kRParen)) s->post = parseExpr();
            expect(Tok::kRParen);
            s->body = parseStmt();
            return s;
        }
        if (accept(Tok::kKwReturn)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kReturn;
            s->line = ln;
            if (!at(Tok::kSemi)) s->expr = parseExpr();
            expect(Tok::kSemi);
            return s;
        }
        if (accept(Tok::kKwBreak)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kBreak;
            s->line = ln;
            expect(Tok::kSemi);
            return s;
        }
        if (accept(Tok::kKwContinue)) {
            auto s = std::make_unique<Stmt>();
            s->kind = StmtKind::kContinue;
            s->line = ln;
            expect(Tok::kSemi);
            return s;
        }
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kExpr;
        s->line = ln;
        s->expr = parseExpr();
        expect(Tok::kSemi);
        return s;
    }

    std::unique_ptr<Stmt> parseLocalDecl() {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kDecl;
        s->line = line();
        accept(Tok::kKwConst);
        const BaseType t = parseType();
        if (t != BaseType::kInt)
            throw CompileError(s->line, "locals must be int");
        do {
            LocalDecl d;
            d.name = expect(Tok::kIdent).text;
            if (at(Tok::kLBracket))
                throw CompileError(line(), "local arrays not supported");
            if (accept(Tok::kAssign)) d.init = parseAssignment();
            s->decls.push_back(std::move(d));
        } while (accept(Tok::kComma));
        expect(Tok::kSemi);
        return s;
    }

    // -------------------------------------------------------- expressions ----
    std::unique_ptr<Expr> parseExpr() { return parseAssignment(); }

    std::unique_ptr<Expr> parseAssignment() {
        auto lhs = parseTernary();
        BinOp op = BinOp::kAdd;
        bool compound = true;
        switch (cur().kind) {
            case Tok::kAssign: compound = false; break;
            case Tok::kPlusAssign: op = BinOp::kAdd; break;
            case Tok::kMinusAssign: op = BinOp::kSub; break;
            case Tok::kStarAssign: op = BinOp::kMul; break;
            case Tok::kSlashAssign: op = BinOp::kDiv; break;
            case Tok::kPercentAssign: op = BinOp::kMod; break;
            case Tok::kAmpAssign: op = BinOp::kBitAnd; break;
            case Tok::kPipeAssign: op = BinOp::kBitOr; break;
            case Tok::kCaretAssign: op = BinOp::kBitXor; break;
            case Tok::kShlAssign: op = BinOp::kShl; break;
            case Tok::kShrAssign: op = BinOp::kShr; break;
            default: return lhs;
        }
        const int ln = line();
        ++pos_;  // consume the assignment operator
        if (lhs->kind != ExprKind::kVar && lhs->kind != ExprKind::kIndex)
            throw CompileError(ln, "assignment target must be a variable or "
                                   "array element");
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kAssign;
        node->line = ln;
        node->binOp = op;
        node->compound = compound;
        node->a = std::move(lhs);
        node->b = parseAssignment();  // right-associative
        return node;
    }

    std::unique_ptr<Expr> parseTernary() {
        auto cond = parseBinary(0);
        if (!accept(Tok::kQuestion)) return cond;
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kTernary;
        node->line = cond->line;
        node->a = std::move(cond);
        node->b = parseExpr();
        expect(Tok::kColon);
        node->c = parseTernary();
        return node;
    }

    struct OpInfo {
        BinOp op;
        int precedence;
    };

    [[nodiscard]] static const OpInfo* binOpInfo(Tok t) {
        // Precedence: higher binds tighter.
        static const std::unordered_map<int, OpInfo> table = {
            {static_cast<int>(Tok::kPipePipe), {BinOp::kLogOr, 1}},
            {static_cast<int>(Tok::kAmpAmp), {BinOp::kLogAnd, 2}},
            {static_cast<int>(Tok::kPipe), {BinOp::kBitOr, 3}},
            {static_cast<int>(Tok::kCaret), {BinOp::kBitXor, 4}},
            {static_cast<int>(Tok::kAmp), {BinOp::kBitAnd, 5}},
            {static_cast<int>(Tok::kEq), {BinOp::kEq, 6}},
            {static_cast<int>(Tok::kNe), {BinOp::kNe, 6}},
            {static_cast<int>(Tok::kLt), {BinOp::kLt, 7}},
            {static_cast<int>(Tok::kLe), {BinOp::kLe, 7}},
            {static_cast<int>(Tok::kGt), {BinOp::kGt, 7}},
            {static_cast<int>(Tok::kGe), {BinOp::kGe, 7}},
            {static_cast<int>(Tok::kShl), {BinOp::kShl, 8}},
            {static_cast<int>(Tok::kShr), {BinOp::kShr, 8}},
            {static_cast<int>(Tok::kPlus), {BinOp::kAdd, 9}},
            {static_cast<int>(Tok::kMinus), {BinOp::kSub, 9}},
            {static_cast<int>(Tok::kStar), {BinOp::kMul, 10}},
            {static_cast<int>(Tok::kSlash), {BinOp::kDiv, 10}},
            {static_cast<int>(Tok::kPercent), {BinOp::kMod, 10}},
        };
        const auto it = table.find(static_cast<int>(t));
        return it == table.end() ? nullptr : &it->second;
    }

    std::unique_ptr<Expr> parseBinary(int minPrec) {
        auto lhs = parseUnary();
        while (true) {
            const OpInfo* info = binOpInfo(cur().kind);
            if (info == nullptr || info->precedence < minPrec) return lhs;
            const int ln = line();
            ++pos_;
            auto rhs = parseBinary(info->precedence + 1);
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::kBinary;
            node->line = ln;
            node->binOp = info->op;
            node->a = std::move(lhs);
            node->b = std::move(rhs);
            lhs = std::move(node);
        }
    }

    std::unique_ptr<Expr> parseUnary() {
        const int ln = line();
        if (accept(Tok::kMinus)) return makeUnary(UnOp::kNeg, ln);
        if (accept(Tok::kBang)) return makeUnary(UnOp::kNot, ln);
        if (accept(Tok::kTilde)) return makeUnary(UnOp::kBitNot, ln);
        if (accept(Tok::kPlus)) return parseUnary();
        if (accept(Tok::kPlusPlus)) return makeIncDec(true, true, ln);
        if (accept(Tok::kMinusMinus)) return makeIncDec(false, true, ln);
        return parsePostfix();
    }

    std::unique_ptr<Expr> makeUnary(UnOp op, int ln) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kUnary;
        node->line = ln;
        node->unOp = op;
        node->a = parseUnary();
        return node;
    }

    std::unique_ptr<Expr> makeIncDec(bool increment, bool prefix, int ln,
                                     std::unique_ptr<Expr> target = nullptr) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kIncDec;
        node->line = ln;
        node->increment = increment;
        node->prefix = prefix;
        node->a = target ? std::move(target) : parseUnary();
        if (node->a->kind != ExprKind::kVar && node->a->kind != ExprKind::kIndex)
            throw CompileError(ln, "++/-- needs a variable or array element");
        return node;
    }

    std::unique_ptr<Expr> parsePostfix() {
        auto e = parsePrimary();
        while (true) {
            const int ln = line();
            if (accept(Tok::kLBracket)) {
                if (e->kind != ExprKind::kVar)
                    throw CompileError(ln, "only named arrays can be indexed");
                auto node = std::make_unique<Expr>();
                node->kind = ExprKind::kIndex;
                node->line = ln;
                node->name = e->name;
                node->a = parseExpr();
                expect(Tok::kRBracket);
                e = std::move(node);
            } else if (accept(Tok::kLParen)) {
                if (e->kind != ExprKind::kVar)
                    throw CompileError(ln, "only named functions can be called");
                auto node = std::make_unique<Expr>();
                node->kind = ExprKind::kCall;
                node->line = ln;
                node->name = e->name;
                if (!at(Tok::kRParen)) {
                    do {
                        node->args.push_back(parseAssignment());
                    } while (accept(Tok::kComma));
                }
                expect(Tok::kRParen);
                if (node->args.size() > 4)
                    throw CompileError(ln, "at most 4 arguments supported");
                e = std::move(node);
            } else if (accept(Tok::kPlusPlus)) {
                e = makeIncDec(true, false, ln, std::move(e));
            } else if (accept(Tok::kMinusMinus)) {
                e = makeIncDec(false, false, ln, std::move(e));
            } else {
                return e;
            }
        }
    }

    std::unique_ptr<Expr> parsePrimary() {
        const int ln = line();
        if (at(Tok::kIntLit)) {
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::kIntLit;
            node->line = ln;
            node->value = toks_[pos_++].value;
            return node;
        }
        if (at(Tok::kIdent)) {
            auto node = std::make_unique<Expr>();
            node->kind = ExprKind::kVar;
            node->line = ln;
            node->name = toks_[pos_++].text;
            return node;
        }
        if (accept(Tok::kLParen)) {
            auto e = parseExpr();
            expect(Tok::kRParen);
            return e;
        }
        throw CompileError(ln, std::string("unexpected ") + tokName(cur().kind));
    }

    // ------------------------------------------------- constant evaluation ----
    static std::int64_t evalConst(const Expr& e) {
        switch (e.kind) {
            case ExprKind::kIntLit:
                return e.value;
            case ExprKind::kUnary: {
                const std::int64_t v = evalConst(*e.a);
                switch (e.unOp) {
                    case UnOp::kNeg: return -v;
                    case UnOp::kNot: return v == 0 ? 1 : 0;
                    case UnOp::kBitNot: return ~v;
                }
                break;
            }
            case ExprKind::kBinary: {
                const std::int64_t a = evalConst(*e.a);
                const std::int64_t b = evalConst(*e.b);
                switch (e.binOp) {
                    case BinOp::kAdd: return a + b;
                    case BinOp::kSub: return a - b;
                    case BinOp::kMul: return a * b;
                    case BinOp::kDiv:
                        if (b == 0) throw CompileError(e.line, "divide by zero");
                        return a / b;
                    case BinOp::kMod:
                        if (b == 0) throw CompileError(e.line, "mod by zero");
                        return a % b;
                    case BinOp::kShl: return a << (b & 31);
                    case BinOp::kShr: return a >> (b & 31);
                    case BinOp::kBitAnd: return a & b;
                    case BinOp::kBitOr: return a | b;
                    case BinOp::kBitXor: return a ^ b;
                    case BinOp::kLt: return a < b;
                    case BinOp::kLe: return a <= b;
                    case BinOp::kGt: return a > b;
                    case BinOp::kGe: return a >= b;
                    case BinOp::kEq: return a == b;
                    case BinOp::kNe: return a != b;
                    case BinOp::kLogAnd: return (a != 0 && b != 0) ? 1 : 0;
                    case BinOp::kLogOr: return (a != 0 || b != 0) ? 1 : 0;
                }
                break;
            }
            default:
                break;
        }
        throw CompileError(e.line, "initializer is not a constant expression");
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit parse(const std::string& source) {
    Parser parser(lex(source));
    return parser.parseUnit();
}

}  // namespace asbr::cc

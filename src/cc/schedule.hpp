// Branch-condition instruction scheduling (paper Section 5.1).
//
// ASBR can only fold a branch when its predicate-defining instruction runs
// far enough ahead of the branch fetch.  This pass reorders instructions
// *within basic blocks* so that the dependence chain feeding each
// block-ending conditional branch is scheduled as early as data and memory
// dependences allow, pushing independent instructions into the def-to-branch
// window.  It is the automated equivalent of the paper's manual scheduling.
//
// The pass is a pure permutation inside each block: instruction counts and
// all label addresses are unchanged, so it can run on a fully-linked Program.
#pragma once

#include <cstdint>

#include "asm/program.hpp"

namespace asbr::cc {

/// Statistics from one scheduling run.
struct ScheduleStats {
    std::uint32_t blocksConsidered = 0;  ///< blocks ending in a cond branch
    std::uint32_t blocksChanged = 0;
    std::uint32_t instructionsMoved = 0;  ///< positions that changed
};

/// Reorder `program` in place; returns what moved.
ScheduleStats scheduleConditionChains(Program& program);

}  // namespace asbr::cc

// Recursive-descent parser for the mcc C subset.
#pragma once

#include "cc/ast.hpp"
#include "cc/lexer.hpp"

namespace asbr::cc {

/// Parse a whole translation unit.  Throws CompileError on syntax errors and
/// on non-constant global initializers.
[[nodiscard]] TranslationUnit parse(const std::string& source);

}  // namespace asbr::cc

#include "workloads/adpcm.hpp"

#include <algorithm>

namespace asbr {

namespace {

// Shared declarations for both benchmark programs.  Scalars and small tables
// come first so they stay inside the gp small-data window; the large I/O
// buffers go last.
constexpr const char* kCommon = R"(
int n_samples;

int indexTable[16] = {
    -1, -1, -1, -1, 2, 4, 6, 8,
    -1, -1, -1, -1, 2, 4, 6, 8
};

int stepsizeTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
};

short in_pcm[262144];
char io_code[262144];
short out_pcm[262144];
)";

constexpr const char* kEncoderMain = R"(
int main() {
    int valpred = 0;
    int index = 0;
    int step = stepsizeTable[0];
    int n = n_samples;
    for (int i = 0; i < n; i++) {
        int val = in_pcm[i];
        int diff = val - valpred;
        int sign = 0;
        if (diff < 0) { sign = 8; diff = -diff; }

        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
        step >>= 1;
        if (diff >= step) { delta |= 2; diff -= step; vpdiff += step; }
        step >>= 1;
        if (diff >= step) { delta |= 1; vpdiff += step; }

        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;

        delta |= sign;
        index += indexTable[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;
        step = stepsizeTable[index];

        io_code[i] = delta;
    }
    return 0;
}
)";

constexpr const char* kDecoderMain = R"(
int main() {
    int valpred = 0;
    int index = 0;
    int step = stepsizeTable[0];
    int n = n_samples;
    for (int i = 0; i < n; i++) {
        int delta = io_code[i] & 15;

        index += indexTable[delta];
        if (index < 0) index = 0;
        if (index > 88) index = 88;

        int sign = delta & 8;
        delta &= 7;

        int vpdiff = step >> 3;
        if (delta & 4) vpdiff += step;
        if (delta & 2) vpdiff += step >> 1;
        if (delta & 1) vpdiff += step >> 2;

        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        if (valpred > 32767) valpred = 32767;
        else if (valpred < -32768) valpred = -32768;

        step = stepsizeTable[index];
        out_pcm[i] = valpred;
    }
    return 0;
}
)";

constexpr std::int32_t kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                          -1, -1, -1, -1, 2, 4, 6, 8};

constexpr std::int32_t kStepsizeTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

}  // namespace

std::string adpcmEncoderSource() {
    return std::string(kCommon) + kEncoderMain;
}

std::string adpcmDecoderSource() {
    return std::string(kCommon) + kDecoderMain;
}

std::uint8_t AdpcmCodec::encode(std::int16_t sample) {
    std::int32_t step = kStepsizeTable[index_];
    std::int32_t diff = sample - valpred_;
    std::int32_t sign = 0;
    if (diff < 0) {
        sign = 8;
        diff = -diff;
    }

    std::int32_t delta = 0;
    std::int32_t vpdiff = step >> 3;
    if (diff >= step) {
        delta = 4;
        diff -= step;
        vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
        delta |= 2;
        diff -= step;
        vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
        delta |= 1;
        vpdiff += step;
    }

    if (sign) valpred_ -= vpdiff;
    else valpred_ += vpdiff;
    valpred_ = std::clamp(valpred_, -32768, 32767);

    delta |= sign;
    index_ += kIndexTable[delta];
    index_ = std::clamp(index_, 0, 88);
    return static_cast<std::uint8_t>(delta);
}

std::int16_t AdpcmCodec::decode(std::uint8_t code) {
    const std::int32_t step = kStepsizeTable[index_];
    std::int32_t delta = code & 15;

    index_ += kIndexTable[delta];
    index_ = std::clamp(index_, 0, 88);

    const std::int32_t sign = delta & 8;
    delta &= 7;

    std::int32_t vpdiff = step >> 3;
    if (delta & 4) vpdiff += step;
    if (delta & 2) vpdiff += step >> 1;
    if (delta & 1) vpdiff += step >> 2;

    if (sign) valpred_ -= vpdiff;
    else valpred_ += vpdiff;
    valpred_ = std::clamp(valpred_, -32768, 32767);

    return static_cast<std::int16_t>(valpred_);
}

std::vector<std::uint8_t> adpcmEncodeRef(std::span<const std::int16_t> pcm) {
    AdpcmCodec codec;
    std::vector<std::uint8_t> out;
    out.reserve(pcm.size());
    for (std::int16_t s : pcm) out.push_back(codec.encode(s));
    return out;
}

std::vector<std::int16_t> adpcmDecodeRef(std::span<const std::uint8_t> codes) {
    AdpcmCodec codec;
    std::vector<std::int16_t> out;
    out.reserve(codes.size());
    for (std::uint8_t c : codes) out.push_back(codec.decode(c));
    return out;
}

}  // namespace asbr

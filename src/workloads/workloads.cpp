#include "workloads/workloads.hpp"

#include "cc/compile.hpp"
#include "util/ensure.hpp"

namespace asbr {

const char* benchName(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode: return "ADPCM Encode";
        case BenchId::kAdpcmDecode: return "ADPCM Decode";
        case BenchId::kG721Encode: return "G.721 Encode";
        case BenchId::kG721Decode: return "G.721 Decode";
        case BenchId::kG711Encode: return "G.711 Encode";
        case BenchId::kG711Decode: return "G.711 Decode";
    }
    return "?";
}

std::string benchSource(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode: return adpcmEncoderSource();
        case BenchId::kAdpcmDecode: return adpcmDecoderSource();
        case BenchId::kG721Encode: return g721EncoderSource();
        case BenchId::kG721Decode: return g721DecoderSource();
        case BenchId::kG711Encode: return g711EncoderSource();
        case BenchId::kG711Decode: return g711DecoderSource();
    }
    return {};
}

std::size_t benchMaxSamples(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode:
        case BenchId::kAdpcmDecode: return 262144;
        case BenchId::kG721Encode:
        case BenchId::kG721Decode: return 131072;
        case BenchId::kG711Encode:
        case BenchId::kG711Decode: return 262144;
    }
    return 0;
}

bool benchIsEncoder(BenchId id) {
    return id == BenchId::kAdpcmEncode || id == BenchId::kG721Encode ||
           id == BenchId::kG711Encode;
}

Program buildBench(BenchId id, bool scheduleConditions) {
    cc::CompileOptions options;
    options.scheduleConditions = scheduleConditions;
    return cc::compile(benchSource(id), options).program;
}

namespace {

void setSampleCount(Memory& memory, const Program& program, std::size_t count) {
    memory.writeWord(program.symbol("n_samples"),
                     static_cast<std::int32_t>(count));
}

}  // namespace

void loadPcmInput(Memory& memory, const Program& program,
                  std::span<const std::int16_t> pcm) {
    const std::uint32_t base = program.symbol("in_pcm");
    for (std::size_t i = 0; i < pcm.size(); ++i)
        memory.writeHalf(base + static_cast<std::uint32_t>(2 * i), pcm[i]);
    setSampleCount(memory, program, pcm.size());
}

void loadCodeInput(Memory& memory, const Program& program,
                   std::span<const std::uint8_t> codes) {
    const std::uint32_t base = program.symbol("io_code");
    for (std::size_t i = 0; i < codes.size(); ++i)
        memory.write8(base + static_cast<std::uint32_t>(i), codes[i]);
    setSampleCount(memory, program, codes.size());
}

std::vector<std::uint8_t> readCodes(const Memory& memory, const Program& program,
                                    std::size_t count) {
    const std::uint32_t base = program.symbol("io_code");
    std::vector<std::uint8_t> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = memory.read8(base + static_cast<std::uint32_t>(i));
    return out;
}

std::vector<std::int16_t> readPcm(const Memory& memory, const Program& program,
                                  std::size_t count) {
    const std::uint32_t base = program.symbol("out_pcm");
    std::vector<std::int16_t> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = memory.readHalf(base + static_cast<std::uint32_t>(2 * i));
    return out;
}

std::vector<std::uint8_t> runEncoderRef(BenchId id,
                                        std::span<const std::int16_t> pcm) {
    switch (id) {
        case BenchId::kAdpcmEncode: return adpcmEncodeRef(pcm);
        case BenchId::kG721Encode: return g721EncodeRef(pcm);
        case BenchId::kG711Encode: return g711EncodeRef(pcm);
        default: break;
    }
    ASBR_ENSURE(false, "runEncoderRef: not an encoder bench");
    return {};
}

std::vector<std::int16_t> runDecoderRef(BenchId id,
                                        std::span<const std::uint8_t> codes) {
    switch (id) {
        case BenchId::kAdpcmDecode: return adpcmDecodeRef(codes);
        case BenchId::kG721Decode: return g721DecodeRef(codes);
        case BenchId::kG711Decode: return g711DecodeRef(codes);
        default: break;
    }
    ASBR_ENSURE(false, "runDecoderRef: not a decoder bench");
    return {};
}

}  // namespace asbr

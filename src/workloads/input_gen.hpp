// Synthetic speech-like PCM input.
//
// The paper evaluates on MediaBench audio clips that are not available here.
// This generator substitutes a deterministic, integer-only synthesis: a sum
// of three triangle-wave "formants" whose pitch and amplitude drift slowly,
// plus low-pass-filtered xorshift noise and occasional silence gaps.  The
// ADPCM/G.721 control paths the paper exploits (step-size adaptation,
// quantizer sign/magnitude tests, predictor updates) are driven by exactly
// these signal dynamics, so the benchmarks' branch behaviour is comparable
// even though absolute numbers differ from the original clips.
//
// Everything is integer arithmetic — outputs are bit-identical across
// platforms and runs.
#pragma once

#include <cstdint>
#include <vector>

namespace asbr {

/// Generate `count` 16-bit PCM samples (8 kHz speech-band assumed).
[[nodiscard]] std::vector<std::int16_t> generateSpeech(std::size_t count,
                                                       std::uint64_t seed = 1);

}  // namespace asbr

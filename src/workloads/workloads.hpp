// Benchmark harness plumbing: build the four MediaBench-equivalent programs,
// move inputs/outputs between host memory and simulated memory, and run the
// native golden references.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "mem/memory.hpp"
#include "workloads/adpcm.hpp"
#include "workloads/g711.hpp"
#include "workloads/g721.hpp"

namespace asbr {

/// The four benchmarks evaluated in the paper, plus the G.711 extension
/// pair (same MediaBench speech family, not in the paper's tables).
enum class BenchId {
    kAdpcmEncode, kAdpcmDecode, kG721Encode, kG721Decode,
    kG711Encode, kG711Decode,
};

/// The paper's evaluation set (Figures 6-11 iterate these four).
inline constexpr BenchId kAllBenches[] = {
    BenchId::kAdpcmEncode, BenchId::kAdpcmDecode, BenchId::kG721Encode,
    BenchId::kG721Decode};

/// Every benchmark, including extensions.
inline constexpr BenchId kAllBenchesExtended[] = {
    BenchId::kAdpcmEncode, BenchId::kAdpcmDecode, BenchId::kG721Encode,
    BenchId::kG721Decode,  BenchId::kG711Encode,  BenchId::kG711Decode};

/// Paper-style display name ("ADPCM Encode", ...).
[[nodiscard]] const char* benchName(BenchId id);

/// mcc source text of the benchmark program.
[[nodiscard]] std::string benchSource(BenchId id);

/// Maximum sample count the program's buffers accept.
[[nodiscard]] std::size_t benchMaxSamples(BenchId id);

/// True for the two encoders (PCM in / codes out).
[[nodiscard]] bool benchIsEncoder(BenchId id);

/// Compile a benchmark (with or without the condition-scheduling pass).
[[nodiscard]] Program buildBench(BenchId id, bool scheduleConditions = true);

/// Write PCM samples into `in_pcm` and set `n_samples`.
void loadPcmInput(Memory& memory, const Program& program,
                  std::span<const std::int16_t> pcm);

/// Write 4-bit codes into `io_code` and set `n_samples`.
void loadCodeInput(Memory& memory, const Program& program,
                   std::span<const std::uint8_t> codes);

/// Read encoder output (`io_code`).
[[nodiscard]] std::vector<std::uint8_t> readCodes(const Memory& memory,
                                                  const Program& program,
                                                  std::size_t count);

/// Read decoder output (`out_pcm`).
[[nodiscard]] std::vector<std::int16_t> readPcm(const Memory& memory,
                                                const Program& program,
                                                std::size_t count);

/// Run the native golden reference for a benchmark: encoders map PCM->codes,
/// decoders map codes->PCM (returned PCM is re-encoded as int16 values
/// widened into the same container type for uniformity).
[[nodiscard]] std::vector<std::uint8_t> runEncoderRef(
    BenchId id, std::span<const std::int16_t> pcm);
[[nodiscard]] std::vector<std::int16_t> runDecoderRef(
    BenchId id, std::span<const std::uint8_t> codes);

}  // namespace asbr

#include "workloads/g721.hpp"

namespace asbr {

namespace {

// ---------------------------------------------------------------------------
// mcc benchmark source.  State scalars/small arrays first (gp window); the
// large I/O buffers last.  update() communicates through u_* globals because
// the C subset caps functions at 4 parameters.
// ---------------------------------------------------------------------------
constexpr const char* kCommon = R"(
int n_samples;

/* predictor / quantizer state (g72x_state) */
int yl = 34816;
int yu = 544;
int dms = 0;
int dml = 0;
int ap = 0;
int td = 0;
int a[2] = {0, 0};
int pk[2] = {0, 0};
int sr[2] = {32, 32};
int b[6] = {0, 0, 0, 0, 0, 0};
int dq[6] = {32, 32, 32, 32, 32, 32};

/* update() inputs (mcc functions take at most 4 parameters) */
int u_y; int u_wi; int u_fi; int u_dq; int u_sr; int u_dqsez;

/* power2/qtab carry one sentinel entry beyond the searched range so the
 * software-pipelined quan loops below can prefetch the next comparison
 * without reading out of bounds; the sentinel never affects the result. */
int power2[16] = {1, 2, 4, 8, 16, 32, 64, 128,
                  256, 512, 1024, 2048, 4096, 8192, 16384, 32767};
int qtab[8] = {-124, 80, 178, 246, 300, 349, 400, 32767};
int dqlntab[16] = {-2048, 4, 135, 213, 273, 323, 373, 425,
                   425, 373, 323, 273, 213, 135, 4, -2048};
int witab[16] = {-12, 18, 41, 64, 112, 198, 355, 1122,
                 1122, 355, 198, 112, 64, 41, 18, -12};
int fitab[16] = {0, 0, 0, 0x200, 0x200, 0x200, 0x600, 0xE00,
                 0xE00, 0x600, 0x200, 0x200, 0x200, 0, 0, 0};

/* quan(), software-pipelined (paper Section 5.1 / Figure 5): the comparison
 * for the *next* table entry is computed one iteration ahead, so the
 * data-dependent exit branch tests a register whose producer ran a full
 * loop body earlier — wide enough for ASBR to fold it. */
int quan_power2(int val) {
    int d = val - power2[0];
    int k = 15;
    while (k) {
        int dn = val - power2[16 - k];
        if (d < 0) break;
        k--;
        d = dn;
    }
    return 15 - k;
}

int quan_qtab(int val) {
    int d = val - qtab[0];
    int k = 7;
    while (k) {
        int dn = val - qtab[8 - k];
        if (d < 0) break;
        k--;
        d = dn;
    }
    return 7 - k;
}

int fmult(int an, int srn) {
    int anmag; int anexp; int anmant; int wanexp; int wanmant; int retval;
    if (an > 0) anmag = an;
    else anmag = (-an) & 0x1FFF;
    anexp = quan_power2(anmag) - 6;
    if (anmag == 0) anmant = 32;
    else if (anexp >= 0) anmant = anmag >> anexp;
    else anmant = anmag << (-anexp);
    wanexp = anexp + ((srn >> 6) & 15) - 13;
    wanmant = (anmant * (srn & 63) + 0x30) >> 4;
    if (wanexp >= 0) retval = (wanmant << wanexp) & 0x7FFF;
    else if (wanexp > -16) retval = wanmant >> (-wanexp);
    else retval = 0;
    if ((an ^ srn) < 0) return -retval;
    return retval;
}

int predictor_zero() {
    int sezi = fmult(b[0] >> 2, dq[0]);
    for (int i = 1; i < 6; i++)
        sezi += fmult(b[i] >> 2, dq[i]);
    return sezi;
}

int predictor_pole() {
    return fmult(a[1] >> 2, sr[1]) + fmult(a[0] >> 2, sr[0]);
}

int step_size() {
    if (ap >= 256) return yu;
    int y = yl >> 6;
    int dif = yu - y;
    int al = ap >> 2;
    if (dif > 0) y += (dif * al) >> 6;
    else if (dif < 0) y += (dif * al + 0x3F) >> 6;
    return y;
}

int quantize(int d, int y) {
    int dqm = d;
    if (d < 0) dqm = -d;
    int exp = quan_power2(dqm >> 1);
    int mant = ((dqm << 7) >> exp) & 0x7F;
    int dl = (exp << 7) + mant;
    int dln = dl - (y >> 2);
    int i = quan_qtab(dln);
    if (d < 0) i = 15 - i;
    else if (i == 0) i = 15;
    return i;
}

int reconstruct(int sign, int dqln, int y) {
    int dql = dqln + (y >> 2);
    if (dql < 0) {
        if (sign) return -0x8000;
        return 0;
    }
    int dex = (dql >> 7) & 15;
    int dqt = 128 + (dql & 127);
    int dqv = (dqt << 7) >> (14 - dex);
    if (sign) return dqv - 0x8000;
    return dqv;
}

void update() {
    int y = u_y;
    int pk0 = 0;
    if (u_dqsez < 0) pk0 = 1;
    int mag = u_dq & 0x7FFF;

    /* tone / transition detection thresholds */
    int ylint = yl >> 15;
    int ylfrac = (yl >> 10) & 31;
    int thr2;
    if (ylint > 9) thr2 = 31 << 10;
    else thr2 = (32 + ylfrac) << ylint;
    int thr3 = (thr2 + (thr2 >> 1)) >> 1;
    int tr = 0;
    if (td == 1) {
        if (mag > thr3) tr = 1;
    }

    /* quantizer scale factor adaptation */
    yu = y + ((u_wi - y) >> 5);
    if (yu < 544) yu = 544;
    if (yu > 5120) yu = 5120;
    yl += yu + ((0 - yl) >> 6);

    int a2p = 0;
    if (tr == 1) {
        a[0] = 0; a[1] = 0;
        b[0] = 0; b[1] = 0; b[2] = 0; b[3] = 0; b[4] = 0; b[5] = 0;
    } else {
        int pks1 = pk0 ^ pk[0];

        /* second-order predictor coefficient */
        a2p = a[1] - (a[1] >> 7);
        if (u_dqsez != 0) {
            int fa1;
            if (pks1) fa1 = a[0];
            else fa1 = -a[0];
            if (fa1 < -8191) a2p -= 0x100;
            else if (fa1 > 8191) a2p += 0xFF;
            else a2p += fa1 >> 5;

            if (pk0 ^ pk[1]) {
                if (a2p <= -12160) a2p = -12288;
                else if (a2p >= 12416) a2p = 12288;
                else a2p -= 0x80;
            }
            else if (a2p <= -12416) a2p = -12288;
            else if (a2p >= 12160) a2p = 12288;
            else a2p += 0x80;
        }
        a[1] = a2p;

        /* first-order predictor coefficient */
        a[0] -= a[0] >> 8;
        if (u_dqsez != 0) {
            if (pks1 == 0) a[0] += 192;
            else a[0] -= 192;
        }
        int a1ul = 15360 - a2p;
        if (a[0] < -a1ul) a[0] = -a1ul;
        if (a[0] > a1ul) a[0] = a1ul;

        /* sixth-order zero predictor coefficients */
        for (int k = 0; k < 6; k++) {
            b[k] -= b[k] >> 8;
            if (mag) {
                if ((u_dq ^ dq[k]) >= 0) b[k] += 128;
                else b[k] -= 128;
            }
        }
    }

    /* shift the dq delay line, storing dq in floating-point format */
    for (int k = 5; k > 0; k--) dq[k] = dq[k - 1];
    if (mag == 0) {
        if (u_dq >= 0) dq[0] = 0x20;
        else dq[0] = 0x20 - 0x400;
    } else {
        int exp = quan_power2(mag);
        if (u_dq >= 0) dq[0] = (exp << 6) + ((mag << 6) >> exp);
        else dq[0] = (exp << 6) + ((mag << 6) >> exp) - 0x400;
    }

    /* shift the sr delay line, same format */
    sr[1] = sr[0];
    if (u_sr == 0) {
        sr[0] = 0x20;
    } else if (u_sr > 0) {
        int exp = quan_power2(u_sr);
        sr[0] = (exp << 6) + ((u_sr << 6) >> exp);
    } else if (u_sr > -32768) {
        int srmag = -u_sr;
        int exp = quan_power2(srmag);
        sr[0] = (exp << 6) + ((srmag << 6) >> exp) - 0x400;
    } else {
        sr[0] = 0x20 - 0x400;
    }

    pk[1] = pk[0];
    pk[0] = pk0;

    /* tone detection */
    if (tr == 1) td = 0;
    else if (a2p < -11776) td = 1;
    else td = 0;

    /* adaptation speed control */
    dms += (u_fi - dms) >> 5;
    dml += (((u_fi << 2) - dml) >> 7);

    if (tr == 1) {
        ap = 256;
    } else if (y < 1536) {
        ap += (0x200 - ap) >> 4;
    } else if (td == 1) {
        ap += (0x200 - ap) >> 4;
    } else {
        int dif = (dms << 2) - dml;
        if (dif < 0) dif = -dif;
        if (dif >= (dml >> 3)) ap += (0x200 - ap) >> 4;
        else ap += (0 - ap) >> 4;
    }
}

short in_pcm[131072];
char io_code[131072];
short out_pcm[131072];
)";

constexpr const char* kEncoderMain = R"(
int main() {
    int n = n_samples;
    for (int idx = 0; idx < n; idx++) {
        int sl = in_pcm[idx] >> 2;

        int sezi = predictor_zero();
        int sez = sezi >> 1;
        int sei = sezi + predictor_pole();
        int se = sei >> 1;

        int d = sl - se;
        int y = step_size();
        int code = quantize(d, y);
        int dqv = reconstruct(code & 8, dqlntab[code], y);
        int srv;
        if (dqv < 0) srv = se - (dqv & 0x3FFF);
        else srv = se + dqv;
        int dqsez = srv + sez - se;

        u_y = y;
        u_wi = witab[code] << 5;
        u_fi = fitab[code];
        u_dq = dqv;
        u_sr = srv;
        u_dqsez = dqsez;
        update();

        io_code[idx] = code;
    }
    return 0;
}
)";

constexpr const char* kDecoderMain = R"(
int main() {
    int n = n_samples;
    for (int idx = 0; idx < n; idx++) {
        int code = io_code[idx] & 15;

        int sezi = predictor_zero();
        int sez = sezi >> 1;
        int sei = sezi + predictor_pole();
        int se = sei >> 1;

        int y = step_size();
        int dqv = reconstruct(code & 8, dqlntab[code], y);
        int srv;
        if (dqv < 0) srv = se - (dqv & 0x3FFF);
        else srv = se + dqv;
        int dqsez = srv + sez - se;

        u_y = y;
        u_wi = witab[code] << 5;
        u_fi = fitab[code];
        u_dq = dqv;
        u_sr = srv;
        u_dqsez = dqsez;
        update();

        out_pcm[idx] = srv << 2;
    }
    return 0;
}
)";

// ---------------------------------------------------------------------------
// Native reference tables (identical values).
// ---------------------------------------------------------------------------
constexpr std::int32_t kPower2[15] = {1,   2,   4,    8,    16,   32,  64, 128,
                                      256, 512, 1024, 2048, 4096, 8192, 16384};
constexpr std::int32_t kQtab[7] = {-124, 80, 178, 246, 300, 349, 400};
constexpr std::int32_t kDqlntab[16] = {-2048, 4,   135, 213, 273, 323, 373, 425,
                                       425,   373, 323, 273, 213, 135, 4,   -2048};
constexpr std::int32_t kWitab[16] = {-12, 18,  41,  64, 112, 198, 355, 1122,
                                     1122, 355, 198, 112, 64, 41, 18, -12};
constexpr std::int32_t kFitab[16] = {0,     0,     0,     0x200, 0x200, 0x200,
                                     0x600, 0xE00, 0xE00, 0x600, 0x200, 0x200,
                                     0x200, 0,     0,     0};

std::int32_t quanPower2(std::int32_t val) {
    int i = 0;
    for (; i < 15; ++i)
        if (val < kPower2[i]) break;
    return i;
}

std::int32_t quanQtab(std::int32_t val) {
    int i = 0;
    for (; i < 7; ++i)
        if (val < kQtab[i]) break;
    return i;
}

std::int32_t fmult(std::int32_t an, std::int32_t srn) {
    const std::int32_t anmag = an > 0 ? an : ((-an) & 0x1FFF);
    const std::int32_t anexp = quanPower2(anmag) - 6;
    const std::int32_t anmant =
        anmag == 0 ? 32 : (anexp >= 0 ? anmag >> anexp : anmag << -anexp);
    const std::int32_t wanexp = anexp + ((srn >> 6) & 15) - 13;
    const std::int32_t wanmant = (anmant * (srn & 63) + 0x30) >> 4;
    std::int32_t retval;
    if (wanexp >= 0) retval = (wanmant << wanexp) & 0x7FFF;
    else if (wanexp > -16) retval = wanmant >> -wanexp;
    else retval = 0;
    return ((an ^ srn) < 0) ? -retval : retval;
}

}  // namespace

std::string g721EncoderSource() { return std::string(kCommon) + kEncoderMain; }

std::string g721DecoderSource() { return std::string(kCommon) + kDecoderMain; }

std::int32_t G721Codec::predictorZero() const {
    std::int32_t sezi = fmult(b_[0] >> 2, dq_[0]);
    for (int i = 1; i < 6; ++i) sezi += fmult(b_[i] >> 2, dq_[i]);
    return sezi;
}

std::int32_t G721Codec::predictorPole() const {
    return fmult(a_[1] >> 2, sr_[1]) + fmult(a_[0] >> 2, sr_[0]);
}

std::int32_t G721Codec::stepSize() const {
    if (ap_ >= 256) return yu_;
    std::int32_t y = yl_ >> 6;
    const std::int32_t dif = yu_ - y;
    const std::int32_t al = ap_ >> 2;
    if (dif > 0) y += (dif * al) >> 6;
    else if (dif < 0) y += (dif * al + 0x3F) >> 6;
    return y;
}

std::int32_t G721Codec::quantize(std::int32_t d, std::int32_t y) const {
    const std::int32_t dqm = d < 0 ? -d : d;
    const std::int32_t exp = quanPower2(dqm >> 1);
    const std::int32_t mant = ((dqm << 7) >> exp) & 0x7F;
    const std::int32_t dl = (exp << 7) + mant;
    const std::int32_t dln = dl - (y >> 2);
    std::int32_t i = quanQtab(dln);
    if (d < 0) i = 15 - i;
    else if (i == 0) i = 15;
    return i;
}

std::int32_t G721Codec::reconstruct(std::int32_t sign, std::int32_t dqln,
                                    std::int32_t y) {
    const std::int32_t dql = dqln + (y >> 2);
    if (dql < 0) return sign ? -0x8000 : 0;
    const std::int32_t dex = (dql >> 7) & 15;
    const std::int32_t dqt = 128 + (dql & 127);
    const std::int32_t dqv = (dqt << 7) >> (14 - dex);
    return sign ? dqv - 0x8000 : dqv;
}

void G721Codec::update(std::int32_t y, std::int32_t wi, std::int32_t fi,
                       std::int32_t dq, std::int32_t sr, std::int32_t dqsez) {
    const std::int32_t pk0 = dqsez < 0 ? 1 : 0;
    const std::int32_t mag = dq & 0x7FFF;

    const std::int32_t ylint = yl_ >> 15;
    const std::int32_t ylfrac = (yl_ >> 10) & 31;
    const std::int32_t thr2 =
        ylint > 9 ? 31 << 10 : (32 + ylfrac) << ylint;
    const std::int32_t thr3 = (thr2 + (thr2 >> 1)) >> 1;
    const std::int32_t tr = (td_ == 1 && mag > thr3) ? 1 : 0;

    yu_ = y + ((wi - y) >> 5);
    if (yu_ < 544) yu_ = 544;
    if (yu_ > 5120) yu_ = 5120;
    yl_ += yu_ + ((0 - yl_) >> 6);

    std::int32_t a2p = 0;
    if (tr == 1) {
        a_[0] = a_[1] = 0;
        for (int k = 0; k < 6; ++k) b_[k] = 0;
    } else {
        const std::int32_t pks1 = pk0 ^ pk_[0];

        a2p = a_[1] - (a_[1] >> 7);
        if (dqsez != 0) {
            const std::int32_t fa1 = pks1 ? a_[0] : -a_[0];
            if (fa1 < -8191) a2p -= 0x100;
            else if (fa1 > 8191) a2p += 0xFF;
            else a2p += fa1 >> 5;

            if (pk0 ^ pk_[1]) {
                if (a2p <= -12160) a2p = -12288;
                else if (a2p >= 12416) a2p = 12288;
                else a2p -= 0x80;
            } else if (a2p <= -12416) {
                a2p = -12288;
            } else if (a2p >= 12160) {
                a2p = 12288;
            } else {
                a2p += 0x80;
            }
        }
        a_[1] = a2p;

        a_[0] -= a_[0] >> 8;
        if (dqsez != 0) {
            if (pks1 == 0) a_[0] += 192;
            else a_[0] -= 192;
        }
        const std::int32_t a1ul = 15360 - a2p;
        if (a_[0] < -a1ul) a_[0] = -a1ul;
        if (a_[0] > a1ul) a_[0] = a1ul;

        for (int k = 0; k < 6; ++k) {
            b_[k] -= b_[k] >> 8;
            if (mag) {
                if ((dq ^ dq_[k]) >= 0) b_[k] += 128;
                else b_[k] -= 128;
            }
        }
    }

    for (int k = 5; k > 0; --k) dq_[k] = dq_[k - 1];
    if (mag == 0) {
        dq_[0] = dq >= 0 ? 0x20 : 0x20 - 0x400;
    } else {
        const std::int32_t exp = quanPower2(mag);
        dq_[0] = dq >= 0 ? (exp << 6) + ((mag << 6) >> exp)
                         : (exp << 6) + ((mag << 6) >> exp) - 0x400;
    }

    sr_[1] = sr_[0];
    if (sr == 0) {
        sr_[0] = 0x20;
    } else if (sr > 0) {
        const std::int32_t exp = quanPower2(sr);
        sr_[0] = (exp << 6) + ((sr << 6) >> exp);
    } else if (sr > -32768) {
        const std::int32_t srmag = -sr;
        const std::int32_t exp = quanPower2(srmag);
        sr_[0] = (exp << 6) + ((srmag << 6) >> exp) - 0x400;
    } else {
        sr_[0] = 0x20 - 0x400;
    }

    pk_[1] = pk_[0];
    pk_[0] = pk0;

    if (tr == 1) td_ = 0;
    else if (a2p < -11776) td_ = 1;
    else td_ = 0;

    dms_ += (fi - dms_) >> 5;
    dml_ += (((fi << 2) - dml_) >> 7);

    if (tr == 1) {
        ap_ = 256;
    } else if (y < 1536) {
        ap_ += (0x200 - ap_) >> 4;
    } else if (td_ == 1) {
        ap_ += (0x200 - ap_) >> 4;
    } else {
        std::int32_t dif = (dms_ << 2) - dml_;
        if (dif < 0) dif = -dif;
        if (dif >= (dml_ >> 3)) ap_ += (0x200 - ap_) >> 4;
        else ap_ += (0 - ap_) >> 4;
    }
}

std::uint8_t G721Codec::encode(std::int16_t sample) {
    const std::int32_t sl = sample >> 2;

    const std::int32_t sezi = predictorZero();
    const std::int32_t sez = sezi >> 1;
    const std::int32_t sei = sezi + predictorPole();
    const std::int32_t se = sei >> 1;

    const std::int32_t d = sl - se;
    const std::int32_t y = stepSize();
    const std::int32_t code = quantize(d, y);
    const std::int32_t dqv = reconstruct(code & 8, kDqlntab[code], y);
    const std::int32_t srv = dqv < 0 ? se - (dqv & 0x3FFF) : se + dqv;
    const std::int32_t dqsez = srv + sez - se;

    update(y, kWitab[code] << 5, kFitab[code], dqv, srv, dqsez);
    return static_cast<std::uint8_t>(code);
}

std::int16_t G721Codec::decode(std::uint8_t rawCode) {
    const std::int32_t code = rawCode & 15;

    const std::int32_t sezi = predictorZero();
    const std::int32_t sez = sezi >> 1;
    const std::int32_t sei = sezi + predictorPole();
    const std::int32_t se = sei >> 1;

    const std::int32_t y = stepSize();
    const std::int32_t dqv = reconstruct(code & 8, kDqlntab[code], y);
    const std::int32_t srv = dqv < 0 ? se - (dqv & 0x3FFF) : se + dqv;
    const std::int32_t dqsez = srv + sez - se;

    update(y, kWitab[code] << 5, kFitab[code], dqv, srv, dqsez);
    return static_cast<std::int16_t>(srv << 2);
}

std::vector<std::uint8_t> g721EncodeRef(std::span<const std::int16_t> pcm) {
    G721Codec codec;
    std::vector<std::uint8_t> out;
    out.reserve(pcm.size());
    for (std::int16_t s : pcm) out.push_back(codec.encode(s));
    return out;
}

std::vector<std::int16_t> g721DecodeRef(std::span<const std::uint8_t> codes) {
    G721Codec codec;
    std::vector<std::int16_t> out;
    out.reserve(codes.size());
    for (std::uint8_t c : codes) out.push_back(codec.decode(c));
    return out;
}

}  // namespace asbr

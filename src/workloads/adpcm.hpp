// IMA/DVI ADPCM codec — the MediaBench "ADPCM Encode/Decode" benchmark pair.
//
// The algorithm is the public-domain Intel/DVI IMA ADPCM (the exact code
// MediaBench ships as adpcm.c).  It exists here twice:
//   - kAdpcmEncoderSource / kAdpcmDecoderSource: the benchmark programs in
//     the mcc C subset, compiled onto ep32 and measured by the simulators;
//   - AdpcmCodec: a native C++ transliteration of the same code, used as the
//     golden reference in differential tests.
// One code per byte is produced (MediaBench packs two per byte; the packing
// loop is control-irrelevant and omitted on both sides identically).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace asbr {

/// mcc source of the benchmark programs.
[[nodiscard]] std::string adpcmEncoderSource();
[[nodiscard]] std::string adpcmDecoderSource();

/// Native golden-reference codec (streaming, one sample at a time).
class AdpcmCodec {
public:
    /// Encode one 16-bit sample to a 4-bit code.
    [[nodiscard]] std::uint8_t encode(std::int16_t sample);

    /// Decode one 4-bit code to a 16-bit sample.
    [[nodiscard]] std::int16_t decode(std::uint8_t code);

private:
    std::int32_t valpred_ = 0;
    std::int32_t index_ = 0;
};

/// Whole-buffer conveniences.
[[nodiscard]] std::vector<std::uint8_t> adpcmEncodeRef(
    std::span<const std::int16_t> pcm);
[[nodiscard]] std::vector<std::int16_t> adpcmDecodeRef(
    std::span<const std::uint8_t> codes);

}  // namespace asbr

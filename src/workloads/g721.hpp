// G.721 32 kbit/s ADPCM codec — the MediaBench "G.721 Encode/Decode"
// benchmark pair.
//
// The implementation follows the classic public-domain Sun/CCITT g72x code
// structure: adaptive pole/zero predictor (fmult floating-point-format
// multiplies), logarithmic quantizer with table search (quan), adaptive
// step-size (yu/yl), and the control-dominated coefficient update with tone
// and transition detection.  As with ADPCM it exists twice — the mcc
// benchmark programs and a native C++ transliteration of the same code used
// as the golden reference.  Bit-exact ITU conformance is not a goal (the
// paper's claims do not depend on it); what matters is that both versions
// compute identically and exercise the same branch structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace asbr {

/// mcc source of the benchmark programs.
[[nodiscard]] std::string g721EncoderSource();
[[nodiscard]] std::string g721DecoderSource();

/// Native golden-reference codec (streaming).
class G721Codec {
public:
    /// Encode one 16-bit sample to a 4-bit code.
    [[nodiscard]] std::uint8_t encode(std::int16_t sample);

    /// Decode one 4-bit code to a 16-bit sample.
    [[nodiscard]] std::int16_t decode(std::uint8_t code);

private:
    [[nodiscard]] std::int32_t predictorZero() const;
    [[nodiscard]] std::int32_t predictorPole() const;
    [[nodiscard]] std::int32_t stepSize() const;
    [[nodiscard]] std::int32_t quantize(std::int32_t d, std::int32_t y) const;
    [[nodiscard]] static std::int32_t reconstruct(std::int32_t sign,
                                                  std::int32_t dqln,
                                                  std::int32_t y);
    void update(std::int32_t y, std::int32_t wi, std::int32_t fi,
                std::int32_t dq, std::int32_t sr, std::int32_t dqsez);

    // Predictor/quantizer state (g72x_state equivalents).
    std::int32_t yl_ = 34816;
    std::int32_t yu_ = 544;
    std::int32_t dms_ = 0;
    std::int32_t dml_ = 0;
    std::int32_t ap_ = 0;
    std::int32_t a_[2] = {0, 0};
    std::int32_t b_[6] = {0, 0, 0, 0, 0, 0};
    std::int32_t pk_[2] = {0, 0};
    std::int32_t dq_[6] = {32, 32, 32, 32, 32, 32};
    std::int32_t sr_[2] = {32, 32};
    std::int32_t td_ = 0;
};

/// Whole-buffer conveniences.
[[nodiscard]] std::vector<std::uint8_t> g721EncodeRef(
    std::span<const std::int16_t> pcm);
[[nodiscard]] std::vector<std::int16_t> g721DecodeRef(
    std::span<const std::uint8_t> codes);

}  // namespace asbr

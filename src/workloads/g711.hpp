// G.711 µ-law codec — extension workload.
//
// Not part of the paper's evaluation, but the natural third member of the
// MediaBench speech-coding family it draws from (the Sun g72x distribution
// ships g711.c alongside g721.c).  The µ-law encoder's segment search is the
// same table-search control pattern as G.721's quan(), making it a useful
// additional data point for ASBR.  Implemented like the other workloads:
// mcc benchmark source + native C++ golden reference, cross-checked.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace asbr {

/// mcc source of the benchmark programs.
[[nodiscard]] std::string g711EncoderSource();
[[nodiscard]] std::string g711DecoderSource();

/// Native golden references (stateless codec).
[[nodiscard]] std::uint8_t linearToUlaw(std::int16_t sample);
[[nodiscard]] std::int16_t ulawToLinear(std::uint8_t code);

[[nodiscard]] std::vector<std::uint8_t> g711EncodeRef(
    std::span<const std::int16_t> pcm);
[[nodiscard]] std::vector<std::int16_t> g711DecodeRef(
    std::span<const std::uint8_t> codes);

}  // namespace asbr

#include "workloads/g711.hpp"

namespace asbr {

namespace {

// The classic Sun g711.c algorithm: bias, sign-fold, segment search over
// seg_end, mantissa extraction; decode inverts exactly.
constexpr const char* kCommon = R"(
int n_samples;

int seg_end[8] = {0xFF, 0x1FF, 0x3FF, 0x7FF, 0xFFF, 0x1FFF, 0x3FFF, 0x7FFF};

int search_seg(int val) {
    int i;
    for (i = 0; i < 8; i++)
        if (val <= seg_end[i]) break;
    return i;
}

int linear2ulaw(int pcm) {
    int mask;
    if (pcm < 0) {
        pcm = 132 - pcm;        /* BIAS - pcm */
        mask = 0x7F;
    } else {
        pcm += 132;             /* BIAS */
        mask = 0xFF;
    }
    int seg = search_seg(pcm);
    if (seg >= 8) return 0x7F ^ mask;
    int uval = (seg << 4) | ((pcm >> (seg + 3)) & 0xF);
    return uval ^ mask;
}

int ulaw2linear(int uval) {
    int u = uval ^ 0xFF;        /* complement within 8 bits */
    int t = ((u & 0xF) << 3) + 132;
    t <<= (u & 0x70) >> 4;
    if (u & 0x80) return 132 - t;
    return t - 132;
}

short in_pcm[262144];
char io_code[262144];
short out_pcm[262144];
)";

constexpr const char* kEncoderMain = R"(
int main() {
    int n = n_samples;
    for (int i = 0; i < n; i++) {
        io_code[i] = linear2ulaw(in_pcm[i]);
    }
    return 0;
}
)";

constexpr const char* kDecoderMain = R"(
int main() {
    int n = n_samples;
    for (int i = 0; i < n; i++) {
        out_pcm[i] = ulaw2linear(io_code[i] & 0xFF);
    }
    return 0;
}
)";

constexpr std::int32_t kSegEnd[8] = {0xFF,  0x1FF,  0x3FF,  0x7FF,
                                     0xFFF, 0x1FFF, 0x3FFF, 0x7FFF};
constexpr std::int32_t kBias = 132;

std::int32_t searchSeg(std::int32_t val) {
    int i = 0;
    for (; i < 8; ++i)
        if (val <= kSegEnd[i]) break;
    return i;
}

}  // namespace

std::string g711EncoderSource() { return std::string(kCommon) + kEncoderMain; }

std::string g711DecoderSource() { return std::string(kCommon) + kDecoderMain; }

std::uint8_t linearToUlaw(std::int16_t sample) {
    std::int32_t pcm = sample;
    std::int32_t mask;
    if (pcm < 0) {
        pcm = kBias - pcm;
        mask = 0x7F;
    } else {
        pcm += kBias;
        mask = 0xFF;
    }
    const std::int32_t seg = searchSeg(pcm);
    if (seg >= 8) return static_cast<std::uint8_t>(0x7F ^ mask);
    const std::int32_t uval = (seg << 4) | ((pcm >> (seg + 3)) & 0xF);
    return static_cast<std::uint8_t>(uval ^ mask);
}

std::int16_t ulawToLinear(std::uint8_t code) {
    const std::int32_t u = code ^ 0xFF;
    std::int32_t t = ((u & 0xF) << 3) + kBias;
    t <<= (u & 0x70) >> 4;
    return static_cast<std::int16_t>((u & 0x80) ? kBias - t : t - kBias);
}

std::vector<std::uint8_t> g711EncodeRef(std::span<const std::int16_t> pcm) {
    std::vector<std::uint8_t> out;
    out.reserve(pcm.size());
    for (std::int16_t s : pcm) out.push_back(linearToUlaw(s));
    return out;
}

std::vector<std::int16_t> g711DecodeRef(std::span<const std::uint8_t> codes) {
    std::vector<std::int16_t> out;
    out.reserve(codes.size());
    for (std::uint8_t c : codes) out.push_back(ulawToLinear(c));
    return out;
}

}  // namespace asbr

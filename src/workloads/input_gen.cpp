#include "workloads/input_gen.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace asbr {

namespace {

/// Integer triangle oscillator: phase in [0, period), output in [-amp, amp].
std::int32_t triangle(std::uint32_t phase, std::uint32_t period,
                      std::int32_t amp) {
    const std::uint32_t half = period / 2;
    const std::uint32_t p = phase % period;
    const std::int64_t up = p < half ? p : period - p;  // 0..half
    return static_cast<std::int32_t>((2 * up - static_cast<std::int64_t>(half)) *
                                     amp / static_cast<std::int64_t>(half));
}

}  // namespace

std::vector<std::int16_t> generateSpeech(std::size_t count, std::uint64_t seed) {
    Xorshift64 rng(seed);
    std::vector<std::int16_t> out;
    out.reserve(count);

    // Three "formant" oscillators with drifting periods and amplitudes.
    std::uint32_t period[3] = {61, 23, 9};   // ~130 Hz, ~350 Hz, ~900 Hz at 8 kHz
    std::int32_t amp[3] = {9000, 4000, 1500};
    std::uint32_t phase[3] = {0, 0, 0};
    std::int32_t noiseState = 0;      // one-pole low-pass over white noise
    std::int32_t envelope = 0;        // 0..256 voicing envelope
    std::int32_t envelopeTarget = 256;
    std::size_t segmentLeft = 0;

    for (std::size_t n = 0; n < count; ++n) {
        if (segmentLeft == 0) {
            // New phoneme-like segment every 300-1500 samples: re-draw pitch,
            // amplitudes and voicing (some segments are near-silence).
            segmentLeft = 300 + rng.below(1200);
            envelopeTarget = rng.chance(0.2) ? static_cast<std::int32_t>(rng.below(24))
                                             : 128 + static_cast<std::int32_t>(rng.below(128));
            period[0] = 40 + static_cast<std::uint32_t>(rng.below(60));
            period[1] = 14 + static_cast<std::uint32_t>(rng.below(24));
            period[2] = 6 + static_cast<std::uint32_t>(rng.below(10));
            for (int k = 0; k < 3; ++k)
                amp[k] = 800 + static_cast<std::int32_t>(rng.below(9000) >> k);
        }
        --segmentLeft;

        // Smooth the envelope (attack/decay).
        envelope += (envelopeTarget - envelope) / 32 +
                    ((envelopeTarget > envelope) ? 1 : -1);
        envelope = std::clamp(envelope, 0, 256);

        std::int64_t sample = 0;
        for (int k = 0; k < 3; ++k) {
            sample += triangle(phase[k], period[k], amp[k]);
            ++phase[k];
        }
        // Filtered noise floor (breathiness).
        const auto white =
            static_cast<std::int32_t>(static_cast<std::int64_t>(rng.below(4096)) - 2048);
        noiseState += (white - noiseState) / 4;
        sample += noiseState;

        sample = sample * envelope / 256;
        sample = std::clamp<std::int64_t>(sample, -32768, 32767);
        out.push_back(static_cast<std::int16_t>(sample));
    }
    return out;
}

}  // namespace asbr

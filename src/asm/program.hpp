// Linked program image produced by the assembler and consumed by the
// simulators, the profiler and the ASBR static-information extractor.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hpp"
#include "util/ensure.hpp"

namespace asbr {

/// Default memory layout (byte addresses).
inline constexpr std::uint32_t kTextBase = 0x0000'1000;
inline constexpr std::uint32_t kDataBase = 0x0010'0000;
inline constexpr std::uint32_t kStackTop = 0x7FFF'FF00;

/// A fully-resolved ep32 program: text, initialized data and symbol table.
struct Program {
    std::uint32_t textBase = kTextBase;
    std::uint32_t dataBase = kDataBase;
    std::vector<Instruction> code;   ///< decoded text section, one per word
    std::vector<std::uint8_t> data;  ///< initialized data section bytes
    std::map<std::string, std::uint32_t> symbols;  ///< label -> address
    std::uint32_t entry = kTextBase;               ///< initial PC
    std::vector<int> lineOf;  ///< source line per instruction (diagnostics)
    /// `.loopbound N` annotations: text address of the instruction the
    /// directive precedes (the loop head) -> maximum head executions per
    /// loop entry. Consumed by the static timing engine when the interval
    /// domain cannot bound a loop on its own.
    std::map<std::uint32_t, std::uint32_t> loopBounds;

    [[nodiscard]] std::uint32_t textEnd() const {
        return textBase + static_cast<std::uint32_t>(code.size()) * kInstrBytes;
    }

    [[nodiscard]] bool inText(std::uint32_t addr) const {
        return addr >= textBase && addr < textEnd() && (addr & 3u) == 0;
    }

    /// Instruction at a text address.
    [[nodiscard]] const Instruction& at(std::uint32_t addr) const {
        ASBR_ENSURE(inText(addr), "Program::at: address outside text");
        return code[(addr - textBase) / kInstrBytes];
    }

    /// Address of a symbol; throws when undefined.
    [[nodiscard]] std::uint32_t symbol(const std::string& name) const {
        const auto it = symbols.find(name);
        ASBR_ENSURE(it != symbols.end(), "undefined symbol: " + name);
        return it->second;
    }

    /// Source line of the instruction at `addr` (-1 when unknown).
    [[nodiscard]] int sourceLine(std::uint32_t addr) const {
        if (!inText(addr)) return -1;
        const std::size_t i = (addr - textBase) / kInstrBytes;
        return i < lineOf.size() ? lineOf[i] : -1;
    }
};

}  // namespace asbr

#include "asm/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/encoding.hpp"

namespace asbr {

namespace {

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

std::string stripComment(const std::string& s) {
    const std::size_t pos = s.find_first_of("#;");
    return pos == std::string::npos ? s : s.substr(0, pos);
}

bool isIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

bool isIdentChar(char c) {
    return isIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '$';
}

std::vector<std::string> splitOperands(const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty()) out.push_back(cur);
    return out;
}

std::optional<std::int64_t> parseIntLit(const std::string& text) {
    std::string s = trim(text);
    if (s.empty()) return std::nullopt;
    bool neg = false;
    std::size_t i = 0;
    if (s[0] == '-' || s[0] == '+') {
        neg = s[0] == '-';
        i = 1;
    }
    if (i >= s.size()) return std::nullopt;
    int base = 10;
    if (s.size() > i + 1 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
        base = 16;
        i += 2;
    }
    if (i >= s.size()) return std::nullopt;
    std::int64_t value = 0;
    for (; i < s.size(); ++i) {
        const char c = s[i];
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') digit = 10 + c - 'a';
        else if (base == 16 && c >= 'A' && c <= 'F') digit = 10 + c - 'A';
        else return std::nullopt;
        value = value * base + digit;
        if (value > 0x1'0000'0000LL) return std::nullopt;  // overflow guard
    }
    return neg ? -value : value;
}

// ---------------------------------------------------------------------------
// Statement representation (built in pass 1, resolved in pass 2)
// ---------------------------------------------------------------------------

enum class StmtKind { kInstr, kData };

struct Statement {
    StmtKind kind = StmtKind::kInstr;
    int line = 0;
    std::string mnemonic;
    std::vector<std::string> operands;
    // kInstr:
    std::uint32_t address = 0;  // first word address
    int words = 1;              // expansion size
    // kData (one element per directive value):
    int elemSize = 0;           // 1, 2 or 4 bytes; 0 for .space
    std::uint32_t dataOffset = 0;
    std::uint32_t spaceBytes = 0;
};

struct MemOperand {
    std::int32_t offset = 0;
    std::uint8_t base = 0;
};

class Assembler {
public:
    Assembler(const std::string& source, const AsmOptions& options)
        : options_(options) {
        program_.textBase = options.textBase;
        program_.dataBase = options.dataBase;
        std::istringstream in(source);
        std::string raw;
        int line = 0;
        while (std::getline(in, raw)) {
            ++line;
            parseLine(line, raw);
        }
    }

    Program finish() {
        program_.data.assign(dataSize_, 0);
        for (const Statement& st : statements_) {
            if (st.kind == StmtKind::kInstr) {
                emitInstruction(st);
            } else {
                emitData(st);
            }
        }
        const auto it = program_.symbols.find(options_.entrySymbol);
        program_.entry = it != program_.symbols.end() ? it->second
                                                      : program_.textBase;
        ASBR_ENSURE(program_.inText(program_.entry) || program_.code.empty(),
                    "entry symbol must be a text address");
        return std::move(program_);
    }

private:
    // ------------------------------------------------------ pass 1 ----------
    void parseLine(int line, const std::string& raw) {
        std::string s = trim(stripComment(raw));
        // Peel off any leading labels.
        while (true) {
            const std::size_t colon = s.find(':');
            if (colon == std::string::npos) break;
            const std::string head = trim(s.substr(0, colon));
            if (head.empty() || !isIdentStart(head[0]) ||
                !std::all_of(head.begin(), head.end(), isIdentChar)) {
                break;  // ':' belongs to something else (not valid here anyway)
            }
            defineLabel(line, head);
            s = trim(s.substr(colon + 1));
        }
        if (s.empty()) return;

        std::size_t sp = 0;
        while (sp < s.size() && !std::isspace(static_cast<unsigned char>(s[sp])))
            ++sp;
        const std::string mnemonic = s.substr(0, sp);
        const std::string rest = trim(s.substr(sp));

        if (mnemonic[0] == '.') {
            parseDirective(line, mnemonic, rest);
            return;
        }
        if (!inText_) throw AsmError(line, "instructions must appear in .text");
        Statement st;
        st.kind = StmtKind::kInstr;
        st.line = line;
        st.mnemonic = mnemonic;
        st.operands = splitOperands(rest);
        st.address = program_.textBase + textWords_ * kInstrBytes;
        st.words = expansionSize(st);
        textWords_ += static_cast<std::uint32_t>(st.words);
        statements_.push_back(std::move(st));
    }

    void defineLabel(int line, const std::string& name) {
        if (program_.symbols.count(name) != 0)
            throw AsmError(line, "duplicate label '" + name + "'");
        const std::uint32_t addr =
            inText_ ? program_.textBase + textWords_ * kInstrBytes
                    : program_.dataBase + dataSize_;
        program_.symbols.emplace(name, addr);
    }

    void parseDirective(int line, const std::string& name, const std::string& rest) {
        if (name == ".text") { inText_ = true; return; }
        if (name == ".data") { inText_ = false; return; }
        if (name == ".globl" || name == ".global") return;  // informational
        if (name == ".align") {
            const auto n = parseIntLit(rest);
            if (!n || *n < 0 || *n > 12) throw AsmError(line, ".align 0..12");
            if (inText_) throw AsmError(line, ".align only supported in .data");
            const std::uint32_t a = 1u << *n;
            dataSize_ = (dataSize_ + a - 1) & ~(a - 1);
            return;
        }
        if (name == ".loopbound") {
            const auto n = parseIntLit(rest);
            if (!n || *n < 1 || *n > INT32_MAX)
                throw AsmError(line, ".loopbound needs a positive iteration count");
            if (!inText_) throw AsmError(line, ".loopbound only valid in .text");
            const std::uint32_t addr = program_.textBase + textWords_ * kInstrBytes;
            if (!program_.loopBounds.emplace(addr, static_cast<std::uint32_t>(*n)).second)
                throw AsmError(line, "duplicate .loopbound for the same loop head");
            return;
        }
        if (name == ".space") {
            const auto n = parseIntLit(rest);
            if (!n || *n < 0) throw AsmError(line, ".space needs a size");
            if (inText_) throw AsmError(line, ".space only supported in .data");
            Statement st;
            st.kind = StmtKind::kData;
            st.line = line;
            st.dataOffset = dataSize_;
            st.spaceBytes = static_cast<std::uint32_t>(*n);
            dataSize_ += st.spaceBytes;
            statements_.push_back(std::move(st));
            return;
        }
        int elemSize = 0;
        if (name == ".word") elemSize = 4;
        else if (name == ".half") elemSize = 2;
        else if (name == ".byte") elemSize = 1;
        else throw AsmError(line, "unknown directive '" + name + "'");
        if (inText_) throw AsmError(line, "data directives only supported in .data");
        // No implicit alignment: a label on the same line has already been
        // placed, so silently padding here would make it point at padding.
        if (elemSize > 1 &&
            dataSize_ % static_cast<std::uint32_t>(elemSize) != 0) {
            throw AsmError(line, name + " at unaligned offset; add .align first");
        }
        Statement st;
        st.kind = StmtKind::kData;
        st.line = line;
        st.elemSize = elemSize;
        st.operands = splitOperands(rest);
        st.dataOffset = dataSize_;
        if (st.operands.empty()) throw AsmError(line, name + " needs values");
        dataSize_ += static_cast<std::uint32_t>(st.operands.size()) *
                     static_cast<std::uint32_t>(elemSize);
        statements_.push_back(std::move(st));
    }

    int expansionSize(const Statement& st) {
        const std::string& m = st.mnemonic;
        if (m == "la") return 2;
        if (m == "li") {
            if (st.operands.size() != 2) throw AsmError(st.line, "li rd, imm");
            const auto v = parseIntLit(st.operands[1]);
            if (!v) throw AsmError(st.line, "li needs a numeric immediate");
            return liSize(*v);
        }
        return 1;
    }

    static int liSize(std::int64_t v) {
        if (fitsSimm16(v) || fitsUimm16(v)) return 1;
        if ((v & 0xFFFF) == 0) return 1;  // lui alone
        return 2;
    }

    // ------------------------------------------------------ pass 2 ----------
    [[nodiscard]] std::uint32_t resolveSymbolExpr(int line, const std::string& text) const {
        // "sym", "sym+N", "sym-N" or a plain integer.
        std::string s = trim(text);
        if (const auto lit = parseIntLit(s)) return static_cast<std::uint32_t>(*lit);
        std::size_t pos = s.find_first_of("+-", 1);
        std::int64_t off = 0;
        std::string base = s;
        if (pos != std::string::npos) {
            base = trim(s.substr(0, pos));
            const auto v = parseIntLit(s.substr(pos));
            if (!v) throw AsmError(line, "bad offset in '" + text + "'");
            off = *v;
        }
        const auto it = program_.symbols.find(base);
        if (it == program_.symbols.end())
            throw AsmError(line, "undefined symbol '" + base + "'");
        return static_cast<std::uint32_t>(it->second + off);
    }

    std::uint8_t parseReg(int line, const std::string& text) const {
        const auto r = regFromName(trim(text));
        if (!r) throw AsmError(line, "bad register '" + text + "'");
        return *r;
    }

    std::int32_t parseImm(int line, const std::string& text) const {
        const auto v = parseIntLit(text);
        if (!v) throw AsmError(line, "bad immediate '" + text + "'");
        return static_cast<std::int32_t>(*v);
    }

    MemOperand parseMem(int line, const std::string& text) const {
        // "imm(reg)", "(reg)" or "sym" are allowed; symbols resolve to
        // absolute addresses relative to r0.
        const std::string s = trim(text);
        const std::size_t open = s.find('(');
        if (open == std::string::npos) {
            const std::uint32_t addr = resolveSymbolExpr(line, s);
            const auto abs = static_cast<std::int64_t>(addr);
            if (fitsSimm16(abs)) return {static_cast<std::int32_t>(addr), reg::zero};
            // gp-relative small-data addressing: both simulators initialize
            // gp = dataBase + 0x8000, so data within 64KB of the data base is
            // reachable without an address-forming instruction.
            const std::int64_t gpOff =
                abs - (static_cast<std::int64_t>(program_.dataBase) + 0x8000);
            if (fitsSimm16(gpOff))
                return {static_cast<std::int32_t>(gpOff), reg::gp};
            throw AsmError(line, "symbol operand out of gp range; use la");
        }
        const std::size_t close = s.find(')', open);
        if (close == std::string::npos) throw AsmError(line, "missing ')'");
        MemOperand m;
        const std::string off = trim(s.substr(0, open));
        m.offset = off.empty() ? 0 : parseImm(line, off);
        m.base = parseReg(line, s.substr(open + 1, close - open - 1));
        return m;
    }

    void push(const Statement& st, Instruction ins) {
        try {
            encode(ins);  // field validation
        } catch (const EnsureError& e) {
            throw AsmError(st.line, e.what());
        }
        program_.code.push_back(ins);
        program_.lineOf.push_back(st.line);
    }

    void needOperands(const Statement& st, std::size_t n) const {
        if (st.operands.size() != n)
            throw AsmError(st.line, st.mnemonic + " expects " + std::to_string(n) +
                                        " operand(s)");
    }

    void emitInstruction(const Statement& st) {
        ASBR_ENSURE(program_.code.size() * kInstrBytes + program_.textBase ==
                        st.address,
                    "pass 1/pass 2 address drift");
        const std::string& m = st.mnemonic;

        // Pseudo-instructions first.
        if (m == "li") { emitLi(st); return; }
        if (m == "la") { emitLa(st); return; }
        if (m == "move") {
            needOperands(st, 2);
            push(st, {Op::kAddu, parseReg(st.line, st.operands[0]),
                      parseReg(st.line, st.operands[1]), reg::zero, 0});
            return;
        }
        if (m == "neg") {
            needOperands(st, 2);
            push(st, {Op::kSubu, parseReg(st.line, st.operands[0]), reg::zero,
                      parseReg(st.line, st.operands[1]), 0});
            return;
        }
        if (m == "not") {
            needOperands(st, 2);
            push(st, {Op::kNor, parseReg(st.line, st.operands[0]),
                      parseReg(st.line, st.operands[1]), reg::zero, 0});
            return;
        }
        if (m == "b") {
            needOperands(st, 1);
            const std::uint32_t target = resolveSymbolExpr(st.line, st.operands[0]);
            push(st, {Op::kJ, 0, 0, 0,
                      static_cast<std::int32_t>(target / kInstrBytes)});
            return;
        }

        const auto op = opFromName(m);
        if (!op) throw AsmError(st.line, "unknown mnemonic '" + m + "'");
        Instruction ins;
        ins.op = *op;

        if (*op == Op::kNop || *op == Op::kSys) {
            needOperands(st, 0);
            push(st, ins);
            return;
        }
        if (isMulDiv(*op) || (*op >= Op::kAddu && *op <= Op::kSrav)) {
            needOperands(st, 3);
            ins.rd = parseReg(st.line, st.operands[0]);
            ins.rs = parseReg(st.line, st.operands[1]);
            ins.rt = parseReg(st.line, st.operands[2]);
            push(st, ins);
            return;
        }
        if (*op == Op::kLui) {
            needOperands(st, 2);
            ins.rd = parseReg(st.line, st.operands[0]);
            ins.imm = parseImm(st.line, st.operands[1]);
            push(st, ins);
            return;
        }
        if (*op >= Op::kAddiu && *op <= Op::kSra) {
            needOperands(st, 3);
            ins.rd = parseReg(st.line, st.operands[0]);
            ins.rs = parseReg(st.line, st.operands[1]);
            ins.imm = parseImm(st.line, st.operands[2]);
            push(st, ins);
            return;
        }
        if (isLoad(*op)) {
            needOperands(st, 2);
            ins.rd = parseReg(st.line, st.operands[0]);
            const MemOperand mem = parseMem(st.line, st.operands[1]);
            ins.rs = mem.base;
            ins.imm = mem.offset;
            push(st, ins);
            return;
        }
        if (isStore(*op)) {
            needOperands(st, 2);
            ins.rt = parseReg(st.line, st.operands[0]);
            const MemOperand mem = parseMem(st.line, st.operands[1]);
            ins.rs = mem.base;
            ins.imm = mem.offset;
            push(st, ins);
            return;
        }
        if (isCondBranch(*op)) {
            needOperands(st, 2);
            ins.rs = parseReg(st.line, st.operands[0]);
            const std::string& target = st.operands[1];
            if (const auto lit = parseIntLit(target)) {
                ins.imm = static_cast<std::int32_t>(*lit);
            } else {
                const std::uint32_t addr = resolveSymbolExpr(st.line, target);
                const std::int64_t delta =
                    (static_cast<std::int64_t>(addr) -
                     (static_cast<std::int64_t>(st.address) + kInstrBytes)) /
                    kInstrBytes;
                if (!fitsSimm16(delta))
                    throw AsmError(st.line, "branch target out of range");
                ins.imm = static_cast<std::int32_t>(delta);
            }
            push(st, ins);
            return;
        }
        if (*op == Op::kJ || *op == Op::kJal) {
            needOperands(st, 1);
            const std::uint32_t addr = resolveSymbolExpr(st.line, st.operands[0]);
            if ((addr & 3u) != 0) throw AsmError(st.line, "unaligned jump target");
            ins.imm = static_cast<std::int32_t>(addr / kInstrBytes);
            push(st, ins);
            return;
        }
        if (*op == Op::kJr) {
            needOperands(st, 1);
            ins.rs = parseReg(st.line, st.operands[0]);
            push(st, ins);
            return;
        }
        if (*op == Op::kJalr) {
            if (st.operands.size() == 1) {
                ins.rd = reg::ra;
                ins.rs = parseReg(st.line, st.operands[0]);
            } else {
                needOperands(st, 2);
                ins.rd = parseReg(st.line, st.operands[0]);
                ins.rs = parseReg(st.line, st.operands[1]);
            }
            push(st, ins);
            return;
        }
        throw AsmError(st.line, "unhandled mnemonic '" + m + "'");
    }

    void emitLi(const Statement& st) {
        needOperands(st, 2);
        const std::uint8_t rd = parseReg(st.line, st.operands[0]);
        const auto v = parseIntLit(st.operands[1]);
        if (!v) throw AsmError(st.line, "li needs a numeric immediate");
        const std::int64_t value = *v;
        if (fitsSimm16(value)) {
            push(st, {Op::kAddiu, rd, reg::zero, 0, static_cast<std::int32_t>(value)});
        } else if (fitsUimm16(value)) {
            push(st, {Op::kOri, rd, reg::zero, 0, static_cast<std::int32_t>(value)});
        } else {
            const auto u = static_cast<std::uint32_t>(value);
            push(st, {Op::kLui, rd, 0, 0, static_cast<std::int32_t>(u >> 16)});
            if ((u & 0xFFFFu) != 0)
                push(st, {Op::kOri, rd, rd, 0, static_cast<std::int32_t>(u & 0xFFFFu)});
        }
    }

    void emitLa(const Statement& st) {
        needOperands(st, 2);
        const std::uint8_t rd = parseReg(st.line, st.operands[0]);
        const std::uint32_t addr = resolveSymbolExpr(st.line, st.operands[1]);
        push(st, {Op::kLui, rd, 0, 0, static_cast<std::int32_t>(addr >> 16)});
        push(st, {Op::kOri, rd, rd, 0, static_cast<std::int32_t>(addr & 0xFFFFu)});
    }

    void emitData(const Statement& st) {
        if (st.elemSize == 0) return;  // .space — already zero-filled
        std::uint32_t offset = st.dataOffset;
        for (const std::string& text : st.operands) {
            std::int64_t value;
            if (const auto lit = parseIntLit(text)) {
                value = *lit;
            } else {
                value = resolveSymbolExpr(st.line, text);
            }
            for (int b = 0; b < st.elemSize; ++b) {
                program_.data[offset + static_cast<std::uint32_t>(b)] =
                    static_cast<std::uint8_t>((value >> (8 * b)) & 0xFF);
            }
            offset += static_cast<std::uint32_t>(st.elemSize);
        }
    }

    AsmOptions options_;
    Program program_;
    std::vector<Statement> statements_;
    bool inText_ = true;
    std::uint32_t textWords_ = 0;
    std::uint32_t dataSize_ = 0;
};

}  // namespace

Program assemble(const std::string& source, const AsmOptions& options) {
    Assembler assembler(source, options);
    return assembler.finish();
}

}  // namespace asbr

// Two-pass text assembler for ep32.
//
// Supported syntax (one statement per line, '#' or ';' comments):
//
//   .text / .data              switch section
//   .globl name                mark entry symbol (informational)
//   .word v[, v...]            32-bit data (value or symbol)
//   .half v[, v...]            16-bit data
//   .byte v[, v...]            8-bit data
//   .space N                   N zero bytes
//   .align N                   align to 2^N bytes
//   label:                     define a label in the current section
//   mnemonic operands          one ep32 instruction
//
// Pseudo-instructions (expanded deterministically in pass 1):
//   li   rd, imm32             ori / lui / lui+ori as needed
//   la   rd, sym[+off]         lui+ori absolute address
//   move rd, rs                addu rd, rs, zero
//   b    label                 j label
//   neg  rd, rs                subu rd, zero, rs
//   not  rd, rs                nor  rd, rs, zero
//
// Branch operands accept a label or a numeric word offset.
#pragma once

#include <stdexcept>
#include <string>

#include "asm/program.hpp"

namespace asbr {

/// Assembly failure with 1-based source line information.
class AsmError : public std::runtime_error {
public:
    AsmError(int line, const std::string& message)
        : std::runtime_error("asm:" + std::to_string(line) + ": " + message),
          line_(line) {}

    [[nodiscard]] int line() const { return line_; }

private:
    int line_;
};

/// Assembler options.
struct AsmOptions {
    std::uint32_t textBase = kTextBase;
    std::uint32_t dataBase = kDataBase;
    /// Entry symbol; falls back to the first text address when absent.
    std::string entrySymbol = "main";
};

/// Assemble a full translation unit into a linked Program.
[[nodiscard]] Program assemble(const std::string& source,
                               const AsmOptions& options = {});

}  // namespace asbr

// The Application-Specific Branch Resolution unit — the paper's core
// contribution, packaged as a FetchCustomizer the pipeline consults on every
// fetch.
//
// Phase 1 (Early Condition Evaluation): onValueAvailable events from the
// pipeline update the BDT at the configured pipeline point (commit,
// post-execute forwarding path, or execute end — Section 5.2's threshold
// optimization).
//
// Phase 2 (branch folding, paper Figure 4): onFetch looks the PC up in the
// active BIT bank; on a match with a valid (no in-flight producer) condition
// register, the branch is replaced by its target or fall-through instruction
// and the fetch stream is redirected, so the branch never enters the
// pipeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "asbr/bdt.hpp"
#include "asbr/bit.hpp"
#include "asbr/static_fold.hpp"
#include "sim/fetch_customizer.hpp"

namespace asbr {

class MetricRegistry;

/// Memory-mapped control register: a store to this address selects the
/// active BIT bank (paper Section 7, "writing a special value to a control
/// register just before entering the loop").
inline constexpr std::uint32_t kBitBankSelectAddr = 0xFFFF'0000u;

/// Configuration of the ASBR hardware.
struct AsbrConfig {
    /// Pipeline point where the early condition evaluation captures values.
    /// kCommit  = paper's base scheme       (threshold 4 on a 5-stage pipe)
    /// kMemEnd  = forwarding path after EX  (threshold 3)
    /// kExEnd   = evaluate within EX        (threshold 2, most aggressive)
    ValueStage updateStage = ValueStage::kMemEnd;
    std::size_t bitCapacity = 16;
    std::size_t bitBanks = 1;
    /// Opt-in soft-error protection (docs/fault-injection.md): per-entry
    /// parity on the BDT and BIT is checked before every table read.  A
    /// mismatch takes the entry out of service — the branch falls back to
    /// the general predictor — and charges `parityRecoveryPenalty` fetch
    /// bubbles for the scrub.  Off by default: the unprotected unit is
    /// cycle-identical to the pre-parity hardware.
    bool parityProtected = false;
    std::uint32_t parityRecoveryPenalty = 2;
};

/// Fold statistics for cost/benefit reporting.
struct AsbrStats {
    std::uint64_t lookups = 0;        ///< fetches of BIT-resident branches
    std::uint64_t folds = 0;          ///< successfully folded
    std::uint64_t foldsTaken = 0;
    std::uint64_t blockedInvalid = 0; ///< producer in flight — fell back to predictor
    std::uint64_t bankSwitches = 0;
    std::uint64_t parityRecoveries = 0;  ///< parity mismatches detected + scrubbed
    std::uint64_t quarantinedBlocks = 0; ///< folds blocked by a quarantined BDT entry
    std::uint64_t staticFolds = 0;       ///< folds resolved by the static table

    /// Register these totals under `asbr.*` in the metric registry.
    void publish(MetricRegistry& registry) const;
};

class AsbrUnit final : public FetchCustomizer {
public:
    explicit AsbrUnit(const AsbrConfig& config = {});

    /// Customization: load branch information into a BIT bank (normally bank
    /// 0; additional banks cover further loops).
    void loadBank(std::size_t bank, std::vector<BranchInfo> entries);

    /// Customization: load statically-decided branches (src/analysis/absint
    /// verdicts).  These fold on every fetch with no BDT dependence and no
    /// BIT occupancy.  `bitSlotsReclaimed` records how many BIT slots the
    /// old dynamic-only policy would have spent on these branches — freed
    /// for the next-hottest dynamic candidates; it is a customization fact,
    /// so reset() leaves it (and the table) in place, like loadBank data.
    void loadStaticFolds(std::vector<StaticFoldEntry> entries,
                         std::uint64_t bitSlotsReclaimed = 0);

    /// FetchCustomizer interface --------------------------------------------
    std::optional<FoldOutcome> onFetch(std::uint32_t pc,
                                       const Instruction& fetched) override;
    void reset() override;

    // The per-instruction replay hooks are defined inline: both the pipeline
    // (through the virtual interface) and the sampled fast-forward loop
    // (through the concrete type, which inlines them wholesale) fire these
    // for every committed instruction.
    void onProducerDecoded(std::uint8_t reg) override {
        if (!bdtGate(reg)) return;
        bdt_.producerDecoded(reg);
    }

    void onValueAvailable(std::uint8_t reg, std::int32_t value,
                          ValueStage stage, ValueStage firstStage) override {
        // Values are captured at the configured stage, or at first
        // availability when that is later (loads cannot be captured before
        // MEM).
        const ValueStage effective = std::max(config_.updateStage, firstStage);
        if (stage != effective) return;
        if (!bdtGate(reg)) return;
        bdt_.update(reg, value);
    }

    void onStore(std::uint32_t addr, std::int32_t value) override {
        if (addr != kBitBankSelectAddr) return;
        ++stats_.bankSwitches;
        bit_.selectBank(static_cast<std::size_t>(value));
    }

    void onArchStep(const DecodedOp& dec, const StepResult& sr) override {
        // Same event stream as the base default — instantiating the shared
        // replay body with the final class type devirtualizes and inlines
        // every inner hook, which is what makes functional fast-forward
        // cheap.
        replayArchStep(*this, dec, sr);
    }

    std::uint32_t takeRecoveryStall() override {
        const std::uint32_t stall = pendingRecoveryStall_;
        pendingRecoveryStall_ = 0;
        return stall;
    }

    [[nodiscard]] const AsbrStats& stats() const { return stats_; }
    [[nodiscard]] const AsbrConfig& config() const { return config_; }
    [[nodiscard]] const BranchIdentificationTable& bit() const { return bit_; }
    [[nodiscard]] const BranchDirectionTable& bdt() const { return bdt_; }
    [[nodiscard]] const StaticFoldTable& staticFolds() const {
        return staticFolds_;
    }
    [[nodiscard]] std::uint64_t bitSlotsReclaimed() const {
        return bitSlotsReclaimed_;
    }

    /// Fault-injection ports: mutable access to the tables so a campaign can
    /// flip stored bits mid-run (src/fault).  Not used on the fetch path.
    [[nodiscard]] BranchDirectionTable& bdtFaultPort() { return bdt_; }
    [[nodiscard]] BranchIdentificationTable& bitFaultPort() { return bit_; }

    /// Hardware cost proxy in bits (BIT + BDT + static fold table; parity
    /// bits when protected).
    [[nodiscard]] std::uint64_t storageBits() const {
        std::uint64_t bits = bit_.storageBits() +
                             BranchDirectionTable::storageBits() +
                             staticFolds_.storageBits();
        if (config_.parityProtected)
            bits += bit_.parityStorageBits() +
                    BranchDirectionTable::parityStorageBits();
        return bits;
    }

    /// Register fold statistics plus hardware-cost metrics (`asbr.*`).
    void publishMetrics(MetricRegistry& registry) const;

private:
    /// Protected-mode gate in front of every BDT access: on a parity mismatch
    /// the entry is quarantined, a recovery is counted and the scrub penalty
    /// is queued.  Returns false when the entry must not be used this access.
    /// Inline so the unprotected configuration folds to a single compare on
    /// the replay hot path.
    [[nodiscard]] bool bdtGate(std::uint8_t reg) {
        if (!config_.parityProtected) return true;
        if (bdt_.isQuarantined(reg)) return false;
        if (!bdt_.parityOk(reg)) {
            // Detected soft error: scrub the entry out of service for the
            // rest of the run and pay the resynchronization penalty once.
            bdt_.quarantine(reg);
            chargeRecovery();
            return false;
        }
        return true;
    }

    void chargeRecovery() {
        ++stats_.parityRecoveries;
        pendingRecoveryStall_ += config_.parityRecoveryPenalty;
    }

    AsbrConfig config_;
    BranchIdentificationTable bit_;
    BranchDirectionTable bdt_;
    StaticFoldTable staticFolds_;
    AsbrStats stats_;
    std::uint64_t bitSlotsReclaimed_ = 0;
    std::uint32_t pendingRecoveryStall_ = 0;
};

}  // namespace asbr

// Branch Identification Table (paper Section 7).
//
// Each entry carries the statically pre-decoded branch information the fold
// logic needs in the fetch stage: the branch's own PC (used for
// identification), the Direction Index (condition register + condition), the
// Branch Target Address, and the target / fall-through instructions that
// replace the folded branch.  The table supports multiple banks; only one
// bank is active at a time and software switches banks by writing a control
// register at loop transitions.
//
// Robustness (docs/fault-injection.md): entries additionally keep the BTI/BFI
// replacement slots in encoded form plus one even-parity bit over all stored
// words.  Legitimate writes (loadBank) compute parity; the fault-injection
// port (flipEntryBit) flips a stored bit without fixing it, modeling a soft
// error.  Protected lookups check parity on a PC match and invalidate the
// entry on mismatch — the branch then takes the ordinary predictor path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/encoding.hpp"
#include "isa/isa.hpp"
#include "util/ensure.hpp"

namespace asbr {

/// Statically pre-decoded information for one foldable branch — the fields
/// of one BIT entry (PC, DI, BTA, BTI/inst1, BFI/inst2).
struct BranchInfo {
    std::uint32_t pc = 0;           ///< branch address (identification tag)
    std::uint8_t conditionReg = 0;  ///< DI: BDT entry holding the predicate
    Cond cond = Cond::kEqz;         ///< DI: which condition bit to read
    std::uint32_t bta = 0;          ///< branch target address
    Instruction bti;                ///< instruction at the target
    Instruction bfi;                ///< instruction on the fall-through path
};

/// Addressable fields of a stored BIT entry, for single-bit fault injection.
enum class BitField : std::uint8_t {
    kPc = 0,      ///< identification tag (32 bits)
    kDi = 1,      ///< direction index: bits 0..4 reg, bits 5..7 cond
    kBta = 2,     ///< branch target address (32 bits)
    kBti = 3,     ///< encoded target instruction word (32 bits)
    kBfi = 4,     ///< encoded fall-through instruction word (32 bits)
    kParity = 5,  ///< the parity bit itself (1 bit)
};

/// Number of flippable bits in each BitField.
[[nodiscard]] inline unsigned bitFieldWidth(BitField f) {
    switch (f) {
        case BitField::kDi: return 8;
        case BitField::kParity: return 1;
        default: return 32;
    }
}

class BranchIdentificationTable {
public:
    /// `capacity` is the per-bank entry count (paper: 16).
    explicit BranchIdentificationTable(std::size_t capacity = 16,
                                       std::size_t numBanks = 1)
        : capacity_(capacity) {
        ASBR_ENSURE(capacity >= 1, "BIT capacity must be >= 1");
        ASBR_ENSURE(numBanks >= 1, "BIT needs at least one bank");
        banks_.resize(numBanks);
    }

    /// Load entries into a bank (customization / program-code upload).
    /// Truncation is an error — selection must respect the capacity.
    void loadBank(std::size_t bank, std::vector<BranchInfo> entries) {
        ASBR_ENSURE(bank < banks_.size(), "BIT: bad bank index");
        ASBR_ENSURE(entries.size() <= capacity_, "BIT: bank over capacity");
        for (std::size_t i = 0; i < entries.size(); ++i)
            for (std::size_t j = i + 1; j < entries.size(); ++j)
                ASBR_ENSURE(entries[i].pc != entries[j].pc,
                            "BIT: duplicate branch PC in bank");
        std::vector<Stored> stored;
        stored.reserve(entries.size());
        for (BranchInfo& info : entries) {
            Stored s;
            s.btiWord = encode(info.bti);
            s.bfiWord = encode(info.bfi);
            s.info = std::move(info);
            s.parity = computeParity(s);
            stored.push_back(s);
        }
        banks_[bank] = std::move(stored);
    }

    /// Select the active bank (control-register write at run time).
    void selectBank(std::size_t bank) {
        ASBR_ENSURE(bank < banks_.size(), "BIT: bad bank index");
        active_ = bank;
    }

    [[nodiscard]] std::size_t activeBank() const { return active_; }
    [[nodiscard]] std::size_t numBanks() const { return banks_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Number of entries loaded into `bank` (fault-site enumeration).
    [[nodiscard]] std::size_t entryCount(std::size_t bank) const {
        ASBR_ENSURE(bank < banks_.size(), "BIT: bad bank index");
        return banks_[bank].size();
    }

    /// Decoded view of entry `entry` in `bank` (fault-site enumeration).
    [[nodiscard]] const BranchInfo& entryInfo(std::size_t bank,
                                              std::size_t entry) const {
        ASBR_ENSURE(bank < banks_.size(), "BIT: bad bank index");
        ASBR_ENSURE(entry < banks_[bank].size(), "BIT: bad entry index");
        return banks_[bank][entry].info;
    }

    /// Fully-associative PC match against the active bank (fetch stage),
    /// without any parity checking (unprotected hardware).  An entry whose
    /// replacement slot no longer decodes is corrupted customization data:
    /// fetching through it is an illegal-instruction condition.
    [[nodiscard]] const BranchInfo* lookup(std::uint32_t pc) const {
        for (const Stored& e : banks_[active_]) {
            if (!e.valid || e.info.pc != pc) continue;
            ASBR_ENSURE(e.decodable,
                        "BIT: corrupted replacement instruction fetched");
            return &e.info;
        }
        return nullptr;
    }

    /// Parity-checked PC match (protected hardware).  On a match with bad
    /// parity the entry is invalidated for the rest of the run, `recovered`
    /// is set, and no fold happens — the branch falls back to the general
    /// predictor path.
    [[nodiscard]] const BranchInfo* lookupProtected(std::uint32_t pc,
                                                    bool& recovered) {
        recovered = false;
        for (Stored& e : banks_[active_]) {
            if (!e.valid || e.info.pc != pc) continue;
            if (e.parity != computeParity(e)) {
                e.valid = false;
                recovered = true;
                return nullptr;
            }
            ASBR_ENSURE(e.decodable,
                        "BIT: corrupted replacement instruction fetched");
            return &e.info;
        }
        return nullptr;
    }

    /// Fault-injection port: flip bit `bit` of `field` in entry `entry` of
    /// `bank`, WITHOUT updating parity.  Flips of the encoded BTI/BFI words
    /// re-derive the decoded slot; a word that no longer decodes marks the
    /// entry undecodable (the flip hit the opcode field).
    void flipEntryBit(std::size_t bank, std::size_t entry, BitField field,
                      unsigned bit) {
        ASBR_ENSURE(bank < banks_.size(), "BIT: bad bank index");
        ASBR_ENSURE(entry < banks_[bank].size(), "BIT: bad entry index");
        ASBR_ENSURE(bit < bitFieldWidth(field), "BIT: bit out of range");
        Stored& e = banks_[bank][entry];
        const std::uint32_t mask = 1u << bit;
        switch (field) {
            case BitField::kPc:
                e.info.pc ^= mask;
                break;
            case BitField::kDi:
                if (bit < 5) {
                    e.info.conditionReg =
                        static_cast<std::uint8_t>(e.info.conditionReg ^ mask);
                } else {
                    // Condition code bits; the flipped value may exceed the
                    // architected condition count — consumers bounds-check.
                    e.info.cond = static_cast<Cond>(
                        static_cast<std::uint8_t>(e.info.cond) ^ (mask >> 5));
                }
                break;
            case BitField::kBta:
                e.info.bta ^= mask;
                break;
            case BitField::kBti:
                e.btiWord ^= mask;
                redecode(e.btiWord, e.info.bti, e);
                break;
            case BitField::kBfi:
                e.bfiWord ^= mask;
                redecode(e.bfiWord, e.info.bfi, e);
                break;
            case BitField::kParity:
                e.parity = !e.parity;
                break;
        }
    }

    /// Storage cost in bits per the paper's area proxy: PC tag (30) +
    /// DI (5 reg + 3 cond) + BTA (30) + two 32-bit instruction slots.
    [[nodiscard]] std::uint64_t storageBits() const {
        return static_cast<std::uint64_t>(capacity_) * banks_.size() *
               (30 + 5 + 3 + 30 + 32 + 32);
    }

    /// Extra storage of the protected variant: one parity bit per entry.
    [[nodiscard]] std::uint64_t parityStorageBits() const {
        return static_cast<std::uint64_t>(capacity_) * banks_.size();
    }

private:
    struct Stored {
        BranchInfo info;
        std::uint32_t btiWord = 0;  ///< encoded bti (parity ground truth)
        std::uint32_t bfiWord = 0;  ///< encoded bfi (parity ground truth)
        bool parity = false;        ///< even parity over all stored words
        bool valid = true;          ///< cleared by protected-mode recovery
        bool decodable = true;      ///< replacement words still decode
    };

    static void redecode(std::uint32_t word, Instruction& slot, Stored& e) {
        try {
            slot = decode(word);
        } catch (const EnsureError&) {
            e.decodable = false;  // flip hit the opcode field
        }
    }

    [[nodiscard]] static bool computeParity(const Stored& e) {
        std::uint32_t acc = e.info.pc ^ e.info.bta ^ e.btiWord ^ e.bfiWord;
        acc ^= static_cast<std::uint32_t>(e.info.conditionReg) |
               (static_cast<std::uint32_t>(e.info.cond) << 5);
        acc ^= acc >> 16;
        acc ^= acc >> 8;
        acc ^= acc >> 4;
        acc ^= acc >> 2;
        acc ^= acc >> 1;
        return (acc & 1u) != 0;
    }

    std::size_t capacity_;
    std::size_t active_ = 0;
    std::vector<std::vector<Stored>> banks_;
};

}  // namespace asbr

// Branch Identification Table (paper Section 7).
//
// Each entry carries the statically pre-decoded branch information the fold
// logic needs in the fetch stage: the branch's own PC (used for
// identification), the Direction Index (condition register + condition), the
// Branch Target Address, and the target / fall-through instructions that
// replace the folded branch.  The table supports multiple banks; only one
// bank is active at a time and software switches banks by writing a control
// register at loop transitions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/isa.hpp"
#include "util/ensure.hpp"

namespace asbr {

/// Statically pre-decoded information for one foldable branch — the fields
/// of one BIT entry (PC, DI, BTA, BTI/inst1, BFI/inst2).
struct BranchInfo {
    std::uint32_t pc = 0;           ///< branch address (identification tag)
    std::uint8_t conditionReg = 0;  ///< DI: BDT entry holding the predicate
    Cond cond = Cond::kEqz;         ///< DI: which condition bit to read
    std::uint32_t bta = 0;          ///< branch target address
    Instruction bti;                ///< instruction at the target
    Instruction bfi;                ///< instruction on the fall-through path
};

class BranchIdentificationTable {
public:
    /// `capacity` is the per-bank entry count (paper: 16).
    explicit BranchIdentificationTable(std::size_t capacity = 16,
                                       std::size_t numBanks = 1)
        : capacity_(capacity) {
        ASBR_ENSURE(capacity >= 1, "BIT capacity must be >= 1");
        ASBR_ENSURE(numBanks >= 1, "BIT needs at least one bank");
        banks_.resize(numBanks);
    }

    /// Load entries into a bank (customization / program-code upload).
    /// Truncation is an error — selection must respect the capacity.
    void loadBank(std::size_t bank, std::vector<BranchInfo> entries) {
        ASBR_ENSURE(bank < banks_.size(), "BIT: bad bank index");
        ASBR_ENSURE(entries.size() <= capacity_, "BIT: bank over capacity");
        for (std::size_t i = 0; i < entries.size(); ++i)
            for (std::size_t j = i + 1; j < entries.size(); ++j)
                ASBR_ENSURE(entries[i].pc != entries[j].pc,
                            "BIT: duplicate branch PC in bank");
        banks_[bank] = std::move(entries);
    }

    /// Select the active bank (control-register write at run time).
    void selectBank(std::size_t bank) {
        ASBR_ENSURE(bank < banks_.size(), "BIT: bad bank index");
        active_ = bank;
    }

    [[nodiscard]] std::size_t activeBank() const { return active_; }
    [[nodiscard]] std::size_t numBanks() const { return banks_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

    /// Fully-associative PC match against the active bank (fetch stage).
    [[nodiscard]] const BranchInfo* lookup(std::uint32_t pc) const {
        for (const BranchInfo& e : banks_[active_])
            if (e.pc == pc) return &e;
        return nullptr;
    }

    /// Storage cost in bits per the paper's area proxy: PC tag (30) +
    /// DI (5 reg + 3 cond) + BTA (30) + two 32-bit instruction slots.
    [[nodiscard]] std::uint64_t storageBits() const {
        return static_cast<std::uint64_t>(capacity_) * banks_.size() *
               (30 + 5 + 3 + 30 + 32 + 32);
    }

private:
    std::size_t capacity_;
    std::size_t active_ = 0;
    std::vector<std::vector<BranchInfo>> banks_;
};

}  // namespace asbr

// Static extraction of branch information from a linked program image —
// the compile-time side of the ASBR methodology ("pre-decoded statically
// during compile time and provided to the branch resolution logic").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "asbr/bit.hpp"
#include "asbr/static_fold.hpp"
#include "asm/program.hpp"

namespace asbr {

/// True when the instruction at `pc` is a conditional branch whose BranchInfo
/// can be extracted: the target and the fall-through successor must both lie
/// inside the text segment.
[[nodiscard]] bool isExtractableBranch(const Program& program, std::uint32_t pc);

/// Build the BIT entry for the branch at `pc`.  Throws EnsureError when
/// !isExtractableBranch(program, pc).
[[nodiscard]] BranchInfo extractBranchInfo(const Program& program,
                                           std::uint32_t pc);

/// Extract a whole bank at once.
[[nodiscard]] std::vector<BranchInfo> extractBranchInfos(
    const Program& program, std::span<const std::uint32_t> pcs);

/// Enumerate the PCs of every extractable conditional branch in the program.
[[nodiscard]] std::vector<std::uint32_t> allConditionalBranches(
    const Program& program);

/// Build the static-fold entry for the branch at `pc`, given the direction
/// the value analysis proved constant.  The direction itself is decided by
/// the analysis layer (which links against this one, not vice versa); this
/// helper only snapshots the replacement the direction selects.  Throws
/// EnsureError when !isExtractableBranch(program, pc).
[[nodiscard]] StaticFoldEntry extractStaticFold(const Program& program,
                                                std::uint32_t pc, bool taken);

}  // namespace asbr

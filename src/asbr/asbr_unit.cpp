#include "asbr/asbr_unit.hpp"

#include <algorithm>

#include "util/metrics.hpp"

namespace asbr {

void AsbrStats::publish(MetricRegistry& registry) const {
    registry
        .counter("asbr.bit_lookups", "fetches that hit a BIT-resident branch")
        .add(lookups);
    registry.counter("asbr.folds", "branches folded out of the fetch stream")
        .add(folds);
    registry.counter("asbr.folds_taken", "folds resolved in the taken direction")
        .add(foldsTaken);
    registry
        .counter("asbr.blocked_invalid",
                 "BIT hits blocked by a nonzero validity counter (producer "
                 "in flight); fell back to the predictor")
        .add(blockedInvalid);
    registry
        .counter("asbr.bank_switches",
                 "BIT bank switches via the memory-mapped control register")
        .add(bankSwitches);
    registry
        .counter("asbr.parity_recoveries",
                 "parity mismatches detected on a BDT/BIT access; the entry "
                 "was scrubbed out of service and the branch fell back to "
                 "the general predictor")
        .add(parityRecoveries);
    registry
        .counter("asbr.quarantined_blocks",
                 "fold opportunities blocked because the condition register's "
                 "BDT entry is quarantined after a parity recovery")
        .add(quarantinedBlocks);
    registry
        .counter("asbr.static_folds",
                 "branches folded by the static table (statically-decided "
                 "direction; no BDT dependence, never blocked)")
        .add(staticFolds);
}

void AsbrUnit::publishMetrics(MetricRegistry& registry) const {
    stats_.publish(registry);
    registry
        .counter("asbr.storage_bits", "ASBR hardware cost proxy (BIT + BDT)")
        .add(storageBits());
    registry.counter("asbr.bit_capacity", "configured BIT entries per bank")
        .add(config_.bitCapacity);
    registry
        .counter("asbr.bit_slots_reclaimed",
                 "BIT slots freed because the branch is handled by the "
                 "static fold table instead of a BIT entry")
        .add(bitSlotsReclaimed_);
}

AsbrUnit::AsbrUnit(const AsbrConfig& config)
    : config_(config), bit_(config.bitCapacity, config.bitBanks) {}

void AsbrUnit::loadBank(std::size_t bank, std::vector<BranchInfo> entries) {
    bit_.loadBank(bank, std::move(entries));
}

void AsbrUnit::loadStaticFolds(std::vector<StaticFoldEntry> entries,
                               std::uint64_t bitSlotsReclaimed) {
    staticFolds_.load(std::move(entries));
    bitSlotsReclaimed_ = bitSlotsReclaimed;
}

std::optional<FetchCustomizer::FoldOutcome> AsbrUnit::onFetch(
    std::uint32_t pc, const Instruction& fetched) {
    // Statically-decided branches resolve before the BIT is even consulted:
    // the direction is a customization-time constant, so no BDT read, no
    // validity check, and no way to be blocked.
    if (const StaticFoldEntry* sf = staticFolds_.lookup(pc)) {
        ASBR_ENSURE(isCondBranch(fetched.op),
                    "static fold entry does not match the fetched instruction");
        ++stats_.staticFolds;
        ++stats_.folds;
        if (sf->taken) ++stats_.foldsTaken;
        return FoldOutcome{sf->replacement, sf->replacementPc, sf->taken};
    }
    const BranchInfo* entry = nullptr;
    if (config_.parityProtected) {
        bool recovered = false;
        entry = bit_.lookupProtected(pc, recovered);
        if (recovered) {
            chargeRecovery();
            return std::nullopt;  // entry scrubbed — predictor path
        }
    } else {
        entry = bit_.lookup(pc);
    }
    if (entry == nullptr) return std::nullopt;
    ++stats_.lookups;
    // The BIT identifies branches by PC before decode; entries are extracted
    // from the same program image, so a mismatch means corrupted
    // customization data.
    ASBR_ENSURE(isCondBranch(fetched.op) && fetched.rs == entry->conditionReg,
                "BIT entry does not match the fetched instruction");
    if (!bdtGate(entry->conditionReg)) {
        ++stats_.quarantinedBlocks;
        return std::nullopt;  // BDT entry out of service — use predictor
    }
    if (!bdt_.isValid(entry->conditionReg)) {
        ++stats_.blockedInvalid;
        return std::nullopt;  // predicate producer in flight — use predictor
    }
    ++stats_.folds;
    const bool taken = bdt_.direction(entry->conditionReg, entry->cond);
    if (taken) {
        ++stats_.foldsTaken;
        return FoldOutcome{entry->bti, entry->bta, true};
    }
    return FoldOutcome{entry->bfi, pc + kInstrBytes, false};
}

void AsbrUnit::reset() {
    bdt_.reset();
    stats_ = AsbrStats{};
    bit_.selectBank(0);
    pendingRecoveryStall_ = 0;
}

}  // namespace asbr

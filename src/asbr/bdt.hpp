// Branch Direction Table (paper Section 4, Figure 8).
//
// One entry per architectural register.  Each entry holds the precomputed
// direction bit for every zero-comparison branch condition the ISA supports,
// plus a validity counter tracking in-flight producers of the register:
// the counter is incremented when a producing instruction is decoded and
// decremented when the value reaches the early-condition-evaluation logic.
// A branch may only be folded when the counter of its condition register is
// zero — otherwise the precomputed direction bits could be stale.
//
// Robustness (docs/fault-injection.md): every entry carries one even-parity
// bit over its condition bits and validity counter, maintained by all
// legitimate writes.  The fault-injection port (`flip*`) corrupts stored
// state *without* fixing parity, exactly like a radiation-induced bit flip;
// in the ASBR unit's protected mode a parity mismatch quarantines the entry,
// which permanently (for the run) disables folding on that register — the
// branch falls back to the general predictor path, preserving architectural
// correctness at a graceful fold-coverage cost.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "isa/isa.hpp"
#include "util/ensure.hpp"

namespace asbr {

class BranchDirectionTable {
public:
    /// The validity counter is 3 bits wide (paper area proxy; a 5-stage
    /// in-order pipeline can keep at most a handful of producers in flight).
    static constexpr std::uint8_t kMaxPending = 7;

    BranchDirectionTable() { reset(); }

    /// Early Condition Evaluation (paper Figure 3): recompute all condition
    /// bits for `r` from the freshly produced value and release one pending
    /// producer.  Quarantined entries ignore updates (they are dead for the
    /// rest of the run).
    void update(std::uint8_t r, std::int32_t value) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        Entry& e = entries_[r];
        if (e.quarantined) return;
        ASBR_ENSURE(e.pending > 0, "BDT: update without pending producer");
        --e.pending;
        e.bits = condMask(value);
        e.parity = computeParity(e);
    }

    /// A producer of `r` completed decode; direction bits for `r` are stale
    /// until the matching update() arrives.  The 3-bit counter must never
    /// saturate in a correctly tracking pipeline — overflow means the
    /// producer/update bookkeeping desynchronized.
    void producerDecoded(std::uint8_t r) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        Entry& e = entries_[r];
        if (e.quarantined) return;
        ASBR_ENSURE(e.pending < kMaxPending,
                    "BDT: validity counter saturated (producer tracking "
                    "desynchronized)");
        ++e.pending;
        e.parity = computeParity(e);
    }

    /// True when no producer of `r` is in flight (folding is legal).
    /// Quarantined entries are never valid.
    [[nodiscard]] bool isValid(std::uint8_t r) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        return !entries_[r].quarantined && entries_[r].pending == 0;
    }

    /// Precomputed direction for condition `c` on register `r`.  Only
    /// meaningful when isValid(r).
    [[nodiscard]] bool direction(std::uint8_t r, Cond c) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        ASBR_ENSURE(static_cast<int>(c) < kNumConds,
                    "BDT: bad condition index");
        return ((entries_[r].bits >> static_cast<unsigned>(c)) & 1u) != 0;
    }

    [[nodiscard]] std::uint32_t pendingCount(std::uint8_t r) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        return entries_[r].pending;
    }

    /// Parity check of entry `r` — true when the stored parity bit matches
    /// the entry contents (no detectable corruption).
    [[nodiscard]] bool parityOk(std::uint8_t r) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        return entries_[r].parity == computeParity(entries_[r]);
    }

    /// Take entry `r` out of service for the rest of the run (protected-mode
    /// recovery after a parity mismatch).  Folding on `r` is disabled and
    /// producer tracking for it becomes a no-op.
    void quarantine(std::uint8_t r) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        entries_[r].quarantined = true;
    }

    [[nodiscard]] bool isQuarantined(std::uint8_t r) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        return entries_[r].quarantined;
    }

    /// Fault-injection port: flip the stored direction bit for (`r`, `c`)
    /// WITHOUT updating parity (models a transient single-bit upset).
    void flipConditionBit(std::uint8_t r, Cond c) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        ASBR_ENSURE(static_cast<int>(c) < kNumConds,
                    "BDT: bad condition index");
        entries_[r].bits ^= static_cast<std::uint8_t>(1u << static_cast<unsigned>(c));
    }

    /// Fault-injection port: flip bit `bit` (0..2) of the validity counter.
    void flipPendingBit(std::uint8_t r, unsigned bit) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        ASBR_ENSURE(bit < 3, "BDT: counter is 3 bits wide");
        entries_[r].pending ^= static_cast<std::uint8_t>(1u << bit);
    }

    /// Fault-injection port: flip the parity bit itself.
    void flipParityBit(std::uint8_t r) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        entries_[r].parity = !entries_[r].parity;
    }

    /// All registers valid with value 0 (machine reset state).
    void reset() {
        for (Entry& e : entries_) {
            e.pending = 0;
            e.quarantined = false;
            e.bits = condMask(0);
            e.parity = computeParity(e);
        }
    }

    /// Storage cost in bits: per register, one bit per condition plus the
    /// 3-bit validity counter.
    [[nodiscard]] static std::uint64_t storageBits() {
        return static_cast<std::uint64_t>(kNumRegs) * (kNumConds + 3);
    }

    /// Extra storage of the protected variant: one parity bit per register.
    [[nodiscard]] static std::uint64_t parityStorageBits() { return kNumRegs; }

private:
    /// Direction bits are packed as a mask, bit c = evalCond(Cond(c), value)
    /// — same contents as the paper's per-condition bit vector, but a
    /// single-byte update/parity on the hot BDT-event path (the pipeline
    /// and the sampled fast-forward replay fire these events for every
    /// value-producing instruction).
    struct Entry {
        std::uint8_t bits = 0;     ///< per-condition direction bits
        std::uint8_t pending = 0;  ///< 3-bit validity counter
        bool parity = false;       ///< even parity over bits + pending
        bool quarantined = false;  ///< protected-mode: entry out of service
    };

    /// evalCond over every condition at once; constexpr evalCond folds this
    /// into a handful of branchless flag computations.
    [[nodiscard]] static std::uint8_t condMask(std::int32_t value) {
        std::uint8_t mask = 0;
        for (int c = 0; c < kNumConds; ++c)
            if (evalCond(static_cast<Cond>(c), value))
                mask |= static_cast<std::uint8_t>(1u << c);
        return mask;
    }

    [[nodiscard]] static bool computeParity(const Entry& e) {
        return (std::popcount(static_cast<unsigned>(e.bits)) +
                std::popcount(static_cast<unsigned>(e.pending))) %
                   2 !=
               0;
    }

    std::array<Entry, kNumRegs> entries_;
};

}  // namespace asbr

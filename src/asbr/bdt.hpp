// Branch Direction Table (paper Section 4, Figure 8).
//
// One entry per architectural register.  Each entry holds the precomputed
// direction bit for every zero-comparison branch condition the ISA supports,
// plus a validity counter tracking in-flight producers of the register:
// the counter is incremented when a producing instruction is decoded and
// decremented when the value reaches the early-condition-evaluation logic.
// A branch may only be folded when the counter of its condition register is
// zero — otherwise the precomputed direction bits could be stale.
#pragma once

#include <array>
#include <cstdint>

#include "isa/isa.hpp"
#include "util/ensure.hpp"

namespace asbr {

class BranchDirectionTable {
public:
    BranchDirectionTable() { reset(); }

    /// Early Condition Evaluation (paper Figure 3): recompute all condition
    /// bits for `r` from the freshly produced value and release one pending
    /// producer.
    void update(std::uint8_t r, std::int32_t value) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        Entry& e = entries_[r];
        ASBR_ENSURE(e.pending > 0, "BDT: update without pending producer");
        --e.pending;
        for (int c = 0; c < kNumConds; ++c)
            e.bits[static_cast<std::size_t>(c)] =
                evalCond(static_cast<Cond>(c), value);
    }

    /// A producer of `r` completed decode; direction bits for `r` are stale
    /// until the matching update() arrives.
    void producerDecoded(std::uint8_t r) {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        ++entries_[r].pending;
    }

    /// True when no producer of `r` is in flight (folding is legal).
    [[nodiscard]] bool isValid(std::uint8_t r) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        return entries_[r].pending == 0;
    }

    /// Precomputed direction for condition `c` on register `r`.  Only
    /// meaningful when isValid(r).
    [[nodiscard]] bool direction(std::uint8_t r, Cond c) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        return entries_[r].bits[static_cast<std::size_t>(c)];
    }

    [[nodiscard]] std::uint32_t pendingCount(std::uint8_t r) const {
        ASBR_ENSURE(r < kNumRegs, "BDT: bad register");
        return entries_[r].pending;
    }

    /// All registers valid with value 0 (machine reset state).
    void reset() {
        for (Entry& e : entries_) {
            e.pending = 0;
            for (int c = 0; c < kNumConds; ++c)
                e.bits[static_cast<std::size_t>(c)] =
                    evalCond(static_cast<Cond>(c), 0);
        }
    }

    /// Storage cost in bits: per register, one bit per condition plus a
    /// small validity counter (paper area proxy; 3-bit counters suffice for
    /// a 5-stage in-order pipeline).
    [[nodiscard]] static std::uint64_t storageBits() {
        return static_cast<std::uint64_t>(kNumRegs) * (kNumConds + 3);
    }

private:
    struct Entry {
        std::array<bool, kNumConds> bits{};
        std::uint32_t pending = 0;
    };
    std::array<Entry, kNumRegs> entries_;
};

}  // namespace asbr

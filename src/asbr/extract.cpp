#include "asbr/extract.hpp"

#include <unordered_set>

namespace asbr {

bool isExtractableBranch(const Program& program, std::uint32_t pc) {
    if (!program.inText(pc)) return false;
    const Instruction& ins = program.at(pc);
    if (!isCondBranch(ins.op)) return false;
    const std::uint32_t bta =
        pc + kInstrBytes + static_cast<std::uint32_t>(ins.imm) * kInstrBytes;
    return program.inText(bta) && program.inText(pc + kInstrBytes);
}

BranchInfo extractBranchInfo(const Program& program, std::uint32_t pc) {
    ASBR_ENSURE(isExtractableBranch(program, pc),
                "extractBranchInfo: not an extractable branch");
    const Instruction& ins = program.at(pc);
    BranchInfo info;
    info.pc = pc;
    info.conditionReg = ins.rs;
    info.cond = branchCond(ins.op);
    info.bta = pc + kInstrBytes + static_cast<std::uint32_t>(ins.imm) * kInstrBytes;
    info.bti = program.at(info.bta);
    info.bfi = program.at(pc + kInstrBytes);
    return info;
}

std::vector<BranchInfo> extractBranchInfos(const Program& program,
                                           std::span<const std::uint32_t> pcs) {
    std::vector<BranchInfo> out;
    out.reserve(pcs.size());
    std::unordered_set<std::uint32_t> seen;
    seen.reserve(pcs.size());
    for (std::uint32_t pc : pcs) {
        // A repeated PC would load duplicate BIT entries that silently
        // shadow each other in the associative lookup.
        ASBR_ENSURE(seen.insert(pc).second,
                    "extractBranchInfos: duplicate branch pc in span");
        out.push_back(extractBranchInfo(program, pc));
    }
    return out;
}

StaticFoldEntry extractStaticFold(const Program& program, std::uint32_t pc,
                                  bool taken) {
    const BranchInfo info = extractBranchInfo(program, pc);
    StaticFoldEntry e;
    e.pc = pc;
    e.taken = taken;
    e.replacement = taken ? info.bti : info.bfi;
    e.replacementPc = taken ? info.bta : pc + kInstrBytes;
    return e;
}

std::vector<std::uint32_t> allConditionalBranches(const Program& program) {
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < program.code.size(); ++i) {
        const std::uint32_t pc =
            program.textBase + static_cast<std::uint32_t>(i) * kInstrBytes;
        if (isExtractableBranch(program, pc)) out.push_back(pc);
    }
    return out;
}

}  // namespace asbr

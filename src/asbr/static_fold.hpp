// Static fold table — the compile-time-decided companion of the BIT.
//
// A branch the static value analysis proves always- or never-taken needs
// none of the BIT's machinery: no Direction Index, no BDT read, no validity
// counter.  Its resolution is a constant, so the entry stores only the PC
// tag, the one direction bit and the pre-decoded replacement — the folded
// instruction stream is fixed at customization time.  Because no producer
// tracking is involved, a static fold can never be blocked: every fetch of
// the branch folds, which is also why these entries do not occupy BIT slots
// (the freed slots go to the next-hottest dynamic branches).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/isa.hpp"
#include "util/ensure.hpp"

namespace asbr {

/// One statically-decided branch: replacement fixed at customization time.
struct StaticFoldEntry {
    std::uint32_t pc = 0;            ///< branch address (identification tag)
    bool taken = false;              ///< the constant direction
    Instruction replacement;         ///< BTI when taken, BFI otherwise
    std::uint32_t replacementPc = 0; ///< BTA when taken, pc + 4 otherwise
};

/// Fully-associative PC-tag match, like the BIT but with constant payloads.
class StaticFoldTable {
public:
    void load(std::vector<StaticFoldEntry> entries) {
        for (std::size_t i = 0; i < entries.size(); ++i)
            for (std::size_t j = i + 1; j < entries.size(); ++j)
                ASBR_ENSURE(entries[i].pc != entries[j].pc,
                            "StaticFoldTable: duplicate branch PC");
        entries_ = std::move(entries);
    }

    [[nodiscard]] const StaticFoldEntry* lookup(std::uint32_t pc) const {
        for (const StaticFoldEntry& e : entries_)
            if (e.pc == pc) return &e;
        return nullptr;
    }

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] const std::vector<StaticFoldEntry>& entries() const {
        return entries_;
    }

    /// Area proxy, per the BIT's accounting: PC tag (30) + direction (1) +
    /// replacement instruction word (32) + replacement address (30).
    [[nodiscard]] std::uint64_t storageBits() const {
        return static_cast<std::uint64_t>(entries_.size()) * (30 + 1 + 32 + 30);
    }

private:
    std::vector<StaticFoldEntry> entries_;
};

}  // namespace asbr

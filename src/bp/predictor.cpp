#include "bp/predictor.hpp"

#include <algorithm>

#include "util/metrics.hpp"

namespace asbr {

void BranchPredictor::publishMetrics(MetricRegistry& registry) const {
    registry
        .counter("bp.storage_bits",
                 "auxiliary/general-purpose predictor storage cost in bits")
        .add(storageBits());
}

namespace {

bool isPow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// 2-bit saturating counter transitions; counters predict taken at >= 2.
std::uint8_t saturate(std::uint8_t counter, bool taken) {
    if (taken) return counter < 3 ? static_cast<std::uint8_t>(counter + 1) : counter;
    return counter > 0 ? static_cast<std::uint8_t>(counter - 1) : counter;
}

}  // namespace

// ----------------------------------------------------------------- Btb -----

Btb::Btb(std::uint32_t entries) {
    ASBR_ENSURE(isPow2(entries), "BTB entries must be a power of two");
    lines_.resize(entries);
}

std::optional<std::uint32_t> Btb::lookup(std::uint32_t pc) const {
    const Line& line = lines_[(pc >> 2) & (lines_.size() - 1)];
    if (line.valid && line.pc == pc) return line.target;
    return std::nullopt;
}

void Btb::update(std::uint32_t pc, std::uint32_t target) {
    Line& line = lines_[(pc >> 2) & (lines_.size() - 1)];
    line = {true, pc, target};
}

void Btb::reset() {
    std::fill(lines_.begin(), lines_.end(), Line{});
}

// ------------------------------------------------------------- Bimodal -----

BimodalPredictor::BimodalPredictor(std::uint32_t counters, std::uint32_t btbEntries)
    : counters_(counters, 1), btb_(btbEntries) {
    ASBR_ENSURE(isPow2(counters), "counter table size must be a power of two");
}

std::string BimodalPredictor::name() const {
    return "bimodal-" + std::to_string(counters_.size()) + "/btb-" +
           std::to_string(btb_.entries());
}

std::size_t BimodalPredictor::index(std::uint32_t pc) const {
    return (pc >> 2) & (counters_.size() - 1);
}

Prediction BimodalPredictor::predict(std::uint32_t pc) {
    const bool taken = counters_[index(pc)] >= 2;
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void BimodalPredictor::update(std::uint32_t pc, bool taken, std::uint32_t target) {
    std::uint8_t& counter = counters_[index(pc)];
    counter = saturate(counter, taken);
    if (taken) btb_.update(pc, target);
}

void BimodalPredictor::reset() {
    std::fill(counters_.begin(), counters_.end(), std::uint8_t{1});
    btb_.reset();
}

std::uint64_t BimodalPredictor::storageBits() const {
    return counters_.size() * 2ull + btb_.storageBits();
}

// -------------------------------------------------------------- GShare -----

GSharePredictor::GSharePredictor(std::uint32_t historyBits, std::uint32_t counters,
                                 std::uint32_t btbEntries)
    : historyBits_(historyBits), counters_(counters, 1), btb_(btbEntries) {
    ASBR_ENSURE(isPow2(counters), "counter table size must be a power of two");
    ASBR_ENSURE(historyBits >= 1 && historyBits <= 30, "history bits 1..30");
}

std::string GSharePredictor::name() const {
    return "gshare-" + std::to_string(historyBits_) + "/" +
           std::to_string(counters_.size()) + "/btb-" + std::to_string(btb_.entries());
}

std::size_t GSharePredictor::index(std::uint32_t pc) const {
    return ((pc >> 2) ^ history_) & (counters_.size() - 1);
}

Prediction GSharePredictor::predict(std::uint32_t pc) {
    const bool taken = counters_[index(pc)] >= 2;
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void GSharePredictor::update(std::uint32_t pc, bool taken, std::uint32_t target) {
    std::uint8_t& counter = counters_[index(pc)];
    counter = saturate(counter, taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & ((1u << historyBits_) - 1);
    if (taken) btb_.update(pc, target);
}

void GSharePredictor::reset() {
    std::fill(counters_.begin(), counters_.end(), std::uint8_t{1});
    history_ = 0;
    btb_.reset();
}

std::uint64_t GSharePredictor::storageBits() const {
    return counters_.size() * 2ull + historyBits_ + btb_.storageBits();
}

// ---------------------------------------------------------- Tournament -----

TournamentPredictor::TournamentPredictor(std::uint32_t choosers,
                                         std::uint32_t counters,
                                         std::uint32_t historyBits,
                                         std::uint32_t btbEntries)
    : choosers_(choosers, 1),
      bimodal_(counters, 1),
      gshare_(counters, 1),
      historyBits_(historyBits),
      btb_(btbEntries) {
    ASBR_ENSURE(isPow2(choosers) && isPow2(counters),
                "table sizes must be powers of two");
    ASBR_ENSURE(historyBits >= 1 && historyBits <= 30, "history bits 1..30");
}

std::string TournamentPredictor::name() const {
    return "tournament-" + std::to_string(bimodal_.size()) + "/btb-" +
           std::to_string(btb_.entries());
}

bool TournamentPredictor::bimodalTaken(std::uint32_t pc) const {
    return bimodal_[(pc >> 2) & (bimodal_.size() - 1)] >= 2;
}

bool TournamentPredictor::gshareTaken(std::uint32_t pc) const {
    return gshare_[((pc >> 2) ^ history_) & (gshare_.size() - 1)] >= 2;
}

Prediction TournamentPredictor::predict(std::uint32_t pc) {
    const bool useGshare = choosers_[(pc >> 2) & (choosers_.size() - 1)] >= 2;
    const bool taken = useGshare ? gshareTaken(pc) : bimodalTaken(pc);
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void TournamentPredictor::update(std::uint32_t pc, bool taken,
                                 std::uint32_t target) {
    const bool bimodalWasRight = bimodalTaken(pc) == taken;
    const bool gshareWasRight = gshareTaken(pc) == taken;
    std::uint8_t& chooser = choosers_[(pc >> 2) & (choosers_.size() - 1)];
    if (gshareWasRight != bimodalWasRight)
        chooser = saturate(chooser, gshareWasRight);

    std::uint8_t& bi = bimodal_[(pc >> 2) & (bimodal_.size() - 1)];
    bi = saturate(bi, taken);
    std::uint8_t& gs = gshare_[((pc >> 2) ^ history_) & (gshare_.size() - 1)];
    gs = saturate(gs, taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & ((1u << historyBits_) - 1);
    if (taken) btb_.update(pc, target);
}

void TournamentPredictor::reset() {
    std::fill(choosers_.begin(), choosers_.end(), std::uint8_t{1});
    std::fill(bimodal_.begin(), bimodal_.end(), std::uint8_t{1});
    std::fill(gshare_.begin(), gshare_.end(), std::uint8_t{1});
    history_ = 0;
    btb_.reset();
}

std::uint64_t TournamentPredictor::storageBits() const {
    return (choosers_.size() + bimodal_.size() + gshare_.size()) * 2ull +
           historyBits_ + btb_.storageBits();
}

// ------------------------------------------------------------ Profiled -----

ProfiledStaticPredictor::ProfiledStaticPredictor(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.pc < b.pc; });
}

Prediction ProfiledStaticPredictor::predict(std::uint32_t pc) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), pc,
        [](const Entry& e, std::uint32_t key) { return e.pc < key; });
    if (it == entries_.end() || it->pc != pc) return {};
    if (!it->taken) return {};
    return {true, it->target};
}

std::uint64_t ProfiledStaticPredictor::storageBits() const {
    // pc tag (30) + direction (1) + target (30) per entry.
    return entries_.size() * 61ull;
}

// ----------------------------------------------------------- factories -----

std::unique_ptr<BranchPredictor> makeNotTaken() {
    return std::make_unique<NotTakenPredictor>();
}

std::unique_ptr<BranchPredictor> makeBimodal2048() {
    return std::make_unique<BimodalPredictor>(2048, 2048);
}

std::unique_ptr<BranchPredictor> makeGshare2048() {
    return std::make_unique<GSharePredictor>(11, 2048, 2048);
}

std::unique_ptr<BranchPredictor> makeBimodal(std::uint32_t counters,
                                             std::uint32_t btbEntries) {
    return std::make_unique<BimodalPredictor>(counters, btbEntries);
}

std::unique_ptr<BranchPredictor> makeTournament2048() {
    return std::make_unique<TournamentPredictor>(2048, 2048, 11, 2048);
}

}  // namespace asbr

#include "bp/predictor.hpp"

#include <algorithm>

#include "util/metrics.hpp"

namespace asbr {

void BranchPredictor::publishMetrics(MetricRegistry& registry) const {
    registry
        .counter("bp.storage_bits",
                 "auxiliary/general-purpose predictor storage cost in bits")
        .add(storageBits());
    publishFamilyMetrics(registry);
}

void BranchPredictor::publishFamilyMetrics(MetricRegistry&) const {}

// ----------------------------------------------------------------- Btb -----

Btb::Btb(std::uint32_t entries) {
    ASBR_ENSURE(bp_detail::isPow2(entries), "BTB entries must be a power of two");
    lines_.resize(entries);
}

std::optional<std::uint32_t> Btb::lookup(std::uint32_t pc) const {
    const Line& line = lines_[(pc >> 2) & (lines_.size() - 1)];
    if (line.valid && line.pc == pc) return line.target;
    return std::nullopt;
}

void Btb::update(std::uint32_t pc, std::uint32_t target) {
    Line& line = lines_[(pc >> 2) & (lines_.size() - 1)];
    line = {true, pc, target};
}

void Btb::reset() {
    std::fill(lines_.begin(), lines_.end(), Line{});
}

}  // namespace asbr

// Internal helpers for parsing registry token parameters — the dash-
// separated `<letter><number>` segments after a family prefix, e.g.
// "c512-b512" or "h8-16-32-64-e512-t9" (bare numeric segments extend the
// preceding letter's list, which is how TAGE history lengths are spelled).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asbr::bp_detail {

/// Split "a-b-c" into {"a","b","c"}; empty input yields an empty list.
[[nodiscard]] inline std::vector<std::string> splitDash(
    const std::string& text) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t dash = text.find('-', start);
        const std::size_t end = dash == std::string::npos ? text.size() : dash;
        parts.push_back(text.substr(start, end - start));
        if (dash == std::string::npos) break;
        start = dash + 1;
    }
    if (parts.size() == 1 && parts.front().empty()) parts.clear();
    return parts;
}

/// Parse a decimal number; false on empty/non-digit/overflowing input.
[[nodiscard]] inline bool parseUint(const std::string& text,
                                    std::uint64_t& out) {
    if (text.empty()) return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') return false;
        if (value > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10)
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value;
    return true;
}

}  // namespace asbr::bp_detail

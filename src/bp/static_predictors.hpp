// Stateless / profile-directed predictor family: not-taken, always-taken
// and the profile-directed static predictor.  Registry tokens: `not-taken`,
// `taken` (docs/predictors.md).
#pragma once

#include <memory>

#include "bp/predictor.hpp"

namespace asbr {

class PredictorRegistry;

/// Always predicts not-taken ("the default in many embedded processors that
/// lack branch predictors").
class NotTakenPredictor final : public BranchPredictor {
public:
    [[nodiscard]] std::string name() const override { return "not taken"; }
    [[nodiscard]] std::string token() const override { return "not-taken"; }
    Prediction predict(std::uint32_t) override { return {}; }
    void update(std::uint32_t, bool, std::uint32_t) override {}
    void reset() override {}
    [[nodiscard]] std::uint64_t storageBits() const override { return 0; }
};

/// Predicts taken whenever the BTB knows the target.
class AlwaysTakenPredictor final : public BranchPredictor {
public:
    explicit AlwaysTakenPredictor(std::uint32_t btbEntries) : btb_(btbEntries) {}
    [[nodiscard]] std::string name() const override { return "always taken"; }
    [[nodiscard]] std::string token() const override { return "taken"; }
    Prediction predict(std::uint32_t pc) override { return {true, btb_.lookup(pc)}; }
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override {
        if (taken) btb_.update(pc, target);
    }
    void reset() override { btb_.reset(); }
    [[nodiscard]] std::uint64_t storageBits() const override {
        return btb_.storageBits();
    }

private:
    Btb btb_;
};

/// Profile-directed static predictor: a fixed most-likely direction (and
/// statically-known target) per branch PC — models compile-time static
/// prediction [Young & Smith 99] as an extension baseline.  Not registry-
/// constructible: it needs a profile, not a token.
class ProfiledStaticPredictor final : public BranchPredictor {
public:
    struct Entry {
        std::uint32_t pc = 0;
        bool taken = false;
        std::uint32_t target = 0;
    };
    explicit ProfiledStaticPredictor(std::vector<Entry> entries);
    [[nodiscard]] std::string name() const override { return "profiled static"; }
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t, bool, std::uint32_t) override {}
    void reset() override {}
    [[nodiscard]] std::uint64_t storageBits() const override;

private:
    std::vector<Entry> entries_;  // sorted by pc
};

[[nodiscard]] std::unique_ptr<BranchPredictor> makeNotTaken();

/// Register the `not-taken` and `taken` tokens (called once from
/// PredictorRegistry::instance()).
void registerStaticFamily(PredictorRegistry& registry);

}  // namespace asbr

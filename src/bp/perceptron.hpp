// Perceptron predictor family.  Registry token: `perceptron[:nN-hH]`.
#pragma once

#include <memory>

#include "bp/predictor.hpp"

namespace asbr {

class PredictorRegistry;

/// Perceptron branch predictor [Jimenez & Lin 01]: a table of perceptrons
/// indexed by PC, each a bias weight plus one signed weight per global
/// history bit.  The prediction is the sign of the dot product; weights
/// train on a misprediction or whenever the output magnitude is below the
/// threshold theta = floor(1.93 * history + 14).
///
/// Like the other models the predictor keeps no speculative state: update()
/// recomputes the dot product against the history predict() saw, so runs
/// are deterministic at any thread count.
class PerceptronPredictor final : public BranchPredictor {
public:
    PerceptronPredictor(std::uint32_t perceptrons, std::uint32_t historyBits,
                        std::uint32_t btbEntries);
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string token() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;
    void publishFamilyMetrics(MetricRegistry& registry) const override;

    /// Training threshold theta; exposed for tests.
    [[nodiscard]] std::int32_t threshold() const { return threshold_; }
    /// Training event counts since reset; exposed for tests.
    [[nodiscard]] std::uint64_t trainEvents() const { return trainEvents_; }
    [[nodiscard]] std::uint64_t mispredictTrains() const {
        return mispredictTrains_;
    }
    [[nodiscard]] std::uint64_t lowConfidenceTrains() const {
        return lowConfidenceTrains_;
    }

private:
    [[nodiscard]] std::int32_t dotProduct(std::size_t row) const;

    std::uint32_t historyBits_;
    std::int32_t threshold_;
    std::uint64_t history_ = 0;  ///< bit i set = i-th most recent was taken
    std::vector<std::int8_t> weights_;  ///< row-major, (historyBits_+1) per row
    Btb btb_;

    std::uint64_t trainEvents_ = 0;
    std::uint64_t mispredictTrains_ = 0;
    std::uint64_t lowConfidenceTrains_ = 0;
};

[[nodiscard]] std::unique_ptr<BranchPredictor> makePerceptron();

/// Register `perceptron` (called once from PredictorRegistry::instance()).
void registerPerceptronFamily(PredictorRegistry& registry);

}  // namespace asbr

#include "bp/gshare.hpp"

#include <algorithm>

#include "bp/registry.hpp"
#include "bp/token_params.hpp"

namespace asbr {

using bp_detail::isPow2;
using bp_detail::saturate2;

GSharePredictor::GSharePredictor(std::uint32_t historyBits, std::uint32_t counters,
                                 std::uint32_t btbEntries)
    : historyBits_(historyBits), counters_(counters, 1), btb_(btbEntries) {
    ASBR_ENSURE(isPow2(counters), "counter table size must be a power of two");
    ASBR_ENSURE(historyBits >= 1 && historyBits <= 30, "history bits 1..30");
}

std::string GSharePredictor::name() const {
    return "gshare-" + std::to_string(historyBits_) + "/" +
           std::to_string(counters_.size()) + "/btb-" + std::to_string(btb_.entries());
}

std::string GSharePredictor::token() const {
    if (historyBits_ == 11 && counters_.size() == 2048 && btb_.entries() == 2048)
        return "gshare";
    return "gshare:h" + std::to_string(historyBits_) + "-c" +
           std::to_string(counters_.size()) + "-b" +
           std::to_string(btb_.entries());
}

std::size_t GSharePredictor::index(std::uint32_t pc) const {
    return ((pc >> 2) ^ history_) & (counters_.size() - 1);
}

Prediction GSharePredictor::predict(std::uint32_t pc) {
    const bool taken = counters_[index(pc)] >= 2;
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void GSharePredictor::update(std::uint32_t pc, bool taken, std::uint32_t target) {
    std::uint8_t& counter = counters_[index(pc)];
    counter = saturate2(counter, taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & ((1u << historyBits_) - 1);
    if (taken) btb_.update(pc, target);
}

void GSharePredictor::reset() {
    std::fill(counters_.begin(), counters_.end(), std::uint8_t{1});
    history_ = 0;
    btb_.reset();
}

std::uint64_t GSharePredictor::storageBits() const {
    return counters_.size() * 2ull + historyBits_ + btb_.storageBits();
}

std::unique_ptr<BranchPredictor> makeGshare2048() {
    return std::make_unique<GSharePredictor>(11, 2048, 2048);
}

namespace {

std::unique_ptr<BranchPredictor> parseGshare(const std::string& params,
                                             std::string& error) {
    std::uint64_t history = 11;
    std::uint64_t counters = 2048;
    std::uint64_t btb = 2048;
    for (const std::string& seg : bp_detail::splitDash(params)) {
        std::uint64_t value = 0;
        if (seg.size() < 2 || !bp_detail::parseUint(seg.substr(1), value)) {
            error = "gshare: bad parameter '" + seg + "' (want hH, cN or bM)";
            return nullptr;
        }
        switch (seg.front()) {
            case 'h': history = value; break;
            case 'c': counters = value; break;
            case 'b': btb = value; break;
            default:
                error = "gshare: unknown parameter '" + seg + "'";
                return nullptr;
        }
    }
    if (history < 1 || history > 30) {
        error = "gshare: history bits must be 1..30";
        return nullptr;
    }
    if (!isPow2(static_cast<std::uint32_t>(counters)) ||
        !isPow2(static_cast<std::uint32_t>(btb)) || counters > (1u << 20) ||
        btb > (1u << 20)) {
        error = "gshare: table sizes must be powers of two (<= 1M entries)";
        return nullptr;
    }
    return std::make_unique<GSharePredictor>(static_cast<std::uint32_t>(history),
                                             static_cast<std::uint32_t>(counters),
                                             static_cast<std::uint32_t>(btb));
}

}  // namespace

void registerGshareFamily(PredictorRegistry& registry) {
    registry.add({"gshare", "gshare[:hH-cN-bM]",
                  "global-history XOR PC index [McFarling 93] (default "
                  "h11-c2048-b2048)",
                  parseGshare});
}

}  // namespace asbr

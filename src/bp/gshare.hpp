// Gshare predictor family.  Registry token: `gshare[:hH-cN-bM]`.
#pragma once

#include <memory>

#include "bp/predictor.hpp"

namespace asbr {

class PredictorRegistry;

/// Two-level gshare predictor: global history XORed into the PC index
/// [McFarling 93].  History is updated at resolve time.
class GSharePredictor final : public BranchPredictor {
public:
    GSharePredictor(std::uint32_t historyBits, std::uint32_t counters,
                    std::uint32_t btbEntries);
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string token() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;

private:
    [[nodiscard]] std::size_t index(std::uint32_t pc) const;
    std::uint32_t historyBits_;
    std::uint32_t history_ = 0;
    std::vector<std::uint8_t> counters_;
    Btb btb_;
};

[[nodiscard]] std::unique_ptr<BranchPredictor> makeGshare2048();

/// Register `gshare` (called once from PredictorRegistry::instance()).
void registerGshareFamily(PredictorRegistry& registry);

}  // namespace asbr

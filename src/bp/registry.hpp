// PredictorRegistry — the single source of truth for predictor construction
// tokens, their parameter grammar, and storage-bit accounting.
//
// Every CLI surface (asbr-stats, asbr-sweep, asbr-faults), the driver's
// SimJob expansion and the benchmark binaries resolve predictor tokens
// through this registry, and every token a report records can be resolved
// back into the exact predictor it described.  Each family module registers
// itself via its register*Family hook, invoked exactly once when the
// registry instance is first built — so the token table, the `--help`
// listings and the docs checked by ci/docs-check.sh can never drift apart.
//
// Token grammar (docs/predictors.md): a family name, optionally followed by
// `:` and dash-separated parameters, e.g. `tage:h8-16-32-64` or
// `perceptron:n256-h12`.  Unparameterized tokens build the family default.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bp/predictor.hpp"

namespace asbr {

/// One registered token family.  `make` receives the text after the `:`
/// (empty for a bare token) and returns nullptr with `error` set when the
/// parameters do not parse.
struct PredictorFamily {
    std::string prefix;   ///< token / token prefix before ':' ("tage")
    std::string grammar;  ///< displayed form ("tage[:hL1-L2-...[-eN][-tW]]")
    std::string summary;  ///< one-line description for --help and docs
    std::function<std::unique_ptr<BranchPredictor>(const std::string& params,
                                                   std::string& error)>
        make;
};

class PredictorRegistry {
public:
    /// The process-wide registry with every built-in family registered.
    [[nodiscard]] static const PredictorRegistry& instance();

    PredictorRegistry() = default;

    /// Register a family; the prefix must be unique.
    void add(PredictorFamily family);

    /// Construct the predictor a token describes; nullptr for unknown
    /// tokens or malformed parameters (`error`, when non-null, explains).
    [[nodiscard]] std::unique_ptr<BranchPredictor> make(
        const std::string& token, std::string* error = nullptr) const;

    /// Storage-bit accounting for a token (asserts the token is valid).
    [[nodiscard]] std::uint64_t storageBits(const std::string& token) const;

    /// Every registered family prefix, in registration order.
    [[nodiscard]] std::vector<std::string> tokens() const;

    /// '|'-joined grammar list for help text and structured CLI errors.
    [[nodiscard]] std::string tokenList() const;

    /// The structured one-line diagnostic for an unknown/malformed token:
    /// names the offending token and enumerates every registered family.
    [[nodiscard]] std::string unknownTokenMessage(
        const std::string& token) const;

    [[nodiscard]] const std::vector<PredictorFamily>& families() const {
        return families_;
    }

private:
    std::vector<PredictorFamily> families_;
};

}  // namespace asbr

// Bimodal predictor family.  Registry tokens: `bimodal[:cN-bM]` plus the
// paper's Figure 11 auxiliary aliases `bi512` / `bi256` (bimodal with the
// BTB cut to a quarter of the baseline's 2048 entries).
#pragma once

#include <memory>

#include "bp/predictor.hpp"

namespace asbr {

class PredictorRegistry;

/// Classic bimodal predictor: a table of 2-bit saturating counters indexed by
/// the branch PC, plus a BTB for taken-path targets [McFarling 93].
class BimodalPredictor final : public BranchPredictor {
public:
    BimodalPredictor(std::uint32_t counters, std::uint32_t btbEntries);
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string token() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;

    /// Fault-injection ports (src/fault): counter-table geometry and a
    /// single-bit flip of a 2-bit counter.  The predictor is inherently
    /// self-correcting, so these faults are usually masked — they anchor the
    /// "timing-only corruption" end of the outcome taxonomy.
    [[nodiscard]] std::uint32_t counterCount() const {
        return static_cast<std::uint32_t>(counters_.size());
    }
    void flipCounterBit(std::uint32_t index, unsigned bit) {
        ASBR_ENSURE(index < counters_.size(), "bimodal: bad counter index");
        ASBR_ENSURE(bit < 2, "bimodal: counters are 2 bits wide");
        counters_[index] ^= static_cast<std::uint8_t>(1u << bit);
    }

private:
    [[nodiscard]] std::size_t index(std::uint32_t pc) const;
    std::vector<std::uint8_t> counters_;
    Btb btb_;
};

/// Factory helpers matching the paper's configurations.
[[nodiscard]] std::unique_ptr<BranchPredictor> makeBimodal2048();
[[nodiscard]] std::unique_ptr<BranchPredictor> makeBimodal(std::uint32_t counters,
                                                           std::uint32_t btbEntries);

/// Register `bimodal`, `bi512` and `bi256` (called once from
/// PredictorRegistry::instance()).
void registerBimodalFamily(PredictorRegistry& registry);

}  // namespace asbr

#include "bp/registry.hpp"

#include "bp/bimodal.hpp"
#include "bp/gshare.hpp"
#include "bp/perceptron.hpp"
#include "bp/static_predictors.hpp"
#include "bp/tage.hpp"
#include "bp/tournament.hpp"

namespace asbr {

const PredictorRegistry& PredictorRegistry::instance() {
    // Explicit registration (rather than static-initializer self-
    // registration) so the linker cannot drop family TUs from the static
    // library, and so the listing order is stable for --help and docs.
    static const PredictorRegistry registry = [] {
        PredictorRegistry built;
        registerStaticFamily(built);
        registerBimodalFamily(built);
        registerGshareFamily(built);
        registerTournamentFamily(built);
        registerTageFamily(built);
        registerPerceptronFamily(built);
        return built;
    }();
    return registry;
}

void PredictorRegistry::add(PredictorFamily family) {
    for (const PredictorFamily& existing : families_)
        ASBR_ENSURE(existing.prefix != family.prefix,
                    "duplicate predictor family prefix");
    ASBR_ENSURE(static_cast<bool>(family.make),
                "predictor family needs a factory");
    families_.push_back(std::move(family));
}

std::unique_ptr<BranchPredictor> PredictorRegistry::make(
    const std::string& token, std::string* error) const {
    const std::size_t colon = token.find(':');
    const std::string prefix =
        colon == std::string::npos ? token : token.substr(0, colon);
    const std::string params =
        colon == std::string::npos ? std::string{} : token.substr(colon + 1);
    for (const PredictorFamily& family : families_) {
        if (family.prefix != prefix) continue;
        std::string familyError;
        std::unique_ptr<BranchPredictor> predictor =
            family.make(params, familyError);
        if (!predictor && error) *error = familyError;
        return predictor;
    }
    if (error) *error = "unknown predictor family '" + prefix + "'";
    return nullptr;
}

std::uint64_t PredictorRegistry::storageBits(const std::string& token) const {
    std::string error;
    const std::unique_ptr<BranchPredictor> predictor = make(token, &error);
    ASBR_ENSURE(predictor != nullptr, "storageBits: " + error);
    return predictor->storageBits();
}

std::vector<std::string> PredictorRegistry::tokens() const {
    std::vector<std::string> names;
    names.reserve(families_.size());
    for (const PredictorFamily& family : families_)
        names.push_back(family.prefix);
    return names;
}

std::string PredictorRegistry::tokenList() const {
    std::string joined;
    for (const PredictorFamily& family : families_) {
        if (!joined.empty()) joined += "|";
        joined += family.prefix;
    }
    return joined;
}

std::string PredictorRegistry::unknownTokenMessage(
    const std::string& token) const {
    std::string message;
    std::string error;
    if (make(token, &error)) {
        return "predictor token '" + token + "' is valid";
    }
    message = "unknown predictor '" + token + "' (" + error +
              "); registered tokens:";
    for (const PredictorFamily& family : families_)
        message += " " + family.grammar;
    return message;
}

}  // namespace asbr

#include "bp/tage.hpp"

#include <algorithm>

#include "bp/registry.hpp"
#include "bp/token_params.hpp"
#include "util/metrics.hpp"

namespace asbr {

using bp_detail::isPow2;
using bp_detail::saturate2;

namespace {

constexpr std::uint32_t kMaxHistory = 64;

/// 3-bit saturating counter transitions; predicts taken at >= 4.
std::uint8_t saturate3(std::uint8_t counter, bool taken) {
    if (taken) return counter < 7 ? static_cast<std::uint8_t>(counter + 1) : counter;
    return counter > 0 ? static_cast<std::uint8_t>(counter - 1) : counter;
}

std::uint32_t log2Of(std::uint32_t pow2) {
    std::uint32_t bits = 0;
    while ((1u << bits) < pow2) ++bits;
    return bits;
}

}  // namespace

TagePredictor::TagePredictor(Config config)
    : config_(std::move(config)),
      base_(config_.baseCounters, 1),
      btb_(config_.btbEntries) {
    ASBR_ENSURE(!config_.historyLengths.empty() &&
                    config_.historyLengths.size() <= 8,
                "tage needs 1..8 tagged tables");
    std::uint32_t prev = 0;
    for (const std::uint32_t length : config_.historyLengths) {
        ASBR_ENSURE(length > prev && length <= kMaxHistory,
                    "tage history lengths must be increasing and <= 64");
        prev = length;
    }
    ASBR_ENSURE(isPow2(config_.taggedEntries) && isPow2(config_.baseCounters),
                "tage table sizes must be powers of two");
    ASBR_ENSURE(config_.tagBits >= 4 && config_.tagBits <= 15,
                "tage tag width must be 4..15");
    ASBR_ENSURE(config_.decayPeriod > 0, "tage decay period must be positive");
    tables_.assign(config_.historyLengths.size(),
                   std::vector<TaggedEntry>(config_.taggedEntries));
    tableHits_.assign(tables_.size(), 0);
}

std::string TagePredictor::name() const {
    std::string lengths;
    for (const std::uint32_t length : config_.historyLengths) {
        if (!lengths.empty()) lengths += ",";
        lengths += std::to_string(length);
    }
    return "tage-" + std::to_string(tables_.size()) + "x" +
           std::to_string(config_.taggedEntries) + "(h" + lengths + ")/btb-" +
           std::to_string(btb_.entries());
}

std::string TagePredictor::token() const {
    const Config defaults;
    const bool isDefault = config_.historyLengths == defaults.historyLengths &&
                           config_.taggedEntries == defaults.taggedEntries &&
                           config_.tagBits == defaults.tagBits &&
                           config_.baseCounters == defaults.baseCounters &&
                           config_.btbEntries == defaults.btbEntries &&
                           config_.decayPeriod == defaults.decayPeriod;
    if (isDefault) return "tage";
    std::string token = "tage:h";
    for (std::size_t i = 0; i < config_.historyLengths.size(); ++i) {
        if (i) token += "-";
        token += std::to_string(config_.historyLengths[i]);
    }
    if (config_.taggedEntries != defaults.taggedEntries)
        token += "-e" + std::to_string(config_.taggedEntries);
    if (config_.tagBits != defaults.tagBits)
        token += "-t" + std::to_string(config_.tagBits);
    if (config_.decayPeriod != defaults.decayPeriod)
        token += "-d" + std::to_string(config_.decayPeriod);
    return token;
}

std::uint32_t TagePredictor::foldedHistory(std::uint32_t length,
                                           std::uint32_t bits) const {
    // XOR-fold the low `length` history bits into a `bits`-wide value.
    const std::uint64_t masked =
        length >= 64 ? history_ : (history_ & ((1ull << length) - 1));
    std::uint32_t folded = 0;
    for (std::uint32_t shift = 0; shift < length; shift += bits)
        folded ^= static_cast<std::uint32_t>((masked >> shift) &
                                             ((1ull << bits) - 1));
    return folded;
}

std::size_t TagePredictor::tableIndex(int table, std::uint32_t pc) const {
    const std::uint32_t bits = log2Of(config_.taggedEntries);
    const std::uint32_t length =
        config_.historyLengths[static_cast<std::size_t>(table)];
    const std::uint32_t hashed =
        (pc >> 2) ^ (pc >> (2 + bits)) ^ foldedHistory(length, bits) ^
        (static_cast<std::uint32_t>(table) << 1);
    return hashed & (config_.taggedEntries - 1);
}

std::uint16_t TagePredictor::tableTag(int table, std::uint32_t pc) const {
    const std::uint32_t length =
        config_.historyLengths[static_cast<std::size_t>(table)];
    // Fold with a different width than the index so tag and index decorrelate.
    const std::uint32_t hashed = (pc >> 2) ^
                                 foldedHistory(length, config_.tagBits) ^
                                 (foldedHistory(length, config_.tagBits - 1) << 1);
    return static_cast<std::uint16_t>(hashed & ((1u << config_.tagBits) - 1));
}

TagePredictor::Match TagePredictor::findMatch(std::uint32_t pc) const {
    Match match;
    for (int table = static_cast<int>(tables_.size()) - 1; table >= 0; --table) {
        const std::size_t slot = tableIndex(table, pc);
        const TaggedEntry& entry = tables_[static_cast<std::size_t>(table)][slot];
        if (!entry.valid || entry.tag != tableTag(table, pc)) continue;
        if (match.provider < 0) {
            match.provider = table;
            match.providerSlot = slot;
        } else {
            match.alt = table;
            match.altSlot = slot;
            break;
        }
    }
    return match;
}

bool TagePredictor::predictionOf(const Match& match, std::uint32_t pc,
                                 bool alt) const {
    const int table = alt ? match.alt : match.provider;
    if (table < 0)
        return base_[(pc >> 2) & (base_.size() - 1)] >= 2;
    const std::size_t slot = alt ? match.altSlot : match.providerSlot;
    return tables_[static_cast<std::size_t>(table)][slot].ctr >= 4;
}

Prediction TagePredictor::predict(std::uint32_t pc) {
    const Match match = findMatch(pc);
    const bool taken = predictionOf(match, pc, /*alt=*/false);
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void TagePredictor::update(std::uint32_t pc, bool taken, std::uint32_t target) {
    // History only advances here, so this recomputed match is exactly what
    // predict() returned for this branch.
    const Match match = findMatch(pc);
    const bool predTaken = predictionOf(match, pc, /*alt=*/false);
    const bool altTaken = predictionOf(match, pc, /*alt=*/true);

    if (match.provider < 0) {
        ++providerBase_;
    } else {
        ++providerTagged_;
        ++tableHits_[static_cast<std::size_t>(match.provider)];
    }

    // Train the provider; the usefulness counter records whether the
    // provider beat its alternative.
    if (match.provider < 0) {
        std::uint8_t& counter = base_[(pc >> 2) & (base_.size() - 1)];
        counter = saturate2(counter, taken);
    } else {
        TaggedEntry& entry =
            tables_[static_cast<std::size_t>(match.provider)][match.providerSlot];
        entry.ctr = saturate3(entry.ctr, taken);
        if (predTaken != altTaken) {
            if (predTaken == taken) {
                if (entry.useful < 3) ++entry.useful;
            } else if (entry.useful > 0) {
                --entry.useful;
            }
        }
    }

    // Allocate a longer-history entry on a misprediction.
    if (predTaken != taken &&
        match.provider + 1 < static_cast<int>(tables_.size())) {
        const int first = match.provider + 1;
        const int candidates = static_cast<int>(tables_.size()) - first;
        // Deterministic xorshift64 skews allocation towards shorter
        // histories without always picking the same table.
        rng_ ^= rng_ << 13;
        rng_ ^= rng_ >> 7;
        rng_ ^= rng_ << 17;
        const int start = first + static_cast<int>(rng_ % 2 == 0
                                                       ? 0
                                                       : rng_ / 2 % candidates);
        int chosen = -1;
        for (int offset = 0; offset < candidates; ++offset) {
            const int table = first + (start - first + offset) % candidates;
            const std::size_t slot = tableIndex(table, pc);
            if (tables_[static_cast<std::size_t>(table)][slot].useful == 0) {
                chosen = table;
                break;
            }
        }
        if (chosen >= 0) {
            TaggedEntry& entry =
                tables_[static_cast<std::size_t>(chosen)][tableIndex(chosen, pc)];
            entry.valid = true;
            entry.tag = tableTag(chosen, pc);
            entry.ctr = taken ? 4 : 3;  // weakly biased to the outcome
            entry.useful = 0;
            ++allocations_;
        } else {
            // All candidates were useful: age them so a later retry succeeds.
            for (int table = first; table < static_cast<int>(tables_.size());
                 ++table) {
                TaggedEntry& entry =
                    tables_[static_cast<std::size_t>(table)][tableIndex(table, pc)];
                if (entry.useful > 0) --entry.useful;
            }
            ++allocFailures_;
        }
    }

    history_ = (history_ << 1) | (taken ? 1u : 0u);
    if (taken) btb_.update(pc, target);

    if (++updates_ % config_.decayPeriod == 0) {
        for (std::vector<TaggedEntry>& table : tables_)
            for (TaggedEntry& entry : table) entry.useful >>= 1;
        ++usefulDecays_;
    }
}

void TagePredictor::reset() {
    std::fill(base_.begin(), base_.end(), std::uint8_t{1});
    for (std::vector<TaggedEntry>& table : tables_)
        std::fill(table.begin(), table.end(), TaggedEntry{});
    history_ = 0;
    updates_ = 0;
    rng_ = 0x9e3779b97f4a7c15ull;
    btb_.reset();
    std::fill(tableHits_.begin(), tableHits_.end(), 0ull);
    providerBase_ = providerTagged_ = 0;
    allocations_ = allocFailures_ = usefulDecays_ = 0;
}

std::uint64_t TagePredictor::storageBits() const {
    // Tagged entry: tag + 3-bit counter + 2-bit useful + valid bit.
    const std::uint64_t perEntry = config_.tagBits + 3 + 2 + 1;
    return base_.size() * 2ull +
           tables_.size() * config_.taggedEntries * perEntry + kMaxHistory +
           btb_.storageBits();
}

void TagePredictor::publishFamilyMetrics(MetricRegistry& registry) const {
    registry
        .counter("bp.tage.provider_base",
                 "tage updates where the bimodal base table provided the "
                 "prediction")
        .add(providerBase_);
    registry
        .counter("bp.tage.provider_tagged",
                 "tage updates where a tagged table provided the prediction")
        .add(providerTagged_);
    registry
        .counter("bp.tage.allocations",
                 "tage tagged entries allocated on mispredictions")
        .add(allocations_);
    registry
        .counter("bp.tage.alloc_failures",
                 "tage allocation attempts aborted because every candidate "
                 "entry was still useful")
        .add(allocFailures_);
    registry
        .counter("bp.tage.useful_decays",
                 "periodic tage usefulness-counter aging sweeps")
        .add(usefulDecays_);
}

std::unique_ptr<BranchPredictor> makeTage() {
    return std::make_unique<TagePredictor>(TagePredictor::Config{});
}

namespace {

std::unique_ptr<BranchPredictor> parseTage(const std::string& params,
                                           std::string& error) {
    TagePredictor::Config config;
    std::vector<std::string> segments = bp_detail::splitDash(params);
    bool inHistories = false;
    bool sawHistories = false;
    for (const std::string& seg : segments) {
        std::uint64_t value = 0;
        if (!seg.empty() && seg.front() >= '0' && seg.front() <= '9') {
            // Bare numeric segments extend the h list: "h8-16-32-64".
            if (!inHistories || !bp_detail::parseUint(seg, value)) {
                error = "tage: bare number '" + seg +
                        "' must follow an hL history list";
                return nullptr;
            }
            config.historyLengths.push_back(static_cast<std::uint32_t>(value));
            continue;
        }
        if (seg.size() < 2 || !bp_detail::parseUint(seg.substr(1), value)) {
            error = "tage: bad parameter '" + seg +
                    "' (want hL1-L2-..., eN, tW or dP)";
            return nullptr;
        }
        inHistories = false;
        switch (seg.front()) {
            case 'h':
                if (sawHistories) {
                    error = "tage: duplicate history list";
                    return nullptr;
                }
                config.historyLengths = {static_cast<std::uint32_t>(value)};
                inHistories = true;
                sawHistories = true;
                break;
            case 'e': config.taggedEntries = static_cast<std::uint32_t>(value); break;
            case 't': config.tagBits = static_cast<std::uint32_t>(value); break;
            case 'd': config.decayPeriod = value; break;
            default:
                error = "tage: unknown parameter '" + seg + "'";
                return nullptr;
        }
    }
    if (config.historyLengths.empty() || config.historyLengths.size() > 8) {
        error = "tage: need 1..8 history lengths";
        return nullptr;
    }
    std::uint32_t prev = 0;
    for (const std::uint32_t length : config.historyLengths) {
        if (length <= prev || length > kMaxHistory) {
            error = "tage: history lengths must be strictly increasing and "
                    "<= 64";
            return nullptr;
        }
        prev = length;
    }
    if (!isPow2(config.taggedEntries) || config.taggedEntries > (1u << 20)) {
        error = "tage: tagged entries must be a power of two (<= 1M)";
        return nullptr;
    }
    if (config.tagBits < 4 || config.tagBits > 15) {
        error = "tage: tag width must be 4..15";
        return nullptr;
    }
    if (config.decayPeriod == 0) {
        error = "tage: decay period must be positive";
        return nullptr;
    }
    return std::make_unique<TagePredictor>(std::move(config));
}

}  // namespace

void registerTageFamily(PredictorRegistry& registry) {
    registry.add({"tage", "tage[:hL1-L2-...[-eN][-tW][-dP]]",
                  "tagged geometric-history tables [Seznec & Michaud 06] "
                  "(default h8-16-32-64-e512-t9)",
                  parseTage});
}

}  // namespace asbr

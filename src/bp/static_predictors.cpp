#include "bp/static_predictors.hpp"

#include <algorithm>

#include "bp/registry.hpp"

namespace asbr {

ProfiledStaticPredictor::ProfiledStaticPredictor(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.pc < b.pc; });
}

Prediction ProfiledStaticPredictor::predict(std::uint32_t pc) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), pc,
        [](const Entry& e, std::uint32_t key) { return e.pc < key; });
    if (it == entries_.end() || it->pc != pc) return {};
    if (!it->taken) return {};
    return {true, it->target};
}

std::uint64_t ProfiledStaticPredictor::storageBits() const {
    // pc tag (30) + direction (1) + target (30) per entry.
    return entries_.size() * 61ull;
}

std::unique_ptr<BranchPredictor> makeNotTaken() {
    return std::make_unique<NotTakenPredictor>();
}

void registerStaticFamily(PredictorRegistry& registry) {
    registry.add({"not-taken", "not-taken",
                  "always predict not-taken (no predictor hardware)",
                  [](const std::string& params, std::string& error)
                      -> std::unique_ptr<BranchPredictor> {
                      if (!params.empty()) {
                          error = "not-taken takes no parameters";
                          return nullptr;
                      }
                      return makeNotTaken();
                  }});
    registry.add({"taken", "taken",
                  "predict taken whenever the BTB knows the target",
                  [](const std::string& params, std::string& error)
                      -> std::unique_ptr<BranchPredictor> {
                      if (!params.empty()) {
                          error = "taken takes no parameters";
                          return nullptr;
                      }
                      return std::make_unique<AlwaysTakenPredictor>(2048);
                  }});
}

}  // namespace asbr

// Branch predictor library.
//
// The paper's baseline architecture uses three general-purpose predictors
// (not-taken, bimodal-2048 + BTB-2048, gshare 11-bit/2048 + BTB-2048) and,
// after ASBR folds out the selected branches, small auxiliary bimodal
// predictors (512/256 counters with a quarter-size BTB).  Everything sits
// behind one interface so the pipeline and the profiler treat them uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/ensure.hpp"

namespace asbr {

class MetricRegistry;

/// Fetch-stage prediction for a conditional branch.
struct Prediction {
    bool taken = false;
    /// Target from the BTB; empty means the fetch stage cannot redirect even
    /// if `taken` is set (treated as a not-taken fetch path).
    std::optional<std::uint32_t> target;

    /// The direction fetch actually follows.
    [[nodiscard]] bool effectiveTaken() const { return taken && target.has_value(); }
};

/// Direct-mapped branch target buffer with full tags.
class Btb {
public:
    explicit Btb(std::uint32_t entries);

    [[nodiscard]] std::optional<std::uint32_t> lookup(std::uint32_t pc) const;
    void update(std::uint32_t pc, std::uint32_t target);
    void reset();
    [[nodiscard]] std::uint32_t entries() const {
        return static_cast<std::uint32_t>(lines_.size());
    }
    /// Storage bits: tag (30) + target (30) + valid per entry.
    [[nodiscard]] std::uint64_t storageBits() const { return lines_.size() * 61ull; }

private:
    struct Line {
        bool valid = false;
        std::uint32_t pc = 0;
        std::uint32_t target = 0;
    };
    std::vector<Line> lines_;
};

/// Common interface for all direction predictors.
class BranchPredictor {
public:
    virtual ~BranchPredictor() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Fetch-stage query for the conditional branch at `pc`.
    virtual Prediction predict(std::uint32_t pc) = 0;

    /// Resolve-time training with the actual outcome.
    virtual void update(std::uint32_t pc, bool taken, std::uint32_t target) = 0;

    virtual void reset() = 0;

    /// Storage cost in bits — the paper's area-proxy for predictor cost.
    [[nodiscard]] virtual std::uint64_t storageBits() const = 0;

    /// Register the predictor's cost metrics (`bp.storage_bits`) into the
    /// registry.  Dynamic outcome counters live in PipelineStats — the
    /// pipeline owns resolve-time truth, the predictor only its geometry.
    void publishMetrics(MetricRegistry& registry) const;
};

/// Always predicts not-taken ("the default in many embedded processors that
/// lack branch predictors").
class NotTakenPredictor final : public BranchPredictor {
public:
    [[nodiscard]] std::string name() const override { return "not taken"; }
    Prediction predict(std::uint32_t) override { return {}; }
    void update(std::uint32_t, bool, std::uint32_t) override {}
    void reset() override {}
    [[nodiscard]] std::uint64_t storageBits() const override { return 0; }
};

/// Predicts taken whenever the BTB knows the target.
class AlwaysTakenPredictor final : public BranchPredictor {
public:
    explicit AlwaysTakenPredictor(std::uint32_t btbEntries) : btb_(btbEntries) {}
    [[nodiscard]] std::string name() const override { return "always taken"; }
    Prediction predict(std::uint32_t pc) override { return {true, btb_.lookup(pc)}; }
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override {
        if (taken) btb_.update(pc, target);
    }
    void reset() override { btb_.reset(); }
    [[nodiscard]] std::uint64_t storageBits() const override {
        return btb_.storageBits();
    }

private:
    Btb btb_;
};

/// Classic bimodal predictor: a table of 2-bit saturating counters indexed by
/// the branch PC, plus a BTB for taken-path targets [McFarling 93].
class BimodalPredictor final : public BranchPredictor {
public:
    BimodalPredictor(std::uint32_t counters, std::uint32_t btbEntries);
    [[nodiscard]] std::string name() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;

    /// Fault-injection ports (src/fault): counter-table geometry and a
    /// single-bit flip of a 2-bit counter.  The predictor is inherently
    /// self-correcting, so these faults are usually masked — they anchor the
    /// "timing-only corruption" end of the outcome taxonomy.
    [[nodiscard]] std::uint32_t counterCount() const {
        return static_cast<std::uint32_t>(counters_.size());
    }
    void flipCounterBit(std::uint32_t index, unsigned bit) {
        ASBR_ENSURE(index < counters_.size(), "bimodal: bad counter index");
        ASBR_ENSURE(bit < 2, "bimodal: counters are 2 bits wide");
        counters_[index] ^= static_cast<std::uint8_t>(1u << bit);
    }

private:
    [[nodiscard]] std::size_t index(std::uint32_t pc) const;
    std::vector<std::uint8_t> counters_;
    Btb btb_;
};

/// Two-level gshare predictor: global history XORed into the PC index
/// [McFarling 93].  History is updated at resolve time.
class GSharePredictor final : public BranchPredictor {
public:
    GSharePredictor(std::uint32_t historyBits, std::uint32_t counters,
                    std::uint32_t btbEntries);
    [[nodiscard]] std::string name() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;

private:
    [[nodiscard]] std::size_t index(std::uint32_t pc) const;
    std::uint32_t historyBits_;
    std::uint32_t history_ = 0;
    std::vector<std::uint8_t> counters_;
    Btb btb_;
};

/// Profile-directed static predictor: a fixed most-likely direction (and
/// statically-known target) per branch PC — models compile-time static
/// prediction [Young & Smith 99] as an extension baseline.
class ProfiledStaticPredictor final : public BranchPredictor {
public:
    struct Entry {
        std::uint32_t pc = 0;
        bool taken = false;
        std::uint32_t target = 0;
    };
    explicit ProfiledStaticPredictor(std::vector<Entry> entries);
    [[nodiscard]] std::string name() const override { return "profiled static"; }
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t, bool, std::uint32_t) override {}
    void reset() override {}
    [[nodiscard]] std::uint64_t storageBits() const override;

private:
    std::vector<Entry> entries_;  // sorted by pc
};

/// McFarling's combining (tournament) predictor [McFarling 93]: a bimodal
/// and a gshare component share a BTB; a table of 2-bit chooser counters
/// indexed by PC picks which component to trust, trained towards whichever
/// component was right when they disagree.
class TournamentPredictor final : public BranchPredictor {
public:
    TournamentPredictor(std::uint32_t choosers, std::uint32_t counters,
                        std::uint32_t historyBits, std::uint32_t btbEntries);
    [[nodiscard]] std::string name() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;

private:
    [[nodiscard]] bool bimodalTaken(std::uint32_t pc) const;
    [[nodiscard]] bool gshareTaken(std::uint32_t pc) const;

    std::vector<std::uint8_t> choosers_;  // >=2 prefers gshare
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::uint32_t historyBits_;
    std::uint32_t history_ = 0;
    Btb btb_;
};

/// Factory helpers matching the paper's configurations.
[[nodiscard]] std::unique_ptr<BranchPredictor> makeNotTaken();
[[nodiscard]] std::unique_ptr<BranchPredictor> makeBimodal2048();
[[nodiscard]] std::unique_ptr<BranchPredictor> makeGshare2048();
[[nodiscard]] std::unique_ptr<BranchPredictor> makeBimodal(std::uint32_t counters,
                                                           std::uint32_t btbEntries);
[[nodiscard]] std::unique_ptr<BranchPredictor> makeTournament2048();

}  // namespace asbr

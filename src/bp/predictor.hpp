// Branch predictor interface.
//
// The paper's baseline architecture uses three general-purpose predictors
// (not-taken, bimodal-2048 + BTB-2048, gshare 11-bit/2048 + BTB-2048) and,
// after ASBR folds out the selected branches, small auxiliary bimodal
// predictors (512/256 counters with a quarter-size BTB).  Everything sits
// behind one interface so the pipeline and the profiler treat them
// uniformly.  The concrete families live in per-family modules —
// bp/static_predictors.*, bp/bimodal.*, bp/gshare.*, bp/tournament.*,
// bp/tage.*, bp/perceptron.* — and register construction tokens with the
// PredictorRegistry (bp/registry.hpp), the single source of truth for CLI
// tokens and storage-bit accounting (docs/predictors.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ensure.hpp"

namespace asbr {

class MetricRegistry;

/// Fetch-stage prediction for a conditional branch.
struct Prediction {
    bool taken = false;
    /// Target from the BTB; empty means the fetch stage cannot redirect even
    /// if `taken` is set (treated as a not-taken fetch path).
    std::optional<std::uint32_t> target;

    /// The direction fetch actually follows.
    [[nodiscard]] bool effectiveTaken() const { return taken && target.has_value(); }
};

/// Direct-mapped branch target buffer with full tags.
class Btb {
public:
    explicit Btb(std::uint32_t entries);

    [[nodiscard]] std::optional<std::uint32_t> lookup(std::uint32_t pc) const;
    void update(std::uint32_t pc, std::uint32_t target);
    void reset();
    [[nodiscard]] std::uint32_t entries() const {
        return static_cast<std::uint32_t>(lines_.size());
    }
    /// Storage bits: tag (30) + target (30) + valid per entry.
    [[nodiscard]] std::uint64_t storageBits() const { return lines_.size() * 61ull; }

private:
    struct Line {
        bool valid = false;
        std::uint32_t pc = 0;
        std::uint32_t target = 0;
    };
    std::vector<Line> lines_;
};

/// Common interface for all direction predictors.
class BranchPredictor {
public:
    virtual ~BranchPredictor() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// The canonical registry token that reconstructs this predictor
    /// (PredictorRegistry::make(token) yields an identical configuration).
    /// Families built outside the registry fall back to their display name.
    [[nodiscard]] virtual std::string token() const { return name(); }

    /// Fetch-stage query for the conditional branch at `pc`.
    virtual Prediction predict(std::uint32_t pc) = 0;

    /// Resolve-time training with the actual outcome.
    virtual void update(std::uint32_t pc, bool taken, std::uint32_t target) = 0;

    virtual void reset() = 0;

    /// Storage cost in bits — the paper's area-proxy for predictor cost.
    [[nodiscard]] virtual std::uint64_t storageBits() const = 0;

    /// Register the predictor's cost metrics (`bp.storage_bits`) plus any
    /// family-specific counters into the registry.  Dynamic outcome counters
    /// live in PipelineStats — the pipeline owns resolve-time truth, the
    /// predictor only its geometry and internal training events.
    void publishMetrics(MetricRegistry& registry) const;

    /// Family-specific counters only (`bp.tage.*`, `bp.perceptron.*`, ...).
    /// Split out so metric enumeration can combine one `bp.storage_bits`
    /// claim with every family's counter names in a single registry.
    virtual void publishFamilyMetrics(MetricRegistry& registry) const;
};

namespace bp_detail {

[[nodiscard]] inline bool isPow2(std::uint32_t v) {
    return v != 0 && (v & (v - 1)) == 0;
}

/// 2-bit saturating counter transitions; counters predict taken at >= 2.
[[nodiscard]] inline std::uint8_t saturate2(std::uint8_t counter, bool taken) {
    if (taken) return counter < 3 ? static_cast<std::uint8_t>(counter + 1) : counter;
    return counter > 0 ? static_cast<std::uint8_t>(counter - 1) : counter;
}

}  // namespace bp_detail

}  // namespace asbr

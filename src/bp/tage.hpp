// TAGE predictor family.  Registry token: `tage[:hL1-L2-...[-eN][-tW][-dP]]`.
#pragma once

#include <memory>

#include "bp/predictor.hpp"

namespace asbr {

class PredictorRegistry;

/// TAgged GEometric-history-length predictor [Seznec & Michaud 06]: a
/// bimodal base table backed by a series of tagged tables indexed with
/// geometrically increasing slices of global history.  The longest-history
/// table whose tag matches provides the prediction; 2-bit usefulness
/// counters arbitrate allocation-on-mispredict and are periodically aged.
///
/// The model keeps no speculative state: prediction is recomputed inside
/// update() against the same history predict() saw (history only advances
/// at resolve time), so results are deterministic at any thread count.
class TagePredictor final : public BranchPredictor {
public:
    struct Config {
        std::vector<std::uint32_t> historyLengths = {8, 16, 32, 64};
        std::uint32_t taggedEntries = 512;  ///< per tagged table, power of two
        std::uint32_t tagBits = 9;
        std::uint32_t baseCounters = 2048;
        std::uint32_t btbEntries = 2048;
        std::uint64_t decayPeriod = 262144;  ///< updates between u >>= 1 sweeps
    };

    explicit TagePredictor(Config config);
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string token() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;
    void publishFamilyMetrics(MetricRegistry& registry) const override;

    /// Per-table tag hit counts since reset (index 0 = shortest history);
    /// exposed for tests and the stats report.
    [[nodiscard]] const std::vector<std::uint64_t>& tableHits() const {
        return tableHits_;
    }

private:
    struct TaggedEntry {
        std::uint16_t tag = 0;
        std::uint8_t ctr = 3;     ///< 3-bit saturating, taken at >= 4
        std::uint8_t useful = 0;  ///< 2-bit usefulness
        bool valid = false;
    };

    struct Match {
        int provider = -1;  ///< table index, -1 = base
        int alt = -1;
        std::size_t providerSlot = 0;
        std::size_t altSlot = 0;
    };

    [[nodiscard]] std::uint32_t foldedHistory(std::uint32_t length,
                                              std::uint32_t bits) const;
    [[nodiscard]] std::size_t tableIndex(int table, std::uint32_t pc) const;
    [[nodiscard]] std::uint16_t tableTag(int table, std::uint32_t pc) const;
    [[nodiscard]] Match findMatch(std::uint32_t pc) const;
    [[nodiscard]] bool predictionOf(const Match& match, std::uint32_t pc,
                                    bool alt) const;

    Config config_;
    std::vector<std::uint8_t> base_;  // 2-bit counters, taken at >= 2
    std::vector<std::vector<TaggedEntry>> tables_;
    std::uint64_t history_ = 0;
    std::uint64_t updates_ = 0;
    std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;  // deterministic tie-breaker
    Btb btb_;

    std::vector<std::uint64_t> tableHits_;
    std::uint64_t providerBase_ = 0;
    std::uint64_t providerTagged_ = 0;
    std::uint64_t allocations_ = 0;
    std::uint64_t allocFailures_ = 0;
    std::uint64_t usefulDecays_ = 0;
};

[[nodiscard]] std::unique_ptr<BranchPredictor> makeTage();

/// Register `tage` (called once from PredictorRegistry::instance()).
void registerTageFamily(PredictorRegistry& registry);

}  // namespace asbr

// Tournament (combining) predictor family.  Registry token:
// `tournament[:cN-hH-bM]`.
#pragma once

#include <memory>

#include "bp/predictor.hpp"

namespace asbr {

class PredictorRegistry;

/// McFarling's combining (tournament) predictor [McFarling 93]: a bimodal
/// and a gshare component share a BTB; a table of 2-bit chooser counters
/// indexed by PC picks which component to trust, trained towards whichever
/// component was right when they disagree.
class TournamentPredictor final : public BranchPredictor {
public:
    TournamentPredictor(std::uint32_t choosers, std::uint32_t counters,
                        std::uint32_t historyBits, std::uint32_t btbEntries);
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::string token() const override;
    Prediction predict(std::uint32_t pc) override;
    void update(std::uint32_t pc, bool taken, std::uint32_t target) override;
    void reset() override;
    [[nodiscard]] std::uint64_t storageBits() const override;

private:
    [[nodiscard]] bool bimodalTaken(std::uint32_t pc) const;
    [[nodiscard]] bool gshareTaken(std::uint32_t pc) const;

    std::vector<std::uint8_t> choosers_;  // >=2 prefers gshare
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::uint32_t historyBits_;
    std::uint32_t history_ = 0;
    Btb btb_;
};

[[nodiscard]] std::unique_ptr<BranchPredictor> makeTournament2048();

/// Register `tournament` (called once from PredictorRegistry::instance()).
void registerTournamentFamily(PredictorRegistry& registry);

}  // namespace asbr

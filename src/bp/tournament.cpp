#include "bp/tournament.hpp"

#include <algorithm>

#include "bp/registry.hpp"
#include "bp/token_params.hpp"

namespace asbr {

using bp_detail::isPow2;
using bp_detail::saturate2;

TournamentPredictor::TournamentPredictor(std::uint32_t choosers,
                                         std::uint32_t counters,
                                         std::uint32_t historyBits,
                                         std::uint32_t btbEntries)
    : choosers_(choosers, 1),
      bimodal_(counters, 1),
      gshare_(counters, 1),
      historyBits_(historyBits),
      btb_(btbEntries) {
    ASBR_ENSURE(isPow2(choosers) && isPow2(counters),
                "table sizes must be powers of two");
    ASBR_ENSURE(historyBits >= 1 && historyBits <= 30, "history bits 1..30");
}

std::string TournamentPredictor::name() const {
    return "tournament-" + std::to_string(bimodal_.size()) + "/btb-" +
           std::to_string(btb_.entries());
}

std::string TournamentPredictor::token() const {
    if (choosers_.size() == 2048 && bimodal_.size() == 2048 &&
        historyBits_ == 11 && btb_.entries() == 2048)
        return "tournament";
    return "tournament:c" + std::to_string(bimodal_.size()) + "-h" +
           std::to_string(historyBits_) + "-b" + std::to_string(btb_.entries());
}

bool TournamentPredictor::bimodalTaken(std::uint32_t pc) const {
    return bimodal_[(pc >> 2) & (bimodal_.size() - 1)] >= 2;
}

bool TournamentPredictor::gshareTaken(std::uint32_t pc) const {
    return gshare_[((pc >> 2) ^ history_) & (gshare_.size() - 1)] >= 2;
}

Prediction TournamentPredictor::predict(std::uint32_t pc) {
    const bool useGshare = choosers_[(pc >> 2) & (choosers_.size() - 1)] >= 2;
    const bool taken = useGshare ? gshareTaken(pc) : bimodalTaken(pc);
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void TournamentPredictor::update(std::uint32_t pc, bool taken,
                                 std::uint32_t target) {
    const bool bimodalWasRight = bimodalTaken(pc) == taken;
    const bool gshareWasRight = gshareTaken(pc) == taken;
    std::uint8_t& chooser = choosers_[(pc >> 2) & (choosers_.size() - 1)];
    if (gshareWasRight != bimodalWasRight)
        chooser = saturate2(chooser, gshareWasRight);

    std::uint8_t& bi = bimodal_[(pc >> 2) & (bimodal_.size() - 1)];
    bi = saturate2(bi, taken);
    std::uint8_t& gs = gshare_[((pc >> 2) ^ history_) & (gshare_.size() - 1)];
    gs = saturate2(gs, taken);
    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & ((1u << historyBits_) - 1);
    if (taken) btb_.update(pc, target);
}

void TournamentPredictor::reset() {
    std::fill(choosers_.begin(), choosers_.end(), std::uint8_t{1});
    std::fill(bimodal_.begin(), bimodal_.end(), std::uint8_t{1});
    std::fill(gshare_.begin(), gshare_.end(), std::uint8_t{1});
    history_ = 0;
    btb_.reset();
}

std::uint64_t TournamentPredictor::storageBits() const {
    return (choosers_.size() + bimodal_.size() + gshare_.size()) * 2ull +
           historyBits_ + btb_.storageBits();
}

std::unique_ptr<BranchPredictor> makeTournament2048() {
    return std::make_unique<TournamentPredictor>(2048, 2048, 11, 2048);
}

namespace {

std::unique_ptr<BranchPredictor> parseTournament(const std::string& params,
                                                 std::string& error) {
    std::uint64_t counters = 2048;
    std::uint64_t history = 11;
    std::uint64_t btb = 2048;
    for (const std::string& seg : bp_detail::splitDash(params)) {
        std::uint64_t value = 0;
        if (seg.size() < 2 || !bp_detail::parseUint(seg.substr(1), value)) {
            error = "tournament: bad parameter '" + seg +
                    "' (want cN, hH or bM)";
            return nullptr;
        }
        switch (seg.front()) {
            case 'c': counters = value; break;
            case 'h': history = value; break;
            case 'b': btb = value; break;
            default:
                error = "tournament: unknown parameter '" + seg + "'";
                return nullptr;
        }
    }
    if (history < 1 || history > 30) {
        error = "tournament: history bits must be 1..30";
        return nullptr;
    }
    if (!isPow2(static_cast<std::uint32_t>(counters)) ||
        !isPow2(static_cast<std::uint32_t>(btb)) || counters > (1u << 20) ||
        btb > (1u << 20)) {
        error = "tournament: table sizes must be powers of two (<= 1M entries)";
        return nullptr;
    }
    return std::make_unique<TournamentPredictor>(
        static_cast<std::uint32_t>(counters),
        static_cast<std::uint32_t>(counters),
        static_cast<std::uint32_t>(history), static_cast<std::uint32_t>(btb));
}

}  // namespace

void registerTournamentFamily(PredictorRegistry& registry) {
    registry.add({"tournament", "tournament[:cN-hH-bM]",
                  "bimodal + gshare with a 2-bit chooser [McFarling 93] "
                  "(default c2048-h11-b2048)",
                  parseTournament});
}

}  // namespace asbr

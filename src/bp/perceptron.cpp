#include "bp/perceptron.hpp"

#include <algorithm>
#include <cstdlib>

#include "bp/registry.hpp"
#include "bp/token_params.hpp"
#include "util/metrics.hpp"

namespace asbr {

using bp_detail::isPow2;

namespace {

std::int8_t clampWeight(std::int32_t value) {
    return static_cast<std::int8_t>(std::clamp(value, -128, 127));
}

}  // namespace

PerceptronPredictor::PerceptronPredictor(std::uint32_t perceptrons,
                                         std::uint32_t historyBits,
                                         std::uint32_t btbEntries)
    : historyBits_(historyBits),
      threshold_(static_cast<std::int32_t>(1.93 * historyBits + 14)),
      weights_(static_cast<std::size_t>(perceptrons) * (historyBits + 1), 0),
      btb_(btbEntries) {
    ASBR_ENSURE(isPow2(perceptrons), "perceptron count must be a power of two");
    ASBR_ENSURE(historyBits >= 1 && historyBits <= 62, "history bits 1..62");
}

std::string PerceptronPredictor::name() const {
    const std::size_t rows = weights_.size() / (historyBits_ + 1);
    return "perceptron-" + std::to_string(rows) + "x" +
           std::to_string(historyBits_) + "/btb-" + std::to_string(btb_.entries());
}

std::string PerceptronPredictor::token() const {
    const std::size_t rows = weights_.size() / (historyBits_ + 1);
    if (rows == 256 && historyBits_ == 12 && btb_.entries() == 2048)
        return "perceptron";
    return "perceptron:n" + std::to_string(rows) + "-h" +
           std::to_string(historyBits_);
}

std::int32_t PerceptronPredictor::dotProduct(std::size_t row) const {
    const std::size_t rowBase = row * (historyBits_ + 1);
    std::int32_t sum = weights_[rowBase];  // bias weight
    for (std::uint32_t bit = 0; bit < historyBits_; ++bit) {
        const std::int32_t weight = weights_[rowBase + 1 + bit];
        sum += (history_ >> bit) & 1 ? weight : -weight;
    }
    return sum;
}

Prediction PerceptronPredictor::predict(std::uint32_t pc) {
    const std::size_t rows = weights_.size() / (historyBits_ + 1);
    const bool taken = dotProduct((pc >> 2) & (rows - 1)) >= 0;
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void PerceptronPredictor::update(std::uint32_t pc, bool taken,
                                 std::uint32_t target) {
    const std::size_t rows = weights_.size() / (historyBits_ + 1);
    const std::size_t row = (pc >> 2) & (rows - 1);
    // History only advances below, so this is the sum predict() computed.
    const std::int32_t sum = dotProduct(row);
    const bool predTaken = sum >= 0;

    const bool mispredicted = predTaken != taken;
    const bool lowConfidence = std::abs(sum) <= threshold_;
    if (mispredicted || lowConfidence) {
        ++trainEvents_;
        if (mispredicted) ++mispredictTrains_;
        if (!mispredicted) ++lowConfidenceTrains_;
        const std::size_t rowBase = row * (historyBits_ + 1);
        weights_[rowBase] =
            clampWeight(weights_[rowBase] + (taken ? 1 : -1));
        for (std::uint32_t bit = 0; bit < historyBits_; ++bit) {
            const bool histTaken = (history_ >> bit) & 1;
            std::int8_t& weight = weights_[rowBase + 1 + bit];
            weight = clampWeight(weight + (histTaken == taken ? 1 : -1));
        }
    }

    history_ = ((history_ << 1) | (taken ? 1u : 0u)) &
               ((1ull << historyBits_) - 1);
    if (taken) btb_.update(pc, target);
}

void PerceptronPredictor::reset() {
    std::fill(weights_.begin(), weights_.end(), std::int8_t{0});
    history_ = 0;
    btb_.reset();
    trainEvents_ = mispredictTrains_ = lowConfidenceTrains_ = 0;
}

std::uint64_t PerceptronPredictor::storageBits() const {
    return weights_.size() * 8ull + historyBits_ + btb_.storageBits();
}

void PerceptronPredictor::publishFamilyMetrics(MetricRegistry& registry) const {
    registry
        .counter("bp.perceptron.train_events",
                 "perceptron weight-training events (mispredict or "
                 "low-confidence)")
        .add(trainEvents_);
    registry
        .counter("bp.perceptron.mispredict_trains",
                 "perceptron trainings triggered by a misprediction")
        .add(mispredictTrains_);
    registry
        .counter("bp.perceptron.low_confidence_trains",
                 "perceptron trainings triggered by |output| <= theta on a "
                 "correct prediction")
        .add(lowConfidenceTrains_);
}

std::unique_ptr<BranchPredictor> makePerceptron() {
    return std::make_unique<PerceptronPredictor>(256, 12, 2048);
}

namespace {

std::unique_ptr<BranchPredictor> parsePerceptron(const std::string& params,
                                                 std::string& error) {
    std::uint64_t perceptrons = 256;
    std::uint64_t history = 12;
    for (const std::string& seg : bp_detail::splitDash(params)) {
        std::uint64_t value = 0;
        if (seg.size() < 2 || !bp_detail::parseUint(seg.substr(1), value)) {
            error = "perceptron: bad parameter '" + seg + "' (want nN or hH)";
            return nullptr;
        }
        switch (seg.front()) {
            case 'n': perceptrons = value; break;
            case 'h': history = value; break;
            default:
                error = "perceptron: unknown parameter '" + seg + "'";
                return nullptr;
        }
    }
    if (history < 1 || history > 62) {
        error = "perceptron: history bits must be 1..62";
        return nullptr;
    }
    if (!isPow2(static_cast<std::uint32_t>(perceptrons)) ||
        perceptrons > (1u << 20)) {
        error = "perceptron: table size must be a power of two (<= 1M rows)";
        return nullptr;
    }
    return std::make_unique<PerceptronPredictor>(
        static_cast<std::uint32_t>(perceptrons),
        static_cast<std::uint32_t>(history), 2048);
}

}  // namespace

void registerPerceptronFamily(PredictorRegistry& registry) {
    registry.add({"perceptron", "perceptron[:nN-hH]",
                  "perceptron over global history [Jimenez & Lin 01] "
                  "(default n256-h12, theta 37)",
                  parsePerceptron});
}

}  // namespace asbr

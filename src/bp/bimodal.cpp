#include "bp/bimodal.hpp"

#include <algorithm>

#include "bp/registry.hpp"
#include "bp/token_params.hpp"

namespace asbr {

using bp_detail::isPow2;
using bp_detail::saturate2;

BimodalPredictor::BimodalPredictor(std::uint32_t counters, std::uint32_t btbEntries)
    : counters_(counters, 1), btb_(btbEntries) {
    ASBR_ENSURE(isPow2(counters), "counter table size must be a power of two");
}

std::string BimodalPredictor::name() const {
    return "bimodal-" + std::to_string(counters_.size()) + "/btb-" +
           std::to_string(btb_.entries());
}

std::string BimodalPredictor::token() const {
    if (counters_.size() == 2048 && btb_.entries() == 2048) return "bimodal";
    if (counters_.size() == 512 && btb_.entries() == 512) return "bi512";
    if (counters_.size() == 256 && btb_.entries() == 512) return "bi256";
    return "bimodal:c" + std::to_string(counters_.size()) + "-b" +
           std::to_string(btb_.entries());
}

std::size_t BimodalPredictor::index(std::uint32_t pc) const {
    return (pc >> 2) & (counters_.size() - 1);
}

Prediction BimodalPredictor::predict(std::uint32_t pc) {
    const bool taken = counters_[index(pc)] >= 2;
    return {taken, taken ? btb_.lookup(pc) : std::nullopt};
}

void BimodalPredictor::update(std::uint32_t pc, bool taken, std::uint32_t target) {
    std::uint8_t& counter = counters_[index(pc)];
    counter = saturate2(counter, taken);
    if (taken) btb_.update(pc, target);
}

void BimodalPredictor::reset() {
    std::fill(counters_.begin(), counters_.end(), std::uint8_t{1});
    btb_.reset();
}

std::uint64_t BimodalPredictor::storageBits() const {
    return counters_.size() * 2ull + btb_.storageBits();
}

std::unique_ptr<BranchPredictor> makeBimodal2048() {
    return std::make_unique<BimodalPredictor>(2048, 2048);
}

std::unique_ptr<BranchPredictor> makeBimodal(std::uint32_t counters,
                                             std::uint32_t btbEntries) {
    return std::make_unique<BimodalPredictor>(counters, btbEntries);
}

namespace {

std::unique_ptr<BranchPredictor> parseBimodal(const std::string& params,
                                              std::string& error) {
    std::uint64_t counters = 2048;
    std::uint64_t btb = 2048;
    for (const std::string& seg : bp_detail::splitDash(params)) {
        std::uint64_t value = 0;
        if (seg.size() < 2 || !bp_detail::parseUint(seg.substr(1), value)) {
            error = "bimodal: bad parameter '" + seg + "' (want cN or bM)";
            return nullptr;
        }
        switch (seg.front()) {
            case 'c': counters = value; break;
            case 'b': btb = value; break;
            default:
                error = "bimodal: unknown parameter '" + seg + "'";
                return nullptr;
        }
    }
    if (!isPow2(static_cast<std::uint32_t>(counters)) ||
        !isPow2(static_cast<std::uint32_t>(btb)) || counters > (1u << 20) ||
        btb > (1u << 20)) {
        error = "bimodal: table sizes must be powers of two (<= 1M entries)";
        return nullptr;
    }
    return makeBimodal(static_cast<std::uint32_t>(counters),
                       static_cast<std::uint32_t>(btb));
}

}  // namespace

void registerBimodalFamily(PredictorRegistry& registry) {
    registry.add({"bimodal", "bimodal[:cN-bM]",
                  "2-bit saturating counters indexed by PC (default c2048-b2048)",
                  parseBimodal});
    registry.add({"bi512", "bi512",
                  "paper fig 11 auxiliary: bimodal c512 with a quarter BTB",
                  [](const std::string& params, std::string& error)
                      -> std::unique_ptr<BranchPredictor> {
                      if (!params.empty()) {
                          error = "bi512 takes no parameters";
                          return nullptr;
                      }
                      return makeBimodal(512, 512);
                  }});
    registry.add({"bi256", "bi256",
                  "paper fig 11 auxiliary: bimodal c256 with a quarter BTB",
                  [](const std::string& params, std::string& error)
                      -> std::unique_ptr<BranchPredictor> {
                      if (!params.empty()) {
                          error = "bi256 takes no parameters";
                          return nullptr;
                      }
                      return makeBimodal(256, 512);
                  }});
}

}  // namespace asbr

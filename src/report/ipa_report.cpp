#include "report/ipa_report.hpp"

#include <bit>

#include "analysis/timing/wcet.hpp"

namespace asbr {

namespace {

using analysis::InstrIndex;
using analysis::ipa::CallGraph;
using analysis::ipa::FunctionSummary;
using analysis::ipa::IpaAnalysis;

/// First label naming `pc`, or "" — symbols is an ordered map, so the
/// choice is deterministic.
std::string symbolAt(const Program& program, std::uint32_t pc) {
    for (const auto& [name, addr] : program.symbols)
        if (addr == pc) return name;
    return {};
}

JsonValue pcArray(const analysis::Cfg& cfg,
                  const std::vector<InstrIndex>& indices) {
    JsonArray a;
    for (const InstrIndex i : indices)
        a.push_back(JsonValue(static_cast<std::uint64_t>(cfg.pcOf(i))));
    return JsonValue(std::move(a));
}

}  // namespace

JsonValue ipaReportJson(const IpaReportMeta& meta,
                        const analysis::FoldLegalityVerifier& verifier) {
    const IpaAnalysis& ipa = verifier.ipa();
    const analysis::Cfg& cfg = ipa.cfg;
    const Program& program = *cfg.program;

    // Resolution-aware static WCET: default cost model, no profile.  The
    // per-function cycles feed the summary records below.
    analysis::timing::WcetEngine engine(cfg, ipa.values,
                                        analysis::timing::TimingCostModel{},
                                        &ipa.resolution.map);
    const analysis::timing::WcetResult wcet = engine.compute({});
    std::map<std::uint32_t, std::uint64_t> cyclesByEntry(
        wcet.functionCycles.begin(), wcet.functionCycles.end());

    JsonObject doc;
    doc.emplace_back("schema", kIpaReportSchema);
    doc.emplace_back("version", kReportSchemaVersion);

    JsonObject m;
    m.emplace_back("benchmark", meta.benchmark);
    doc.emplace_back("meta", JsonValue(std::move(m)));

    JsonObject pipeline;
    pipeline.emplace_back("rounds",
                          static_cast<std::uint64_t>(ipa.stats.rounds));
    pipeline.emplace_back("ssa_defs",
                          static_cast<std::uint64_t>(ipa.stats.ssaDefs));
    pipeline.emplace_back("ssa_phis",
                          static_cast<std::uint64_t>(ipa.stats.ssaPhis));
    pipeline.emplace_back("ssa_uses",
                          static_cast<std::uint64_t>(ipa.stats.ssaUses));
    pipeline.emplace_back(
        "sccp_iterations",
        static_cast<std::uint64_t>(ipa.stats.sccpIterations));
    pipeline.emplace_back("sccp_converged", ipa.stats.sccpConverged);
    pipeline.emplace_back("dense_decided",
                          static_cast<std::uint64_t>(ipa.stats.denseDecided));
    pipeline.emplace_back("sccp_decided",
                          static_cast<std::uint64_t>(ipa.stats.sccpDecided));
    pipeline.emplace_back(
        "merged_decided",
        static_cast<std::uint64_t>(ipa.stats.mergedDecided));
    doc.emplace_back("pipeline", JsonValue(std::move(pipeline)));

    JsonObject resolution;
    resolution.emplace_back(
        "resolved_calls",
        static_cast<std::uint64_t>(ipa.resolution.resolvedCalls));
    resolution.emplace_back(
        "resolved_gotos",
        static_cast<std::uint64_t>(ipa.resolution.resolvedGotos));
    resolution.emplace_back(
        "unresolved_sites",
        static_cast<std::uint64_t>(ipa.resolution.unresolvedSites));
    resolution.emplace_back(
        "table_loads", static_cast<std::uint64_t>(ipa.resolution.tableLoads));
    JsonArray sites;
    for (const auto& [index, r] : ipa.resolution.map) {
        JsonObject s;
        s.emplace_back("pc", static_cast<std::uint64_t>(cfg.pcOf(index)));
        s.emplace_back("kind", r.isCall ? "call" : "goto");
        s.emplace_back("targets", pcArray(cfg, r.targets));
        sites.push_back(JsonValue(std::move(s)));
    }
    resolution.emplace_back("sites", JsonValue(std::move(sites)));
    doc.emplace_back("resolution", JsonValue(std::move(resolution)));

    const CallGraph& graph = ipa.callGraph;
    JsonObject callgraph;
    callgraph.emplace_back("functions",
                           static_cast<std::uint64_t>(graph.functions.size()));
    callgraph.emplace_back("edges",
                           static_cast<std::uint64_t>(graph.numEdges()));
    callgraph.emplace_back("recursive", graph.recursive);
    callgraph.emplace_back(
        "main_pc",
        static_cast<std::uint64_t>(
            graph.functions.empty()
                ? program.entry
                : graph.functions[graph.mainIndex].entryPc));
    JsonArray nodes;
    for (const FunctionSummary& f : graph.functions) {
        JsonObject n;
        n.emplace_back("entry_pc", static_cast<std::uint64_t>(f.entryPc));
        n.emplace_back("symbol", symbolAt(program, f.entryPc));
        n.emplace_back("blocks", static_cast<std::uint64_t>(f.blockCount));
        n.emplace_back("clobber_mask",
                       static_cast<std::uint64_t>(f.clobbered));
        n.emplace_back(
            "clobber_count",
            static_cast<std::uint64_t>(std::popcount(f.clobbered)));
        n.emplace_back("return_value", f.returnValue.str());
        JsonArray callees;
        for (const std::size_t c : f.callees)
            callees.push_back(JsonValue(
                static_cast<std::uint64_t>(graph.functions[c].entryPc)));
        n.emplace_back("callees", JsonValue(std::move(callees)));
        JsonArray callPcs;
        for (const std::uint32_t pc : f.callSitePcs)
            callPcs.push_back(JsonValue(static_cast<std::uint64_t>(pc)));
        n.emplace_back("call_site_pcs", JsonValue(std::move(callPcs)));
        n.emplace_back("unresolved_indirect", f.hasUnresolvedIndirect);
        n.emplace_back("reachable_from_main", f.reachableFromMain);
        const auto it = cyclesByEntry.find(f.entryPc);
        n.emplace_back("wcet_bounded", it != cyclesByEntry.end());
        n.emplace_back("wcet_cycles",
                       it != cyclesByEntry.end() ? it->second
                                                 : std::uint64_t{0});
        nodes.push_back(JsonValue(std::move(n)));
    }
    callgraph.emplace_back("nodes", JsonValue(std::move(nodes)));
    doc.emplace_back("callgraph", JsonValue(std::move(callgraph)));

    JsonObject wcetJson;
    wcetJson.emplace_back("bounded", wcet.bounded);
    wcetJson.emplace_back("cycles", wcet.cycles);
    wcetJson.emplace_back("reason", wcet.reason);
    doc.emplace_back("wcet", JsonValue(std::move(wcetJson)));
    return JsonValue(std::move(doc));
}

ReportValidation validateIpaReportJson(const JsonValue& doc) {
    ReportValidation out;
    const auto fail = [&out](std::string message) {
        out.errors.push_back(std::move(message));
    };
    if (!doc.isObject()) {
        fail("ipa_report: not a JSON object");
        return out;
    }
    const auto member = [&](const JsonValue& obj, const char* key,
                            const char* context) -> const JsonValue* {
        const JsonValue* v = obj.find(key);
        if (v == nullptr)
            fail(std::string(context) + ": missing required member '" + key +
                 "'");
        return v;
    };

    if (const JsonValue* schema = member(doc, "schema", "ipa_report"))
        if (!schema->isString() || schema->asString() != kIpaReportSchema)
            fail(std::string("ipa_report: schema is not '") + kIpaReportSchema +
                 "'");
    if (const JsonValue* version = member(doc, "version", "ipa_report"))
        if (!version->isNumber() || version->asUint() != kReportSchemaVersion)
            fail("ipa_report: unsupported schema version");

    if (const JsonValue* meta = member(doc, "meta", "ipa_report")) {
        if (!meta->isObject()) {
            fail("ipa_report: meta is not an object");
        } else {
            const JsonValue* bench = meta->find("benchmark");
            if (bench == nullptr || !bench->isString())
                fail("ipa_report: meta.benchmark missing or not a string");
        }
    }

    if (const JsonValue* pipeline = member(doc, "pipeline", "ipa_report")) {
        if (!pipeline->isObject()) {
            fail("ipa_report: pipeline is not an object");
        } else {
            for (const char* key :
                 {"rounds", "ssa_defs", "ssa_phis", "ssa_uses",
                  "sccp_iterations", "dense_decided", "sccp_decided",
                  "merged_decided"}) {
                const JsonValue* v = pipeline->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("ipa_report: pipeline.") + key +
                         " missing or not a number");
            }
            const JsonValue* converged = pipeline->find("sccp_converged");
            if (converged == nullptr || !converged->isBool())
                fail("ipa_report: pipeline.sccp_converged missing or not a "
                     "bool");
            // The reduced product can only add decided branches.
            const JsonValue* dense = pipeline->find("dense_decided");
            const JsonValue* merged = pipeline->find("merged_decided");
            if (dense != nullptr && dense->isNumber() && merged != nullptr &&
                merged->isNumber() && merged->asUint() < dense->asUint())
                fail("ipa_report: pipeline.merged_decided is below "
                     "dense_decided (reduced product lost precision)");
        }
    }

    std::size_t siteCount = 0;
    if (const JsonValue* resolution = member(doc, "resolution", "ipa_report")) {
        if (!resolution->isObject()) {
            fail("ipa_report: resolution is not an object");
        } else {
            for (const char* key : {"resolved_calls", "resolved_gotos",
                                    "unresolved_sites", "table_loads"}) {
                const JsonValue* v = resolution->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("ipa_report: resolution.") + key +
                         " missing or not a number");
            }
            if (const JsonValue* sites =
                    member(*resolution, "sites", "ipa_report: resolution")) {
                if (!sites->isArray()) {
                    fail("ipa_report: resolution.sites is not an array");
                } else {
                    siteCount = sites->asArray().size();
                    std::size_t index = 0;
                    for (const JsonValue& record : sites->asArray()) {
                        const std::string context =
                            "ipa_report: resolution.sites[" +
                            std::to_string(index) + "]";
                        ++index;
                        if (!record.isObject()) {
                            fail(context + " is not an object");
                            continue;
                        }
                        const JsonValue* pc = record.find("pc");
                        if (pc == nullptr || !pc->isNumber())
                            fail(context + ".pc missing or not a number");
                        const JsonValue* kind = record.find("kind");
                        if (kind == nullptr || !kind->isString() ||
                            (kind->asString() != "call" &&
                             kind->asString() != "goto"))
                            fail(context + ".kind is not 'call' or 'goto'");
                        const JsonValue* targets = record.find("targets");
                        if (targets == nullptr || !targets->isArray() ||
                            targets->asArray().empty())
                            fail(context +
                                 ".targets missing or not a non-empty array");
                    }
                }
            }
            const JsonValue* calls = resolution->find("resolved_calls");
            const JsonValue* gotos = resolution->find("resolved_gotos");
            if (calls != nullptr && calls->isNumber() && gotos != nullptr &&
                gotos->isNumber() &&
                calls->asUint() + gotos->asUint() != siteCount)
                fail("ipa_report: resolution counters do not match the sites "
                     "array");
        }
    }

    if (const JsonValue* callgraph = member(doc, "callgraph", "ipa_report")) {
        if (!callgraph->isObject()) {
            fail("ipa_report: callgraph is not an object");
        } else {
            for (const char* key : {"functions", "edges", "main_pc"}) {
                const JsonValue* v = callgraph->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("ipa_report: callgraph.") + key +
                         " missing or not a number");
            }
            const JsonValue* recursive = callgraph->find("recursive");
            if (recursive == nullptr || !recursive->isBool())
                fail("ipa_report: callgraph.recursive missing or not a bool");
            std::uint64_t edgeSum = 0;
            std::size_t nodeCount = 0;
            if (const JsonValue* nodes =
                    member(*callgraph, "nodes", "ipa_report: callgraph")) {
                if (!nodes->isArray()) {
                    fail("ipa_report: callgraph.nodes is not an array");
                } else {
                    nodeCount = nodes->asArray().size();
                    std::size_t index = 0;
                    for (const JsonValue& record : nodes->asArray()) {
                        const std::string context =
                            "ipa_report: callgraph.nodes[" +
                            std::to_string(index) + "]";
                        ++index;
                        if (!record.isObject()) {
                            fail(context + " is not an object");
                            continue;
                        }
                        for (const char* key :
                             {"entry_pc", "blocks", "clobber_mask",
                              "clobber_count", "wcet_cycles"}) {
                            const JsonValue* v = record.find(key);
                            if (v == nullptr || !v->isNumber())
                                fail(context + "." + key +
                                     " missing or not a number");
                        }
                        for (const char* key : {"symbol", "return_value"}) {
                            const JsonValue* v = record.find(key);
                            if (v == nullptr || !v->isString())
                                fail(context + "." + key +
                                     " missing or not a string");
                        }
                        for (const char* key :
                             {"unresolved_indirect", "reachable_from_main",
                              "wcet_bounded"}) {
                            const JsonValue* v = record.find(key);
                            if (v == nullptr || !v->isBool())
                                fail(context + "." + key +
                                     " missing or not a bool");
                        }
                        for (const char* key : {"callees", "call_site_pcs"}) {
                            const JsonValue* v = record.find(key);
                            if (v == nullptr || !v->isArray())
                                fail(context + "." + key +
                                     " missing or not an array");
                            else if (std::string(key) == "callees")
                                edgeSum += v->asArray().size();
                        }
                    }
                }
            }
            const JsonValue* functions = callgraph->find("functions");
            if (functions != nullptr && functions->isNumber() &&
                functions->asUint() != nodeCount)
                fail("ipa_report: callgraph.functions does not match the "
                     "nodes array");
            const JsonValue* edges = callgraph->find("edges");
            if (edges != nullptr && edges->isNumber() &&
                edges->asUint() != edgeSum)
                fail("ipa_report: callgraph.edges does not match the summed "
                     "callee lists");
        }
    }

    if (const JsonValue* wcet = member(doc, "wcet", "ipa_report")) {
        if (!wcet->isObject()) {
            fail("ipa_report: wcet is not an object");
        } else {
            const JsonValue* bounded = wcet->find("bounded");
            if (bounded == nullptr || !bounded->isBool())
                fail("ipa_report: wcet.bounded missing or not a bool");
            const JsonValue* cycles = wcet->find("cycles");
            if (cycles == nullptr || !cycles->isNumber())
                fail("ipa_report: wcet.cycles missing or not a number");
            const JsonValue* reason = wcet->find("reason");
            if (reason == nullptr || !reason->isString())
                fail("ipa_report: wcet.reason missing or not a string");
        }
    }
    return out;
}

}  // namespace asbr

// asbr.ipa_report — the schema-versioned, machine-readable result of one
// interprocedural-analysis run (docs/static-analysis.md).
//
// Serializes the ipa pipeline's whole-program view: SSA/SCCP pipeline
// statistics, the value-set resolution of every indirect jump (with the
// proved target sets), the call graph with its bottom-up per-function
// summaries (clobber masks, return-value intervals, WCET bounds), and the
// resolution-aware whole-program WCET.  Every value is an integer, string
// or bool — no floating point — so the report for a fixed program is
// byte-identical across runs and thread counts, and ci/verify-workloads.sh
// can whole-file-diff committed goldens.
#pragma once

#include <string>

#include "analysis/verify.hpp"
#include "report/report.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kIpaReportSchema = "asbr.ipa_report";

/// Identity of the analyzed program.
struct IpaReportMeta {
    std::string benchmark;  ///< workload token ("adpcm-enc") or file name
};

/// Serialize the verifier's interprocedural pipeline outputs (schema
/// `asbr.ipa_report`, version 1).  Purely static — the document depends on
/// the program alone.  The per-function and whole-program WCET bounds are
/// computed with the default cost model and no profile, so profile-only
/// loops report unbounded here.
[[nodiscard]] JsonValue ipaReportJson(
    const IpaReportMeta& meta, const analysis::FoldLegalityVerifier& verifier);

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateIpaReportJson(const JsonValue& doc);

}  // namespace asbr

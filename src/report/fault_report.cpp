#include "report/fault_report.hpp"

namespace asbr {

JsonValue injectionRecordJson(const InjectionRecord& record) {
    JsonObject r;
    r.emplace_back("site", faultSiteJson(record.injection.site));
    r.emplace_back("cycle", record.injection.cycle);
    r.emplace_back("outcome", faultOutcomeName(record.outcome));
    r.emplace_back("cycles", record.cycles);
    r.emplace_back("recoveries", record.recoveries);
    if (!record.detail.empty()) r.emplace_back("detail", record.detail);
    return JsonValue(std::move(r));
}

InjectionRecord injectionRecordFromJson(const JsonValue& value) {
    ASBR_ENSURE(value.isObject(), "injection record: not a JSON object");
    InjectionRecord record;
    const JsonValue* site = value.find("site");
    ASBR_ENSURE(site != nullptr, "injection record: missing site");
    record.injection.site = faultSiteFromJson(*site);
    for (const char* key : {"cycle", "cycles", "recoveries"}) {
        const JsonValue* v = value.find(key);
        ASBR_ENSURE(v != nullptr && v->isNumber(),
                    std::string("injection record: ") + key +
                        " missing or not a number");
    }
    record.injection.cycle = value.find("cycle")->asUint();
    record.cycles = value.find("cycles")->asUint();
    record.recoveries = value.find("recoveries")->asUint();
    const JsonValue* outcome = value.find("outcome");
    ASBR_ENSURE(outcome != nullptr && outcome->isString(),
                "injection record: outcome missing or not a string");
    const auto parsed = faultOutcomeFromName(outcome->asString());
    ASBR_ENSURE(parsed.has_value(), "injection record: unknown outcome '" +
                                        outcome->asString() + "'");
    record.outcome = *parsed;
    if (const JsonValue* detail = value.find("detail")) {
        ASBR_ENSURE(detail->isString(),
                    "injection record: detail is not a string");
        record.detail = detail->asString();
    }
    return record;
}

JsonValue faultReportJson(const FaultReportMeta& meta,
                          const CampaignConfig& config,
                          const CampaignResult& result,
                          const std::vector<FailedInjection>& failed) {
    JsonObject doc;
    doc.emplace_back("schema", kFaultReportSchema);
    doc.emplace_back("version", kFaultReportVersion);

    JsonObject m;
    m.emplace_back("benchmark", meta.benchmark);
    m.emplace_back("predictor", meta.predictor);
    m.emplace_back("seed", meta.seed);
    m.emplace_back("samples", meta.samples);
    m.emplace_back("protected", meta.protectedMode);
    m.emplace_back("bit_entries", meta.bitEntries);
    m.emplace_back("update_stage", meta.updateStage);
    doc.emplace_back("meta", JsonValue(std::move(m)));

    JsonObject campaign;
    campaign.emplace_back("fault_seed", config.seed);
    campaign.emplace_back("injections", config.injections);
    campaign.emplace_back("max_cycle_factor", config.maxCycleFactor);
    JsonObject targets;
    targets.emplace_back("bdt", config.faultBdt);
    targets.emplace_back("bit", config.faultBit);
    targets.emplace_back("bp", config.faultBp);
    campaign.emplace_back("targets", JsonValue(std::move(targets)));
    campaign.emplace_back("clean_cycles", result.context.cleanCycles);
    doc.emplace_back("campaign", JsonValue(std::move(campaign)));

    JsonObject outcomes;
    for (std::size_t o = 0; o < kNumFaultOutcomes; ++o)
        outcomes.emplace_back(faultOutcomeName(static_cast<FaultOutcome>(o)),
                              result.outcomes[o]);
    doc.emplace_back("outcomes", JsonValue(std::move(outcomes)));

    JsonArray injections;
    injections.reserve(result.records.size());
    for (const InjectionRecord& record : result.records)
        injections.push_back(injectionRecordJson(record));
    doc.emplace_back("injections", JsonValue(std::move(injections)));

    JsonArray failedJobs;
    failedJobs.reserve(failed.size());
    for (const FailedInjection& f : failed) {
        JsonObject r;
        r.emplace_back("index", f.index);
        r.emplace_back("site", faultSiteJson(f.injection.site));
        r.emplace_back("cycle", f.injection.cycle);
        r.emplace_back("attempts", f.attempts);
        r.emplace_back("error", f.error);
        failedJobs.push_back(JsonValue(std::move(r)));
    }
    doc.emplace_back("failed_jobs", JsonValue(std::move(failedJobs)));

    return JsonValue(std::move(doc));
}

std::optional<FaultOutcome> faultOutcomeFromName(const std::string& name) {
    for (std::size_t o = 0; o < kNumFaultOutcomes; ++o)
        if (name == faultOutcomeName(static_cast<FaultOutcome>(o)))
            return static_cast<FaultOutcome>(o);
    return std::nullopt;
}

ReportValidation validateFaultReportJson(const JsonValue& doc) {
    ReportValidation out;
    const auto fail = [&out](std::string message) {
        out.errors.push_back(std::move(message));
    };
    if (!doc.isObject()) {
        fail("fault_report: not a JSON object");
        return out;
    }
    const auto member = [&](const JsonValue& obj, const char* key,
                            const char* context) -> const JsonValue* {
        const JsonValue* v = obj.find(key);
        if (v == nullptr)
            fail(std::string(context) + ": missing required member '" + key +
                 "'");
        return v;
    };

    if (const JsonValue* schema = member(doc, "schema", "fault_report"))
        if (!schema->isString() || schema->asString() != kFaultReportSchema)
            fail(std::string("fault_report: schema is not '") +
                 kFaultReportSchema + "'");
    if (const JsonValue* version = member(doc, "version", "fault_report"))
        if (!version->isNumber() || version->asUint() != kFaultReportVersion)
            fail("fault_report: unsupported schema version (want " +
                 std::to_string(kFaultReportVersion) + ")");

    if (const JsonValue* meta = member(doc, "meta", "fault_report")) {
        if (!meta->isObject()) {
            fail("fault_report: meta is not an object");
        } else {
            for (const char* key : {"benchmark", "predictor", "update_stage"}) {
                const JsonValue* v = meta->find(key);
                if (v == nullptr || !v->isString())
                    fail(std::string("fault_report: meta.") + key +
                         " missing or not a string");
            }
            for (const char* key : {"seed", "samples", "bit_entries"}) {
                const JsonValue* v = meta->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("fault_report: meta.") + key +
                         " missing or not a number");
            }
            const JsonValue* prot = meta->find("protected");
            if (prot == nullptr || !prot->isBool())
                fail("fault_report: meta.protected missing or not a bool");
        }
    }

    std::uint64_t campaignInjections = 0;
    bool campaignOk = false;
    if (const JsonValue* campaign = member(doc, "campaign", "fault_report")) {
        if (!campaign->isObject()) {
            fail("fault_report: campaign is not an object");
        } else {
            campaignOk = true;
            for (const char* key :
                 {"fault_seed", "injections", "max_cycle_factor",
                  "clean_cycles"}) {
                const JsonValue* v = campaign->find(key);
                if (v == nullptr || !v->isNumber()) {
                    fail(std::string("fault_report: campaign.") + key +
                         " missing or not a number");
                    campaignOk = false;
                }
            }
            if (campaignOk)
                campaignInjections = campaign->find("injections")->asUint();
            if (const JsonValue* targets =
                    member(*campaign, "targets", "fault_report: campaign"))
                if (!targets->isObject())
                    fail("fault_report: campaign.targets is not an object");
        }
    }

    std::uint64_t outcomeSum = 0;
    bool outcomesOk = false;
    if (const JsonValue* outcomes = member(doc, "outcomes", "fault_report")) {
        if (!outcomes->isObject()) {
            fail("fault_report: outcomes is not an object");
        } else {
            outcomesOk = true;
            for (std::size_t o = 0; o < kNumFaultOutcomes; ++o) {
                const char* name = faultOutcomeName(static_cast<FaultOutcome>(o));
                const JsonValue* v = outcomes->find(name);
                if (v == nullptr || !v->isNumber()) {
                    fail(std::string("fault_report: outcomes.") + name +
                         " missing or not a number");
                    outcomesOk = false;
                } else {
                    outcomeSum += v->asUint();
                }
            }
        }
    }

    std::size_t injectionCount = 0;
    if (const JsonValue* injections = member(doc, "injections", "fault_report")) {
        if (!injections->isArray()) {
            fail("fault_report: injections is not an array");
        } else {
            injectionCount = injections->asArray().size();
            std::size_t index = 0;
            for (const JsonValue& record : injections->asArray()) {
                const std::string context =
                    "fault_report: injections[" + std::to_string(index) + "]";
                if (!record.isObject()) {
                    fail(context + " is not an object");
                    ++index;
                    continue;
                }
                try {
                    (void)injectionRecordFromJson(record);
                } catch (const EnsureError& e) {
                    fail(context + ": " + e.what());
                }
                ++index;
            }
            // Cross-field consistency: the histogram must account for every
            // injected run, no more, no less.
            if (outcomesOk && outcomeSum != injectionCount)
                fail("fault_report: outcome counts do not sum to the number "
                     "of injections");
        }
    }

    if (const JsonValue* failed = member(doc, "failed_jobs", "fault_report")) {
        if (!failed->isArray()) {
            fail("fault_report: failed_jobs is not an array");
        } else {
            std::size_t index = 0;
            for (const JsonValue& record : failed->asArray()) {
                const std::string context =
                    "fault_report: failed_jobs[" + std::to_string(index) + "]";
                if (!record.isObject()) {
                    fail(context + " is not an object");
                    ++index;
                    continue;
                }
                for (const char* key : {"index", "cycle", "attempts"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isNumber())
                        fail(context + "." + key + " missing or not a number");
                }
                const JsonValue* error = record.find("error");
                if (error == nullptr || !error->isString())
                    fail(context + ".error missing or not a string");
                if (const JsonValue* site = record.find("site")) {
                    try {
                        (void)faultSiteFromJson(*site);
                    } catch (const EnsureError& e) {
                        fail(context + ".site: " + e.what());
                    }
                } else {
                    fail(context + ": missing required member 'site'");
                }
                ++index;
            }
            // Classified + quarantined must cover the configured campaign:
            // reports are only written for complete (possibly degraded)
            // campaigns, never for interrupted ones.
            if (campaignOk &&
                injectionCount + failed->asArray().size() !=
                    campaignInjections)
                fail("fault_report: injections + failed_jobs do not cover "
                     "campaign.injections");
        }
    }
    return out;
}

}  // namespace asbr

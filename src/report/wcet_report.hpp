// asbr.wcet_report — the schema-versioned, machine-readable result of one
// static-timing run (docs/wcet.md).
//
// Serializes the WCET engine's view of a program: the declarative pipeline
// cost model, every natural loop with its iteration bound and bound source,
// the per-branch static misprediction-cost ranking, the baseline and folded
// cycle bounds, and the measured pipeline cycles both bounds are checked
// against.  Every value is an integer, string or bool — no floating point —
// so the report for a fixed (program, seed, samples, threshold) tuple is
// byte-identical across runs and thread counts, and ci/verify-workloads.sh
// can whole-file-diff committed goldens.
#pragma once

#include <set>
#include <string>

#include "analysis/timing/wcet.hpp"
#include "report/report.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kWcetReportSchema = "asbr.wcet_report";

/// Identity of the analyzed program and the measured runs.
struct WcetReportMeta {
    std::string benchmark;        ///< workload token ("adpcm-enc") or file
    std::uint32_t threshold = 3;  ///< fold-distance threshold used
    bool scheduled = true;        ///< condition-scheduling pass enabled
    std::uint64_t seed = 0;       ///< workload input seed
    std::uint64_t samples = 0;    ///< workload input length
};

/// Serialize one static-timing run (schema `asbr.wcet_report`, version 1).
/// `baseline` is compute({}) and `folded` compute(foldedPcs); the measured
/// cycle counts come from pipeline runs without and with the fold set
/// active.  The branch ranking is the *baseline* one (the selection input),
/// with `folded` flags marking membership in `foldedPcs`.
[[nodiscard]] JsonValue wcetReportJson(
    const WcetReportMeta& meta, const analysis::timing::WcetEngine& engine,
    const analysis::timing::WcetResult& baseline,
    const analysis::timing::WcetResult& folded,
    const std::set<std::uint32_t>& foldedPcs,
    std::uint64_t measuredBaselineCycles, std::uint64_t measuredFoldedCycles);

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateWcetReportJson(const JsonValue& doc);

}  // namespace asbr

#include "report/sampling_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace asbr {

namespace {

/// Scale a ratio to integer parts-per-million — the single rounding point
/// that keeps the report free of floating-point values.
std::uint64_t toMicro(double ratio) {
    return static_cast<std::uint64_t>(std::llround(ratio * 1e6));
}

}  // namespace

JsonValue samplingReportJson(const RunMeta& meta,
                             const SamplingConfig& sampling,
                             const SampledResult& result,
                             const std::optional<SamplingReference>& reference) {
    JsonObject doc;
    doc.emplace_back("schema", kSamplingReportSchema);
    doc.emplace_back("version", kReportSchemaVersion);

    JsonObject m;
    m.emplace_back("benchmark", meta.benchmark);
    m.emplace_back("predictor", meta.predictor);
    m.emplace_back("seed", meta.seed);
    m.emplace_back("samples", meta.samples);
    m.emplace_back("scheduled", meta.scheduled);
    m.emplace_back("asbr", meta.asbr);
    if (meta.asbr) {
        m.emplace_back("bit_entries", meta.bitEntries);
        m.emplace_back("update_stage", meta.updateStage);
    }
    doc.emplace_back("meta", JsonValue(std::move(m)));

    JsonObject s;
    s.emplace_back("warmup", sampling.warmup);
    s.emplace_back("measure", sampling.measure);
    s.emplace_back("skip", sampling.skip);
    doc.emplace_back("sampling", JsonValue(std::move(s)));

    JsonObject totals;
    totals.emplace_back("windows",
                        static_cast<std::uint64_t>(result.windows.size()));
    totals.emplace_back("measured_instructions", result.measuredInstructions);
    totals.emplace_back("measured_cycles", result.measuredCycles);
    totals.emplace_back("fast_forward_instructions",
                        result.fastForwardInstructions);
    totals.emplace_back("total_instructions", result.totalInstructions);
    totals.emplace_back("cond_branches", result.stats.condBranches);
    totals.emplace_back("folded_branches", result.stats.foldedBranches);
    totals.emplace_back("exited", result.exited);
    totals.emplace_back("exit_code",
                        static_cast<std::int64_t>(result.exitCode));
    doc.emplace_back("totals", JsonValue(std::move(totals)));

    // The documented error bound: the CI95 half-width of the window-mean
    // CPI, floored at 1% of the estimate (the floor guards the bound when
    // windows are few or eerily uniform — see docs/simulation.md).
    const std::uint64_t cpiMicro = toMicro(result.cpiEstimate);
    const std::uint64_t ci95Micro = toMicro(result.ci95HalfWidth);
    const std::uint64_t boundMicro = std::max(ci95Micro, cpiMicro / 100);
    JsonObject estimate;
    estimate.emplace_back("cpi_micro", cpiMicro);
    estimate.emplace_back("ci95_half_width_micro", ci95Micro);
    estimate.emplace_back("error_bound_micro", boundMicro);
    estimate.emplace_back("fold_rate_micro", toMicro(result.stats.foldRate()));
    doc.emplace_back("estimate", JsonValue(std::move(estimate)));

    if (reference) {
        const double refCpi =
            reference->committed == 0
                ? 0.0
                : static_cast<double>(reference->cycles) /
                      static_cast<double>(reference->committed);
        const std::uint64_t refCpiMicro = toMicro(refCpi);
        const std::uint64_t absErrorMicro = refCpiMicro > cpiMicro
                                                ? refCpiMicro - cpiMicro
                                                : cpiMicro - refCpiMicro;
        JsonObject ref;
        ref.emplace_back("cycles", reference->cycles);
        ref.emplace_back("committed", reference->committed);
        ref.emplace_back("cpi_micro", refCpiMicro);
        ref.emplace_back("abs_error_micro", absErrorMicro);
        ref.emplace_back("within_bound", absErrorMicro <= boundMicro);
        doc.emplace_back("reference", JsonValue(std::move(ref)));
    }

    JsonArray windows;
    for (const SampleWindow& w : result.windows) {
        JsonObject record;
        record.emplace_back("start_instruction", w.startInstruction);
        record.emplace_back("instructions", w.instructions);
        record.emplace_back("cycles", w.cycles);
        windows.push_back(JsonValue(std::move(record)));
    }
    doc.emplace_back("windows", JsonValue(std::move(windows)));
    return JsonValue(std::move(doc));
}

ReportValidation validateSamplingReportJson(const JsonValue& doc) {
    ReportValidation out;
    const auto fail = [&out](std::string message) {
        out.errors.push_back(std::move(message));
    };
    if (!doc.isObject()) {
        fail("sampling_report: not a JSON object");
        return out;
    }
    const auto member = [&](const JsonValue& obj, const char* key,
                            const char* context) -> const JsonValue* {
        const JsonValue* v = obj.find(key);
        if (v == nullptr)
            fail(std::string(context) + ": missing required member '" + key +
                 "'");
        return v;
    };

    if (const JsonValue* schema = member(doc, "schema", "sampling_report"))
        if (!schema->isString() || schema->asString() != kSamplingReportSchema)
            fail(std::string("sampling_report: schema is not '") +
                 kSamplingReportSchema + "'");
    if (const JsonValue* version = member(doc, "version", "sampling_report"))
        if (!version->isNumber() || version->asUint() != kReportSchemaVersion)
            fail("sampling_report: unsupported schema version");

    if (const JsonValue* meta = member(doc, "meta", "sampling_report")) {
        if (!meta->isObject()) {
            fail("sampling_report: meta is not an object");
        } else {
            for (const char* key : {"benchmark", "predictor"}) {
                const JsonValue* v = meta->find(key);
                if (v == nullptr || !v->isString())
                    fail(std::string("sampling_report: meta.") + key +
                         " missing or not a string");
            }
            for (const char* key : {"seed", "samples"}) {
                const JsonValue* v = meta->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("sampling_report: meta.") + key +
                         " missing or not a number");
            }
            for (const char* key : {"scheduled", "asbr"}) {
                const JsonValue* v = meta->find(key);
                if (v == nullptr || !v->isBool())
                    fail(std::string("sampling_report: meta.") + key +
                         " missing or not a bool");
            }
        }
    }

    std::uint64_t measure = 0;
    if (const JsonValue* sampling = member(doc, "sampling", "sampling_report")) {
        if (!sampling->isObject()) {
            fail("sampling_report: sampling is not an object");
        } else {
            for (const char* key : {"warmup", "measure", "skip"}) {
                const JsonValue* v = sampling->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("sampling_report: sampling.") + key +
                         " missing or not a number");
                else if (std::string(key) == "measure")
                    measure = v->asUint();
            }
            if (measure == 0)
                fail("sampling_report: sampling.measure must be nonzero");
        }
    }

    std::uint64_t totalWindows = 0, measuredInstructions = 0,
                  measuredCycles = 0;
    if (const JsonValue* totals = member(doc, "totals", "sampling_report")) {
        if (!totals->isObject()) {
            fail("sampling_report: totals is not an object");
        } else {
            for (const char* key :
                 {"windows", "measured_instructions", "measured_cycles",
                  "fast_forward_instructions", "total_instructions",
                  "cond_branches", "folded_branches", "exit_code"}) {
                const JsonValue* v = totals->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("sampling_report: totals.") + key +
                         " missing or not a number");
            }
            const JsonValue* exited = totals->find("exited");
            if (exited == nullptr || !exited->isBool())
                fail("sampling_report: totals.exited missing or not a bool");
            if (const JsonValue* v = totals->find("windows"))
                if (v->isNumber()) totalWindows = v->asUint();
            if (const JsonValue* v = totals->find("measured_instructions"))
                if (v->isNumber()) measuredInstructions = v->asUint();
            if (const JsonValue* v = totals->find("measured_cycles"))
                if (v->isNumber()) measuredCycles = v->asUint();
        }
    }

    std::uint64_t cpiMicro = 0, ci95Micro = 0, boundMicro = 0;
    if (const JsonValue* estimate = member(doc, "estimate", "sampling_report")) {
        if (!estimate->isObject()) {
            fail("sampling_report: estimate is not an object");
        } else {
            for (const char* key :
                 {"cpi_micro", "ci95_half_width_micro", "error_bound_micro",
                  "fold_rate_micro"}) {
                const JsonValue* v = estimate->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("sampling_report: estimate.") + key +
                         " missing or not a number");
            }
            if (const JsonValue* v = estimate->find("cpi_micro"))
                if (v->isNumber()) cpiMicro = v->asUint();
            if (const JsonValue* v = estimate->find("ci95_half_width_micro"))
                if (v->isNumber()) ci95Micro = v->asUint();
            if (const JsonValue* v = estimate->find("error_bound_micro"))
                if (v->isNumber()) boundMicro = v->asUint();
            // The bound is a pure integer function of the other two fields.
            if (boundMicro != std::max(ci95Micro, cpiMicro / 100))
                fail("sampling_report: estimate.error_bound_micro is not "
                     "max(ci95_half_width_micro, cpi_micro/100)");
        }
    }

    if (const JsonValue* ref = doc.find("reference")) {
        if (!ref->isObject()) {
            fail("sampling_report: reference is not an object");
        } else {
            for (const char* key :
                 {"cycles", "committed", "cpi_micro", "abs_error_micro"}) {
                const JsonValue* v = ref->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("sampling_report: reference.") + key +
                         " missing or not a number");
            }
            const JsonValue* within = ref->find("within_bound");
            if (within == nullptr || !within->isBool())
                fail("sampling_report: reference.within_bound missing or not "
                     "a bool");
            const JsonValue* refCpi = ref->find("cpi_micro");
            const JsonValue* absError = ref->find("abs_error_micro");
            if (refCpi != nullptr && refCpi->isNumber() && absError != nullptr &&
                absError->isNumber()) {
                const std::uint64_t expected =
                    refCpi->asUint() > cpiMicro ? refCpi->asUint() - cpiMicro
                                                : cpiMicro - refCpi->asUint();
                if (absError->asUint() != expected)
                    fail("sampling_report: reference.abs_error_micro "
                         "contradicts the CPI fields");
                if (within != nullptr && within->isBool() &&
                    within->asBool() != (absError->asUint() <= boundMicro))
                    fail("sampling_report: reference.within_bound contradicts "
                         "abs_error/error_bound");
            }
        }
    }

    if (const JsonValue* windows = member(doc, "windows", "sampling_report")) {
        if (!windows->isArray()) {
            fail("sampling_report: windows is not an array");
        } else {
            std::uint64_t sumInstructions = 0, sumCycles = 0;
            std::uint64_t prevStart = 0;
            std::size_t index = 0;
            for (const JsonValue& record : windows->asArray()) {
                const std::string context =
                    "sampling_report: windows[" + std::to_string(index) + "]";
                if (!record.isObject()) {
                    fail(context + " is not an object");
                    ++index;
                    continue;
                }
                for (const char* key :
                     {"start_instruction", "instructions", "cycles"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isNumber())
                        fail(context + "." + key + " missing or not a number");
                }
                const JsonValue* start = record.find("start_instruction");
                if (start != nullptr && start->isNumber()) {
                    if (index > 0 && start->asUint() <= prevStart)
                        fail(context +
                             ".start_instruction is not strictly increasing");
                    prevStart = start->asUint();
                }
                if (const JsonValue* v = record.find("instructions"))
                    if (v->isNumber()) sumInstructions += v->asUint();
                if (const JsonValue* v = record.find("cycles"))
                    if (v->isNumber()) sumCycles += v->asUint();
                ++index;
            }
            if (index != totalWindows)
                fail("sampling_report: totals.windows does not match the "
                     "windows array");
            if (sumInstructions != measuredInstructions)
                fail("sampling_report: totals.measured_instructions does not "
                     "match the windows array");
            if (sumCycles != measuredCycles)
                fail("sampling_report: totals.measured_cycles does not match "
                     "the windows array");
        }
    }
    return out;
}

}  // namespace asbr

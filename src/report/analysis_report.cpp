#include "report/analysis_report.hpp"

#include "isa/disasm.hpp"

namespace asbr {

namespace {

using analysis::BranchDirection;
using analysis::FoldLegality;
using analysis::StaticLint;

bool knownDirectionName(const std::string& name) {
    for (const BranchDirection d :
         {BranchDirection::kAlwaysTaken, BranchDirection::kNeverTaken,
          BranchDirection::kDynamic, BranchDirection::kUnreachable})
        if (name == analysis::branchDirectionName(d)) return true;
    return false;
}

bool knownLegalityName(const std::string& name) {
    for (const FoldLegality v :
         {FoldLegality::kProvablySafe, FoldLegality::kSafeOnProfiledPaths,
          FoldLegality::kIllegal})
        if (name == analysis::foldLegalityName(v)) return true;
    return false;
}

bool knownLintKindName(const std::string& name) {
    for (const StaticLint::Kind k :
         {StaticLint::Kind::kUnreachableBlock, StaticLint::Kind::kDeadBranchArm,
          StaticLint::Kind::kRefinementWin, StaticLint::Kind::kUnboundedLoop,
          StaticLint::Kind::kDanglingLoopBound, StaticLint::Kind::kDeadStore,
          StaticLint::Kind::kNeverWrittenRead,
          StaticLint::Kind::kCorrelatedBranch})
        if (name == analysis::staticLintKindName(k)) return true;
    return false;
}

}  // namespace

JsonValue analysisReportJson(const AnalysisReportMeta& meta,
                             const analysis::FoldLegalityVerifier& verifier,
                             const analysis::VerifyConfig& config) {
    const analysis::Cfg& cfg = verifier.cfg();
    const analysis::LoopForest& loops = verifier.loops();
    const analysis::ValueAnalysis& va = verifier.values();
    const Program& program = *cfg.program;

    JsonObject doc;
    doc.emplace_back("schema", kAnalysisReportSchema);
    doc.emplace_back("version", kReportSchemaVersion);

    JsonObject m;
    m.emplace_back("benchmark", meta.benchmark);
    m.emplace_back("threshold", static_cast<std::uint64_t>(meta.threshold));
    m.emplace_back("scheduled", meta.scheduled);
    doc.emplace_back("meta", JsonValue(std::move(m)));

    std::uint64_t edges = 0;
    for (const analysis::BasicBlock& b : cfg.blocks) edges += b.succs.size();
    JsonObject shape;
    shape.emplace_back("instructions",
                       static_cast<std::uint64_t>(cfg.numInstructions()));
    shape.emplace_back("blocks", static_cast<std::uint64_t>(cfg.blocks.size()));
    shape.emplace_back("edges", edges);
    shape.emplace_back("call_sites",
                       static_cast<std::uint64_t>(cfg.callSites.size()));
    shape.emplace_back("function_entries",
                       static_cast<std::uint64_t>(cfg.functionEntries.size()));
    shape.emplace_back("unresolved_indirect", cfg.hasUnresolvedIndirect);
    doc.emplace_back("cfg", JsonValue(std::move(shape)));

    std::uint64_t maxDepth = 0;
    for (const analysis::Loop& loop : loops.loops)
        maxDepth = std::max<std::uint64_t>(maxDepth, loop.depth);
    std::uint64_t wideningPoints = 0;
    for (const char w : loops.wideningPoint) wideningPoints += w != 0 ? 1 : 0;
    JsonObject loopsJson;
    loopsJson.emplace_back("count",
                           static_cast<std::uint64_t>(loops.loops.size()));
    loopsJson.emplace_back("max_depth", maxDepth);
    loopsJson.emplace_back("widening_points", wideningPoints);
    doc.emplace_back("loops", JsonValue(std::move(loopsJson)));

    JsonObject fixpoint;
    fixpoint.emplace_back("converged", va.converged);
    fixpoint.emplace_back("iterations",
                          static_cast<std::uint64_t>(va.iterations));
    doc.emplace_back("fixpoint", JsonValue(std::move(fixpoint)));

    // One record per conditional branch, in text order.  Purely static:
    // verdictFor runs without dynamic evidence, so legality here is
    // ProvablySafe or Illegal (SafeOnProfiledPaths needs a profile).
    std::uint64_t always = 0, never = 0, dynamic = 0, unreachable = 0;
    std::uint64_t safe = 0, illegal = 0, refinementWins = 0;
    JsonArray branches;
    for (analysis::InstrIndex i = 0; i < cfg.numInstructions(); ++i) {
        if (!isCondBranch(program.code[i].op)) continue;
        const analysis::BranchVerdict v =
            verifier.verdictFor(cfg.pcOf(i), config, nullptr);
        switch (v.direction) {
            case BranchDirection::kAlwaysTaken: ++always; break;
            case BranchDirection::kNeverTaken: ++never; break;
            case BranchDirection::kDynamic: ++dynamic; break;
            case BranchDirection::kUnreachable: ++unreachable; break;
        }
        if (v.verdict == FoldLegality::kIllegal) ++illegal; else ++safe;
        if (v.unrefinedMinDistance < config.threshold &&
            v.staticMinDistance >= config.threshold)
            ++refinementWins;
        JsonObject b;
        b.emplace_back("pc", static_cast<std::uint64_t>(v.pc));
        b.emplace_back("line", v.sourceLine);
        b.emplace_back("instr", disassemble(program.code[i]));
        b.emplace_back("direction", analysis::branchDirectionName(v.direction));
        b.emplace_back("legality", analysis::foldLegalityName(v.verdict));
        b.emplace_back("static_min_distance",
                       static_cast<std::uint64_t>(v.staticMinDistance));
        b.emplace_back("unrefined_min_distance",
                       static_cast<std::uint64_t>(v.unrefinedMinDistance));
        b.emplace_back("cond_value", va.condAtBranch[i].str());
        b.emplace_back("reachable", v.reachable);
        b.emplace_back("extractable", v.extractable);
        branches.push_back(JsonValue(std::move(b)));
    }

    JsonArray lints;
    for (const StaticLint& lint : verifier.lints(config)) {
        JsonObject l;
        l.emplace_back("kind", analysis::staticLintKindName(lint.kind));
        l.emplace_back("pc", static_cast<std::uint64_t>(lint.pc));
        l.emplace_back("line", lint.sourceLine);
        l.emplace_back("message", lint.message);
        lints.push_back(JsonValue(std::move(l)));
    }

    JsonObject summary;
    summary.emplace_back("branches",
                         static_cast<std::uint64_t>(branches.size()));
    summary.emplace_back("always_taken", always);
    summary.emplace_back("never_taken", never);
    summary.emplace_back("dynamic", dynamic);
    summary.emplace_back("unreachable", unreachable);
    summary.emplace_back("statically_decided", always + never);
    summary.emplace_back("provably_safe", safe);
    summary.emplace_back("illegal", illegal);
    summary.emplace_back("refinement_wins", refinementWins);
    summary.emplace_back("lints", static_cast<std::uint64_t>(lints.size()));
    doc.emplace_back("summary", JsonValue(std::move(summary)));

    doc.emplace_back("branches", JsonValue(std::move(branches)));
    doc.emplace_back("lints", JsonValue(std::move(lints)));
    return JsonValue(std::move(doc));
}

ReportValidation validateAnalysisReportJson(const JsonValue& doc) {
    ReportValidation out;
    const auto fail = [&out](std::string message) {
        out.errors.push_back(std::move(message));
    };
    if (!doc.isObject()) {
        fail("analysis_report: not a JSON object");
        return out;
    }
    const auto member = [&](const JsonValue& obj, const char* key,
                            const char* context) -> const JsonValue* {
        const JsonValue* v = obj.find(key);
        if (v == nullptr)
            fail(std::string(context) + ": missing required member '" + key +
                 "'");
        return v;
    };

    if (const JsonValue* schema = member(doc, "schema", "analysis_report"))
        if (!schema->isString() || schema->asString() != kAnalysisReportSchema)
            fail(std::string("analysis_report: schema is not '") +
                 kAnalysisReportSchema + "'");
    if (const JsonValue* version = member(doc, "version", "analysis_report"))
        if (!version->isNumber() || version->asUint() != kReportSchemaVersion)
            fail("analysis_report: unsupported schema version");

    if (const JsonValue* meta = member(doc, "meta", "analysis_report")) {
        if (!meta->isObject()) {
            fail("analysis_report: meta is not an object");
        } else {
            const JsonValue* bench = meta->find("benchmark");
            if (bench == nullptr || !bench->isString())
                fail("analysis_report: meta.benchmark missing or not a string");
            const JsonValue* threshold = meta->find("threshold");
            if (threshold == nullptr || !threshold->isNumber() ||
                threshold->asUint() < 2 || threshold->asUint() > 4)
                fail("analysis_report: meta.threshold missing or not 2..4");
            const JsonValue* scheduled = meta->find("scheduled");
            if (scheduled == nullptr || !scheduled->isBool())
                fail("analysis_report: meta.scheduled missing or not a bool");
        }
    }

    if (const JsonValue* shape = member(doc, "cfg", "analysis_report")) {
        if (!shape->isObject()) {
            fail("analysis_report: cfg is not an object");
        } else {
            for (const char* key : {"instructions", "blocks", "edges",
                                    "call_sites", "function_entries"}) {
                const JsonValue* v = shape->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("analysis_report: cfg.") + key +
                         " missing or not a number");
            }
            const JsonValue* ind = shape->find("unresolved_indirect");
            if (ind == nullptr || !ind->isBool())
                fail("analysis_report: cfg.unresolved_indirect missing or not "
                     "a bool");
        }
    }

    if (const JsonValue* loops = member(doc, "loops", "analysis_report")) {
        if (!loops->isObject()) {
            fail("analysis_report: loops is not an object");
        } else {
            for (const char* key : {"count", "max_depth", "widening_points"}) {
                const JsonValue* v = loops->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("analysis_report: loops.") + key +
                         " missing or not a number");
            }
        }
    }

    if (const JsonValue* fixpoint = member(doc, "fixpoint", "analysis_report")) {
        if (!fixpoint->isObject()) {
            fail("analysis_report: fixpoint is not an object");
        } else {
            const JsonValue* converged = fixpoint->find("converged");
            if (converged == nullptr || !converged->isBool())
                fail("analysis_report: fixpoint.converged missing or not a "
                     "bool");
            const JsonValue* iterations = fixpoint->find("iterations");
            if (iterations == nullptr || !iterations->isNumber())
                fail("analysis_report: fixpoint.iterations missing or not a "
                     "number");
        }
    }

    // Direction histogram recomputed from the branch records, then checked
    // against the summary block (cross-field consistency).
    std::uint64_t always = 0, never = 0;
    std::size_t branchCount = 0;
    if (const JsonValue* branches = member(doc, "branches", "analysis_report")) {
        if (!branches->isArray()) {
            fail("analysis_report: branches is not an array");
        } else {
            branchCount = branches->asArray().size();
            std::size_t index = 0;
            for (const JsonValue& record : branches->asArray()) {
                const std::string context =
                    "analysis_report: branches[" + std::to_string(index) + "]";
                ++index;
                if (!record.isObject()) {
                    fail(context + " is not an object");
                    continue;
                }
                for (const char* key :
                     {"pc", "line", "static_min_distance",
                      "unrefined_min_distance"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isNumber())
                        fail(context + "." + key + " missing or not a number");
                }
                for (const char* key : {"instr", "cond_value"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isString())
                        fail(context + "." + key + " missing or not a string");
                }
                for (const char* key : {"reachable", "extractable"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isBool())
                        fail(context + "." + key + " missing or not a bool");
                }
                const JsonValue* direction = record.find("direction");
                if (direction == nullptr || !direction->isString() ||
                    !knownDirectionName(direction->asString())) {
                    fail(context + ".direction missing or not a known label");
                } else if (direction->asString() ==
                           analysis::branchDirectionName(
                               BranchDirection::kAlwaysTaken)) {
                    ++always;
                } else if (direction->asString() ==
                           analysis::branchDirectionName(
                               BranchDirection::kNeverTaken)) {
                    ++never;
                }
                const JsonValue* legality = record.find("legality");
                if (legality == nullptr || !legality->isString() ||
                    !knownLegalityName(legality->asString()))
                    fail(context + ".legality missing or not a known label");
            }
        }
    }

    std::size_t lintCount = 0;
    if (const JsonValue* lints = member(doc, "lints", "analysis_report")) {
        if (!lints->isArray()) {
            fail("analysis_report: lints is not an array");
        } else {
            lintCount = lints->asArray().size();
            std::size_t index = 0;
            for (const JsonValue& record : lints->asArray()) {
                const std::string context =
                    "analysis_report: lints[" + std::to_string(index) + "]";
                ++index;
                if (!record.isObject()) {
                    fail(context + " is not an object");
                    continue;
                }
                const JsonValue* kind = record.find("kind");
                if (kind == nullptr || !kind->isString() ||
                    !knownLintKindName(kind->asString()))
                    fail(context + ".kind missing or not a known label");
                for (const char* key : {"pc", "line"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isNumber())
                        fail(context + "." + key + " missing or not a number");
                }
                const JsonValue* message = record.find("message");
                if (message == nullptr || !message->isString())
                    fail(context + ".message missing or not a string");
            }
        }
    }

    if (const JsonValue* summary = member(doc, "summary", "analysis_report")) {
        if (!summary->isObject()) {
            fail("analysis_report: summary is not an object");
        } else {
            for (const char* key :
                 {"branches", "always_taken", "never_taken", "dynamic",
                  "unreachable", "statically_decided", "provably_safe",
                  "illegal", "refinement_wins", "lints"}) {
                const JsonValue* v = summary->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("analysis_report: summary.") + key +
                         " missing or not a number");
            }
            const JsonValue* branches = summary->find("branches");
            if (branches != nullptr && branches->isNumber() &&
                branches->asUint() != branchCount)
                fail("analysis_report: summary.branches does not match the "
                     "branches array");
            const JsonValue* lints = summary->find("lints");
            if (lints != nullptr && lints->isNumber() &&
                lints->asUint() != lintCount)
                fail("analysis_report: summary.lints does not match the lints "
                     "array");
            const JsonValue* decided = summary->find("statically_decided");
            if (decided != nullptr && decided->isNumber() &&
                decided->asUint() != always + never)
                fail("analysis_report: summary.statically_decided does not "
                     "match the direction histogram");
        }
    }
    return out;
}

}  // namespace asbr

#include "report/sweep_report.hpp"

namespace asbr {

JsonValue sweepReportJson(const std::string& generator, JsonValue options,
                          const SweepEngineStats& engine,
                          const std::vector<SimReport>& runs) {
    JsonObject doc;
    doc.emplace_back("schema", kSweepReportSchema);
    doc.emplace_back("version", kReportSchemaVersion);
    doc.emplace_back("generator", generator);
    doc.emplace_back("options", std::move(options));
    JsonObject engineJson;
    engineJson.emplace_back("jobs_run", engine.jobsRun);
    engineJson.emplace_back("cache_hits", engine.cacheHits);
    engineJson.emplace_back("worker_busy_cycles", engine.workerBusyCycles);
    doc.emplace_back("engine", JsonValue(std::move(engineJson)));
    JsonArray runArray;
    runArray.reserve(runs.size());
    for (const SimReport& run : runs) runArray.push_back(simReportJson(run));
    doc.emplace_back("runs", JsonValue(std::move(runArray)));
    return JsonValue(std::move(doc));
}

ReportValidation validateSweepReportJson(const JsonValue& doc) {
    ReportValidation out;
    const auto fail = [&out](std::string message) {
        out.errors.push_back(std::move(message));
    };
    if (!doc.isObject()) {
        fail("sweep_report: not a JSON object");
        return out;
    }
    const JsonValue* schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != kSweepReportSchema)
        fail(std::string("sweep_report: schema is not '") + kSweepReportSchema +
             "'");
    const JsonValue* version = doc.find("version");
    if (version == nullptr || !version->isNumber() ||
        version->asUint() != kReportSchemaVersion)
        fail("sweep_report: unsupported schema version");
    const JsonValue* generator = doc.find("generator");
    if (generator == nullptr || !generator->isString())
        fail("sweep_report: generator missing or not a string");
    const JsonValue* engine = doc.find("engine");
    if (engine == nullptr || !engine->isObject()) {
        fail("sweep_report: engine missing or not an object");
    } else {
        for (const char* key :
             {"jobs_run", "cache_hits", "worker_busy_cycles"}) {
            const JsonValue* v = engine->find(key);
            if (v == nullptr || !v->isNumber())
                fail(std::string("sweep_report: engine.") + key +
                     " missing or not a number");
        }
    }
    const JsonValue* runs = doc.find("runs");
    if (runs == nullptr || !runs->isArray() || runs->asArray().empty()) {
        fail("sweep_report: runs missing, not an array, or empty");
    } else {
        std::size_t index = 0;
        for (const JsonValue& run : runs->asArray()) {
            const ReportValidation inner = validateSimReportJson(run);
            for (const std::string& error : inner.errors)
                fail("runs[" + std::to_string(index) + "] " + error);
            ++index;
        }
    }
    return out;
}

}  // namespace asbr

#include "report/sweep_report.hpp"

namespace asbr {

JsonValue sweepReportJson(const std::string& generator, JsonValue options,
                          const std::vector<SweepCell>& cells) {
    JsonObject doc;
    doc.emplace_back("schema", kSweepReportSchema);
    doc.emplace_back("version", kSweepReportVersion);
    doc.emplace_back("generator", generator);
    doc.emplace_back("options", std::move(options));

    JsonArray cellArray;
    cellArray.reserve(cells.size());
    JsonArray failedArray;
    for (const SweepCell& cell : cells) {
        JsonObject c;
        c.emplace_back("job", cell.job);
        c.emplace_back("status", cell.status);
        c.emplace_back("attempts", cell.attempts);
        if (cell.status == "ok") {
            c.emplace_back("report", cell.report);
        } else {
            c.emplace_back("error", cell.error);
            JsonObject f;
            f.emplace_back("job", cell.job);
            f.emplace_back("attempts", cell.attempts);
            f.emplace_back("error", cell.error);
            failedArray.push_back(JsonValue(std::move(f)));
        }
        cellArray.push_back(JsonValue(std::move(c)));
    }
    doc.emplace_back("cells", JsonValue(std::move(cellArray)));
    doc.emplace_back("failed_jobs", JsonValue(std::move(failedArray)));
    return JsonValue(std::move(doc));
}

ReportValidation validateSweepReportJson(const JsonValue& doc) {
    ReportValidation out;
    const auto fail = [&out](std::string message) {
        out.errors.push_back(std::move(message));
    };
    if (!doc.isObject()) {
        fail("sweep_report: not a JSON object");
        return out;
    }
    const JsonValue* schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != kSweepReportSchema)
        fail(std::string("sweep_report: schema is not '") + kSweepReportSchema +
             "'");
    const JsonValue* version = doc.find("version");
    if (version == nullptr || !version->isNumber() ||
        version->asUint() != kSweepReportVersion)
        fail("sweep_report: unsupported schema version (want " +
             std::to_string(kSweepReportVersion) + ")");
    const JsonValue* generator = doc.find("generator");
    if (generator == nullptr || !generator->isString())
        fail("sweep_report: generator missing or not a string");

    std::size_t failedCells = 0;
    const JsonValue* cells = doc.find("cells");
    if (cells == nullptr || !cells->isArray() || cells->asArray().empty()) {
        fail("sweep_report: cells missing, not an array, or empty");
    } else {
        std::size_t index = 0;
        for (const JsonValue& cell : cells->asArray()) {
            const std::string context =
                "cells[" + std::to_string(index) + "]";
            if (!cell.isObject()) {
                fail("sweep_report: " + context + " is not an object");
                ++index;
                continue;
            }
            const JsonValue* job = cell.find("job");
            if (job == nullptr || !job->isString())
                fail("sweep_report: " + context +
                     ".job missing or not a string");
            const JsonValue* attempts = cell.find("attempts");
            if (attempts == nullptr || !attempts->isNumber())
                fail("sweep_report: " + context +
                     ".attempts missing or not a number");
            const JsonValue* status = cell.find("status");
            if (status == nullptr || !status->isString() ||
                (status->asString() != "ok" &&
                 status->asString() != "failed")) {
                fail("sweep_report: " + context +
                     ".status missing or not 'ok'/'failed'");
            } else if (status->asString() == "ok") {
                const JsonValue* report = cell.find("report");
                if (report == nullptr) {
                    fail("sweep_report: " + context +
                         " has status ok but no report");
                } else {
                    const ReportValidation inner =
                        validateSimReportJson(*report);
                    for (const std::string& error : inner.errors)
                        fail(context + ".report " + error);
                }
            } else {
                ++failedCells;
                const JsonValue* error = cell.find("error");
                if (error == nullptr || !error->isString())
                    fail("sweep_report: " + context +
                         " has status failed but no error string");
            }
            ++index;
        }
    }

    const JsonValue* failed = doc.find("failed_jobs");
    if (failed == nullptr || !failed->isArray()) {
        fail("sweep_report: failed_jobs missing or not an array");
    } else {
        std::size_t index = 0;
        for (const JsonValue& entry : failed->asArray()) {
            const std::string context =
                "failed_jobs[" + std::to_string(index) + "]";
            if (!entry.isObject()) {
                fail("sweep_report: " + context + " is not an object");
            } else {
                const JsonValue* job = entry.find("job");
                if (job == nullptr || !job->isString())
                    fail("sweep_report: " + context +
                         ".job missing or not a string");
                const JsonValue* error = entry.find("error");
                if (error == nullptr || !error->isString())
                    fail("sweep_report: " + context +
                         ".error missing or not a string");
                const JsonValue* attempts = entry.find("attempts");
                if (attempts == nullptr || !attempts->isNumber())
                    fail("sweep_report: " + context +
                         ".attempts missing or not a number");
            }
            ++index;
        }
        // Cross-field consistency: the summary must mirror the quarantined
        // cells exactly.
        if (cells != nullptr && cells->isArray() &&
            failed->asArray().size() != failedCells)
            fail("sweep_report: failed_jobs does not match the number of "
                 "failed cells");
    }
    return out;
}

}  // namespace asbr

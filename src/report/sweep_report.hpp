// asbr.sweep_report — the schema-versioned result of one asbr-sweep batch:
// a parameter-grid cross-product of simulation runs executed by the driver
// engine, plus the engine's own deterministic counters.
//
// Like the other report kinds, the document is produced through exactly one
// code path and validated by an executable schema checker.  Nothing in the
// document depends on thread count, scheduling or host time — the engine
// counters are deterministic functions of the submitted work — so the same
// sweep serializes byte-identically at --threads=1 and --threads=8 (the
// determinism tests diff whole files to prove it).
#pragma once

#include <string>
#include <vector>

#include "report/report.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kSweepReportSchema = "asbr.sweep_report";

/// Engine counters embedded in the document (mirrors driver::EngineStats;
/// report stays independent of the driver layer, which links against it).
struct SweepEngineStats {
    std::uint64_t jobsRun = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t workerBusyCycles = 0;
};

/// Serialize a finished sweep (schema `asbr.sweep_report`, version 1).
/// `generator` names the producing binary; `options` is free-form metadata
/// (the CLI options of the producing run).
[[nodiscard]] JsonValue sweepReportJson(const std::string& generator,
                                        JsonValue options,
                                        const SweepEngineStats& engine,
                                        const std::vector<SimReport>& runs);

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateSweepReportJson(const JsonValue& doc);

}  // namespace asbr

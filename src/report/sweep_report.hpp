// asbr.sweep_report — the schema-versioned result of one asbr-sweep batch:
// a parameter-grid cross-product of simulation runs executed by the driver
// engine, with an explicit per-cell status.
//
// Version 2 (docs/metrics.md, docs/robustness.md) restructured the document
// around durable execution:
//   * `runs` became `cells`: one object per grid point in submission order,
//     each carrying the engine job key, a `status` ("ok" | "failed"), the
//     attempt count, and either the embedded asbr.sim_report (`report`) or
//     the quarantine reason (`error`).
//   * a `failed_jobs` summary array lists the quarantined cells so graders
//     and CI can grep one place.
//   * the v1 `engine` counter block was dropped: cache hits and jobs-run
//     depend on how much work a resumed journal skipped, and the document
//     must stay byte-identical between a one-shot run and any kill/resume
//     sequence (engine counters still go to stderr).
//
// Like the other report kinds, the document is produced through exactly one
// code path and validated by an executable schema checker.  Nothing in the
// document depends on thread count, scheduling or host time, so the same
// sweep serializes byte-identically at --threads=1 and --threads=8 and
// across resume boundaries (the determinism tests diff whole files).
#pragma once

#include <string>
#include <vector>

#include "report/report.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kSweepReportSchema = "asbr.sweep_report";
/// Sweep documents version independently of the base kReportSchemaVersion:
/// v2 introduced cells/failed_jobs (PR 8) without touching other schemas.
inline constexpr std::uint64_t kSweepReportVersion = 2;

/// One grid point of a finished sweep (report-layer mirror of the driver's
/// CellOutcome; the report library stays independent of the driver layer).
struct SweepCell {
    std::string job;        ///< engine job key (stable, fs-safe)
    std::string status;     ///< "ok" | "failed"
    std::uint64_t attempts = 0;
    JsonValue report;       ///< embedded asbr.sim_report ("ok" cells)
    std::string error;      ///< quarantine reason ("failed" cells)
};

/// Serialize a finished sweep (schema `asbr.sweep_report`, version 2).
/// `generator` names the producing binary; `options` is free-form metadata
/// (the CLI options of the producing run).
[[nodiscard]] JsonValue sweepReportJson(const std::string& generator,
                                        JsonValue options,
                                        const std::vector<SweepCell>& cells);

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateSweepReportJson(const JsonValue& doc);

}  // namespace asbr

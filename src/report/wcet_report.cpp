#include "report/wcet_report.hpp"

namespace asbr {

namespace {

using analysis::timing::BoundSource;

bool knownBoundSourceName(const std::string& name) {
    for (const BoundSource s :
         {BoundSource::kAnnotation, BoundSource::kInferred,
          BoundSource::kProfile, BoundSource::kNone})
        if (name == analysis::timing::boundSourceName(s)) return true;
    return false;
}

JsonValue boundJson(const analysis::timing::WcetResult& result) {
    JsonObject b;
    b.emplace_back("bounded", result.bounded);
    b.emplace_back("cycles", result.cycles);
    b.emplace_back("reason", result.reason);
    return JsonValue(std::move(b));
}

}  // namespace

JsonValue wcetReportJson(const WcetReportMeta& meta,
                         const analysis::timing::WcetEngine& engine,
                         const analysis::timing::WcetResult& baseline,
                         const analysis::timing::WcetResult& folded,
                         const std::set<std::uint32_t>& foldedPcs,
                         std::uint64_t measuredBaselineCycles,
                         std::uint64_t measuredFoldedCycles) {
    JsonObject doc;
    doc.emplace_back("schema", kWcetReportSchema);
    doc.emplace_back("version", kReportSchemaVersion);

    JsonObject m;
    m.emplace_back("benchmark", meta.benchmark);
    m.emplace_back("threshold", static_cast<std::uint64_t>(meta.threshold));
    m.emplace_back("scheduled", meta.scheduled);
    m.emplace_back("seed", meta.seed);
    m.emplace_back("samples", meta.samples);
    doc.emplace_back("meta", JsonValue(std::move(m)));

    const analysis::timing::TimingCostModel& model = engine.model();
    JsonObject cost;
    cost.emplace_back("mul_stall", static_cast<std::uint64_t>(model.mulStall));
    cost.emplace_back("div_stall", static_cast<std::uint64_t>(model.divStall));
    cost.emplace_back("mispredict_penalty",
                      static_cast<std::uint64_t>(model.mispredictPenalty));
    cost.emplace_back("icache_miss_penalty",
                      static_cast<std::uint64_t>(model.icacheMissPenalty));
    cost.emplace_back("dcache_miss_penalty",
                      static_cast<std::uint64_t>(model.dcacheMissPenalty));
    cost.emplace_back("icache_line_bytes",
                      static_cast<std::uint64_t>(model.icacheLineBytes));
    cost.emplace_back("pipeline_fill_cycles",
                      static_cast<std::uint64_t>(model.pipelineFillCycles));
    doc.emplace_back("cost_model", JsonValue(std::move(cost)));

    std::uint64_t annotated = 0, inferred = 0, profiled = 0, unbounded = 0;
    JsonArray loops;
    for (const analysis::timing::LoopRecord& loop : engine.loops()) {
        switch (loop.bound.source) {
            case BoundSource::kAnnotation: ++annotated; break;
            case BoundSource::kInferred: ++inferred; break;
            case BoundSource::kProfile: ++profiled; break;
            case BoundSource::kNone: ++unbounded; break;
        }
        JsonObject l;
        l.emplace_back("head_pc", static_cast<std::uint64_t>(loop.headPc));
        l.emplace_back("line", loop.sourceLine);
        l.emplace_back("depth", static_cast<std::uint64_t>(loop.depth));
        l.emplace_back("bound", loop.bound.iterations);
        l.emplace_back("source",
                       analysis::timing::boundSourceName(loop.bound.source));
        l.emplace_back("bounded", loop.bound.bounded());
        loops.push_back(JsonValue(std::move(l)));
    }

    std::uint64_t foldedBranches = 0;
    JsonArray branches;
    for (const analysis::timing::BranchCostRecord& r : baseline.branches) {
        const bool isFolded = foldedPcs.count(r.pc) != 0;
        foldedBranches += isFolded ? 1 : 0;
        JsonObject b;
        b.emplace_back("pc", static_cast<std::uint64_t>(r.pc));
        b.emplace_back("line", r.sourceLine);
        b.emplace_back("exec_bound", r.execBound);
        b.emplace_back("unit_cost", r.unitCost);
        b.emplace_back("total_cost", r.totalCost);
        b.emplace_back("folded", isFolded);
        branches.push_back(JsonValue(std::move(b)));
    }

    JsonObject bounds;
    bounds.emplace_back("baseline", boundJson(baseline));
    bounds.emplace_back("folded", boundJson(folded));
    doc.emplace_back("bounds", JsonValue(std::move(bounds)));

    JsonObject measured;
    measured.emplace_back("baseline_cycles", measuredBaselineCycles);
    measured.emplace_back("folded_cycles", measuredFoldedCycles);
    doc.emplace_back("measured", JsonValue(std::move(measured)));

    JsonObject soundness;
    soundness.emplace_back(
        "baseline_sound",
        baseline.bounded && baseline.cycles >= measuredBaselineCycles);
    soundness.emplace_back(
        "folded_sound", folded.bounded && folded.cycles >= measuredFoldedCycles);
    soundness.emplace_back("folded_tighter",
                           baseline.bounded && folded.bounded &&
                               folded.cycles < baseline.cycles);
    doc.emplace_back("soundness", JsonValue(std::move(soundness)));

    JsonObject summary;
    summary.emplace_back("loops", static_cast<std::uint64_t>(loops.size()));
    summary.emplace_back("loops_annotated", annotated);
    summary.emplace_back("loops_inferred", inferred);
    summary.emplace_back("loops_profiled", profiled);
    summary.emplace_back("loops_unbounded", unbounded);
    summary.emplace_back("branches",
                         static_cast<std::uint64_t>(branches.size()));
    summary.emplace_back("folded_branches", foldedBranches);
    doc.emplace_back("summary", JsonValue(std::move(summary)));

    doc.emplace_back("loops", JsonValue(std::move(loops)));
    doc.emplace_back("branches", JsonValue(std::move(branches)));
    return JsonValue(std::move(doc));
}

ReportValidation validateWcetReportJson(const JsonValue& doc) {
    ReportValidation out;
    const auto fail = [&out](std::string message) {
        out.errors.push_back(std::move(message));
    };
    if (!doc.isObject()) {
        fail("wcet_report: not a JSON object");
        return out;
    }
    const auto member = [&](const JsonValue& obj, const char* key,
                            const char* context) -> const JsonValue* {
        const JsonValue* v = obj.find(key);
        if (v == nullptr)
            fail(std::string(context) + ": missing required member '" + key +
                 "'");
        return v;
    };

    if (const JsonValue* schema = member(doc, "schema", "wcet_report"))
        if (!schema->isString() || schema->asString() != kWcetReportSchema)
            fail(std::string("wcet_report: schema is not '") +
                 kWcetReportSchema + "'");
    if (const JsonValue* version = member(doc, "version", "wcet_report"))
        if (!version->isNumber() || version->asUint() != kReportSchemaVersion)
            fail("wcet_report: unsupported schema version");

    if (const JsonValue* meta = member(doc, "meta", "wcet_report")) {
        if (!meta->isObject()) {
            fail("wcet_report: meta is not an object");
        } else {
            const JsonValue* bench = meta->find("benchmark");
            if (bench == nullptr || !bench->isString())
                fail("wcet_report: meta.benchmark missing or not a string");
            const JsonValue* threshold = meta->find("threshold");
            if (threshold == nullptr || !threshold->isNumber() ||
                threshold->asUint() < 2 || threshold->asUint() > 4)
                fail("wcet_report: meta.threshold missing or not 2..4");
            const JsonValue* scheduled = meta->find("scheduled");
            if (scheduled == nullptr || !scheduled->isBool())
                fail("wcet_report: meta.scheduled missing or not a bool");
            for (const char* key : {"seed", "samples"}) {
                const JsonValue* v = meta->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("wcet_report: meta.") + key +
                         " missing or not a number");
            }
        }
    }

    if (const JsonValue* cost = member(doc, "cost_model", "wcet_report")) {
        if (!cost->isObject()) {
            fail("wcet_report: cost_model is not an object");
        } else {
            for (const char* key :
                 {"mul_stall", "div_stall", "mispredict_penalty",
                  "icache_miss_penalty", "dcache_miss_penalty",
                  "icache_line_bytes", "pipeline_fill_cycles"}) {
                const JsonValue* v = cost->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("wcet_report: cost_model.") + key +
                         " missing or not a number");
            }
        }
    }

    std::uint64_t baselineBounded = 0, foldedBounded = 0;
    std::uint64_t baselineCycles = 0, foldedCycles = 0;
    if (const JsonValue* bounds = member(doc, "bounds", "wcet_report")) {
        if (!bounds->isObject()) {
            fail("wcet_report: bounds is not an object");
        } else {
            for (const char* which : {"baseline", "folded"}) {
                const JsonValue* b = bounds->find(which);
                if (b == nullptr || !b->isObject()) {
                    fail(std::string("wcet_report: bounds.") + which +
                         " missing or not an object");
                    continue;
                }
                const JsonValue* bounded = b->find("bounded");
                if (bounded == nullptr || !bounded->isBool())
                    fail(std::string("wcet_report: bounds.") + which +
                         ".bounded missing or not a bool");
                const JsonValue* cycles = b->find("cycles");
                if (cycles == nullptr || !cycles->isNumber())
                    fail(std::string("wcet_report: bounds.") + which +
                         ".cycles missing or not a number");
                const JsonValue* reason = b->find("reason");
                if (reason == nullptr || !reason->isString())
                    fail(std::string("wcet_report: bounds.") + which +
                         ".reason missing or not a string");
                if (bounded != nullptr && bounded->isBool() &&
                    cycles != nullptr && cycles->isNumber()) {
                    if (std::string(which) == "baseline") {
                        baselineBounded = bounded->asBool() ? 1 : 0;
                        baselineCycles = cycles->asUint();
                    } else {
                        foldedBounded = bounded->asBool() ? 1 : 0;
                        foldedCycles = cycles->asUint();
                    }
                }
            }
        }
    }

    std::uint64_t measuredBaseline = 0, measuredFolded = 0;
    bool haveMeasured = false;
    if (const JsonValue* measured = member(doc, "measured", "wcet_report")) {
        if (!measured->isObject()) {
            fail("wcet_report: measured is not an object");
        } else {
            const JsonValue* b = measured->find("baseline_cycles");
            const JsonValue* f = measured->find("folded_cycles");
            if (b == nullptr || !b->isNumber())
                fail("wcet_report: measured.baseline_cycles missing or not a "
                     "number");
            if (f == nullptr || !f->isNumber())
                fail("wcet_report: measured.folded_cycles missing or not a "
                     "number");
            if (b != nullptr && b->isNumber() && f != nullptr &&
                f->isNumber()) {
                measuredBaseline = b->asUint();
                measuredFolded = f->asUint();
                haveMeasured = true;
            }
        }
    }

    if (const JsonValue* sound = member(doc, "soundness", "wcet_report")) {
        if (!sound->isObject()) {
            fail("wcet_report: soundness is not an object");
        } else {
            for (const char* key :
                 {"baseline_sound", "folded_sound", "folded_tighter"}) {
                const JsonValue* v = sound->find(key);
                if (v == nullptr || !v->isBool())
                    fail(std::string("wcet_report: soundness.") + key +
                         " missing or not a bool");
            }
            // Cross-field consistency: the booleans must restate the numbers.
            if (haveMeasured) {
                const JsonValue* bs = sound->find("baseline_sound");
                if (bs != nullptr && bs->isBool() &&
                    bs->asBool() != (baselineBounded != 0 &&
                                     baselineCycles >= measuredBaseline))
                    fail("wcet_report: soundness.baseline_sound contradicts "
                         "bounds/measured");
                const JsonValue* fs = sound->find("folded_sound");
                if (fs != nullptr && fs->isBool() &&
                    fs->asBool() != (foldedBounded != 0 &&
                                     foldedCycles >= measuredFolded))
                    fail("wcet_report: soundness.folded_sound contradicts "
                         "bounds/measured");
                const JsonValue* ft = sound->find("folded_tighter");
                if (ft != nullptr && ft->isBool() &&
                    ft->asBool() != (baselineBounded != 0 &&
                                     foldedBounded != 0 &&
                                     foldedCycles < baselineCycles))
                    fail("wcet_report: soundness.folded_tighter contradicts "
                         "the bounds");
            }
        }
    }

    std::size_t loopCount = 0;
    std::uint64_t unbounded = 0;
    if (const JsonValue* loops = member(doc, "loops", "wcet_report")) {
        if (!loops->isArray()) {
            fail("wcet_report: loops is not an array");
        } else {
            loopCount = loops->asArray().size();
            std::size_t index = 0;
            for (const JsonValue& record : loops->asArray()) {
                const std::string context =
                    "wcet_report: loops[" + std::to_string(index) + "]";
                ++index;
                if (!record.isObject()) {
                    fail(context + " is not an object");
                    continue;
                }
                for (const char* key : {"head_pc", "line", "depth", "bound"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isNumber())
                        fail(context + "." + key + " missing or not a number");
                }
                const JsonValue* source = record.find("source");
                if (source == nullptr || !source->isString() ||
                    !knownBoundSourceName(source->asString()))
                    fail(context + ".source missing or not a known label");
                const JsonValue* bounded = record.find("bounded");
                if (bounded == nullptr || !bounded->isBool())
                    fail(context + ".bounded missing or not a bool");
                else if (!bounded->asBool())
                    ++unbounded;
            }
        }
    }

    std::size_t branchCount = 0;
    std::uint64_t foldedBranches = 0;
    if (const JsonValue* branches = member(doc, "branches", "wcet_report")) {
        if (!branches->isArray()) {
            fail("wcet_report: branches is not an array");
        } else {
            branchCount = branches->asArray().size();
            std::size_t index = 0;
            std::uint64_t prevCost = 0;
            for (const JsonValue& record : branches->asArray()) {
                const std::string context =
                    "wcet_report: branches[" + std::to_string(index) + "]";
                if (!record.isObject()) {
                    fail(context + " is not an object");
                    ++index;
                    continue;
                }
                for (const char* key :
                     {"pc", "line", "exec_bound", "unit_cost", "total_cost"}) {
                    const JsonValue* v = record.find(key);
                    if (v == nullptr || !v->isNumber())
                        fail(context + "." + key + " missing or not a number");
                }
                const JsonValue* folded = record.find("folded");
                if (folded == nullptr || !folded->isBool())
                    fail(context + ".folded missing or not a bool");
                else if (folded->asBool())
                    ++foldedBranches;
                // The ranking invariant: total_cost is non-increasing.
                const JsonValue* cost = record.find("total_cost");
                if (cost != nullptr && cost->isNumber()) {
                    if (index > 0 && cost->asUint() > prevCost)
                        fail(context +
                             ".total_cost breaks the descending ranking");
                    prevCost = cost->asUint();
                }
                ++index;
            }
        }
    }

    if (const JsonValue* summary = member(doc, "summary", "wcet_report")) {
        if (!summary->isObject()) {
            fail("wcet_report: summary is not an object");
        } else {
            for (const char* key :
                 {"loops", "loops_annotated", "loops_inferred",
                  "loops_profiled", "loops_unbounded", "branches",
                  "folded_branches"}) {
                const JsonValue* v = summary->find(key);
                if (v == nullptr || !v->isNumber())
                    fail(std::string("wcet_report: summary.") + key +
                         " missing or not a number");
            }
            const JsonValue* loops = summary->find("loops");
            if (loops != nullptr && loops->isNumber() &&
                loops->asUint() != loopCount)
                fail("wcet_report: summary.loops does not match the loops "
                     "array");
            const JsonValue* unboundedJson = summary->find("loops_unbounded");
            if (unboundedJson != nullptr && unboundedJson->isNumber() &&
                unboundedJson->asUint() != unbounded)
                fail("wcet_report: summary.loops_unbounded does not match the "
                     "loops array");
            const JsonValue* branches = summary->find("branches");
            if (branches != nullptr && branches->isNumber() &&
                branches->asUint() != branchCount)
                fail("wcet_report: summary.branches does not match the "
                     "branches array");
            const JsonValue* folded = summary->find("folded_branches");
            if (folded != nullptr && folded->isNumber() &&
                folded->asUint() != foldedBranches)
                fail("wcet_report: summary.folded_branches does not match the "
                     "branches array");
        }
    }
    return out;
}

}  // namespace asbr

#include "report/report.hpp"

#include <cstdio>

#include "asbr/asbr_unit.hpp"
#include "bp/predictor.hpp"

namespace asbr {

const char* valueStageName(ValueStage stage) {
    switch (stage) {
        case ValueStage::kExEnd: return "ex_end";
        case ValueStage::kMemEnd: return "mem_end";
        case ValueStage::kCommit: return "commit";
    }
    return "?";
}

SimReport makeSimReport(RunMeta meta, const PipelineStats& stats,
                        const BranchPredictor* predictor,
                        const AsbrUnit* unit) {
    SimReport report;
    report.meta = std::move(meta);
    stats.publish(report.registry);
    if (predictor != nullptr) predictor->publishMetrics(report.registry);
    if (unit != nullptr) unit->publishMetrics(report.registry);
    report.cpi = stats.cpi();
    report.predictorAccuracy = stats.predictorAccuracy();
    report.resolutionAccuracy = stats.resolutionAccuracy();
    report.foldRate = stats.foldRate();
    report.branchFraction = stats.branchFraction();
    report.icacheMissRate = stats.icache.missRate();
    report.dcacheMissRate = stats.dcache.missRate();
    return report;
}

namespace {

std::string pcKey(std::uint32_t pc) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08x", pc);
    return buf;
}

JsonValue metaJson(const RunMeta& meta) {
    JsonObject out;
    out.emplace_back("benchmark", meta.benchmark);
    out.emplace_back("predictor", meta.predictor);
    if (!meta.predictorToken.empty())
        out.emplace_back("predictor_token", meta.predictorToken);
    if (!meta.figure.empty()) out.emplace_back("figure", meta.figure);
    out.emplace_back("seed", meta.seed);
    out.emplace_back("samples", meta.samples);
    out.emplace_back("scheduled", meta.scheduled);
    out.emplace_back("asbr", meta.asbr);
    if (meta.asbr) {
        out.emplace_back("bit_entries", meta.bitEntries);
        out.emplace_back("update_stage", meta.updateStage);
        if (meta.predictorAware) out.emplace_back("predictor_aware", true);
    }
    return JsonValue(std::move(out));
}

}  // namespace

JsonValue simReportJson(const SimReport& report) {
    JsonObject doc;
    doc.emplace_back("schema", kSimReportSchema);
    doc.emplace_back("version", kReportSchemaVersion);
    doc.emplace_back("meta", metaJson(report.meta));

    JsonObject counters;
    for (const auto& [name, counter] : report.registry.counters())
        counters.emplace_back(name, counter.value());
    doc.emplace_back("counters", JsonValue(std::move(counters)));

    JsonObject derived;
    derived.emplace_back("cpi", report.cpi);
    derived.emplace_back("predictor_accuracy", report.predictorAccuracy);
    derived.emplace_back("resolution_accuracy", report.resolutionAccuracy);
    derived.emplace_back("fold_rate", report.foldRate);
    derived.emplace_back("branch_fraction", report.branchFraction);
    derived.emplace_back("icache_miss_rate", report.icacheMissRate);
    derived.emplace_back("dcache_miss_rate", report.dcacheMissRate);
    doc.emplace_back("derived", JsonValue(std::move(derived)));

    JsonObject histograms;
    for (const auto& [name, histogram] : report.registry.histograms()) {
        JsonObject h;
        JsonArray bounds;
        for (const double b : histogram.bounds()) bounds.emplace_back(b);
        JsonArray counts;
        for (const std::uint64_t c : histogram.counts()) counts.emplace_back(c);
        h.emplace_back("bounds", JsonValue(std::move(bounds)));
        h.emplace_back("counts", JsonValue(std::move(counts)));
        h.emplace_back("total", histogram.total());
        h.emplace_back("sum", histogram.sum());
        h.emplace_back("min", histogram.min());
        h.emplace_back("max", histogram.max());
        histograms.emplace_back(name, JsonValue(std::move(h)));
    }
    doc.emplace_back("histograms", JsonValue(std::move(histograms)));

    JsonObject sites;
    for (const auto& [name, table] : report.registry.siteTables()) {
        JsonObject perPc;
        for (const auto& [pc, value] : table.values())
            perPc.emplace_back(pcKey(pc), value);
        sites.emplace_back(name, JsonValue(std::move(perPc)));
    }
    doc.emplace_back("sites", JsonValue(std::move(sites)));

    return JsonValue(std::move(doc));
}

JsonValue benchReportJson(const std::string& generator, JsonValue options,
                          const std::vector<SimReport>& runs) {
    JsonObject doc;
    doc.emplace_back("schema", kBenchReportSchema);
    doc.emplace_back("version", kReportSchemaVersion);
    doc.emplace_back("generator", generator);
    doc.emplace_back("options", std::move(options));
    JsonArray runArray;
    runArray.reserve(runs.size());
    for (const SimReport& run : runs) runArray.push_back(simReportJson(run));
    doc.emplace_back("runs", JsonValue(std::move(runArray)));
    return JsonValue(std::move(doc));
}

// ------------------------------------------------------------ validation ----

namespace {

/// Counters every conforming sim_report must carry — the fields the Fig. 6
/// (cycles/CPI/accuracy/mispredicts) and Fig. 11 (cycles/folds/activity/
/// storage) tables are generated from.
constexpr const char* kRequiredCounters[] = {
    "pipeline.cycles",
    "pipeline.committed",
    "pipeline.fetched",
    "pipeline.cond_branches",
    "pipeline.folded_branches",
    "pipeline.predicted_branches",
    "pipeline.predicted_correct",
    "pipeline.mispredicts",
    "mem.icache.accesses",
    "mem.icache.misses",
    "mem.dcache.accesses",
    "mem.dcache.misses",
};

constexpr const char* kRequiredDerived[] = {
    "cpi",
    "predictor_accuracy",
    "resolution_accuracy",
    "fold_rate",
    "branch_fraction",
};

class Checker {
public:
    explicit Checker(ReportValidation& out) : out_(out) {}

    void fail(std::string message) { out_.errors.push_back(std::move(message)); }

    const JsonValue* member(const JsonValue& doc, const std::string& key,
                            const char* context) {
        const JsonValue* v = doc.find(key);
        if (v == nullptr)
            fail(std::string(context) + ": missing required member '" + key +
                 "'");
        return v;
    }

private:
    ReportValidation& out_;
};

void validateSimReportInto(const JsonValue& doc, ReportValidation& out,
                           const std::string& context) {
    Checker check(out);
    if (!doc.isObject()) {
        check.fail(context + ": not a JSON object");
        return;
    }
    if (const JsonValue* schema = check.member(doc, "schema", context.c_str()))
        if (!schema->isString() || schema->asString() != kSimReportSchema)
            check.fail(context + ": schema is not '" +
                       std::string(kSimReportSchema) + "'");
    if (const JsonValue* version = check.member(doc, "version", context.c_str()))
        if (!version->isNumber() || version->asUint() != kReportSchemaVersion)
            check.fail(context + ": unsupported schema version");
    if (const JsonValue* meta = check.member(doc, "meta", context.c_str())) {
        if (!meta->isObject()) {
            check.fail(context + ": meta is not an object");
        } else {
            for (const char* key : {"benchmark", "predictor"}) {
                const JsonValue* v = meta->find(key);
                if (v == nullptr || !v->isString())
                    check.fail(context + ": meta." + key +
                               " missing or not a string");
            }
        }
    }
    const JsonValue* counters = check.member(doc, "counters", context.c_str());
    if (counters != nullptr) {
        if (!counters->isObject()) {
            check.fail(context + ": counters is not an object");
        } else {
            for (const auto& [name, value] : counters->asObject())
                if (!value.isNumber())
                    check.fail(context + ": counter '" + name +
                               "' is not a number");
            for (const char* name : kRequiredCounters)
                if (counters->find(name) == nullptr)
                    check.fail(context + ": missing required counter '" +
                               std::string(name) + "'");
        }
    }
    if (const JsonValue* derived = check.member(doc, "derived", context.c_str())) {
        if (!derived->isObject()) {
            check.fail(context + ": derived is not an object");
        } else {
            for (const char* name : kRequiredDerived) {
                const JsonValue* v = derived->find(name);
                if (v == nullptr || !v->isNumber())
                    check.fail(context + ": derived." + name +
                               " missing or not a number");
            }
        }
    }
    if (const JsonValue* histograms =
            check.member(doc, "histograms", context.c_str())) {
        if (!histograms->isObject()) {
            check.fail(context + ": histograms is not an object");
        } else {
            for (const auto& [name, h] : histograms->asObject()) {
                const JsonValue* bounds = h.find("bounds");
                const JsonValue* counts = h.find("counts");
                if (bounds == nullptr || counts == nullptr ||
                    !bounds->isArray() || !counts->isArray() ||
                    counts->asArray().size() != bounds->asArray().size() + 1)
                    check.fail(context + ": histogram '" + name +
                               "' needs counts.size == bounds.size + 1");
            }
        }
    }
    if (const JsonValue* sites = check.member(doc, "sites", context.c_str()))
        if (!sites->isObject())
            check.fail(context + ": sites is not an object");

    // Cross-field consistency: every executed conditional branch is either
    // folded or handed to the predictor, never both.
    if (counters != nullptr && counters->isObject()) {
        const JsonValue* cond = counters->find("pipeline.cond_branches");
        const JsonValue* folded = counters->find("pipeline.folded_branches");
        const JsonValue* predicted =
            counters->find("pipeline.predicted_branches");
        if (cond != nullptr && folded != nullptr && predicted != nullptr &&
            cond->isNumber() && folded->isNumber() && predicted->isNumber() &&
            folded->asUint() + predicted->asUint() != cond->asUint())
            check.fail(context +
                       ": folded_branches + predicted_branches != "
                       "cond_branches");
    }
}

}  // namespace

ReportValidation validateSimReportJson(const JsonValue& doc) {
    ReportValidation out;
    validateSimReportInto(doc, out, "sim_report");
    return out;
}

ReportValidation validateBenchReportJson(const JsonValue& doc) {
    ReportValidation out;
    Checker check(out);
    if (!doc.isObject()) {
        check.fail("bench_report: not a JSON object");
        return out;
    }
    if (const JsonValue* schema = check.member(doc, "schema", "bench_report"))
        if (!schema->isString() || schema->asString() != kBenchReportSchema)
            check.fail(std::string("bench_report: schema is not '") +
                       kBenchReportSchema + "'");
    if (const JsonValue* version = check.member(doc, "version", "bench_report"))
        if (!version->isNumber() || version->asUint() != kReportSchemaVersion)
            check.fail("bench_report: unsupported schema version");
    if (const JsonValue* generator =
            check.member(doc, "generator", "bench_report"))
        if (!generator->isString())
            check.fail("bench_report: generator is not a string");
    if (const JsonValue* runs = check.member(doc, "runs", "bench_report")) {
        if (!runs->isArray() || runs->asArray().empty()) {
            check.fail("bench_report: runs missing, not an array, or empty");
        } else {
            std::size_t index = 0;
            for (const JsonValue& run : runs->asArray()) {
                validateSimReportInto(run, out,
                                      "runs[" + std::to_string(index) + "]");
                ++index;
            }
        }
    }
    return out;
}

}  // namespace asbr

// asbr.analysis_report — the schema-versioned, machine-readable result of
// one static-analysis run (docs/static-analysis.md).
//
// Serializes the fold-legality verifier's full static view of a program:
// CFG shape, loop forest, abstract-interpretation fixpoint status, the
// per-branch direction/legality verdicts, and the value-analysis lints.
// Every value is an integer, string or bool — no floating point — so the
// report for a fixed program is byte-identical across runs and
// ci/verify-workloads.sh can whole-file-diff committed goldens.
#pragma once

#include <string>

#include "analysis/verify.hpp"
#include "report/report.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kAnalysisReportSchema = "asbr.analysis_report";

/// Identity of the analyzed program.
struct AnalysisReportMeta {
    std::string benchmark;   ///< workload token ("adpcm-enc") or file name
    std::uint32_t threshold = 3;  ///< fold-distance threshold used
    bool scheduled = true;        ///< condition-scheduling pass enabled
};

/// Serialize a verifier's analysis of every conditional branch in the
/// program (schema `asbr.analysis_report`, version 1).  Purely static: no
/// profile is consulted, so the document depends on the program alone.
[[nodiscard]] JsonValue analysisReportJson(
    const AnalysisReportMeta& meta,
    const analysis::FoldLegalityVerifier& verifier,
    const analysis::VerifyConfig& config);

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateAnalysisReportJson(const JsonValue& doc);

}  // namespace asbr

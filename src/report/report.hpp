// SimReport — the schema-versioned, machine-readable result of one
// cycle-accurate simulation run.
//
// Every bench binary, the asbr-stats CLI and ci/bench-report.sh produce
// their JSON artifacts through this one code path, so EXPERIMENTS.md tables
// can be regenerated and diffed mechanically instead of scraping printf
// output.  docs/metrics.md documents the JSON schema; the validators here
// are the executable form of that document and are run both in tests and on
// every CI-produced artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/pipeline.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace asbr {

class AsbrUnit;
class BranchPredictor;

/// Schema identifiers embedded in every exported document.
inline constexpr const char* kSimReportSchema = "asbr.sim_report";
inline constexpr const char* kBenchReportSchema = "asbr.bench_report";
inline constexpr std::uint64_t kReportSchemaVersion = 1;

/// Human-readable name of a BDT update stage ("ex_end"/"mem_end"/"commit").
[[nodiscard]] const char* valueStageName(ValueStage stage);

/// Identity of one run: what executed, under which predictor/ASBR setup.
struct RunMeta {
    std::string benchmark;     ///< display name ("ADPCM Encode", "custom", ...)
    std::string predictor;     ///< BranchPredictor::name()
    /// PredictorRegistry token that reconstructs the predictor exactly
    /// (BranchPredictor::token(); omitted from JSON when empty).
    std::string predictorToken;
    std::string figure;        ///< paper context ("fig6", "fig11", "") — free-form
    std::uint64_t seed = 0;    ///< input-generator seed (0 = n/a)
    std::uint64_t samples = 0; ///< input sample count (0 = n/a)
    bool scheduled = true;     ///< condition-scheduling pass enabled
    bool asbr = false;         ///< an AsbrUnit was installed
    std::uint64_t bitEntries = 0;  ///< BIT capacity when asbr
    std::string updateStage;       ///< valueStageName(...) when asbr
    bool predictorAware = false;   ///< predictor-aware fold selection (asbr)
};

/// One run's full result: meta + the metric registry all components
/// published into + the derived ratios the paper's figures report.
struct SimReport {
    RunMeta meta;
    MetricRegistry registry;
    double cpi = 0.0;
    double predictorAccuracy = 0.0;
    double resolutionAccuracy = 0.0;
    double foldRate = 0.0;
    double branchFraction = 0.0;
    double icacheMissRate = 0.0;
    double dcacheMissRate = 0.0;
};

/// Build a report from a finished run.  `predictor` and `unit` contribute
/// their `bp.*` / `asbr.*` metrics when non-null.
[[nodiscard]] SimReport makeSimReport(RunMeta meta, const PipelineStats& stats,
                                      const BranchPredictor* predictor,
                                      const AsbrUnit* unit = nullptr);

/// JSON form of one report (schema `asbr.sim_report`, docs/metrics.md).
[[nodiscard]] JsonValue simReportJson(const SimReport& report);

/// Wrap a set of run reports into one `asbr.bench_report` document.
/// `generator` names the producing binary; `options` is free-form metadata
/// (CLI options of the producing run).
[[nodiscard]] JsonValue benchReportJson(const std::string& generator,
                                        JsonValue options,
                                        const std::vector<SimReport>& runs);

/// Schema validation: empty error list means the document conforms.
struct ReportValidation {
    std::vector<std::string> errors;
    [[nodiscard]] bool ok() const { return errors.empty(); }
};

[[nodiscard]] ReportValidation validateSimReportJson(const JsonValue& doc);
[[nodiscard]] ReportValidation validateBenchReportJson(const JsonValue& doc);

}  // namespace asbr

// asbr.fault_report — the schema-versioned, machine-readable result of one
// fault-injection campaign (docs/fault-injection.md).
//
// Like asbr.sim_report, the document is produced through exactly one code
// path (here) and validated by an executable schema checker that CI runs on
// every artifact.  Every value is an integer, string or bool — no floating
// point — so a pinned-seed campaign serializes bit-identically across runs
// and ci/faults.sh can diff whole files against committed goldens.
#pragma once

#include <string>

#include "fault/campaign.hpp"
#include "report/report.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kFaultReportSchema = "asbr.fault_report";

/// Identity of the campaign's workload/hardware configuration.  The string
/// fields use the asbr-faults CLI tokens (e.g. benchmark "adpcm-enc",
/// predictor "bimodal") so `asbr-faults replay` can rebuild the exact run
/// from the report alone.
struct FaultReportMeta {
    std::string benchmark;
    std::string predictor;
    std::uint64_t seed = 0;     ///< input-generator seed
    std::uint64_t samples = 0;  ///< input sample count
    bool protectedMode = false; ///< AsbrConfig::parityProtected
    std::uint64_t bitEntries = 0;
    std::string updateStage;    ///< valueStageName(...)
};

/// Serialize a finished campaign (schema `asbr.fault_report`, version 1).
[[nodiscard]] JsonValue faultReportJson(const FaultReportMeta& meta,
                                        const CampaignConfig& config,
                                        const CampaignResult& result);

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateFaultReportJson(const JsonValue& doc);

}  // namespace asbr

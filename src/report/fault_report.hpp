// asbr.fault_report — the schema-versioned, machine-readable result of one
// fault-injection campaign (docs/fault-injection.md).
//
// Like asbr.sim_report, the document is produced through exactly one code
// path (here) and validated by an executable schema checker that CI runs on
// every artifact.  Every value is an integer, string or bool — no floating
// point — so a pinned-seed campaign serializes bit-identically across runs
// and ci/faults.sh can diff whole files against committed goldens.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "report/report.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kFaultReportSchema = "asbr.fault_report";
/// Fault documents version independently of the base kReportSchemaVersion:
/// v2 added the `failed_jobs` quarantine section (PR 8).
inline constexpr std::uint64_t kFaultReportVersion = 2;

/// Identity of the campaign's workload/hardware configuration.  The string
/// fields use the asbr-faults CLI tokens (e.g. benchmark "adpcm-enc",
/// predictor "bimodal") so `asbr-faults replay` can rebuild the exact run
/// from the report alone.
struct FaultReportMeta {
    std::string benchmark;
    std::string predictor;
    std::uint64_t seed = 0;     ///< input-generator seed
    std::uint64_t samples = 0;  ///< input sample count
    bool protectedMode = false; ///< AsbrConfig::parityProtected
    std::uint64_t bitEntries = 0;
    std::string updateStage;    ///< valueStageName(...)
};

/// Serialize a finished campaign (schema `asbr.fault_report`, version 2).
/// `failed` lists injections the durable engine quarantined (empty for an
/// all-green campaign — the section is always present in the document).
[[nodiscard]] JsonValue faultReportJson(
    const FaultReportMeta& meta, const CampaignConfig& config,
    const CampaignResult& result,
    const std::vector<FailedInjection>& failed = {});

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateFaultReportJson(const JsonValue& doc);

/// Inverse of faultOutcomeName (nullopt for an unknown label).
[[nodiscard]] std::optional<FaultOutcome> faultOutcomeFromName(
    const std::string& name);

/// JSON round-trip for one injection record — the same object shape the
/// report's `injections` array uses.  The durable engine stores these as
/// per-injection journal artifacts; fromJson throws EnsureError on a
/// malformed document.
[[nodiscard]] JsonValue injectionRecordJson(const InjectionRecord& record);
[[nodiscard]] InjectionRecord injectionRecordFromJson(const JsonValue& value);

}  // namespace asbr

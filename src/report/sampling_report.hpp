// asbr.sampling_report — the schema-versioned, machine-readable result of
// one sampled simulation run (docs/simulation.md).
//
// Serializes the window geometry, every measured window, the CPI ratio
// estimate with its documented error bound (the 95% confidence half-width of
// the per-window CPI mean, floored at 1% of the estimate), and — when the
// producing run also executed the full cycle-accurate reference — the true
// CPI with the achieved error.  Every value is an integer, string or bool
// (ratios are scaled to parts-per-million and rounded once, at production
// time), so the report for a fixed (program, seed, samples, window) tuple is
// byte-identical across runs and thread counts and CI can whole-file-diff
// committed goldens.
#pragma once

#include <optional>

#include "report/report.hpp"
#include "sim/sampling.hpp"
#include "util/json.hpp"

namespace asbr {

inline constexpr const char* kSamplingReportSchema = "asbr.sampling_report";

/// Full-run reference the sampled estimate is checked against.
struct SamplingReference {
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
};

/// Serialize one sampled run (schema `asbr.sampling_report`, version 1).
[[nodiscard]] JsonValue samplingReportJson(
    const RunMeta& meta, const SamplingConfig& sampling,
    const SampledResult& result,
    const std::optional<SamplingReference>& reference = std::nullopt);

/// Schema validation; shares ReportValidation with the other report kinds.
[[nodiscard]] ReportValidation validateSamplingReportJson(const JsonValue& doc);

}  // namespace asbr

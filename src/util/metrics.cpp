#include "util/metrics.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace asbr {

void Counter::set(std::uint64_t v) {
    ASBR_ENSURE(v >= value_, "Counter::set would decrease a monotonic counter");
    value_ = v;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    ASBR_ENSURE(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be ascending");
    counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double x) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    if (total_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++total_;
    sum_ += x;
}

std::uint64_t SiteTable::at(std::uint32_t site) const {
    const auto it = values_.find(site);
    return it == values_.end() ? 0 : it->second;
}

void MetricRegistry::claimName(std::string_view name, Entry::Kind kind,
                               std::string_view help) {
    ASBR_ENSURE(meta_.find(name) == meta_.end(),
                "metric '" + std::string(name) +
                    "' registered twice — every publisher owns its names "
                    "outright and publishes into a registry exactly once");
    meta_.emplace(std::string(name), std::make_pair(kind, std::string(help)));
}

Counter& MetricRegistry::counter(std::string_view name, std::string_view help) {
    claimName(name, Entry::Kind::kCounter, help);
    return counters_.emplace(std::string(name), Counter{}).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::string_view help,
                                     std::vector<double> bounds) {
    claimName(name, Entry::Kind::kHistogram, help);
    return histograms_.emplace(std::string(name), Histogram(std::move(bounds)))
        .first->second;
}

SiteTable& MetricRegistry::sites(std::string_view name, std::string_view help) {
    claimName(name, Entry::Kind::kSites, help);
    return siteTables_.emplace(std::string(name), SiteTable{}).first->second;
}

bool MetricRegistry::contains(std::string_view name) const {
    return meta_.find(name) != meta_.end();
}

const Counter* MetricRegistry::findCounter(std::string_view name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricRegistry::findHistogram(std::string_view name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

const SiteTable* MetricRegistry::findSites(std::string_view name) const {
    const auto it = siteTables_.find(name);
    return it == siteTables_.end() ? nullptr : &it->second;
}

std::vector<MetricRegistry::Entry> MetricRegistry::catalogue() const {
    std::vector<Entry> out;
    out.reserve(meta_.size());
    for (const auto& [name, kindHelp] : meta_)
        out.push_back({name, kindHelp.second, kindHelp.first});
    return out;  // meta_ is name-sorted already
}

}  // namespace asbr

// Plain-text table rendering for the benchmark harness.
//
// Every bench binary regenerates a paper table/figure; TextTable renders the
// rows in an aligned, monospace layout and can also emit CSV for downstream
// plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asbr {

/// Column-aligned text table with an optional title, plus CSV export.
class TextTable {
public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /// Set the header row.  Must be called before any addRow.
    void setHeader(std::vector<std::string> header);

    /// Append a data row; must match the header width when a header is set.
    void addRow(std::vector<std::string> row);

    /// Render with box-drawing separators.
    [[nodiscard]] std::string render() const;

    /// Render as RFC-4180-ish CSV (fields with commas/quotes get quoted).
    [[nodiscard]] std::string toCsv() const;

    [[nodiscard]] std::size_t rowCount() const { return rows_.size(); }

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the bench binaries.
[[nodiscard]] std::string formatWithCommas(std::uint64_t value);
[[nodiscard]] std::string formatFixed(double value, int digits);
[[nodiscard]] std::string formatPercent(double fraction, int digits = 0);

}  // namespace asbr

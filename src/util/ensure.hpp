// Runtime invariant checking.
//
// ASBR_ENSURE is used for preconditions and internal invariants across the
// library.  Violations throw (never abort) so that tests can assert on
// failure paths and embedding applications can recover.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace asbr {

/// Thrown when a library precondition or internal invariant is violated.
class EnsureError : public std::logic_error {
public:
    explicit EnsureError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a simulation exceeds its cycle/instruction watchdog bound.
/// Part of the EnsureError family so existing catch sites keep working, but
/// distinguishable: fault campaigns classify it as a hang, not a failure of
/// the simulator itself.
class SimTimeoutError : public EnsureError {
public:
    explicit SimTimeoutError(const std::string& what) : EnsureError(what) {}
};

/// Thrown by the per-job wall-clock watchdog (driver::Deadline).  NOT a
/// SimTimeoutError on purpose: a simulated hang (cycle bound) is a property
/// of the simulated machine and fault campaigns classify it as such, while a
/// wall-clock timeout is a property of the host run — the durable engine
/// retries and eventually quarantines the job instead.
class JobTimeoutError : public EnsureError {
public:
    explicit JobTimeoutError(const std::string& what) : EnsureError(what) {}
};

/// Thrown when a cooperative interrupt (SIGINT/SIGTERM checkpoint) asks an
/// in-flight job to stop.  The durable engine drops the attempt without
/// recording a failure — a resumed journal re-runs the job from scratch.
class JobInterruptedError : public EnsureError {
public:
    explicit JobInterruptedError(const std::string& what) : EnsureError(what) {}
};

/// The one structured shape every watchdog message uses:
///   "<what> watchdog: run exceeded the configured <unit> bound of N <units>"
/// Shared by the functional ISS (instructions), the pipeline (cycles) and
/// the per-job wall clock (ms) so timeouts read identically everywhere a
/// tool reports them (asbr-faults replay, sampled runs, quarantine errors).
[[nodiscard]] inline std::string watchdogMessage(const char* what,
                                                 const char* unit,
                                                 std::uint64_t bound,
                                                 const char* suffix) {
    return std::string(what) + " watchdog: run exceeded the configured " +
           unit + " bound of " + std::to_string(bound) + " " + suffix;
}

namespace detail {
[[noreturn]] inline void ensureFail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
    std::ostringstream os;
    os << "ASBR_ENSURE failed: (" << expr << ") at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw EnsureError(os.str());
}
}  // namespace detail

}  // namespace asbr

/// Check a precondition/invariant; throws asbr::EnsureError when false.
#define ASBR_ENSURE(expr, msg)                                              \
    do {                                                                    \
        if (!(expr)) ::asbr::detail::ensureFail(#expr, __FILE__, __LINE__,  \
                                                std::string(msg));          \
    } while (0)

// Runtime invariant checking.
//
// ASBR_ENSURE is used for preconditions and internal invariants across the
// library.  Violations throw (never abort) so that tests can assert on
// failure paths and embedding applications can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace asbr {

/// Thrown when a library precondition or internal invariant is violated.
class EnsureError : public std::logic_error {
public:
    explicit EnsureError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a simulation exceeds its cycle/instruction watchdog bound.
/// Part of the EnsureError family so existing catch sites keep working, but
/// distinguishable: fault campaigns classify it as a hang, not a failure of
/// the simulator itself.
class SimTimeoutError : public EnsureError {
public:
    explicit SimTimeoutError(const std::string& what) : EnsureError(what) {}
};

namespace detail {
[[noreturn]] inline void ensureFail(const char* expr, const char* file, int line,
                                    const std::string& msg) {
    std::ostringstream os;
    os << "ASBR_ENSURE failed: (" << expr << ") at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw EnsureError(os.str());
}
}  // namespace detail

}  // namespace asbr

/// Check a precondition/invariant; throws asbr::EnsureError when false.
#define ASBR_ENSURE(expr, msg)                                              \
    do {                                                                    \
        if (!(expr)) ::asbr::detail::ensureFail(#expr, __FILE__, __LINE__,  \
                                                std::string(msg));          \
    } while (0)

// Deterministic pseudo-random number generation.
//
// All stochastic inputs in the reproduction (synthetic PCM, random program
// generation in property tests) flow through this xorshift64* generator so
// every experiment is bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>

#include "util/ensure.hpp"

namespace asbr {

/// xorshift64* PRNG — tiny, fast, and stable across platforms.
class Xorshift64 {
public:
    explicit Xorshift64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed ? seed : 1) {}

    /// Next raw 64-bit value.
    std::uint64_t next() {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545F4914F6CDD1DULL;
    }

    /// Uniform value in [0, bound).  bound must be > 0.
    std::uint64_t below(std::uint64_t bound) {
        ASBR_ENSURE(bound > 0, "below() requires positive bound");
        return next() % bound;
    }

    /// Uniform value in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        ASBR_ENSURE(lo <= hi, "range() requires lo <= hi");
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Uniform double in [0, 1).
    double real() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Bernoulli trial with probability p.
    bool chance(double p) { return real() < p; }

private:
    std::uint64_t state_;
};

}  // namespace asbr

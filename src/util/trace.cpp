#include "util/trace.hpp"

#include <cstdio>
#include <ostream>

#include "util/json.hpp"

namespace asbr {

const char* traceKindName(TraceKind kind) {
    switch (kind) {
        case TraceKind::kStage: return "stage";
        case TraceKind::kBranch: return "branch";
        case TraceKind::kFold: return "fold";
        case TraceKind::kMispredict: return "mispredict";
    }
    return "?";
}

Tracer::Tracer(const TracerConfig& config)
    : config_(config),
      laneNames_{"IF/ID", "ID/EX", "EX/MEM", "MEM/WB", "resolve"} {}

void Tracer::setLaneNames(std::vector<std::string> names) {
    laneNames_ = std::move(names);
}

void Tracer::clear() {
    events_.clear();
    truncated_ = false;
}

const char* Tracer::laneName(std::uint8_t lane) const {
    return lane < laneNames_.size() ? laneNames_[lane].c_str() : "?";
}

namespace {

void appendHexPc(std::string& out, std::uint32_t pc) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08x", pc);
    out += buf;
}

}  // namespace

void Tracer::writeJsonl(std::ostream& out) const {
    std::string line;
    for (const TraceEvent& e : events_) {
        line.clear();
        line += "{\"cycle\":";
        line += std::to_string(e.cycle);
        line += ",\"kind\":\"";
        line += traceKindName(e.kind);
        line += "\",\"lane\":\"";
        jsonEscape(line, laneName(e.lane));
        line += "\",\"pc\":\"";
        appendHexPc(line, e.pc);
        line += "\",\"op\":\"";
        jsonEscape(line, e.name);
        line += '"';
        if (e.kind != TraceKind::kStage) {
            line += ",\"taken\":";
            line += e.flag ? "true" : "false";
            if (e.arg != 0) {
                line += ",\"target\":\"";
                appendHexPc(line, e.arg);
                line += '"';
            }
        }
        line += "}\n";
        out << line;
    }
}

void Tracer::writeChrome(std::ostream& out) const {
    out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    std::string line;
    auto emit = [&](const std::string& event) {
        if (!first) out << ",";
        first = false;
        out << "\n" << event;
    };
    // Thread-name metadata so Perfetto labels each pipeline lane.
    for (std::size_t lane = 0; lane < laneNames_.size(); ++lane) {
        line = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
        line += std::to_string(lane);
        line += ",\"args\":{\"name\":\"";
        jsonEscape(line, laneNames_[lane]);
        line += "\"}}";
        emit(line);
    }
    for (const TraceEvent& e : events_) {
        line = "{\"name\":\"";
        jsonEscape(line, e.name);
        line += ' ';
        appendHexPc(line, e.pc);
        line += "\",\"cat\":\"";
        line += traceKindName(e.kind);
        if (e.kind == TraceKind::kStage) {
            // One occupied stage-cycle = a 1us complete slice on the lane.
            line += "\",\"ph\":\"X\",\"ts\":";
            line += std::to_string(e.cycle);
            line += ",\"dur\":1,\"pid\":0,\"tid\":";
            line += std::to_string(e.lane);
            line += '}';
        } else {
            line += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
            line += std::to_string(e.cycle);
            line += ",\"pid\":0,\"tid\":";
            line += std::to_string(e.lane);
            line += ",\"args\":{\"taken\":";
            line += e.flag ? "true" : "false";
            if (e.arg != 0) {
                line += ",\"target\":\"";
                appendHexPc(line, e.arg);
                line += '"';
            }
            line += "}}";
        }
        emit(line);
    }
    out << "\n]}\n";
}

}  // namespace asbr

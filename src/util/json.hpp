// Minimal JSON value tree, serializer and parser.
//
// Exists so the observability layer (SimReport export, trace files,
// docs/CI validators) has one dependency-free JSON code path.  Scope is
// deliberately small: UTF-8 pass-through strings, uint64/int64/double
// numbers, no comments, no trailing commas.  Objects preserve insertion
// order, which keeps exported reports diffable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asbr {

class JsonValue;

/// Ordered key/value object representation.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
public:
    enum class Kind { kNull, kBool, kUint, kInt, kDouble, kString, kArray,
                      kObject };

    JsonValue() : kind_(Kind::kNull) {}
    JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
    JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}       // NOLINT
    JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}          // NOLINT
    JsonValue(int v) : kind_(Kind::kInt), int_(v) {}                   // NOLINT
    JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}          // NOLINT
    JsonValue(std::string s)                                           // NOLINT
        : kind_(Kind::kString), string_(std::move(s)) {}
    JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}     // NOLINT
    JsonValue(JsonArray a)                                             // NOLINT
        : kind_(Kind::kArray), array_(std::move(a)) {}
    JsonValue(JsonObject o)                                            // NOLINT
        : kind_(Kind::kObject), object_(std::move(o)) {}

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool isNull() const { return kind_ == Kind::kNull; }
    [[nodiscard]] bool isBool() const { return kind_ == Kind::kBool; }
    [[nodiscard]] bool isNumber() const {
        return kind_ == Kind::kUint || kind_ == Kind::kInt ||
               kind_ == Kind::kDouble;
    }
    [[nodiscard]] bool isString() const { return kind_ == Kind::kString; }
    [[nodiscard]] bool isArray() const { return kind_ == Kind::kArray; }
    [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }

    [[nodiscard]] bool asBool() const { return bool_; }
    /// Numeric value as double regardless of stored width.
    [[nodiscard]] double asDouble() const;
    /// Numeric value as uint64 (asserts non-negative integral kinds).
    [[nodiscard]] std::uint64_t asUint() const;
    [[nodiscard]] const std::string& asString() const { return string_; }
    [[nodiscard]] const JsonArray& asArray() const { return array_; }
    [[nodiscard]] const JsonObject& asObject() const { return object_; }
    [[nodiscard]] JsonArray& asArray() { return array_; }
    [[nodiscard]] JsonObject& asObject() { return object_; }

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const JsonValue* find(std::string_view key) const;

    /// Append/overwrite an object member (object kinds only).
    void set(std::string key, JsonValue value);

    /// Serialize.  `indent` > 0 pretty-prints with that many spaces.
    [[nodiscard]] std::string dump(int indent = 0) const;

private:
    void dumpTo(std::string& out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    JsonArray array_;
    JsonObject object_;
};

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
void jsonEscape(std::string& out, std::string_view s);

/// Parse result: a value or a position-annotated error message.
struct JsonParseResult {
    std::optional<JsonValue> value;
    std::string error;  ///< empty on success

    [[nodiscard]] bool ok() const { return value.has_value(); }
};

/// Parse a complete JSON document (trailing garbage is an error).
[[nodiscard]] JsonParseResult parseJson(std::string_view text);

}  // namespace asbr

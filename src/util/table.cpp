#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/ensure.hpp"

namespace asbr {

void TextTable::setHeader(std::vector<std::string> header) {
    ASBR_ENSURE(rows_.empty(), "setHeader must precede addRow");
    header_ = std::move(header);
}

void TextTable::addRow(std::vector<std::string> row) {
    ASBR_ENSURE(header_.empty() || row.size() == header_.size(),
                "row width must match header width");
    rows_.push_back(std::move(row));
}

namespace {

std::vector<std::size_t> columnWidths(const std::vector<std::string>& header,
                                      const std::vector<std::vector<std::string>>& rows) {
    std::size_t cols = header.size();
    for (const auto& r : rows) cols = std::max(cols, r.size());
    std::vector<std::size_t> w(cols, 0);
    for (std::size_t i = 0; i < header.size(); ++i) w[i] = header[i].size();
    for (const auto& r : rows)
        for (std::size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());
    return w;
}

void renderRow(std::ostringstream& os, const std::vector<std::string>& row,
               const std::vector<std::size_t>& widths) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
}

void renderRule(std::ostringstream& os, const std::vector<std::size_t>& widths) {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
}

std::string csvEscape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::string TextTable::render() const {
    std::ostringstream os;
    const auto widths = columnWidths(header_, rows_);
    if (!title_.empty()) os << title_ << '\n';
    renderRule(os, widths);
    if (!header_.empty()) {
        renderRow(os, header_, widths);
        renderRule(os, widths);
    }
    for (const auto& r : rows_) renderRow(os, r, widths);
    renderRule(os, widths);
    return os.str();
}

std::string TextTable::toCsv() const {
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i) os << ',';
            os << csvEscape(row[i]);
        }
        os << '\n';
    };
    if (!header_.empty()) emit(header_);
    for (const auto& r : rows_) emit(r);
    return os.str();
}

std::string formatWithCommas(std::uint64_t value) {
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string formatFixed(double value, int digits) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string formatPercent(double fraction, int digits) {
    return formatFixed(fraction * 100.0, digits) + "%";
}

}  // namespace asbr

// Named-metric registry: the single namespace every simulator component
// publishes its counters into.
//
// Three metric kinds cover everything the paper's evaluation reports:
//  - Counter:   a named monotonic uint64 (cycles, folds, mispredicts, ...)
//  - Histogram: fixed-bucket distribution of doubles (per-site taken rates,
//               per-site execution counts, ...)
//  - SiteTable: a per-branch-site breakdown keyed by PC (the paper's
//               Figures 7/9/10 are site tables)
//
// Components keep their own cheap plain-struct statistics on the hot path
// (PipelineStats, AsbrStats, CacheStats) and publish them into a registry
// after a run; the registry is therefore the canonical catalogue of metric
// *names* — docs/metrics.md is checked against it in CI — and the input to
// the SimReport JSON export.  Every name may be registered exactly once: a
// duplicate registration throws EnsureError, so two components can never
// silently share (and double-count into) the same metric.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace asbr {

/// Monotonic named counter.
class Counter {
public:
    void add(std::uint64_t n = 1) { value_ += n; }
    /// Raise to `v`; asserts monotonicity (the registry never goes backwards).
    void set(std::uint64_t v);
    [[nodiscard]] std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Fixed-bucket histogram.  `bounds` are inclusive upper bucket edges in
/// ascending order; one implicit overflow bucket catches everything above
/// the last edge, so counts().size() == bounds().size() + 1.
class Histogram {
public:
    explicit Histogram(std::vector<double> bounds);

    void record(double x);

    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
        return counts_;
    }
    [[nodiscard]] std::uint64_t total() const { return total_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double min() const { return total_ == 0 ? 0.0 : min_; }
    [[nodiscard]] double max() const { return total_ == 0 ? 0.0 : max_; }
    [[nodiscard]] double mean() const {
        return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
    }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Per-site (PC-keyed) counter breakdown.
class SiteTable {
public:
    void add(std::uint32_t site, std::uint64_t n = 1) { values_[site] += n; }
    [[nodiscard]] std::uint64_t at(std::uint32_t site) const;
    [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& values() const {
        return values_;
    }

private:
    std::map<std::uint32_t, std::uint64_t> values_;
};

/// The registry.  Names are dotted lowercase paths ("pipeline.cycles",
/// "asbr.folds"); each name may be registered exactly once — registering a
/// name that already exists throws EnsureError regardless of kind, so every
/// publisher owns its names outright.
class MetricRegistry {
public:
    Counter& counter(std::string_view name, std::string_view help);
    Histogram& histogram(std::string_view name, std::string_view help,
                         std::vector<double> bounds);
    SiteTable& sites(std::string_view name, std::string_view help);

    [[nodiscard]] bool contains(std::string_view name) const;
    [[nodiscard]] const Counter* findCounter(std::string_view name) const;
    [[nodiscard]] const Histogram* findHistogram(std::string_view name) const;
    [[nodiscard]] const SiteTable* findSites(std::string_view name) const;

    /// All registered names with help text, sorted by name (the docs-check
    /// contract and the JSON export order).
    struct Entry {
        std::string name;
        std::string help;
        enum class Kind { kCounter, kHistogram, kSites } kind;
    };
    [[nodiscard]] std::vector<Entry> catalogue() const;

    [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
        const {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, Histogram, std::less<>>&
    histograms() const {
        return histograms_;
    }
    [[nodiscard]] const std::map<std::string, SiteTable, std::less<>>&
    siteTables() const {
        return siteTables_;
    }

private:
    void claimName(std::string_view name, Entry::Kind kind,
                   std::string_view help);

    // node-based maps: references handed out stay valid across registration.
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Histogram, std::less<>> histograms_;
    std::map<std::string, SiteTable, std::less<>> siteTables_;
    std::map<std::string, std::pair<Entry::Kind, std::string>, std::less<>>
        meta_;
};

}  // namespace asbr

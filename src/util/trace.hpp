// Structured pipeline event tracer.
//
// The pipeline (and any other component) records compact events — stage
// occupancy per cycle, branch resolutions, folds, mispredicts — into an
// in-memory buffer; the buffer serializes either as JSONL (one event object
// per line, easy to grep/jq) or as the Chrome trace_event format that
// Perfetto / chrome://tracing open directly (each pipeline stage renders as
// a track, each occupied stage-cycle as a 1-cycle slice, resolutions as
// instant events).  One simulated cycle maps to one microsecond of trace
// time.
//
// Cost model: tracing hooks in the simulator are compiled out entirely when
// the build sets -DASBR_TRACING=OFF (no tracer field reads on the hot
// path); when compiled in, a null tracer pointer costs one branch per
// cycle, and a non-null tracer records POD events until `maxEvents` is
// reached (the run continues untraced past the cap).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace asbr {

/// What an event describes.
enum class TraceKind : std::uint8_t {
    kStage,      ///< an instruction occupies pipeline lane `lane` this cycle
    kBranch,     ///< conditional branch resolved in EX (flag = taken)
    kFold,       ///< folded branch reached EX (flag = resolved-taken)
    kMispredict, ///< control flush (branch or indirect-jump redirect)
};

/// One compact trace record.  `name` must point at storage that outlives the
/// tracer (opcode mnemonics / static strings).
struct TraceEvent {
    std::uint64_t cycle = 0;
    TraceKind kind = TraceKind::kStage;
    std::uint8_t lane = 0;
    bool flag = false;
    std::uint32_t pc = 0;
    std::uint32_t arg = 0;  ///< kind-specific (e.g. redirect target)
    const char* name = "";
};

struct TracerConfig {
    /// Hard cap on buffered events; recording silently stops at the cap and
    /// `truncated()` reports it.
    std::size_t maxEvents = 1u << 20;
    /// Ignore events before this cycle (window start).
    std::uint64_t startCycle = 0;
    /// Ignore events at/after this cycle (window end; default: no end).
    std::uint64_t endCycle = UINT64_MAX;
};

class Tracer {
public:
    explicit Tracer(const TracerConfig& config = {});

    /// Lane display names for the Chrome export; index == TraceEvent::lane.
    void setLaneNames(std::vector<std::string> names);

    void record(const TraceEvent& event) {
        if (event.cycle < config_.startCycle || event.cycle >= config_.endCycle)
            return;
        if (events_.size() >= config_.maxEvents) {
            truncated_ = true;
            return;
        }
        events_.push_back(event);
    }

    /// Fast pre-check so callers can skip building events entirely.
    [[nodiscard]] bool wants(std::uint64_t cycle) const {
        return cycle >= config_.startCycle && cycle < config_.endCycle &&
               events_.size() < config_.maxEvents;
    }

    [[nodiscard]] const std::vector<TraceEvent>& events() const {
        return events_;
    }
    [[nodiscard]] bool truncated() const { return truncated_; }
    void clear();

    /// One JSON object per line:
    ///   {"cycle":12,"kind":"stage","lane":"EX","pc":"0x00400010","op":"addu"}
    void writeJsonl(std::ostream& out) const;

    /// Chrome trace_event JSON document ({"traceEvents":[...]}).
    void writeChrome(std::ostream& out) const;

    [[nodiscard]] const char* laneName(std::uint8_t lane) const;

private:
    TracerConfig config_;
    std::vector<TraceEvent> events_;
    std::vector<std::string> laneNames_;
    bool truncated_ = false;
};

/// Stable string for a TraceKind ("stage", "branch", "fold", "mispredict").
[[nodiscard]] const char* traceKindName(TraceKind kind);

}  // namespace asbr

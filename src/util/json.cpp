#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/ensure.hpp"

namespace asbr {

double JsonValue::asDouble() const {
    switch (kind_) {
        case Kind::kUint: return static_cast<double>(uint_);
        case Kind::kInt: return static_cast<double>(int_);
        case Kind::kDouble: return double_;
        default:
            ASBR_ENSURE(false, "JsonValue::asDouble on a non-number");
    }
    return 0.0;
}

std::uint64_t JsonValue::asUint() const {
    switch (kind_) {
        case Kind::kUint: return uint_;
        case Kind::kInt:
            ASBR_ENSURE(int_ >= 0, "JsonValue::asUint on a negative value");
            return static_cast<std::uint64_t>(int_);
        case Kind::kDouble: {
            ASBR_ENSURE(double_ >= 0 && double_ == std::floor(double_),
                        "JsonValue::asUint on a non-integral value");
            return static_cast<std::uint64_t>(double_);
        }
        default:
            ASBR_ENSURE(false, "JsonValue::asUint on a non-number");
    }
    return 0;
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object_)
        if (k == key) return &v;
    return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
    ASBR_ENSURE(kind_ == Kind::kObject, "JsonValue::set on a non-object");
    for (auto& [k, v] : object_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    object_.emplace_back(std::move(key), std::move(value));
}

void jsonEscape(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

namespace {

void appendDouble(std::string& out, double v) {
    ASBR_ENSURE(std::isfinite(v), "JSON cannot represent NaN/Inf");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Prefer the shortest representation that round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof shorter, "%.*g", precision, v);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == v) {
            out += shorter;
            return;
        }
    }
    out += buf;
}

void appendIndent(std::string& out, int indent, int depth) {
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
    switch (kind_) {
        case Kind::kNull: out += "null"; break;
        case Kind::kBool: out += bool_ ? "true" : "false"; break;
        case Kind::kUint: out += std::to_string(uint_); break;
        case Kind::kInt: out += std::to_string(int_); break;
        case Kind::kDouble: appendDouble(out, double_); break;
        case Kind::kString:
            out += '"';
            jsonEscape(out, string_);
            out += '"';
            break;
        case Kind::kArray: {
            if (array_.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            for (std::size_t i = 0; i < array_.size(); ++i) {
                if (i != 0) out += ',';
                if (indent > 0) appendIndent(out, indent, depth + 1);
                array_[i].dumpTo(out, indent, depth + 1);
            }
            if (indent > 0) appendIndent(out, indent, depth);
            out += ']';
            break;
        }
        case Kind::kObject: {
            if (object_.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            for (std::size_t i = 0; i < object_.size(); ++i) {
                if (i != 0) out += ',';
                if (indent > 0) appendIndent(out, indent, depth + 1);
                out += '"';
                jsonEscape(out, object_[i].first);
                out += indent > 0 ? "\": " : "\":";
                object_[i].second.dumpTo(out, indent, depth + 1);
            }
            if (indent > 0) appendIndent(out, indent, depth);
            out += '}';
            break;
        }
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------- parser ----

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonParseResult run() {
        JsonParseResult result;
        JsonValue value;
        if (!parseValue(value)) {
            result.error = error_;
            return result;
        }
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
            result.error = error_;
            return result;
        }
        result.value = std::move(value);
        return result;
    }

private:
    bool fail(const std::string& message) {
        if (error_.empty())
            error_ = message + " at offset " + std::to_string(pos_);
        return false;
    }

    void skipWs() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c) {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool parseLiteral(std::string_view word, JsonValue value, JsonValue& out) {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        out = std::move(value);
        return true;
    }

    bool parseString(std::string& out) {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size()) return fail("bad escape");
                const char e = text_[pos_ + 1];
                pos_ += 2;
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        if (pos_ + 4 > text_.size())
                            return fail("bad \\u escape");
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = text_[pos_ + static_cast<std::size_t>(i)];
                            code <<= 4;
                            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                            else return fail("bad \\u escape");
                        }
                        pos_ += 4;
                        // Encode as UTF-8 (BMP only; surrogate pairs are out
                        // of scope for the report/trace character set).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default: return fail("bad escape");
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0))
            ++pos_;
        bool isDouble = false;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            isDouble = true;
            ++pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0))
                ++pos_;
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            isDouble = true;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0))
                ++pos_;
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") return fail("invalid number");
        const std::string_view digits =
            token[0] == '-' ? token.substr(1) : token;
        if (digits.empty() || !std::isdigit(static_cast<unsigned char>(digits[0])))
            return fail("invalid number");
        if (digits.size() > 1 && digits[0] == '0' &&
            std::isdigit(static_cast<unsigned char>(digits[1])))
            return fail("invalid number: leading zero");
        if (!isDouble) {
            if (token[0] == '-') {
                std::int64_t v = 0;
                const auto [p, ec] =
                    std::from_chars(token.data(), token.data() + token.size(), v);
                if (ec == std::errc() && p == token.data() + token.size()) {
                    out = JsonValue(v);
                    return true;
                }
            } else {
                std::uint64_t v = 0;
                const auto [p, ec] =
                    std::from_chars(token.data(), token.data() + token.size(), v);
                if (ec == std::errc() && p == token.data() + token.size()) {
                    out = JsonValue(v);
                    return true;
                }
            }
            // fall through to double on overflow
        }
        double v = 0.0;
        if (std::sscanf(std::string(token).c_str(), "%lf", &v) != 1)
            return fail("invalid number");
        out = JsonValue(v);
        return true;
    }

    bool parseValue(JsonValue& out) {
        skipWs();
        if (++depth_ > kMaxDepth) return fail("nesting too deep");
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        bool ok = false;
        switch (text_[pos_]) {
            case 'n': ok = parseLiteral("null", JsonValue(), out); break;
            case 't': ok = parseLiteral("true", JsonValue(true), out); break;
            case 'f': ok = parseLiteral("false", JsonValue(false), out); break;
            case '"': {
                std::string s;
                ok = parseString(s);
                if (ok) out = JsonValue(std::move(s));
                break;
            }
            case '[': {
                ++pos_;
                JsonArray items;
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ']') {
                    ++pos_;
                    out = JsonValue(std::move(items));
                    ok = true;
                    break;
                }
                while (true) {
                    JsonValue item;
                    if (!parseValue(item)) return false;
                    items.push_back(std::move(item));
                    skipWs();
                    if (pos_ < text_.size() && text_[pos_] == ',') {
                        ++pos_;
                        continue;
                    }
                    if (!consume(']')) return false;
                    break;
                }
                out = JsonValue(std::move(items));
                ok = true;
                break;
            }
            case '{': {
                ++pos_;
                JsonObject members;
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == '}') {
                    ++pos_;
                    out = JsonValue(std::move(members));
                    ok = true;
                    break;
                }
                while (true) {
                    skipWs();
                    std::string key;
                    if (!parseString(key)) return false;
                    if (!consume(':')) return false;
                    JsonValue value;
                    if (!parseValue(value)) return false;
                    members.emplace_back(std::move(key), std::move(value));
                    skipWs();
                    if (pos_ < text_.size() && text_[pos_] == ',') {
                        ++pos_;
                        continue;
                    }
                    if (!consume('}')) return false;
                    break;
                }
                out = JsonValue(std::move(members));
                ok = true;
                break;
            }
            default: ok = parseNumber(out); break;
        }
        --depth_;
        return ok;
    }

    static constexpr int kMaxDepth = 128;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

}  // namespace

JsonParseResult parseJson(std::string_view text) {
    return Parser(text).run();
}

}  // namespace asbr

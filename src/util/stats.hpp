// Small statistics helpers used by the profiler and bench harness.
#pragma once

#include <cstdint>
#include <span>

namespace asbr {

/// Running counter pair expressing an accuracy/hit-rate style ratio.
struct Ratio {
    std::uint64_t hits = 0;
    std::uint64_t total = 0;

    void record(bool hit) {
        ++total;
        hits += hit ? 1 : 0;
    }

    /// hits/total, or 0 when nothing was recorded.
    [[nodiscard]] double value() const {
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population standard deviation; 0 for spans of size < 2.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Geometric mean of strictly positive values; 0 for an empty span.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Relative improvement of `after` over `before` (positive = got faster),
/// e.g. cycles dropping 100 -> 84 yields 0.16.
[[nodiscard]] double improvement(std::uint64_t before, std::uint64_t after);

}  // namespace asbr

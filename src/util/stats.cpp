#include "util/stats.hpp"

#include <cmath>

#include "util/ensure.hpp"

namespace asbr {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double geomean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        ASBR_ENSURE(x > 0.0, "geomean requires positive values");
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double improvement(std::uint64_t before, std::uint64_t after) {
    ASBR_ENSURE(before > 0, "improvement requires positive baseline");
    return (static_cast<double>(before) - static_cast<double>(after)) /
           static_cast<double>(before);
}

}  // namespace asbr

#include "profile/selection.hpp"

#include <algorithm>
#include <unordered_set>

#include "asbr/extract.hpp"

namespace asbr {

namespace {

/// The scoring loop shared by both selection entry points.  `exclude`
/// removes PCs already served by the static fold table (nullptr: none).
std::vector<Candidate> selectImpl(
    const Program& program, const ProgramProfile& profile,
    const std::map<std::uint32_t, double>& accuracyByPc,
    const SelectionConfig& config,
    const std::unordered_set<std::uint32_t>* exclude) {
    ASBR_ENSURE(config.threshold >= 2 && config.threshold <= 4,
                "threshold must be 2, 3 or 4");
    std::vector<Candidate> candidates;
    const auto minExecs = static_cast<std::uint64_t>(
        config.minExecFraction * static_cast<double>(profile.instructions));

    std::optional<analysis::FoldLegalityVerifier> verifier;
    analysis::VerifyConfig verifyConfig;
    analysis::ObservedMinDistances observed;
    if (config.requireStaticallySafe) {
        verifier.emplace(program);
        verifyConfig.threshold = config.threshold;
        for (const auto& [pc, bp] : profile.branches)
            if (bp.execs > 0) observed.emplace(pc, bp.minDistance);
    }

    for (const auto& [pc, bp] : profile.branches) {
        if (exclude != nullptr && exclude->count(pc) != 0) continue;
        if (bp.execs < std::max<std::uint64_t>(minExecs, 1)) continue;
        if (!isExtractableBranch(program, pc)) continue;
        const double foldable = bp.foldableFraction(config.threshold);
        if (foldable < config.minFoldableFraction) continue;

        Candidate c;
        c.pc = pc;
        c.execs = bp.execs;
        c.takenRate = bp.takenRate();
        const auto it = accuracyByPc.find(pc);
        c.accuracy = it == accuracyByPc.end() ? 1.0 : it->second;
        c.foldableFraction = foldable;
        // Expected benefit: foldable executions weighted by how often the
        // reference predictor gets this site wrong, plus a small term for the
        // pipeline-occupancy saving every fold provides regardless of
        // predictability (the folded branch never issues).
        c.score = static_cast<double>(c.execs) * foldable *
                  ((1.0 - c.accuracy) + 0.05);
        if (verifier) {
            const auto v = verifier->verdictFor(pc, verifyConfig, &observed);
            if (v.verdict == analysis::FoldLegality::kIllegal) continue;
            c.verdict = v.verdict;
        }
        candidates.push_back(c);
    }

    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  if (a.score != b.score) return a.score > b.score;
                  if (a.verdict != b.verdict) return a.verdict < b.verdict;
                  return a.pc < b.pc;
              });
    if (candidates.size() > config.bitCapacity)
        candidates.resize(config.bitCapacity);
    return candidates;
}

}  // namespace

std::vector<Candidate> selectFoldableBranches(
    const Program& program, const ProgramProfile& profile,
    const std::map<std::uint32_t, double>& accuracyByPc,
    const SelectionConfig& config) {
    return selectImpl(program, profile, accuracyByPc, config, nullptr);
}

std::vector<std::uint32_t> candidatePcs(const std::vector<Candidate>& candidates) {
    std::vector<std::uint32_t> pcs;
    pcs.reserve(candidates.size());
    for (const Candidate& c : candidates) pcs.push_back(c.pc);
    return pcs;
}

FoldSelection selectWithStaticVerdicts(
    const Program& program, const ProgramProfile& profile,
    const std::map<std::uint32_t, double>& accuracyByPc,
    const SelectionConfig& config) {
    FoldSelection selection;

    // Statically-decided branches need no score: with zero BDT dependence
    // the fold succeeds on every execution, so any executed branch is pure
    // win.  Rank by heat to make the staticCapacity cut deterministic.
    const analysis::FoldLegalityVerifier verifier(program);
    const analysis::ValueAnalysis& va = verifier.values();
    for (const auto& [pc, bp] : profile.branches) {
        if (bp.execs == 0) continue;
        if (!isExtractableBranch(program, pc)) continue;
        const auto dir = va.directionAt(verifier.cfg().indexOf(pc));
        if (dir != analysis::BranchDirection::kAlwaysTaken &&
            dir != analysis::BranchDirection::kNeverTaken)
            continue;
        selection.statics.push_back(
            {pc, dir == analysis::BranchDirection::kAlwaysTaken, bp.execs});
    }
    std::sort(selection.statics.begin(), selection.statics.end(),
              [](const StaticFoldCandidate& a, const StaticFoldCandidate& b) {
                  if (a.execs != b.execs) return a.execs > b.execs;
                  return a.pc < b.pc;
              });
    if (selection.statics.size() > config.staticCapacity)
        selection.statics.resize(config.staticCapacity);

    std::unordered_set<std::uint32_t> staticPcs;
    for (const StaticFoldCandidate& s : selection.statics)
        staticPcs.insert(s.pc);

    // BIT occupancy the old policy would have spent on now-static branches.
    for (const Candidate& c :
         selectImpl(program, profile, accuracyByPc, config, nullptr))
        if (staticPcs.count(c.pc) != 0) ++selection.bitSlotsReclaimed;

    selection.dynamic =
        selectImpl(program, profile, accuracyByPc, config, &staticPcs);
    return selection;
}

FoldSelection selectBranchesByStaticCost(
    const Program& program,
    const std::vector<analysis::timing::BranchCostRecord>& ranking,
    const SelectionConfig& config) {
    ASBR_ENSURE(config.threshold >= 2 && config.threshold <= 4,
                "threshold must be 2, 3 or 4");
    FoldSelection selection;
    std::map<std::uint32_t, const analysis::timing::BranchCostRecord*> byPc;
    for (const auto& r : ranking) byPc.emplace(r.pc, &r);

    const analysis::FoldLegalityVerifier verifier(program);
    const analysis::ValueAnalysis& va = verifier.values();
    analysis::VerifyConfig verifyConfig;
    verifyConfig.threshold = config.threshold;

    // Statically-decided branches fold from the static table on every
    // execution; rank them by worst-case execution bound so the
    // staticCapacity cut favours the branches the longest path crosses most.
    for (const std::uint32_t pc : allConditionalBranches(program)) {
        const auto dir = va.directionAt(verifier.cfg().indexOf(pc));
        if (dir != analysis::BranchDirection::kAlwaysTaken &&
            dir != analysis::BranchDirection::kNeverTaken)
            continue;
        const auto it = byPc.find(pc);
        selection.statics.push_back(
            {pc, dir == analysis::BranchDirection::kAlwaysTaken,
             it == byPc.end() ? 0 : it->second->execBound});
    }
    std::sort(selection.statics.begin(), selection.statics.end(),
              [](const StaticFoldCandidate& a, const StaticFoldCandidate& b) {
                  if (a.execs != b.execs) return a.execs > b.execs;
                  return a.pc < b.pc;
              });
    if (selection.statics.size() > config.staticCapacity)
        selection.statics.resize(config.staticCapacity);
    std::unordered_set<std::uint32_t> staticPcs;
    for (const StaticFoldCandidate& s : selection.statics)
        staticPcs.insert(s.pc);

    // BIT residents: only branches the verifier proves safe on *every* path
    // qualify — there is no profile here to justify anything weaker.
    for (const std::uint32_t pc : allConditionalBranches(program)) {
        if (staticPcs.count(pc) != 0) continue;
        const auto it = byPc.find(pc);
        if (it == byPc.end() || it->second->totalCost == 0) continue;
        const auto v = verifier.verdictFor(pc, verifyConfig, nullptr);
        if (v.verdict != analysis::FoldLegality::kProvablySafe) continue;
        Candidate c;
        c.pc = pc;
        c.execs = it->second->execBound;
        c.score = static_cast<double>(it->second->totalCost);
        c.verdict = v.verdict;
        selection.dynamic.push_back(c);
    }
    std::sort(selection.dynamic.begin(), selection.dynamic.end(),
              [](const Candidate& a, const Candidate& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.pc < b.pc;
              });
    if (selection.dynamic.size() > config.bitCapacity)
        selection.dynamic.resize(config.bitCapacity);
    return selection;
}

const char* hardnessName(BranchHardness hardness) {
    switch (hardness) {
        case BranchHardness::kColdSite: return "cold-site";
        case BranchHardness::kWellPredicted: return "well-predicted";
        case BranchHardness::kHistoryPredictable: return "history-predictable";
        case BranchHardness::kHardToPredict: return "hard-to-predict";
    }
    return "?";
}

std::uint64_t PredictorAwareSelection::countOf(BranchHardness h) const {
    std::uint64_t n = 0;
    for (const auto& [pc, cls] : hardness)
        if (cls == h) ++n;
    return n;
}

bool PredictorAwareSelection::foldsSubsetOfBaselineEra() const {
    std::unordered_set<std::uint32_t> era;
    for (const Candidate& c : baselineEra) era.insert(c.pc);
    for (const Candidate& c : folded)
        if (era.count(c.pc) == 0) return false;
    return true;
}

PredictorAwareSelection selectBranchesPredictorAware(
    const Program& program, const ProgramProfile& profile,
    const PredictionProfile& predictions,
    const std::map<std::uint32_t, double>& baselineAccuracyByPc,
    const SelectionConfig& config, const PredictorAwareConfig& aware) {
    ASBR_ENSURE(config.threshold >= 2 && config.threshold <= 4,
                "threshold must be 2, 3 or 4");
    PredictorAwareSelection selection;
    const std::map<std::uint32_t, double> strongAccuracy =
        predictions.accuracyMap();
    const auto minExecs = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(config.minExecFraction *
                                   static_cast<double>(profile.instructions)),
        1);

    // Classify every structurally foldable site.
    std::unordered_set<std::uint32_t> hardPcs;
    for (const auto& [pc, bp] : profile.branches) {
        if (bp.execs == 0) continue;
        if (!isExtractableBranch(program, pc)) continue;
        if (bp.foldableFraction(config.threshold) < config.minFoldableFraction)
            continue;
        BranchHardness cls;
        if (bp.execs < minExecs) {
            cls = BranchHardness::kColdSite;
        } else {
            const auto strongIt = strongAccuracy.find(pc);
            // Sites the strong predictor never saw executed contribute no
            // mispredictions — treat as won.
            const double strong =
                strongIt == strongAccuracy.end() ? 1.0 : strongIt->second;
            if (strong < aware.wellPredictedAccuracy) {
                cls = BranchHardness::kHardToPredict;
                hardPcs.insert(pc);
            } else {
                const auto baseIt = baselineAccuracyByPc.find(pc);
                const double base =
                    baseIt == baselineAccuracyByPc.end() ? 1.0 : baseIt->second;
                cls = base < aware.wellPredictedAccuracy
                          ? BranchHardness::kHistoryPredictable
                          : BranchHardness::kWellPredicted;
            }
        }
        selection.hardness.emplace(pc, cls);
    }

    // The bimodal-era selection: same policy knobs, baseline accuracy.
    selection.baselineEra =
        selectImpl(program, profile, baselineAccuracyByPc, config, nullptr);

    // The aware selection: score against the strong predictor and keep only
    // sites it demonstrably loses.
    for (const Candidate& c :
         selectImpl(program, profile, strongAccuracy, config, nullptr))
        if (hardPcs.count(c.pc) != 0) selection.folded.push_back(c);

    std::unordered_set<std::uint32_t> foldedPcs;
    for (const Candidate& c : selection.folded) foldedPcs.insert(c.pc);
    for (const Candidate& c : selection.baselineEra) {
        if (foldedPcs.count(c.pc) != 0) continue;
        ++selection.reclaimedSlots;
        selection.reclaimedPcs.push_back(c.pc);
    }
    return selection;
}

void PredictorAwareSelectionMetrics::countSelection(
    const PredictorAwareSelection& selection) {
    folded = selection.folded.size();
    hardSites = selection.countOf(BranchHardness::kHardToPredict);
    keptForPredictor =
        selection.countOf(BranchHardness::kWellPredicted) +
        selection.countOf(BranchHardness::kHistoryPredictable);
    reclaimedSlots = selection.reclaimedSlots;
}

void PredictorAwareSelectionMetrics::publish(MetricRegistry& registry) const {
    registry
        .counter("selection.predictor_aware_folded",
                 "hard-to-predict branches given BIT slots by the "
                 "predictor-aware policy")
        .set(folded);
    registry
        .counter("selection.predictor_aware_kept",
                 "foldable sites left to the strong predictor (well-predicted "
                 "or history-predictable)")
        .set(keptForPredictor);
    registry
        .counter("selection.predictor_aware_hard_sites",
                 "foldable sites the strong predictor demonstrably loses")
        .set(hardSites);
    registry
        .counter("selection.predictor_aware_reclaimed_slots",
                 "bimodal-era BIT slots handed back to the strong predictor")
        .set(reclaimedSlots);
}

void StaticCostSelectionMetrics::countSelection(const FoldSelection& selection) {
    staticFolds = selection.statics.size();
    bitResidents = selection.dynamic.size();
}

void StaticCostSelectionMetrics::publish(MetricRegistry& registry) const {
    registry
        .counter("selection.static_cost_candidates",
                 "branches in the static misprediction-cost ranking")
        .set(candidates);
    registry
        .counter("selection.static_cost_static_folds",
                 "statically-decided branches selected for the fold table")
        .set(staticFolds);
    registry
        .counter("selection.static_cost_bit_residents",
                 "provably-safe branches selected for the BIT by static cost")
        .set(bitResidents);
}

}  // namespace asbr

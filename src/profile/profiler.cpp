#include "profile/profiler.hpp"

#include <array>

#include "sim/functional.hpp"

namespace asbr {

double BranchProfile::foldableFraction(std::uint32_t threshold) const {
    if (execs == 0) return 0.0;
    std::uint64_t n = 0;
    switch (threshold) {
        case 2: n = distGe2; break;
        case 3: n = distGe3; break;
        case 4: n = distGe4; break;
        default: ASBR_ENSURE(false, "threshold must be 2, 3 or 4");
    }
    return static_cast<double>(n) / static_cast<double>(execs);
}

ProgramProfile profileProgram(const Program& program, Memory& memory,
                              std::uint64_t maxInstructions) {
    ProgramProfile profile;

    // Dynamic index of the last committed write to each register.  Registers
    // never written count as defined "infinitely long ago" (machine reset),
    // so branches on them are always foldable.
    std::array<std::int64_t, kNumRegs> lastDef{};
    lastDef.fill(-(1LL << 40));
    std::int64_t index = 0;

    FunctionalSim sim(program, memory);
    sim.setTraceHook([&](const Instruction& ins, const StepResult& sr) {
        if (sr.isBranch) {
            BranchProfile& bp = profile.branches[sr.pc];
            bp.pc = sr.pc;
            ++bp.execs;
            if (sr.branchTaken) ++bp.taken;
            const std::uint64_t distance =
                static_cast<std::uint64_t>(index - lastDef[ins.rs]);
            if (distance >= 2) ++bp.distGe2;
            if (distance >= 3) ++bp.distGe3;
            if (distance >= 4) ++bp.distGe4;
            if (distance < bp.minDistance) bp.minDistance = distance;
        }
        if (sr.write) lastDef[sr.write->reg] = index;
        ++index;
    });

    const FunctionalResult r = sim.run(maxInstructions);
    profile.instructions = r.instructions;
    return profile;
}

std::map<std::uint32_t, double> PredictionProfile::accuracyMap() const {
    std::map<std::uint32_t, double> out;
    for (const auto& [pc, site] : sites) out[pc] = site.accuracy();
    return out;
}

PredictionProfile profilePredictions(const Program& program, Memory& memory,
                                     BranchPredictor& predictor,
                                     std::uint64_t maxInstructions) {
    PredictionProfile profile;
    profile.predictorToken = predictor.token();
    predictor.reset();

    FunctionalSim sim(program, memory);
    sim.setTraceHook([&](const Instruction&, const StepResult& sr) {
        if (!sr.isBranch) return;
        const Prediction prediction = predictor.predict(sr.pc);
        // Score like the pipeline: the redirect must hit the architectural
        // successor, so taken guesses need the BTB to supply the target.
        const std::uint32_t predictedNext = prediction.effectiveTaken()
                                                ? *prediction.target
                                                : sr.pc + 4;
        SitePrediction& site = profile.sites[sr.pc];
        site.pc = sr.pc;
        ++site.execs;
        ++profile.branches;
        if (predictedNext != sr.nextPc) {
            ++site.mispredicts;
            ++profile.mispredicts;
        }
        predictor.update(sr.pc, sr.branchTaken, sr.branchTarget);
    });
    (void)sim.run(maxInstructions);
    return profile;
}

}  // namespace asbr

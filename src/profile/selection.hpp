// Branch selection for ASBR (paper Section 6).
//
// "Frequently executed, hard-to-predict branches are especially propitious
// to resolve by using ASBR."  The selector scores every extractable branch
// by expected benefit — dynamic executions that are both foldable at the
// configured threshold *and* likely mispredicted by the reference predictor
// — and returns the top `bitCapacity` candidates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "analysis/timing/wcet.hpp"
#include "analysis/verify.hpp"
#include "asm/program.hpp"
#include "profile/profiler.hpp"
#include "util/metrics.hpp"

namespace asbr {

/// Selection policy knobs.
struct SelectionConfig {
    std::size_t bitCapacity = 16;   ///< BIT entries available
    std::uint32_t threshold = 3;    ///< 2 / 3 / 4, per the BDT update stage
    double minExecFraction = 1e-4;  ///< ignore branches rarer than this
    double minFoldableFraction = 0.5;  ///< require mostly-foldable branches
    /// Run the static fold-legality verifier over the candidates: branches
    /// with an Illegal verdict are dropped (they can never enter the BIT),
    /// and ProvablySafe branches win score ties over SafeOnProfiledPaths
    /// ones.  The profile supplies the dynamic evidence, so profiled-clean
    /// branches survive even when an unprofiled short path exists.
    bool requireStaticallySafe = false;
    /// Static fold table entries available (selectWithStaticVerdicts).
    std::size_t staticCapacity = 16;
};

/// A scored candidate branch.
struct Candidate {
    std::uint32_t pc = 0;
    std::uint64_t execs = 0;
    double takenRate = 0.0;
    double accuracy = 1.0;          ///< reference predictor accuracy (1 = easy)
    double foldableFraction = 0.0;  ///< at the configured threshold
    double score = 0.0;             ///< expected mispredictions removed
    /// Static verdict; populated when requireStaticallySafe is set.
    std::optional<analysis::FoldLegality> verdict;
};

/// Score and rank foldable branches.  `accuracyByPc` supplies the reference
/// predictor's per-site accuracy (from a baseline pipeline run); sites
/// missing from the map are treated as never-executed-under-prediction and
/// get accuracy 1 (no benefit).
[[nodiscard]] std::vector<Candidate> selectFoldableBranches(
    const Program& program, const ProgramProfile& profile,
    const std::map<std::uint32_t, double>& accuracyByPc,
    const SelectionConfig& config = {});

/// The PCs of the selected candidates, ready for extractBranchInfos().
[[nodiscard]] std::vector<std::uint32_t> candidatePcs(
    const std::vector<Candidate>& candidates);

/// A branch the abstract interpreter proved single-direction: it folds from
/// the static table instead of occupying a BIT slot.
struct StaticFoldCandidate {
    std::uint32_t pc = 0;
    bool taken = false;       ///< the constant direction
    std::uint64_t execs = 0;  ///< profiled executions (static-table ranking)
};

/// The two fold classes of the full selection policy.
struct FoldSelection {
    /// BIT-resident candidates, scored exactly as selectFoldableBranches —
    /// but with statically-decided branches excluded, so the slots they
    /// would have used go to the next-hottest dynamic branches.
    std::vector<Candidate> dynamic;
    /// Statically-decided branches, hottest-first, capped at staticCapacity.
    std::vector<StaticFoldCandidate> statics;
    /// How many BIT slots the dynamic-only policy would have spent on
    /// branches now served statically (the occupancy the analysis freed).
    std::uint64_t bitSlotsReclaimed = 0;
};

/// Two-class selection: statically-decided branches (always/never-taken
/// verdicts from src/analysis/absint) go to the static fold table; the BIT
/// is then filled as before from the remaining candidates.
[[nodiscard]] FoldSelection selectWithStaticVerdicts(
    const Program& program, const ProgramProfile& profile,
    const std::map<std::uint32_t, double>& accuracyByPc,
    const SelectionConfig& config = {});

/// Profile-free, cost-aware selection driven by the static timing engine.
///
/// `ranking` is the per-branch worst-case misprediction cost from
/// analysis::timing::WcetEngine::compute (execution bound x penalty).
/// Statically-decided branches go to the static fold table as usual (ranked
/// by their execution bound instead of profiled heat); the BIT is filled
/// with the top remaining *ProvablySafe* branches by total static cost.
/// Branches with zero static cost (unreachable on any bounded path) are
/// skipped.  Candidate::execs carries the execution bound and
/// Candidate::score the total cost; the profile-only fields (takenRate,
/// accuracy, foldableFraction) stay at their defaults.
[[nodiscard]] FoldSelection selectBranchesByStaticCost(
    const Program& program,
    const std::vector<analysis::timing::BranchCostRecord>& ranking,
    const SelectionConfig& config = {});

/// Non-predictability taxonomy: why a branch site does or does not deserve
/// a BIT slot once a strong history-based predictor is the fallback.
enum class BranchHardness {
    kColdSite = 0,        ///< below the execution floor — never worth a slot
    kWellPredicted,       ///< both predictors already get it right
    kHistoryPredictable,  ///< the strong predictor fixes what the baseline lost
    kHardToPredict,       ///< the strong predictor demonstrably loses — fold it
};

[[nodiscard]] const char* hardnessName(BranchHardness hardness);

/// Thresholds for the hardness taxonomy.
struct PredictorAwareConfig {
    /// A site whose accuracy reaches this under a predictor counts as won
    /// by that predictor.
    double wellPredictedAccuracy = 0.99;
};

/// Result of predictor-aware selection.
struct PredictorAwareSelection {
    /// BIT-resident candidates: hard-to-predict sites only, scored against
    /// the strong predictor's per-site accuracy.
    std::vector<Candidate> folded;
    /// Hardness class for every site that passed the structural filters
    /// (extractable, hot enough is judged per-class; cold sites included).
    std::map<std::uint32_t, BranchHardness> hardness;
    /// The selection the bimodal-era policy (same config, baseline
    /// accuracy, no hardness filter) would have made.
    std::vector<Candidate> baselineEra;
    /// BIT slots the bimodal-era policy spent on sites the strong predictor
    /// now wins — capacity handed back to the predictor.
    std::uint64_t reclaimedSlots = 0;
    std::vector<std::uint32_t> reclaimedPcs;

    [[nodiscard]] std::uint64_t countOf(BranchHardness h) const;
    /// True when `folded` is a subset of the bimodal-era selection.
    [[nodiscard]] bool foldsSubsetOfBaselineEra() const;
};

/// Predictor-aware selection: fold only branches the strong fallback
/// predictor demonstrably loses.  `predictions` is the strong predictor's
/// per-site record (profilePredictions); `baselineAccuracyByPc` the
/// bimodal-2048 reference map the pre-existing policy consulted.  Sites the
/// strong predictor already wins are classified kWellPredicted /
/// kHistoryPredictable and left to the predictor; the freed BIT occupancy
/// is reported as reclaimedSlots.
[[nodiscard]] PredictorAwareSelection selectBranchesPredictorAware(
    const Program& program, const ProgramProfile& profile,
    const PredictionProfile& predictions,
    const std::map<std::uint32_t, double>& baselineAccuracyByPc,
    const SelectionConfig& config = {},
    const PredictorAwareConfig& aware = {});

/// Counters one predictor-aware selection publishes (the
/// `selection.predictor_aware_*` namespace).  A default-constructed
/// snapshot publishes zeros so `asbr-stats counters` can enumerate them.
struct PredictorAwareSelectionMetrics {
    std::uint64_t folded = 0;         ///< BIT slots filled (hard sites)
    std::uint64_t keptForPredictor = 0;  ///< sites left to the predictor
    std::uint64_t hardSites = 0;      ///< sites classified hard-to-predict
    std::uint64_t reclaimedSlots = 0; ///< bimodal-era slots handed back

    void countSelection(const PredictorAwareSelection& selection);
    void publish(MetricRegistry& registry) const;
};

/// Counters one cost-aware selection publishes (the `selection.static_cost_*`
/// namespace).  A default-constructed snapshot publishes zeros so
/// `asbr-stats counters` can enumerate the names.
struct StaticCostSelectionMetrics {
    std::uint64_t candidates = 0;   ///< branches in the input cost ranking
    std::uint64_t staticFolds = 0;  ///< static-table folds selected
    std::uint64_t bitResidents = 0; ///< BIT slots filled by total static cost

    /// Fill the selection-side counters from a selection result.
    void countSelection(const FoldSelection& selection);
    void publish(MetricRegistry& registry) const;
};

}  // namespace asbr

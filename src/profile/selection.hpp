// Branch selection for ASBR (paper Section 6).
//
// "Frequently executed, hard-to-predict branches are especially propitious
// to resolve by using ASBR."  The selector scores every extractable branch
// by expected benefit — dynamic executions that are both foldable at the
// configured threshold *and* likely mispredicted by the reference predictor
// — and returns the top `bitCapacity` candidates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "analysis/timing/wcet.hpp"
#include "analysis/verify.hpp"
#include "asm/program.hpp"
#include "profile/profiler.hpp"
#include "util/metrics.hpp"

namespace asbr {

/// Selection policy knobs.
struct SelectionConfig {
    std::size_t bitCapacity = 16;   ///< BIT entries available
    std::uint32_t threshold = 3;    ///< 2 / 3 / 4, per the BDT update stage
    double minExecFraction = 1e-4;  ///< ignore branches rarer than this
    double minFoldableFraction = 0.5;  ///< require mostly-foldable branches
    /// Run the static fold-legality verifier over the candidates: branches
    /// with an Illegal verdict are dropped (they can never enter the BIT),
    /// and ProvablySafe branches win score ties over SafeOnProfiledPaths
    /// ones.  The profile supplies the dynamic evidence, so profiled-clean
    /// branches survive even when an unprofiled short path exists.
    bool requireStaticallySafe = false;
    /// Static fold table entries available (selectWithStaticVerdicts).
    std::size_t staticCapacity = 16;
};

/// A scored candidate branch.
struct Candidate {
    std::uint32_t pc = 0;
    std::uint64_t execs = 0;
    double takenRate = 0.0;
    double accuracy = 1.0;          ///< reference predictor accuracy (1 = easy)
    double foldableFraction = 0.0;  ///< at the configured threshold
    double score = 0.0;             ///< expected mispredictions removed
    /// Static verdict; populated when requireStaticallySafe is set.
    std::optional<analysis::FoldLegality> verdict;
};

/// Score and rank foldable branches.  `accuracyByPc` supplies the reference
/// predictor's per-site accuracy (from a baseline pipeline run); sites
/// missing from the map are treated as never-executed-under-prediction and
/// get accuracy 1 (no benefit).
[[nodiscard]] std::vector<Candidate> selectFoldableBranches(
    const Program& program, const ProgramProfile& profile,
    const std::map<std::uint32_t, double>& accuracyByPc,
    const SelectionConfig& config = {});

/// The PCs of the selected candidates, ready for extractBranchInfos().
[[nodiscard]] std::vector<std::uint32_t> candidatePcs(
    const std::vector<Candidate>& candidates);

/// A branch the abstract interpreter proved single-direction: it folds from
/// the static table instead of occupying a BIT slot.
struct StaticFoldCandidate {
    std::uint32_t pc = 0;
    bool taken = false;       ///< the constant direction
    std::uint64_t execs = 0;  ///< profiled executions (static-table ranking)
};

/// The two fold classes of the full selection policy.
struct FoldSelection {
    /// BIT-resident candidates, scored exactly as selectFoldableBranches —
    /// but with statically-decided branches excluded, so the slots they
    /// would have used go to the next-hottest dynamic branches.
    std::vector<Candidate> dynamic;
    /// Statically-decided branches, hottest-first, capped at staticCapacity.
    std::vector<StaticFoldCandidate> statics;
    /// How many BIT slots the dynamic-only policy would have spent on
    /// branches now served statically (the occupancy the analysis freed).
    std::uint64_t bitSlotsReclaimed = 0;
};

/// Two-class selection: statically-decided branches (always/never-taken
/// verdicts from src/analysis/absint) go to the static fold table; the BIT
/// is then filled as before from the remaining candidates.
[[nodiscard]] FoldSelection selectWithStaticVerdicts(
    const Program& program, const ProgramProfile& profile,
    const std::map<std::uint32_t, double>& accuracyByPc,
    const SelectionConfig& config = {});

/// Profile-free, cost-aware selection driven by the static timing engine.
///
/// `ranking` is the per-branch worst-case misprediction cost from
/// analysis::timing::WcetEngine::compute (execution bound x penalty).
/// Statically-decided branches go to the static fold table as usual (ranked
/// by their execution bound instead of profiled heat); the BIT is filled
/// with the top remaining *ProvablySafe* branches by total static cost.
/// Branches with zero static cost (unreachable on any bounded path) are
/// skipped.  Candidate::execs carries the execution bound and
/// Candidate::score the total cost; the profile-only fields (takenRate,
/// accuracy, foldableFraction) stay at their defaults.
[[nodiscard]] FoldSelection selectBranchesByStaticCost(
    const Program& program,
    const std::vector<analysis::timing::BranchCostRecord>& ranking,
    const SelectionConfig& config = {});

/// Counters one cost-aware selection publishes (the `selection.static_cost_*`
/// namespace).  A default-constructed snapshot publishes zeros so
/// `asbr-stats counters` can enumerate the names.
struct StaticCostSelectionMetrics {
    std::uint64_t candidates = 0;   ///< branches in the input cost ranking
    std::uint64_t staticFolds = 0;  ///< static-table folds selected
    std::uint64_t bitResidents = 0; ///< BIT slots filled by total static cost

    /// Fill the selection-side counters from a selection result.
    void countSelection(const FoldSelection& selection);
    void publish(MetricRegistry& registry) const;
};

}  // namespace asbr

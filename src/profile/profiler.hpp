// Branch profiling over a functional run.
//
// For every conditional branch the profiler records execution count, taken
// count, and the dynamic def-to-branch distance distribution against the
// three ASBR thresholds (2 = EX-end update, 3 = post-EX forwarding,
// 4 = commit update).  The distance is measured in committed instructions
// between the last producer of the branch's condition register and the
// branch itself — the paper's "distance" property (Section 5).
#pragma once

#include <cstdint>
#include <map>

#include "asm/program.hpp"
#include "mem/memory.hpp"

namespace asbr {

/// Dynamic statistics for one conditional-branch site.
struct BranchProfile {
    std::uint32_t pc = 0;
    std::uint64_t execs = 0;
    std::uint64_t taken = 0;
    /// Executions whose predicate-defining instruction was at least
    /// N dynamic instructions before the branch.
    std::uint64_t distGe2 = 0;
    std::uint64_t distGe3 = 0;
    std::uint64_t distGe4 = 0;
    std::uint64_t minDistance = UINT64_MAX;  ///< smallest observed distance

    [[nodiscard]] double takenRate() const {
        return execs == 0 ? 0.0 : static_cast<double>(taken) / static_cast<double>(execs);
    }
    /// Fraction of executions foldable at a given threshold (2, 3 or 4).
    [[nodiscard]] double foldableFraction(std::uint32_t threshold) const;
};

/// Whole-program profile.
struct ProgramProfile {
    std::uint64_t instructions = 0;
    std::map<std::uint32_t, BranchProfile> branches;
};

/// Run the program functionally and collect the branch profile.
/// `memory` must already hold the program image and any workload input.
[[nodiscard]] ProgramProfile profileProgram(const Program& program, Memory& memory,
                                            std::uint64_t maxInstructions =
                                                500'000'000);

}  // namespace asbr

// Branch profiling over a functional run.
//
// For every conditional branch the profiler records execution count, taken
// count, and the dynamic def-to-branch distance distribution against the
// three ASBR thresholds (2 = EX-end update, 3 = post-EX forwarding,
// 4 = commit update).  The distance is measured in committed instructions
// between the last producer of the branch's condition register and the
// branch itself — the paper's "distance" property (Section 5).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "asm/program.hpp"
#include "bp/predictor.hpp"
#include "mem/memory.hpp"

namespace asbr {

/// Dynamic statistics for one conditional-branch site.
struct BranchProfile {
    std::uint32_t pc = 0;
    std::uint64_t execs = 0;
    std::uint64_t taken = 0;
    /// Executions whose predicate-defining instruction was at least
    /// N dynamic instructions before the branch.
    std::uint64_t distGe2 = 0;
    std::uint64_t distGe3 = 0;
    std::uint64_t distGe4 = 0;
    std::uint64_t minDistance = UINT64_MAX;  ///< smallest observed distance

    [[nodiscard]] double takenRate() const {
        return execs == 0 ? 0.0 : static_cast<double>(taken) / static_cast<double>(execs);
    }
    /// Fraction of executions foldable at a given threshold (2, 3 or 4).
    [[nodiscard]] double foldableFraction(std::uint32_t threshold) const;
};

/// Whole-program profile.
struct ProgramProfile {
    std::uint64_t instructions = 0;
    std::map<std::uint32_t, BranchProfile> branches;
};

/// Run the program functionally and collect the branch profile.
/// `memory` must already hold the program image and any workload input.
[[nodiscard]] ProgramProfile profileProgram(const Program& program, Memory& memory,
                                            std::uint64_t maxInstructions =
                                                500'000'000);

/// Per-site outcome of playing a direction predictor over the committed
/// conditional-branch stream.
struct SitePrediction {
    std::uint32_t pc = 0;
    std::uint64_t execs = 0;
    std::uint64_t mispredicts = 0;  ///< wrong fetch redirects (pipeline rules)

    [[nodiscard]] double accuracy() const {
        return execs == 0 ? 0.0
                          : static_cast<double>(execs - mispredicts) /
                                static_cast<double>(execs);
    }
};

/// Prediction profile of one program run under one predictor — what the
/// fold-selection layer consults to learn which sites a predictor loses.
struct PredictionProfile {
    std::string predictorToken;  ///< registry token that reproduces the run
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::map<std::uint32_t, SitePrediction> sites;

    [[nodiscard]] double accuracy() const {
        return branches == 0 ? 0.0
                             : static_cast<double>(branches - mispredicts) /
                                   static_cast<double>(branches);
    }
    /// Per-site accuracy map, same shape the pipeline's accuracyMap yields.
    [[nodiscard]] std::map<std::uint32_t, double> accuracyMap() const;
};

/// Play `predictor` over the committed conditional-branch stream of a
/// functional run and record per-site misprediction counts.  A prediction
/// counts as correct only when the resulting fetch redirect matches the
/// architectural successor — a taken guess with a cold or aliased BTB
/// target is a mispredict, exactly like the pipeline scores it.  The
/// predictor is reset first; `memory` must hold the program image and
/// workload input.
[[nodiscard]] PredictionProfile profilePredictions(
    const Program& program, Memory& memory, BranchPredictor& predictor,
    std::uint64_t maxInstructions = 500'000'000);

}  // namespace asbr

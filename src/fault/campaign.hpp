// Deterministic fault-injection campaign runner (docs/fault-injection.md).
//
// A campaign repeats one workload many times, flipping a single sampled bit
// of the ASBR/predictor state at a sampled cycle of each run, and classifies
// every divergence against a golden model:
//
//   golden model   — the functional ISS (src/sim/functional) executing the
//                    same program+input; architectural ground truth.
//   lockstep check — the fault-free pipeline run must reproduce the golden
//                    output/exit-code/registers exactly before any fault is
//                    injected (the campaign refuses to start otherwise).
//   watchdog       — each injected run gets a cycle bound derived from the
//                    fault-free cycle count; exceeding it is a hang.
//
// Everything is seeded: the same (workload, seed, injection count) triple
// reproduces the same sites, cycles and outcome histogram bit-for-bit, which
// is what ci/faults.sh diffs against the committed golden reports.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "asbr/asbr_unit.hpp"
#include "asm/program.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "fault/fault.hpp"
#include "mem/memory.hpp"
#include "sim/pipeline.hpp"

namespace asbr {

/// Architectural ground truth from the functional ISS.
struct GoldenResult {
    std::string output;
    std::int32_t exitCode = 0;
    std::array<std::int32_t, kNumRegs> regs{};
};

/// Everything one simulated run needs, freshly constructed per run so that
/// injected corruption can never leak between runs.  `program` must outlive
/// the run; the factory typically points it at state captured by value.
struct FaultRun {
    const Program* program = nullptr;
    Memory memory;
    std::unique_ptr<BranchPredictor> predictor;
    /// Non-owning view of `predictor` when it is bimodal (bp_counter fault
    /// sites need the concrete type); null disables the bp fault class.
    BimodalPredictor* bimodalTarget = nullptr;
    std::unique_ptr<AsbrUnit> unit;
    PipelineConfig config;
};

/// Builds a fresh FaultRun.  Called once for the golden/lockstep pair and
/// once per injection; every FaultRun it returns must be identical.
using FaultRunFactory = std::function<FaultRun()>;

/// Campaign parameters.
struct CampaignConfig {
    std::uint64_t seed = 1;         ///< fault-sampling seed (sites + cycles)
    std::uint64_t injections = 64;  ///< number of injected runs
    bool faultBdt = true;
    bool faultBit = true;
    bool faultBp = true;
    /// Watchdog for injected runs: maxCycles = cleanCycles * factor + slack.
    std::uint64_t maxCycleFactor = 4;
};

/// One injected run's full record (replayable via `asbr-faults replay`).
struct InjectionRecord {
    Injection injection;
    FaultOutcome outcome = FaultOutcome::kMasked;
    std::uint64_t cycles = 0;      ///< cycles the injected run took (0 = n/a)
    std::uint64_t recoveries = 0;  ///< parity recoveries the unit reported
    std::string detail;            ///< divergence / abort / hang description
};

/// An injection the durable engine gave up on: it failed `maxAttempts`
/// host-level attempts (wall-clock timeouts, crashes of the harness — never
/// simulated outcomes, which always classify) and was quarantined into the
/// report's `failed_jobs` section instead of aborting the campaign.
struct FailedInjection {
    std::uint64_t index = 0;  ///< sampling-order index within the campaign
    Injection injection;
    std::uint64_t attempts = 0;
    std::string error;  ///< last attempt's one-line failure
};

/// Golden model + fault-free timing, shared by all injections of a campaign.
struct CampaignContext {
    GoldenResult golden;
    std::uint64_t cleanCycles = 0;
    std::uint64_t cleanRecoveries = 0;  ///< must be 0 — asserted by computeContext
};

/// Aggregated campaign result.
struct CampaignResult {
    CampaignContext context;
    std::array<std::uint64_t, kNumFaultOutcomes> outcomes{};
    std::vector<InjectionRecord> records;

    [[nodiscard]] std::uint64_t count(FaultOutcome o) const {
        return outcomes[static_cast<std::size_t>(o)];
    }
};

/// Run the golden model and the fault-free lockstep pipeline run; throws
/// EnsureError when the pipeline diverges from the functional ISS (the
/// simulator itself is broken — no point injecting faults).
[[nodiscard]] CampaignContext computeContext(const FaultRunFactory& factory);

/// The fault-site space partitioned by enabled fault class (BDT, BIT, bp) —
/// the class mix is controlled by configuration, not by each class's raw
/// site count.  Empty classes are dropped; throws when nothing is left.
[[nodiscard]] std::vector<std::vector<FaultSite>> campaignSiteClasses(
    const FaultRunFactory& factory, const CampaignConfig& config);

/// Draw the campaign's full injection list up front, in the exact order the
/// serial campaign loop samples it (per injection: class, then site, then
/// cycle from one Xorshift64 stream seeded with config.seed).  Splitting the
/// sampling from the execution lets a parallel engine run the injections in
/// any order while reproducing the serial campaign bit for bit.
[[nodiscard]] std::vector<Injection> sampleInjections(
    const std::vector<std::vector<FaultSite>>& classes,
    const CampaignConfig& config, std::uint64_t cleanCycles);

/// Execute one injected run and classify it (see FaultOutcome).  `watchdog`
/// (optional) is chained after the injector on the cycle-hook seam — the
/// durable engine uses it for its per-job wall-clock Deadline.  Job-level
/// exceptions (JobTimeoutError, JobInterruptedError) propagate instead of
/// classifying: they describe the host run, not the simulated machine.
[[nodiscard]] InjectionRecord runInjection(const FaultRunFactory& factory,
                                           const Injection& injection,
                                           const CampaignContext& context,
                                           std::uint64_t maxCycleFactor,
                                           CycleHook* watchdog = nullptr);

/// Full campaign: context, deterministic site/cycle sampling, classification.
[[nodiscard]] CampaignResult runCampaign(const FaultRunFactory& factory,
                                         const CampaignConfig& config);

}  // namespace asbr

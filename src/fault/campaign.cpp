#include "fault/campaign.hpp"

#include <utility>

#include "sim/functional.hpp"
#include "util/ensure.hpp"
#include "util/rng.hpp"

namespace asbr {

namespace {

/// Compare a finished pipeline run against the golden model; empty string
/// means architectural agreement.
std::string divergence(const GoldenResult& golden, const PipelineResult& run) {
    if (!run.exited) return "run did not exit";
    if (run.exitCode != golden.exitCode)
        return "exit code " + std::to_string(run.exitCode) + " != " +
               std::to_string(golden.exitCode);
    if (run.output != golden.output) return "program output differs";
    for (std::uint8_t r = 0; r < kNumRegs; ++r)
        if (run.finalState.regs[r] != golden.regs[r])
            return "r" + std::to_string(r) + " = " +
                   std::to_string(run.finalState.regs[r]) + " != " +
                   std::to_string(golden.regs[r]);
    return {};
}

}  // namespace

CampaignContext computeContext(const FaultRunFactory& factory) {
    CampaignContext context;
    {
        FaultRun run = factory();
        ASBR_ENSURE(run.program != nullptr, "campaign: factory returned no program");
        FunctionalSim golden(*run.program, run.memory);
        const FunctionalResult fr = golden.run();
        ASBR_ENSURE(fr.exited, "campaign: golden model did not exit");
        context.golden.output = fr.output;
        context.golden.exitCode = fr.exitCode;
        context.golden.regs = golden.state().regs;
    }
    {
        FaultRun run = factory();
        PipelineSim sim(*run.program, run.memory, *run.predictor, run.config,
                        run.unit.get());
        const PipelineResult pr = sim.run();
        const std::string diff = divergence(context.golden, pr);
        ASBR_ENSURE(diff.empty(),
                    "campaign: fault-free pipeline run diverges from the "
                    "golden model (" + diff + ") — refusing to inject");
        context.cleanCycles = pr.stats.cycles;
        context.cleanRecoveries =
            run.unit != nullptr ? run.unit->stats().parityRecoveries : 0;
        ASBR_ENSURE(context.cleanRecoveries == 0,
                    "campaign: fault-free run reported parity recoveries");
    }
    return context;
}

namespace {

/// Chains the fault injector in front of an engine-supplied watchdog hook
/// on the single PipelineConfig::cycleHook slot.
class ChainedHook final : public CycleHook {
public:
    ChainedHook(CycleHook* first, CycleHook* second)
        : first_(first), second_(second) {}
    void onCycle(std::uint64_t cycle) override {
        first_->onCycle(cycle);
        second_->onCycle(cycle);
    }

private:
    CycleHook* first_;
    CycleHook* second_;
};

}  // namespace

InjectionRecord runInjection(const FaultRunFactory& factory,
                             const Injection& injection,
                             const CampaignContext& context,
                             std::uint64_t maxCycleFactor,
                             CycleHook* watchdog) {
    InjectionRecord record;
    record.injection = injection;

    FaultRun run = factory();
    FaultInjector injector(injection, *run.unit, run.bimodalTarget);
    ChainedHook chained(&injector, watchdog);
    run.config.cycleHook =
        watchdog != nullptr ? static_cast<CycleHook*>(&chained) : &injector;
    run.config.maxCycles =
        context.cleanCycles * maxCycleFactor + 10'000;

    try {
        PipelineSim sim(*run.program, run.memory, *run.predictor, run.config,
                        run.unit.get());
        const PipelineResult pr = sim.run();
        record.cycles = pr.stats.cycles;
        record.recoveries = run.unit->stats().parityRecoveries;
        const std::string diff = divergence(context.golden, pr);
        if (!diff.empty()) {
            record.outcome = FaultOutcome::kSdc;
            record.detail = diff;
        } else if (record.recoveries > 0) {
            record.outcome = FaultOutcome::kDetectedRecovered;
        } else {
            record.outcome = FaultOutcome::kMasked;
        }
    } catch (const JobTimeoutError&) {
        // Host wall-clock bound, not a simulated hang — the durable engine
        // retries/quarantines; never classify it as a fault outcome.
        throw;
    } catch (const JobInterruptedError&) {
        throw;  // cooperative SIGINT/SIGTERM checkpoint, same reasoning
    } catch (const SimTimeoutError& e) {
        record.outcome = FaultOutcome::kHang;
        record.recoveries = run.unit->stats().parityRecoveries;
        record.detail = e.what();
    } catch (const EnsureError& e) {
        // An integrity check (illegal decode, BIT/fetch mismatch, counter
        // invariant) stopped the machine: detected, but not survivable.
        record.outcome = FaultOutcome::kDetectedAborted;
        record.recoveries = run.unit->stats().parityRecoveries;
        record.detail = e.what();
    }
    return record;
}

std::vector<std::vector<FaultSite>> campaignSiteClasses(
    const FaultRunFactory& factory, const CampaignConfig& config) {
    std::vector<std::vector<FaultSite>> classes;
    FaultRun probe = factory();
    ASBR_ENSURE(probe.unit != nullptr, "campaign: factory returned no ASBR unit");
    const auto classSites = [&](bool bdt, bool bit, bool bp) {
        SiteFilter f;
        f.bdt = bdt;
        f.bit = bit;
        f.bp = bp;
        return enumerateSites(*probe.unit, probe.bimodalTarget, f);
    };
    if (config.faultBdt) classes.push_back(classSites(true, false, false));
    if (config.faultBit) classes.push_back(classSites(false, true, false));
    if (config.faultBp) classes.push_back(classSites(false, false, true));
    std::erase_if(classes, [](const auto& c) { return c.empty(); });
    ASBR_ENSURE(!classes.empty(), "campaign: no fault sites to sample");
    return classes;
}

std::vector<Injection> sampleInjections(
    const std::vector<std::vector<FaultSite>>& classes,
    const CampaignConfig& config, std::uint64_t cleanCycles) {
    Xorshift64 rng(config.seed);
    std::vector<Injection> injections;
    injections.reserve(config.injections);
    for (std::uint64_t i = 0; i < config.injections; ++i) {
        const auto& sites = classes[rng.below(classes.size())];
        Injection injection;
        injection.site = sites[rng.below(sites.size())];
        injection.cycle = 1 + rng.below(cleanCycles);
        injections.push_back(injection);
    }
    return injections;
}

CampaignResult runCampaign(const FaultRunFactory& factory,
                           const CampaignConfig& config) {
    CampaignResult result;
    result.context = computeContext(factory);

    const std::vector<std::vector<FaultSite>> classes =
        campaignSiteClasses(factory, config);
    result.records.reserve(config.injections);
    for (const Injection& injection :
         sampleInjections(classes, config, result.context.cleanCycles)) {
        InjectionRecord record =
            runInjection(factory, injection, result.context, config.maxCycleFactor);
        ++result.outcomes[static_cast<std::size_t>(record.outcome)];
        result.records.push_back(std::move(record));
    }
    return result;
}

}  // namespace asbr

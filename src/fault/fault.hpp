// Single-bit fault model for the ASBR microarchitectural state
// (docs/fault-injection.md).
//
// A FaultSite names one flippable storage bit in the customization hardware:
// a BDT condition bit, a BDT validity-counter bit, a BDT parity bit, any bit
// of a BIT entry field, or a bit of a bimodal predictor counter.  Sites are
// enumerated from a loaded unit, sampled deterministically by the campaign
// runner (src/fault/campaign.hpp), and applied at an exact cycle through the
// pipeline's CycleHook.  Architectural state (registers, memory, PC) is
// deliberately out of scope — the paper's addition is the table hardware, so
// that is what the soft-error study targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asbr/asbr_unit.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "sim/pipeline.hpp"
#include "util/json.hpp"

namespace asbr {

/// Which storage structure a fault site lives in.
enum class FaultUnit : std::uint8_t {
    kBdtCond = 0,     ///< a precomputed direction bit
    kBdtCounter = 1,  ///< a bit of the 3-bit validity counter
    kBdtParity = 2,   ///< the BDT entry's parity bit
    kBit = 3,         ///< any bit of a BIT entry (field selects which word)
    kBpCounter = 4,   ///< a bit of a bimodal 2-bit counter
};

[[nodiscard]] const char* faultUnitName(FaultUnit unit);

/// One flippable bit.  Only the fields relevant to `unit` are meaningful;
/// the rest stay zero so sites compare and serialize canonically.
struct FaultSite {
    FaultUnit unit = FaultUnit::kBdtCond;
    std::uint32_t reg = 0;    ///< BDT register (kBdt*)
    std::uint32_t cond = 0;   ///< condition index (kBdtCond)
    std::uint32_t bank = 0;   ///< BIT bank (kBit)
    std::uint32_t entry = 0;  ///< BIT entry index (kBit)
    BitField field = BitField::kPc;  ///< BIT field (kBit)
    std::uint32_t index = 0;  ///< counter index (kBpCounter)
    std::uint32_t bit = 0;    ///< bit within the field/counter

    [[nodiscard]] bool operator==(const FaultSite&) const = default;
};

/// Human-readable one-liner, e.g. "bdt_cond r4 cond=2".
[[nodiscard]] std::string describeSite(const FaultSite& site);

/// JSON round-trip (used by asbr.fault_report and `asbr-faults replay`).
[[nodiscard]] JsonValue faultSiteJson(const FaultSite& site);
/// Throws EnsureError on a malformed site object.
[[nodiscard]] FaultSite faultSiteFromJson(const JsonValue& value);

/// One scheduled fault: flip `site` when the pipeline reaches `cycle`.
struct Injection {
    FaultSite site;
    std::uint64_t cycle = 0;
};

/// Classification of one injected run against the golden model.
enum class FaultOutcome : std::uint8_t {
    kMasked = 0,            ///< result identical to golden; no recovery fired
    kDetectedRecovered = 1, ///< result identical; parity recovery fired
    kDetectedAborted = 2,   ///< an integrity check (EnsureError) stopped the run
    kSdc = 3,               ///< silent data corruption: wrong result, no alarm
    kHang = 4,              ///< watchdog expired (SimTimeoutError)
};

inline constexpr std::size_t kNumFaultOutcomes = 5;

[[nodiscard]] const char* faultOutcomeName(FaultOutcome outcome);

/// Flip the bit named by `site` in the target hardware.  `bimodal` may be
/// null when the campaign does not target predictor counters.
void applySite(const FaultSite& site, AsbrUnit& unit,
               BimodalPredictor* bimodal);

/// Site-enumeration filter.
struct SiteFilter {
    bool bdt = true;
    bool bit = true;
    bool bp = true;
};

/// Every flippable bit of the loaded unit (BIT bank 0 plus the BDT entries
/// of the condition registers bank 0 references) and, when `bimodal` is
/// non-null, every predictor counter bit.  Order is deterministic.
[[nodiscard]] std::vector<FaultSite> enumerateSites(
    const AsbrUnit& unit, const BimodalPredictor* bimodal,
    const SiteFilter& filter = {});

/// CycleHook that fires one injection at its scheduled cycle.
class FaultInjector final : public CycleHook {
public:
    FaultInjector(const Injection& injection, AsbrUnit& unit,
                  BimodalPredictor* bimodal)
        : injection_(injection), unit_(unit), bimodal_(bimodal) {}

    void onCycle(std::uint64_t cycle) override {
        if (fired_ || cycle != injection_.cycle) return;
        fired_ = true;
        applySite(injection_.site, unit_, bimodal_);
    }

    [[nodiscard]] bool fired() const { return fired_; }

private:
    Injection injection_;
    AsbrUnit& unit_;
    BimodalPredictor* bimodal_;
    bool fired_ = false;
};

}  // namespace asbr

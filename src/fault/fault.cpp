#include "fault/fault.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace asbr {

const char* faultUnitName(FaultUnit unit) {
    switch (unit) {
        case FaultUnit::kBdtCond: return "bdt_cond";
        case FaultUnit::kBdtCounter: return "bdt_counter";
        case FaultUnit::kBdtParity: return "bdt_parity";
        case FaultUnit::kBit: return "bit";
        case FaultUnit::kBpCounter: return "bp_counter";
    }
    ASBR_ENSURE(false, "fault: bad unit enum");
    return "";
}

namespace {

FaultUnit faultUnitFromName(const std::string& name) {
    for (const FaultUnit u :
         {FaultUnit::kBdtCond, FaultUnit::kBdtCounter, FaultUnit::kBdtParity,
          FaultUnit::kBit, FaultUnit::kBpCounter})
        if (name == faultUnitName(u)) return u;
    ASBR_ENSURE(false, "fault: unknown unit name '" + name + "'");
    return FaultUnit::kBdtCond;
}

const char* bitFieldName(BitField field) {
    switch (field) {
        case BitField::kPc: return "pc";
        case BitField::kDi: return "di";
        case BitField::kBta: return "bta";
        case BitField::kBti: return "bti";
        case BitField::kBfi: return "bfi";
        case BitField::kParity: return "parity";
    }
    ASBR_ENSURE(false, "fault: bad BIT field enum");
    return "";
}

BitField bitFieldFromName(const std::string& name) {
    for (const BitField f : {BitField::kPc, BitField::kDi, BitField::kBta,
                             BitField::kBti, BitField::kBfi, BitField::kParity})
        if (name == bitFieldName(f)) return f;
    ASBR_ENSURE(false, "fault: unknown BIT field name '" + name + "'");
    return BitField::kPc;
}

std::uint32_t uintField(const JsonValue& obj, const char* key) {
    const JsonValue* v = obj.find(key);
    ASBR_ENSURE(v != nullptr && v->isNumber(),
                std::string("fault site: missing numeric field '") + key + "'");
    return static_cast<std::uint32_t>(v->asUint());
}

}  // namespace

std::string describeSite(const FaultSite& site) {
    std::string out = faultUnitName(site.unit);
    switch (site.unit) {
        case FaultUnit::kBdtCond:
            out += " r" + std::to_string(site.reg) +
                   " cond=" + std::to_string(site.cond);
            break;
        case FaultUnit::kBdtCounter:
            out += " r" + std::to_string(site.reg) +
                   " bit=" + std::to_string(site.bit);
            break;
        case FaultUnit::kBdtParity:
            out += " r" + std::to_string(site.reg);
            break;
        case FaultUnit::kBit:
            out += " bank=" + std::to_string(site.bank) +
                   " entry=" + std::to_string(site.entry) + " field=" +
                   bitFieldName(site.field) + " bit=" + std::to_string(site.bit);
            break;
        case FaultUnit::kBpCounter:
            out += " index=" + std::to_string(site.index) +
                   " bit=" + std::to_string(site.bit);
            break;
    }
    return out;
}

JsonValue faultSiteJson(const FaultSite& site) {
    JsonObject obj;
    obj.emplace_back("unit", faultUnitName(site.unit));
    obj.emplace_back("reg", static_cast<std::uint64_t>(site.reg));
    obj.emplace_back("cond", static_cast<std::uint64_t>(site.cond));
    obj.emplace_back("bank", static_cast<std::uint64_t>(site.bank));
    obj.emplace_back("entry", static_cast<std::uint64_t>(site.entry));
    obj.emplace_back("field", bitFieldName(site.field));
    obj.emplace_back("index", static_cast<std::uint64_t>(site.index));
    obj.emplace_back("bit", static_cast<std::uint64_t>(site.bit));
    return JsonValue{std::move(obj)};
}

FaultSite faultSiteFromJson(const JsonValue& value) {
    ASBR_ENSURE(value.isObject(), "fault site: not a JSON object");
    const JsonValue* unit = value.find("unit");
    ASBR_ENSURE(unit != nullptr && unit->isString(),
                "fault site: missing string field 'unit'");
    const JsonValue* field = value.find("field");
    ASBR_ENSURE(field != nullptr && field->isString(),
                "fault site: missing string field 'field'");
    FaultSite site;
    site.unit = faultUnitFromName(unit->asString());
    site.reg = uintField(value, "reg");
    site.cond = uintField(value, "cond");
    site.bank = uintField(value, "bank");
    site.entry = uintField(value, "entry");
    site.field = bitFieldFromName(field->asString());
    site.index = uintField(value, "index");
    site.bit = uintField(value, "bit");
    return site;
}

const char* faultOutcomeName(FaultOutcome outcome) {
    switch (outcome) {
        case FaultOutcome::kMasked: return "masked";
        case FaultOutcome::kDetectedRecovered: return "detected_recovered";
        case FaultOutcome::kDetectedAborted: return "detected_aborted";
        case FaultOutcome::kSdc: return "sdc";
        case FaultOutcome::kHang: return "hang";
    }
    ASBR_ENSURE(false, "fault: bad outcome enum");
    return "";
}

void applySite(const FaultSite& site, AsbrUnit& unit,
               BimodalPredictor* bimodal) {
    switch (site.unit) {
        case FaultUnit::kBdtCond:
            unit.bdtFaultPort().flipConditionBit(
                static_cast<std::uint8_t>(site.reg),
                static_cast<Cond>(site.cond));
            break;
        case FaultUnit::kBdtCounter:
            unit.bdtFaultPort().flipPendingBit(
                static_cast<std::uint8_t>(site.reg), site.bit);
            break;
        case FaultUnit::kBdtParity:
            unit.bdtFaultPort().flipParityBit(
                static_cast<std::uint8_t>(site.reg));
            break;
        case FaultUnit::kBit:
            unit.bitFaultPort().flipEntryBit(site.bank, site.entry, site.field,
                                             site.bit);
            break;
        case FaultUnit::kBpCounter:
            ASBR_ENSURE(bimodal != nullptr,
                        "fault: bp_counter site needs a bimodal predictor");
            bimodal->flipCounterBit(site.index, site.bit);
            break;
    }
}

std::vector<FaultSite> enumerateSites(const AsbrUnit& unit,
                                      const BimodalPredictor* bimodal,
                                      const SiteFilter& filter) {
    std::vector<FaultSite> sites;
    const BranchIdentificationTable& bit = unit.bit();
    if (filter.bdt) {
        // The BDT entries that matter are the condition registers bank 0
        // references; flips elsewhere can never reach the fold logic.
        std::vector<std::uint8_t> regs;
        for (std::size_t i = 0; i < bit.entryCount(0); ++i)
            regs.push_back(bit.entryInfo(0, i).conditionReg);
        std::sort(regs.begin(), regs.end());
        regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
        for (const std::uint8_t r : regs) {
            for (std::uint32_t c = 0; c < static_cast<std::uint32_t>(kNumConds);
                 ++c) {
                FaultSite s;
                s.unit = FaultUnit::kBdtCond;
                s.reg = r;
                s.cond = c;
                sites.push_back(s);
            }
            for (std::uint32_t b = 0; b < 3; ++b) {
                FaultSite s;
                s.unit = FaultUnit::kBdtCounter;
                s.reg = r;
                s.bit = b;
                sites.push_back(s);
            }
            FaultSite p;
            p.unit = FaultUnit::kBdtParity;
            p.reg = r;
            sites.push_back(p);
        }
    }
    if (filter.bit) {
        for (std::size_t e = 0; e < bit.entryCount(0); ++e) {
            for (const BitField f :
                 {BitField::kPc, BitField::kDi, BitField::kBta, BitField::kBti,
                  BitField::kBfi, BitField::kParity}) {
                for (std::uint32_t b = 0; b < bitFieldWidth(f); ++b) {
                    FaultSite s;
                    s.unit = FaultUnit::kBit;
                    s.bank = 0;
                    s.entry = static_cast<std::uint32_t>(e);
                    s.field = f;
                    s.bit = b;
                    sites.push_back(s);
                }
            }
        }
    }
    if (filter.bp && bimodal != nullptr) {
        for (std::uint32_t i = 0; i < bimodal->counterCount(); ++i)
            for (std::uint32_t b = 0; b < 2; ++b) {
                FaultSite s;
                s.unit = FaultUnit::kBpCounter;
                s.index = i;
                s.bit = b;
                sites.push_back(s);
            }
    }
    return sites;
}

}  // namespace asbr

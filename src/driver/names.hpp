// Canonical CLI tokens for workloads, predictors and BDT update stages.
//
// Every driver-layer surface — SimJob specs, the asbr-stats / asbr-faults /
// asbr-sweep CLIs, fault-report metadata — names things with these tokens,
// so a token written into a report can always be resolved back into the
// exact object it described (asbr-faults replay depends on this).
// Previously each tool kept its own copy of these tables; this is the one
// authoritative set.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "bp/predictor.hpp"
#include "sim/fetch_customizer.hpp"
#include "workloads/workloads.hpp"

namespace asbr::driver {

/// "adpcm-enc" | "adpcm-dec" | "g721-enc" | "g721-dec" | "g711-enc" |
/// "g711-dec" -> BenchId; nullopt for anything else.
[[nodiscard]] std::optional<BenchId> benchFromToken(const std::string& token);

/// The CLI token for a workload (inverse of benchFromToken).
[[nodiscard]] const char* benchToken(BenchId id);

/// Help-text fragment listing every workload token, '|'-separated.
[[nodiscard]] const char* benchTokenList();

/// Resolve a predictor registry token (bp/registry.hpp) — e.g. "bimodal",
/// "tage:h8-16-32-64", "perceptron:n256" — into a freshly constructed
/// predictor; nullptr for unknown tokens or malformed parameters.  When
/// `error` is non-null it receives the registry's structured one-line
/// diagnostic (offending token plus every registered token grammar).
[[nodiscard]] std::unique_ptr<BranchPredictor> makePredictorByToken(
    const std::string& token, std::string* error = nullptr);

/// Help-text fragment listing every predictor family token, '|'-separated
/// (sourced from the PredictorRegistry).
[[nodiscard]] std::string predictorTokenList();

/// "ex_end" | "mem_end" | "commit" -> ValueStage; nullopt otherwise.
[[nodiscard]] std::optional<ValueStage> stageFromToken(const std::string& token);

/// Paper branch-selection counts: 16 for G.721 encode, 15 for decode, 4 for
/// ADPCM encode, 3 for decode (8 for the G.711 extension pair).
[[nodiscard]] std::size_t paperBitEntries(BenchId id);

/// Threshold (2/3/4) implied by a BDT update stage.
[[nodiscard]] std::uint32_t thresholdFor(ValueStage stage);

}  // namespace asbr::driver

// Parameter-grid expansion for asbr-sweep: cross-product a set of workload,
// predictor, BIT-size and update-stage axes into a flat SimJob batch the
// engine runs in one call.  Expansion order is fixed (workload-major, then
// predictor, then BIT size, then stage) so the job list — and therefore the
// sweep report — is independent of how the batch is later scheduled.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "driver/cli.hpp"
#include "driver/job.hpp"
#include "sim/fetch_customizer.hpp"
#include "workloads/workloads.hpp"

namespace asbr::driver {

struct SweepGrid {
    std::vector<BenchId> workloads;          ///< empty = all six benchmarks
    std::vector<std::string> predictors{"bimodal"};
    std::vector<std::size_t> bitSizes{0};    ///< 0 = the paper's count
    std::vector<ValueStage> stages{ValueStage::kMemEnd};
    bool parityProtected = false;
    bool staticFolds = false;
    /// Predictor-aware fold selection on every ASBR point: fold only the
    /// branches each point's own predictor demonstrably loses.
    bool predictorAware = false;
    /// Also run each workload x predictor point without ASBR, before its
    /// ASBR points, for side-by-side baselines in one report.
    bool includeBaseline = false;
};

/// Expand the grid into jobs.  Samples/seed come from the shared options
/// (per-workload sample counts via samplesFor); every job is tagged
/// figure = "sweep".
[[nodiscard]] std::vector<SimJob> expandSweep(const SweepGrid& grid,
                                              const CliOptions& options);

}  // namespace asbr::driver

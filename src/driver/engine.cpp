#include "driver/engine.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "driver/cli.hpp"
#include "bp/bimodal.hpp"
#include "driver/deadline.hpp"
#include "driver/journal.hpp"
#include "driver/names.hpp"
#include "driver/pool.hpp"
#include "report/fault_report.hpp"
#include "report/report.hpp"
#include "util/ensure.hpp"

namespace asbr::driver {

SimEngine::SimEngine(EngineConfig config) : config_(config) {}

EngineConfig engineConfigFor(const CliOptions& options) {
    EngineConfig config;
    config.threads = options.threads;
    config.jobTimeoutMs = options.jobTimeoutMs;
    config.maxAttempts = options.maxAttempts;
    return config;
}

WorkloadKey SimEngine::workloadKeyFor(const SimJob& job) const {
    WorkloadKey key;
    key.workload = job.workload;
    key.scheduled = job.scheduled;
    key.seed = job.seed;
    const std::size_t capacity = benchMaxSamples(job.workload);
    key.samples =
        job.samples == 0 ? capacity : std::min(job.samples, capacity);
    return key;
}

SelectionKey SimEngine::selectionKeyFor(const SimJob& job) const {
    SelectionKey key;
    key.workload = workloadKeyFor(job);
    key.bitEntries =
        job.bitEntries != 0 ? job.bitEntries : paperBitEntries(job.workload);
    key.updateStage = job.updateStage;
    key.useAccuracy = job.accuracyRef;
    key.staticFolds = job.staticFolds;
    key.predictorAware = job.predictorAware;
    if (job.predictorAware) key.predictorToken = job.predictor;
    return key;
}

std::shared_ptr<const WorkloadArtifacts> SimEngine::workloadFor(
    const SimJob& job) {
    return cache_.workload(workloadKeyFor(job));
}

std::shared_ptr<const SelectionArtifacts> SimEngine::selectionFor(
    const SimJob& job) {
    return cache_.selection(selectionKeyFor(job));
}

std::string SimEngine::jobKey(const SimJob& job) const {
    const WorkloadKey w = workloadKeyFor(job);
    std::string key = benchToken(job.workload);
    key += "-s" + std::to_string(w.seed);
    key += "-n" + std::to_string(w.samples);
    if (w.scheduled) key += "-sched";
    // Parameterized registry tokens contain ':' (e.g. "tage:h8-16"); keys
    // double as journal artifact paths, so map it to the fs-safe '+'.
    key += "-";
    for (const char c : job.predictor) key.push_back(c == ':' ? '+' : c);
    if (job.asbr) {
        const SelectionKey s = selectionKeyFor(job);
        key += "-asbr-bit" + std::to_string(s.bitEntries);
        key += "-";
        key += valueStageName(s.updateStage);
        if (job.parityProtected) key += "-pp";
        if (s.staticFolds) key += "-sf";
        if (s.predictorAware) key += "-pa";
        if (!s.useAccuracy) key += "-noacc";
    } else {
        key += "-base";
    }
    if (job.sampled) {
        key += "-sample" + std::to_string(job.sampling.warmup) + "x" +
               std::to_string(job.sampling.measure) + "x" +
               std::to_string(job.sampling.skip);
        if (job.sampleReference) key += "-ref";
    }
    // The figure label lands in the report meta, so two keys that differ
    // only by figure must not alias (sanitized: keys are fs-safe).
    if (!job.figure.empty()) {
        key += "-f";
        for (const char c : job.figure) {
            const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.';
            key.push_back(ok ? c : '_');
        }
    }
    return key;
}

std::string SimEngine::manifestDigest(const std::vector<SimJob>& jobs) const {
    std::string all;
    for (const SimJob& job : jobs) {
        all += jobKey(job);
        all += '\n';
    }
    return fnv1a64Hex(all);
}

std::string SimEngine::campaignManifestDigest(
    const SimJob& job, const CampaignConfig& campaign) const {
    std::string all = jobKey(job);
    all += "|campaign|seed=" + std::to_string(campaign.seed);
    all += "|injections=" + std::to_string(campaign.injections);
    all += "|bdt=" + std::to_string(campaign.faultBdt);
    all += "|bit=" + std::to_string(campaign.faultBit);
    all += "|bp=" + std::to_string(campaign.faultBp);
    all += "|mcf=" + std::to_string(campaign.maxCycleFactor);
    return fnv1a64Hex(all);
}

JobResult SimEngine::execute(const SimJob& job, Deadline* deadline) {
    const WorkloadKey workloadKey = workloadKeyFor(job);
    const auto workload = cache_.workload(workloadKey);
    std::string predictorError;
    auto predictor = makePredictorByToken(job.predictor, &predictorError);
    ASBR_ENSURE(predictor != nullptr, "engine: " + predictorError);

    std::shared_ptr<const SelectionArtifacts> selection;
    std::unique_ptr<AsbrUnit> unit;
    if (job.asbr) {
        selection = cache_.selection(selectionKeyFor(job));
        unit = selection->makeUnit(job.parityProtected);
    }

    JobResult out;
    PipelineConfig pipelineConfig;
    if (job.trace) {
        out.tracer = std::make_shared<Tracer>(job.traceConfig);
        pipelineConfig.tracer = out.tracer.get();
    }
    // The wall-clock watchdog rides the cycle-hook seam; an inert deadline
    // is never installed, so un-watched runs keep a null cycleHook.
    if (deadline != nullptr && deadline->active())
        pipelineConfig.cycleHook = deadline;

    const auto simStart = std::chrono::steady_clock::now();
    PipelineStats runStats;
    if (job.sampled) {
        auto sampled = std::make_shared<SampledResult>(
            runSampledPipeline(workload->prepared(), *predictor, unit.get(),
                               job.sampling, pipelineConfig));
        jobsRun_.fetch_add(1, std::memory_order_relaxed);
        busyCycles_.fetch_add(sampled->measuredCycles,
                              std::memory_order_relaxed);
        runStats = sampled->stats;
        out.sampled = std::move(sampled);
        if (job.sampleReference) {
            // The full cycle-accurate reference runs on fresh hardware state
            // (the sampled run's predictor/unit are already warm-polluted).
            auto refPredictor = makePredictorByToken(job.predictor);
            std::unique_ptr<AsbrUnit> refUnit;
            if (selection != nullptr)
                refUnit = selection->makeUnit(job.parityProtected);
            const PipelineResult ref =
                runPipeline(workload->prepared(), *refPredictor, refUnit.get(),
                            pipelineConfig);
            jobsRun_.fetch_add(1, std::memory_order_relaxed);
            busyCycles_.fetch_add(ref.stats.cycles, std::memory_order_relaxed);
            out.hasReference = true;
            out.referenceCycles = ref.stats.cycles;
            out.referenceCommitted = ref.stats.committed;
        }
    } else {
        const PipelineResult result = runPipeline(
            workload->prepared(), *predictor, unit.get(), pipelineConfig);
        jobsRun_.fetch_add(1, std::memory_order_relaxed);
        busyCycles_.fetch_add(result.stats.cycles, std::memory_order_relaxed);
        runStats = result.stats;
    }
    out.simSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      simStart)
            .count();

    RunMeta meta;
    meta.benchmark = benchName(job.workload);
    meta.predictor = predictor->name();
    meta.predictorToken = predictor->token();
    meta.figure = job.figure;
    meta.seed = job.seed;
    meta.samples = workloadKey.samples;
    meta.scheduled = job.scheduled;
    if (unit != nullptr) {
        meta.asbr = true;
        meta.bitEntries = unit->config().bitCapacity;
        meta.updateStage = valueStageName(unit->config().updateStage);
        meta.predictorAware = job.predictorAware;
    }

    out.stats = runStats;
    out.report =
        makeSimReport(std::move(meta), runStats, predictor.get(), unit.get());
    if (out.sampled != nullptr) out.sampled->publish(out.report.registry);
    if (unit != nullptr) {
        out.asbr = true;
        out.candidates = selection->candidates();
        out.staticFoldCount = selection->staticCandidates().size();
        out.bitSlotsReclaimed = selection->bitSlotsReclaimed();
        out.unitStats = unit->stats();
        out.unitStorageBits = unit->storageBits();
        if (job.predictorAware) {
            const PredictorAwareSelectionMetrics& aware =
                selection->awareMetrics();
            out.predictorAware = true;
            out.awareHardSites = aware.hardSites;
            out.awareKeptForPredictor = aware.keptForPredictor;
            out.awareReclaimedSlots = aware.reclaimedSlots;
            aware.publish(out.report.registry);
        }
    }
    out.predictorStorageBits = predictor->storageBits();
    return out;
}

JobResult SimEngine::executeWithRetry(const SimJob& job) {
    const std::uint64_t maxAttempts =
        std::max<std::uint64_t>(1, config_.maxAttempts);
    for (std::uint64_t attempt = 1;; ++attempt) {
        try {
            Deadline deadline(config_.jobTimeoutMs);
            return execute(job, &deadline);
        } catch (const JobInterruptedError&) {
            throw;  // a checkpoint request is not a retryable failure
        } catch (const std::exception&) {
            if (attempt >= maxAttempts) throw;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffDelayMs(attempt + 1)));
        }
    }
}

JobResult SimEngine::runOne(const SimJob& job) {
    return executeWithRetry(job);
}

std::vector<JobResult> SimEngine::run(const std::vector<SimJob>& jobs) {
    std::vector<JobResult> results(jobs.size());
    parallelFor(jobs.size(), config_.threads,
                [&](std::size_t i) { results[i] = executeWithRetry(jobs[i]); });
    return results;
}

CellOutcome SimEngine::runDurableOne(const SimJob& job,
                                     const DurablePolicy& policy,
                                     JobJournal* journal) {
    CellOutcome cell;
    cell.key = jobKey(job);

    const JournalEntry* prior =
        journal != nullptr ? journal->entry(cell.key) : nullptr;
    const std::uint64_t priorFailures =
        prior != nullptr ? prior->failedAttempts : 0;
    if (prior != nullptr && prior->done) {
        if (const auto bytes =
                journal->readArtifact(prior->artifactPath, prior->resultDigest)) {
            const JsonParseResult parsed = parseJson(*bytes);
            if (parsed.ok()) {
                cell.status = CellStatus::kOk;
                cell.attempts = prior->doneAttempt;
                cell.resumed = true;
                cell.report = *parsed.value;
                jobsResumed_.fetch_add(1, std::memory_order_relaxed);
                return cell;
            }
        }
        // Missing/corrupt artifact: fall through and recompute.  Attempt
        // numbering is unaffected (the crash-free run's bytes must still
        // reproduce), and the fresh artifact overwrites the corrupt one.
    }

    const std::uint64_t maxAttempts =
        std::max<std::uint64_t>(1, policy.maxAttempts);
    if (priorFailures >= maxAttempts) {
        // Quarantined in a previous process; stays quarantined on resume
        // unless --max-attempts was raised.
        cell.status = CellStatus::kFailed;
        cell.attempts = priorFailures;
        cell.error = prior->lastError;
        return cell;
    }

    for (std::uint64_t attempt = priorFailures + 1;; ++attempt) {
        if (policy.interrupted != nullptr &&
            policy.interrupted->load(std::memory_order_relaxed)) {
            cell.status = CellStatus::kSkipped;
            return cell;
        }
        if (journal != nullptr) journal->recordStart(cell.key, attempt);
        try {
            Deadline deadline(policy.jobTimeoutMs, policy.interrupted);
            const JobResult result = execute(job, &deadline);
            cell.report = simReportJson(result.report);
            if (journal != nullptr) {
                const std::string bytes = cell.report.dump(2) + "\n";
                const std::string artifact =
                    JobJournal::artifactPathFor(cell.key);
                journal->writeArtifact(artifact, bytes);
                journal->recordDone(cell.key, attempt, artifact,
                                    fnv1a64Hex(bytes));
            }
            cell.status = CellStatus::kOk;
            cell.attempts = attempt;
            return cell;
        } catch (const JobInterruptedError&) {
            // Deliberately no journal record: the attempt never concluded,
            // exactly like a crash — resume re-runs it with the same
            // attempt number and reproduces the uninterrupted bytes.
            cell.status = CellStatus::kSkipped;
            return cell;
        } catch (const std::exception& e) {
            if (journal != nullptr)
                journal->recordFailed(cell.key, attempt, e.what());
            if (attempt >= maxAttempts) {
                cell.status = CellStatus::kFailed;
                cell.attempts = attempt;
                cell.error = e.what();
                return cell;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoffDelayMs(attempt + 1)));
        }
    }
}

DurableRunResult SimEngine::runDurable(const std::vector<SimJob>& jobs,
                                       const DurablePolicy& policy) {
    ASBR_ENSURE(!policy.resume || !policy.journalDir.empty(),
                "engine: resume requires a journal directory");
    std::unique_ptr<JobJournal> journal;
    if (!policy.journalDir.empty())
        journal = std::make_unique<JobJournal>(policy.journalDir, policy.resume,
                                               manifestDigest(jobs),
                                               jobs.size());
    DurableRunResult out;
    out.cells.resize(jobs.size());
    parallelFor(jobs.size(), config_.threads, [&](std::size_t i) {
        out.cells[i] = runDurableOne(jobs[i], policy, journal.get());
    });
    out.resumedJobs = 0;
    for (const CellOutcome& cell : out.cells)
        if (cell.resumed) ++out.resumedJobs;
    out.interrupted =
        out.countWith(CellStatus::kSkipped) > 0 ||
        (policy.interrupted != nullptr &&
         policy.interrupted->load(std::memory_order_relaxed));
    return out;
}

FaultRunFactory SimEngine::faultFactory(const SimJob& job) {
    ASBR_ENSURE(job.asbr, "engine: fault campaigns require an ASBR job");
    const auto workload = workloadFor(job);
    const auto selection = selectionFor(job);
    const std::string token = job.predictor;
    const bool parityProtected = job.parityProtected;
    return [workload, selection, token, parityProtected] {
        FaultRun run;
        run.program = &workload->prepared().program;
        run.memory = makeMemory(workload->prepared());
        auto predictor = makePredictorByToken(token);
        ASBR_ENSURE(predictor != nullptr,
                    "engine: unknown predictor token '" + token + "'");
        run.bimodalTarget = dynamic_cast<BimodalPredictor*>(predictor.get());
        run.predictor = std::move(predictor);
        run.unit = selection->makeUnit(parityProtected);
        return run;
    };
}

CampaignResult SimEngine::runCampaign(const SimJob& job,
                                      const CampaignConfig& campaign) {
    const FaultRunFactory factory = faultFactory(job);
    CampaignResult result;
    result.context = computeContext(factory);

    // Sample every injection up front in the serial campaign's RNG order,
    // then execute in parallel: the records land in sampling order, so the
    // merged result is bit-identical to the serial loop at any thread count.
    const std::vector<Injection> injections =
        sampleInjections(campaignSiteClasses(factory, campaign), campaign,
                         result.context.cleanCycles);
    result.records.resize(injections.size());
    parallelFor(injections.size(), config_.threads, [&](std::size_t i) {
        result.records[i] = runInjection(factory, injections[i], result.context,
                                         campaign.maxCycleFactor);
        jobsRun_.fetch_add(1, std::memory_order_relaxed);
        busyCycles_.fetch_add(result.records[i].cycles,
                              std::memory_order_relaxed);
    });
    for (const InjectionRecord& record : result.records)
        ++result.outcomes[static_cast<std::size_t>(record.outcome)];
    return result;
}

DurableCampaignResult SimEngine::runCampaignDurable(
    const SimJob& job, const CampaignConfig& campaign,
    const DurablePolicy& policy) {
    ASBR_ENSURE(!policy.resume || !policy.journalDir.empty(),
                "engine: resume requires a journal directory");
    const FaultRunFactory factory = faultFactory(job);
    DurableCampaignResult out;
    // Context + sampling are deterministic and cheap relative to the grid,
    // so every (re)start recomputes them instead of journaling them.
    out.result.context = computeContext(factory);
    const std::vector<Injection> injections =
        sampleInjections(campaignSiteClasses(factory, campaign), campaign,
                         out.result.context.cleanCycles);

    std::unique_ptr<JobJournal> journal;
    if (!policy.journalDir.empty())
        journal = std::make_unique<JobJournal>(
            policy.journalDir, policy.resume,
            campaignManifestDigest(job, campaign), injections.size());

    const std::uint64_t maxAttempts =
        std::max<std::uint64_t>(1, policy.maxAttempts);
    std::vector<std::optional<InjectionRecord>> records(injections.size());
    std::vector<std::optional<FailedInjection>> failed(injections.size());
    std::atomic<bool> sawSkip{false};
    std::atomic<std::uint64_t> resumedCount{0};

    parallelFor(injections.size(), config_.threads, [&](std::size_t i) {
        const std::string key = "inj" + std::to_string(i);
        const JournalEntry* prior =
            journal != nullptr ? journal->entry(key) : nullptr;
        const std::uint64_t priorFailures =
            prior != nullptr ? prior->failedAttempts : 0;
        if (prior != nullptr && prior->done) {
            if (const auto bytes = journal->readArtifact(prior->artifactPath,
                                                         prior->resultDigest)) {
                const JsonParseResult parsed = parseJson(*bytes);
                if (parsed.ok()) {
                    records[i] = injectionRecordFromJson(*parsed.value);
                    jobsResumed_.fetch_add(1, std::memory_order_relaxed);
                    resumedCount.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
            }
            // Corrupt artifact: recompute (deterministic — same bytes).
        }
        if (priorFailures >= maxAttempts) {
            FailedInjection f;
            f.index = i;
            f.injection = injections[i];
            f.attempts = priorFailures;
            f.error = prior->lastError;
            failed[i] = std::move(f);
            return;
        }
        for (std::uint64_t attempt = priorFailures + 1;; ++attempt) {
            if (policy.interrupted != nullptr &&
                policy.interrupted->load(std::memory_order_relaxed)) {
                sawSkip.store(true, std::memory_order_relaxed);
                return;
            }
            if (journal != nullptr) journal->recordStart(key, attempt);
            try {
                Deadline deadline(policy.jobTimeoutMs, policy.interrupted);
                InjectionRecord record = runInjection(
                    factory, injections[i], out.result.context,
                    campaign.maxCycleFactor,
                    deadline.active() ? &deadline : nullptr);
                jobsRun_.fetch_add(1, std::memory_order_relaxed);
                busyCycles_.fetch_add(record.cycles,
                                      std::memory_order_relaxed);
                if (journal != nullptr) {
                    const std::string bytes =
                        injectionRecordJson(record).dump(2) + "\n";
                    const std::string artifact =
                        JobJournal::artifactPathFor(key);
                    journal->writeArtifact(artifact, bytes);
                    journal->recordDone(key, attempt, artifact,
                                        fnv1a64Hex(bytes));
                }
                records[i] = std::move(record);
                return;
            } catch (const JobInterruptedError&) {
                sawSkip.store(true, std::memory_order_relaxed);
                return;
            } catch (const std::exception& e) {
                if (journal != nullptr)
                    journal->recordFailed(key, attempt, e.what());
                if (attempt >= maxAttempts) {
                    FailedInjection f;
                    f.index = i;
                    f.injection = injections[i];
                    f.attempts = attempt;
                    f.error = e.what();
                    failed[i] = std::move(f);
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoffDelayMs(attempt + 1)));
            }
        }
    });

    for (std::size_t i = 0; i < injections.size(); ++i) {
        if (records[i].has_value()) {
            ++out.result.outcomes[static_cast<std::size_t>(
                records[i]->outcome)];
            out.result.records.push_back(std::move(*records[i]));
        } else if (failed[i].has_value()) {
            out.failed.push_back(std::move(*failed[i]));
        }
    }
    out.resumedJobs = resumedCount.load(std::memory_order_relaxed);
    out.interrupted = sawSkip.load(std::memory_order_relaxed) ||
                      (policy.interrupted != nullptr &&
                       policy.interrupted->load(std::memory_order_relaxed));
    return out;
}

InjectionRecord SimEngine::replayInjection(const SimJob& job,
                                           const Injection& injection,
                                           std::uint64_t maxCycleFactor) {
    const FaultRunFactory factory = faultFactory(job);
    const CampaignContext context = computeContext(factory);
    Deadline deadline(config_.jobTimeoutMs);
    InjectionRecord record =
        runInjection(factory, injection, context, maxCycleFactor,
                     deadline.active() ? &deadline : nullptr);
    jobsRun_.fetch_add(1, std::memory_order_relaxed);
    busyCycles_.fetch_add(record.cycles, std::memory_order_relaxed);
    return record;
}

EngineStats SimEngine::stats() const {
    EngineStats stats;
    stats.jobsRun = jobsRun_.load(std::memory_order_relaxed);
    stats.cacheHits = cache_.stats().hits;
    stats.workerBusyCycles = busyCycles_.load(std::memory_order_relaxed);
    stats.jobsResumed = jobsResumed_.load(std::memory_order_relaxed);
    return stats;
}

void SimEngine::publishMetrics(MetricRegistry& registry) const {
    const EngineStats s = stats();
    registry
        .counter("engine.jobs_run",
                 "pipeline simulations the engine executed (batch jobs + "
                 "fault injections)")
        .set(s.jobsRun);
    registry
        .counter("engine.cache_hits",
                 "artifact-cache requests served from an already-resolved "
                 "key")
        .set(s.cacheHits);
    registry
        .counter("engine.worker_busy_cycles",
                 "simulated cycles executed by engine workers (not host "
                 "time)")
        .set(s.workerBusyCycles);
    registry
        .counter("engine.jobs_resumed",
                 "durable jobs satisfied from a journal artifact instead of "
                 "re-simulating")
        .set(s.jobsResumed);
}

}  // namespace asbr::driver

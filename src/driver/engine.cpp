#include "driver/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "driver/names.hpp"
#include "driver/pool.hpp"
#include "report/report.hpp"
#include "util/ensure.hpp"

namespace asbr::driver {

SimEngine::SimEngine(EngineConfig config) : config_(config) {}

WorkloadKey SimEngine::workloadKeyFor(const SimJob& job) const {
    WorkloadKey key;
    key.workload = job.workload;
    key.scheduled = job.scheduled;
    key.seed = job.seed;
    const std::size_t capacity = benchMaxSamples(job.workload);
    key.samples =
        job.samples == 0 ? capacity : std::min(job.samples, capacity);
    return key;
}

SelectionKey SimEngine::selectionKeyFor(const SimJob& job) const {
    SelectionKey key;
    key.workload = workloadKeyFor(job);
    key.bitEntries =
        job.bitEntries != 0 ? job.bitEntries : paperBitEntries(job.workload);
    key.updateStage = job.updateStage;
    key.useAccuracy = job.accuracyRef;
    key.staticFolds = job.staticFolds;
    return key;
}

std::shared_ptr<const WorkloadArtifacts> SimEngine::workloadFor(
    const SimJob& job) {
    return cache_.workload(workloadKeyFor(job));
}

std::shared_ptr<const SelectionArtifacts> SimEngine::selectionFor(
    const SimJob& job) {
    return cache_.selection(selectionKeyFor(job));
}

JobResult SimEngine::execute(const SimJob& job) {
    const WorkloadKey workloadKey = workloadKeyFor(job);
    const auto workload = cache_.workload(workloadKey);
    auto predictor = makePredictorByToken(job.predictor);
    ASBR_ENSURE(predictor != nullptr,
                "engine: unknown predictor token '" + job.predictor + "'");

    std::shared_ptr<const SelectionArtifacts> selection;
    std::unique_ptr<AsbrUnit> unit;
    if (job.asbr) {
        selection = cache_.selection(selectionKeyFor(job));
        unit = selection->makeUnit(job.parityProtected);
    }

    JobResult out;
    PipelineConfig pipelineConfig;
    if (job.trace) {
        out.tracer = std::make_shared<Tracer>(job.traceConfig);
        pipelineConfig.tracer = out.tracer.get();
    }

    const auto simStart = std::chrono::steady_clock::now();
    PipelineStats runStats;
    if (job.sampled) {
        auto sampled = std::make_shared<SampledResult>(
            runSampledPipeline(workload->prepared(), *predictor, unit.get(),
                               job.sampling, pipelineConfig));
        jobsRun_.fetch_add(1, std::memory_order_relaxed);
        busyCycles_.fetch_add(sampled->measuredCycles,
                              std::memory_order_relaxed);
        runStats = sampled->stats;
        out.sampled = std::move(sampled);
        if (job.sampleReference) {
            // The full cycle-accurate reference runs on fresh hardware state
            // (the sampled run's predictor/unit are already warm-polluted).
            auto refPredictor = makePredictorByToken(job.predictor);
            std::unique_ptr<AsbrUnit> refUnit;
            if (selection != nullptr)
                refUnit = selection->makeUnit(job.parityProtected);
            const PipelineResult ref =
                runPipeline(workload->prepared(), *refPredictor, refUnit.get(),
                            pipelineConfig);
            jobsRun_.fetch_add(1, std::memory_order_relaxed);
            busyCycles_.fetch_add(ref.stats.cycles, std::memory_order_relaxed);
            out.hasReference = true;
            out.referenceCycles = ref.stats.cycles;
            out.referenceCommitted = ref.stats.committed;
        }
    } else {
        const PipelineResult result = runPipeline(
            workload->prepared(), *predictor, unit.get(), pipelineConfig);
        jobsRun_.fetch_add(1, std::memory_order_relaxed);
        busyCycles_.fetch_add(result.stats.cycles, std::memory_order_relaxed);
        runStats = result.stats;
    }
    out.simSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      simStart)
            .count();

    RunMeta meta;
    meta.benchmark = benchName(job.workload);
    meta.predictor = predictor->name();
    meta.figure = job.figure;
    meta.seed = job.seed;
    meta.samples = workloadKey.samples;
    meta.scheduled = job.scheduled;
    if (unit != nullptr) {
        meta.asbr = true;
        meta.bitEntries = unit->config().bitCapacity;
        meta.updateStage = valueStageName(unit->config().updateStage);
    }

    out.stats = runStats;
    out.report =
        makeSimReport(std::move(meta), runStats, predictor.get(), unit.get());
    if (out.sampled != nullptr) out.sampled->publish(out.report.registry);
    if (unit != nullptr) {
        out.asbr = true;
        out.candidates = selection->candidates();
        out.staticFoldCount = selection->staticCandidates().size();
        out.bitSlotsReclaimed = selection->bitSlotsReclaimed();
        out.unitStats = unit->stats();
        out.unitStorageBits = unit->storageBits();
    }
    out.predictorStorageBits = predictor->storageBits();
    return out;
}

JobResult SimEngine::runOne(const SimJob& job) { return execute(job); }

std::vector<JobResult> SimEngine::run(const std::vector<SimJob>& jobs) {
    std::vector<JobResult> results(jobs.size());
    parallelFor(jobs.size(), config_.threads,
                [&](std::size_t i) { results[i] = execute(jobs[i]); });
    return results;
}

FaultRunFactory SimEngine::faultFactory(const SimJob& job) {
    ASBR_ENSURE(job.asbr, "engine: fault campaigns require an ASBR job");
    const auto workload = workloadFor(job);
    const auto selection = selectionFor(job);
    const std::string token = job.predictor;
    const bool parityProtected = job.parityProtected;
    return [workload, selection, token, parityProtected] {
        FaultRun run;
        run.program = &workload->prepared().program;
        run.memory = makeMemory(workload->prepared());
        auto predictor = makePredictorByToken(token);
        ASBR_ENSURE(predictor != nullptr,
                    "engine: unknown predictor token '" + token + "'");
        run.bimodalTarget = dynamic_cast<BimodalPredictor*>(predictor.get());
        run.predictor = std::move(predictor);
        run.unit = selection->makeUnit(parityProtected);
        return run;
    };
}

CampaignResult SimEngine::runCampaign(const SimJob& job,
                                      const CampaignConfig& campaign) {
    const FaultRunFactory factory = faultFactory(job);
    CampaignResult result;
    result.context = computeContext(factory);

    // Sample every injection up front in the serial campaign's RNG order,
    // then execute in parallel: the records land in sampling order, so the
    // merged result is bit-identical to the serial loop at any thread count.
    const std::vector<Injection> injections =
        sampleInjections(campaignSiteClasses(factory, campaign), campaign,
                         result.context.cleanCycles);
    result.records.resize(injections.size());
    parallelFor(injections.size(), config_.threads, [&](std::size_t i) {
        result.records[i] = runInjection(factory, injections[i], result.context,
                                         campaign.maxCycleFactor);
        jobsRun_.fetch_add(1, std::memory_order_relaxed);
        busyCycles_.fetch_add(result.records[i].cycles,
                              std::memory_order_relaxed);
    });
    for (const InjectionRecord& record : result.records)
        ++result.outcomes[static_cast<std::size_t>(record.outcome)];
    return result;
}

InjectionRecord SimEngine::replayInjection(const SimJob& job,
                                           const Injection& injection,
                                           std::uint64_t maxCycleFactor) {
    const FaultRunFactory factory = faultFactory(job);
    const CampaignContext context = computeContext(factory);
    InjectionRecord record =
        runInjection(factory, injection, context, maxCycleFactor);
    jobsRun_.fetch_add(1, std::memory_order_relaxed);
    busyCycles_.fetch_add(record.cycles, std::memory_order_relaxed);
    return record;
}

EngineStats SimEngine::stats() const {
    EngineStats stats;
    stats.jobsRun = jobsRun_.load(std::memory_order_relaxed);
    stats.cacheHits = cache_.stats().hits;
    stats.workerBusyCycles = busyCycles_.load(std::memory_order_relaxed);
    return stats;
}

void SimEngine::publishMetrics(MetricRegistry& registry) const {
    const EngineStats s = stats();
    registry
        .counter("engine.jobs_run",
                 "pipeline simulations the engine executed (batch jobs + "
                 "fault injections)")
        .set(s.jobsRun);
    registry
        .counter("engine.cache_hits",
                 "artifact-cache requests served from an already-resolved "
                 "key")
        .set(s.cacheHits);
    registry
        .counter("engine.worker_busy_cycles",
                 "simulated cycles executed by engine workers (not host "
                 "time)")
        .set(s.workerBusyCycles);
}

}  // namespace asbr::driver

// SimEngine — the one execution path every simulation consumer drives.
//
// The engine resolves declarative SimJobs against a shared ArtifactCache
// (load/profile/select once per key, simulate many times) and executes job
// batches on a fixed-size worker pool.  Results land in pre-sized slots
// keyed by submission index, so a batch's output is byte-identical whether
// it ran on 1 thread or 8 — the property ci/bench-report.sh, ci/faults.sh
// and the determinism tests pin down by diffing JSON across thread counts.
//
// Observability is injection-scoped: each job gets its own MetricRegistry
// (inside its SimReport) and, when tracing, its own Tracer instance.  The
// engine itself keeps three counters (engine.jobs_run, engine.cache_hits,
// engine.worker_busy_cycles) that callers publish into a registry of their
// choosing; all three are deterministic functions of the submitted work —
// worker_busy_cycles counts *simulated* cycles, never host time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "driver/artifacts.hpp"
#include "driver/job.hpp"
#include "fault/campaign.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace asbr::driver {

class Deadline;
class JobJournal;
struct CliOptions;

struct EngineConfig {
    /// Worker threads for batch/campaign execution (0 = hardware
    /// concurrency).  1 runs everything inline on the calling thread.
    std::size_t threads = 1;
    /// Per-job wall-clock watchdog in milliseconds (0 = off).  Exceeding it
    /// throws JobTimeoutError — host time never lands in results.
    std::uint64_t jobTimeoutMs = 0;
    /// Bounded retry for runOne/run: attempts per job before the failure is
    /// rethrown.  Retries sleep backoffDelayMs(attempt) between attempts.
    std::uint64_t maxAttempts = 1;
};

/// EngineConfig from the shared CLI options (--threads/--job-timeout/
/// --max-attempts); defined in engine.cpp so cli.hpp stays driver-light.
[[nodiscard]] EngineConfig engineConfigFor(const CliOptions& options);

/// Deterministic engine counters (see publishMetrics).
struct EngineStats {
    std::uint64_t jobsRun = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t workerBusyCycles = 0;
    std::uint64_t jobsResumed = 0;  ///< results spliced from a journal
};

/// Durable-execution policy for runDurable/runCampaignDurable
/// (docs/robustness.md).  An empty journalDir runs without persistence —
/// the watchdog/retry/quarantine semantics still apply, so tools use one
/// code path whether or not --journal was given.
struct DurablePolicy {
    std::string journalDir;  ///< write-ahead journal directory; empty = none
    bool resume = false;     ///< resume an existing journal (requires dir)
    std::uint64_t maxAttempts = 1;   ///< attempts before quarantine
    std::uint64_t jobTimeoutMs = 0;  ///< per-attempt wall-clock bound (0=off)
    /// Cooperative interrupt flag (SIGINT/SIGTERM handler sets it): pending
    /// jobs are skipped, the in-flight attempt aborts without a journal
    /// record, and the caller exits after the journal is checkpointed.
    const std::atomic<bool>* interrupted = nullptr;
};

enum class CellStatus : std::uint8_t {
    kOk = 0,       ///< simulated (or resumed) successfully
    kFailed = 1,   ///< quarantined after maxAttempts failed attempts
    kSkipped = 2,  ///< never ran — interrupt arrived first
};

/// One grid cell's durable outcome.  `report` holds the job's serialized
/// asbr.sim_report document — resumed cells carry the parsed artifact, and
/// the JSON writer's round-trip-stable number formatting guarantees both
/// spellings dump to identical bytes.
struct CellOutcome {
    std::string key;
    CellStatus status = CellStatus::kSkipped;
    std::uint64_t attempts = 0;
    bool resumed = false;  ///< satisfied from the journal, not simulated
    JsonValue report;      ///< kOk only
    std::string error;     ///< kFailed only: last attempt's failure
};

struct DurableRunResult {
    std::vector<CellOutcome> cells;  ///< submission order
    std::uint64_t resumedJobs = 0;
    bool interrupted = false;  ///< any cell skipped / interrupt flag raised

    [[nodiscard]] std::uint64_t countWith(CellStatus status) const {
        std::uint64_t n = 0;
        for (const CellOutcome& cell : cells)
            if (cell.status == status) ++n;
        return n;
    }
};

struct DurableCampaignResult {
    CampaignResult result;  ///< completed records in sampling order
    std::vector<FailedInjection> failed;  ///< quarantined, by sampling index
    std::uint64_t resumedJobs = 0;
    bool interrupted = false;
};

class SimEngine {
public:
    explicit SimEngine(EngineConfig config = {});

    [[nodiscard]] const EngineConfig& config() const { return config_; }

    /// Cache keys a job resolves to (exposed for tests and diagnostics).
    [[nodiscard]] WorkloadKey workloadKeyFor(const SimJob& job) const;
    [[nodiscard]] SelectionKey selectionKeyFor(const SimJob& job) const;

    /// Resolve (and cache) a job's artifacts without simulating.
    [[nodiscard]] std::shared_ptr<const WorkloadArtifacts> workloadFor(
        const SimJob& job);
    [[nodiscard]] std::shared_ptr<const SelectionArtifacts> selectionFor(
        const SimJob& job);

    /// Run one job on the calling thread.
    [[nodiscard]] JobResult runOne(const SimJob& job);

    /// Run a batch on the worker pool; results are in submission order.
    /// The first job exception (e.g. an unknown predictor token) is rethrown
    /// after the batch drains.
    [[nodiscard]] std::vector<JobResult> run(const std::vector<SimJob>& jobs);

    /// Stable identity of a job's resolved configuration — the journal key.
    /// Two jobs with the same key produce byte-identical sim reports.
    [[nodiscard]] std::string jobKey(const SimJob& job) const;

    /// Digest pinning a job batch (or campaign) to one journal; the journal
    /// manifest refuses to resume a different grid.
    [[nodiscard]] std::string manifestDigest(
        const std::vector<SimJob>& jobs) const;
    [[nodiscard]] std::string campaignManifestDigest(
        const SimJob& job, const CampaignConfig& campaign) const;

    /// Durable batch execution (docs/robustness.md): write-ahead journal,
    /// resume, per-attempt wall-clock watchdog, bounded retry with
    /// deterministic backoff, and quarantine instead of abort.  Cell order
    /// is submission order; a resumed run splices journal artifacts and
    /// serializes byte-identically to the uninterrupted run at any thread
    /// count.
    [[nodiscard]] DurableRunResult runDurable(const std::vector<SimJob>& jobs,
                                              const DurablePolicy& policy);

    /// Durable fault campaign: the golden context is recomputed on every
    /// (re)start — it is deterministic and cheap relative to the grid —
    /// while each injection is journaled and resumed individually.
    [[nodiscard]] DurableCampaignResult runCampaignDurable(
        const SimJob& job, const CampaignConfig& campaign,
        const DurablePolicy& policy);

    /// Build the FaultRunFactory for an ASBR job — every FaultRun it returns
    /// is freshly constructed from cached immutable artifacts, so it is safe
    /// to call from concurrent workers.
    [[nodiscard]] FaultRunFactory faultFactory(const SimJob& job);

    /// Full fault campaign: golden context, serial-order injection sampling,
    /// parallel execution, submission-order merge.  Byte-identical to the
    /// serial asbr::runCampaign for the same job and campaign config.
    [[nodiscard]] CampaignResult runCampaign(const SimJob& job,
                                             const CampaignConfig& campaign);

    /// Re-run one recorded injection (asbr-faults replay).
    [[nodiscard]] InjectionRecord replayInjection(const SimJob& job,
                                                  const Injection& injection,
                                                  std::uint64_t maxCycleFactor);

    [[nodiscard]] EngineStats stats() const;
    [[nodiscard]] ArtifactCache::Stats cacheStats() const {
        return cache_.stats();
    }

    /// Publish engine.jobs_run / engine.cache_hits / engine.worker_busy_cycles
    /// / engine.jobs_resumed into `registry`.  A default-constructed engine
    /// publishes zeros — the `asbr-stats counters` catalogue uses that to
    /// enumerate the names.
    void publishMetrics(MetricRegistry& registry) const;

private:
    [[nodiscard]] JobResult execute(const SimJob& job,
                                    Deadline* deadline = nullptr);
    [[nodiscard]] JobResult executeWithRetry(const SimJob& job);
    [[nodiscard]] CellOutcome runDurableOne(const SimJob& job,
                                            const DurablePolicy& policy,
                                            JobJournal* journal);

    EngineConfig config_;
    ArtifactCache cache_;
    std::atomic<std::uint64_t> jobsRun_{0};
    std::atomic<std::uint64_t> busyCycles_{0};
    std::atomic<std::uint64_t> jobsResumed_{0};
};

}  // namespace asbr::driver

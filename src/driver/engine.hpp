// SimEngine — the one execution path every simulation consumer drives.
//
// The engine resolves declarative SimJobs against a shared ArtifactCache
// (load/profile/select once per key, simulate many times) and executes job
// batches on a fixed-size worker pool.  Results land in pre-sized slots
// keyed by submission index, so a batch's output is byte-identical whether
// it ran on 1 thread or 8 — the property ci/bench-report.sh, ci/faults.sh
// and the determinism tests pin down by diffing JSON across thread counts.
//
// Observability is injection-scoped: each job gets its own MetricRegistry
// (inside its SimReport) and, when tracing, its own Tracer instance.  The
// engine itself keeps three counters (engine.jobs_run, engine.cache_hits,
// engine.worker_busy_cycles) that callers publish into a registry of their
// choosing; all three are deterministic functions of the submitted work —
// worker_busy_cycles counts *simulated* cycles, never host time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "driver/artifacts.hpp"
#include "driver/job.hpp"
#include "fault/campaign.hpp"
#include "util/metrics.hpp"

namespace asbr::driver {

struct EngineConfig {
    /// Worker threads for batch/campaign execution (0 = hardware
    /// concurrency).  1 runs everything inline on the calling thread.
    std::size_t threads = 1;
};

/// Deterministic engine counters (see publishMetrics).
struct EngineStats {
    std::uint64_t jobsRun = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t workerBusyCycles = 0;
};

class SimEngine {
public:
    explicit SimEngine(EngineConfig config = {});

    [[nodiscard]] const EngineConfig& config() const { return config_; }

    /// Cache keys a job resolves to (exposed for tests and diagnostics).
    [[nodiscard]] WorkloadKey workloadKeyFor(const SimJob& job) const;
    [[nodiscard]] SelectionKey selectionKeyFor(const SimJob& job) const;

    /// Resolve (and cache) a job's artifacts without simulating.
    [[nodiscard]] std::shared_ptr<const WorkloadArtifacts> workloadFor(
        const SimJob& job);
    [[nodiscard]] std::shared_ptr<const SelectionArtifacts> selectionFor(
        const SimJob& job);

    /// Run one job on the calling thread.
    [[nodiscard]] JobResult runOne(const SimJob& job);

    /// Run a batch on the worker pool; results are in submission order.
    /// The first job exception (e.g. an unknown predictor token) is rethrown
    /// after the batch drains.
    [[nodiscard]] std::vector<JobResult> run(const std::vector<SimJob>& jobs);

    /// Build the FaultRunFactory for an ASBR job — every FaultRun it returns
    /// is freshly constructed from cached immutable artifacts, so it is safe
    /// to call from concurrent workers.
    [[nodiscard]] FaultRunFactory faultFactory(const SimJob& job);

    /// Full fault campaign: golden context, serial-order injection sampling,
    /// parallel execution, submission-order merge.  Byte-identical to the
    /// serial asbr::runCampaign for the same job and campaign config.
    [[nodiscard]] CampaignResult runCampaign(const SimJob& job,
                                             const CampaignConfig& campaign);

    /// Re-run one recorded injection (asbr-faults replay).
    [[nodiscard]] InjectionRecord replayInjection(const SimJob& job,
                                                  const Injection& injection,
                                                  std::uint64_t maxCycleFactor);

    [[nodiscard]] EngineStats stats() const;
    [[nodiscard]] ArtifactCache::Stats cacheStats() const {
        return cache_.stats();
    }

    /// Publish engine.jobs_run / engine.cache_hits / engine.worker_busy_cycles
    /// into `registry`.  A default-constructed engine publishes zeros — the
    /// `asbr-stats counters` catalogue uses that to enumerate the names.
    void publishMetrics(MetricRegistry& registry) const;

private:
    [[nodiscard]] JobResult execute(const SimJob& job);

    EngineConfig config_;
    ArtifactCache cache_;
    std::atomic<std::uint64_t> jobsRun_{0};
    std::atomic<std::uint64_t> busyCycles_{0};
};

}  // namespace asbr::driver

// Fixed-size worker pool for deterministic batch execution.
//
// parallelFor(count, threads, body) runs body(0..count-1), each index exactly
// once, on at most `threads` workers.  Indices are claimed from an atomic
// counter, so scheduling is dynamic (fast items don't block behind slow
// ones), but callers write results into pre-sized slots keyed by index —
// merging is therefore always in submission order and the output of a batch
// is independent of the thread count and of scheduling luck.
//
// threads <= 1 (or count <= 1) degenerates to a plain loop on the calling
// thread: the serial path and the parallel path execute the exact same body.
#pragma once

#include <cstddef>
#include <functional>

namespace asbr::driver {

/// Number of workers actually used for `count` items on `threads` threads
/// (0 threads = hardware concurrency).
[[nodiscard]] std::size_t resolveThreads(std::size_t threads);

/// Run body(i) for every i in [0, count), on at most `threads` workers.
/// The first exception thrown by any body is rethrown on the calling thread
/// after all workers have drained.
void parallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& body);

}  // namespace asbr::driver

// JobJournal — the write-ahead journal that makes sweeps and fault
// campaigns crash-safe (docs/robustness.md).
//
// Layout of a journal directory:
//
//   DIR/journal.jsonl      append-only JSONL, one record per state change
//   DIR/artifacts/*.json   one result document per completed job
//
// Record shapes (all single-line JSON objects):
//
//   {"status":"manifest","gridDigest":"<hex16>","jobs":N}
//   {"status":"running","jobKey":"...","attempt":N}
//   {"status":"done","jobKey":"...","attempt":N,
//    "resultDigest":"<hex16>","artifactPath":"artifacts/....json"}
//   {"status":"failed","jobKey":"...","attempt":N,"error":"..."}
//
// Write-ahead discipline: "running" is appended (and fsync'd) before an
// attempt starts; "done" is appended only after the artifact file has been
// written, fsync'd and atomically renamed into place.  A crash therefore
// leaves at worst a dangling "running" record (the job simply re-runs on
// resume) or a torn trailing line — replay tolerates unparseable lines by
// skipping them, so a half-written record degrades to "job not finished",
// never to a corrupt resume.
//
// The manifest pins the journal to one exact grid: resuming with a
// different workload list, sample count or campaign config is refused
// loudly instead of silently splicing mismatched artifacts.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace asbr::driver {

/// FNV-1a 64-bit digest, rendered as 16 lowercase hex digits.  Used for the
/// grid manifest and for artifact content digests.
[[nodiscard]] std::string fnv1a64Hex(std::string_view bytes);

/// Replayed per-job state, folded from the journal's records.
struct JournalEntry {
    /// Highest attempt number that recorded a "failed" outcome.  Dangling
    /// "running" records (crash mid-attempt) do NOT count — the attempt
    /// never concluded, so a resumed run repeats its number and reproduces
    /// the uninterrupted run's bytes.
    std::uint64_t failedAttempts = 0;
    std::string lastError;
    bool done = false;
    std::uint64_t doneAttempt = 0;
    std::string resultDigest;
    std::string artifactPath;  ///< relative to the journal directory
};

class JobJournal {
public:
    /// Opens (resume) or creates (fresh) the journal in `dir`.
    ///
    /// Fresh mode refuses a directory that already holds a non-empty
    /// journal (pass --resume or pick a new directory).  Resume mode
    /// requires an existing journal whose manifest matches `gridDigest` /
    /// `jobCount` exactly.  Throws EnsureError on either violation.
    JobJournal(std::string dir, bool resume, const std::string& gridDigest,
               std::uint64_t jobCount);
    ~JobJournal();

    JobJournal(const JobJournal&) = delete;
    JobJournal& operator=(const JobJournal&) = delete;

    /// Write-ahead records; each append is fsync'd before returning.
    /// Thread-safe.
    void recordStart(const std::string& jobKey, std::uint64_t attempt);
    void recordDone(const std::string& jobKey, std::uint64_t attempt,
                    const std::string& artifactPath,
                    const std::string& resultDigest);
    void recordFailed(const std::string& jobKey, std::uint64_t attempt,
                      const std::string& error);

    /// Replayed state of a key (null when the journal never mentioned it).
    [[nodiscard]] const JournalEntry* entry(const std::string& jobKey) const;

    /// Unparseable lines skipped during replay (torn writes, garbage).
    [[nodiscard]] std::uint64_t skippedLines() const { return skippedLines_; }

    /// Journal-relative artifact path for a job key: fs-sanitized key plus
    /// a digest suffix so sanitization collisions cannot alias artifacts.
    [[nodiscard]] static std::string artifactPathFor(const std::string& jobKey);

    /// Durable artifact write: tmp file + fsync + atomic rename.
    void writeArtifact(const std::string& relPath, const std::string& bytes);

    /// Read an artifact back, verifying its recorded digest.  Returns
    /// nullopt when the file is missing or its bytes do not digest to
    /// `expectDigest` — the caller recomputes the job instead of trusting a
    /// corrupt file.
    [[nodiscard]] std::optional<std::string> readArtifact(
        const std::string& relPath, const std::string& expectDigest) const;

    [[nodiscard]] const std::string& dir() const { return dir_; }

private:
    void append(const std::string& line);
    void replay(const std::string& text);

    std::string dir_;
    int fd_ = -1;
    std::mutex mutex_;
    std::map<std::string, JournalEntry> entries_;
    std::uint64_t skippedLines_ = 0;
    std::string manifestDigest_;  ///< empty until a manifest is seen/written
    std::uint64_t manifestJobs_ = 0;
};

}  // namespace asbr::driver

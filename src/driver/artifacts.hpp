// Shared, immutable simulation artifacts with once-per-key resolution.
//
// Loading a workload (assemble + schedule + generate input), profiling it
// and selecting its ASBR branches are pure functions of a small key — yet
// the pre-driver binaries recomputed them for every run, and a parallel
// engine would recompute them on every worker.  This layer computes each
// artifact exactly once per key and shares the result read-only:
//
//   WorkloadKey  -> WorkloadArtifacts   program + input (+ lazy profile and
//                                       bimodal-2048 baseline accuracy)
//   SelectionKey -> SelectionArtifacts  selected candidates + extracted
//                                       BIT/static-fold entries
//
// Artifacts are immutable after construction; anything mutable a run needs
// (Memory image, predictor, AsbrUnit) is built *fresh* from them per run, so
// concurrent engine workers never share hot-path state.  ArtifactCache is
// thread-safe: a key's first requester computes, concurrent requesters for
// the same key block on a shared_future, and requesters of *different* keys
// never serialize against the computation.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "asbr/asbr_unit.hpp"
#include "asbr/bit.hpp"
#include "asbr/static_fold.hpp"
#include "bp/predictor.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "sim/pipeline.hpp"
#include "sim/sampling.hpp"
#include "workloads/workloads.hpp"

namespace asbr::driver {

/// A compiled benchmark plus its input data (decoders get codes produced by
/// the native encoder, mirroring how MediaBench chains encode -> decode).
struct Prepared {
    BenchId id;
    bool scheduled = true;  ///< condition-scheduling pass was enabled
    Program program;
    std::vector<std::int16_t> pcm;
    std::vector<std::uint8_t> codes;
};

[[nodiscard]] Prepared prepare(BenchId id, bool scheduled, std::uint64_t seed,
                               std::size_t samples);

/// Fresh memory image holding program + input.
[[nodiscard]] Memory makeMemory(const Prepared& prepared);

/// One cycle-accurate run against a fresh memory image.  Resets the
/// predictor first and asserts a clean exit.
[[nodiscard]] PipelineResult runPipeline(const Prepared& prepared,
                                         BranchPredictor& predictor,
                                         FetchCustomizer* customizer = nullptr,
                                         const PipelineConfig& config = {});

/// One sampled run (docs/simulation.md) against a fresh memory image.
/// Resets the predictor first and asserts a clean exit — a sampled run still
/// executes every instruction architecturally, so the exit contract holds.
[[nodiscard]] SampledResult runSampledPipeline(
    const Prepared& prepared, BranchPredictor& predictor,
    FetchCustomizer* customizer, const SamplingConfig& sampling,
    const PipelineConfig& config = {});

/// Per-site accuracy map from a pipeline run (reference-predictor input to
/// branch selection).
[[nodiscard]] std::map<std::uint32_t, double> accuracyMap(
    const PipelineStats& stats);

/// Everything that determines a workload's program + input, byte for byte.
struct WorkloadKey {
    BenchId workload = BenchId::kAdpcmEncode;
    bool scheduled = true;
    std::uint64_t seed = 2001;
    std::size_t samples = 0;  ///< actual (capacity-capped) sample count

    auto operator<=>(const WorkloadKey&) const = default;
};

/// Everything that determines an ASBR branch selection on a workload.
struct SelectionKey {
    WorkloadKey workload;
    std::size_t bitEntries = 16;  ///< resolved BIT capacity (never 0)
    ValueStage updateStage = ValueStage::kMemEnd;
    /// Use the bimodal-2048 baseline run as the per-site accuracy reference
    /// (every figure regenerator does; ext_predictors deliberately does not).
    bool useAccuracy = true;
    bool staticFolds = false;  ///< two-class selection + static fold table
    /// Predictor-aware selection: fold only what `predictorToken` loses
    /// (mutually exclusive with staticFolds).
    bool predictorAware = false;
    /// The strong fallback predictor's registry token (predictorAware only;
    /// empty otherwise so keys that ignore the predictor keep aliasing).
    std::string predictorToken;

    auto operator<=>(const SelectionKey&) const = default;
};

/// Immutable loaded workload.  The profile and the bimodal-2048 baseline
/// accuracy are computed lazily (non-ASBR jobs never pay for them) but still
/// exactly once, under a once_flag, so concurrent callers are safe.
class WorkloadArtifacts {
public:
    explicit WorkloadArtifacts(const WorkloadKey& key);

    [[nodiscard]] const WorkloadKey& key() const { return key_; }
    [[nodiscard]] const Prepared& prepared() const { return prepared_; }

    /// Functional branch profile (lazy, computed once).
    [[nodiscard]] const ProgramProfile& profile() const;

    /// Per-site accuracy of a fresh bimodal-2048 baseline run (lazy, once) —
    /// the hardness reference every selection uses.
    [[nodiscard]] const std::map<std::uint32_t, double>& baselineAccuracy()
        const;

    /// Per-site prediction record of playing the predictor named by a
    /// registry token over this workload's committed branch stream
    /// (profilePredictions).  Lazy, once per token: concurrent requesters of
    /// the same token block on a shared_future; different tokens never
    /// serialize against each other's computation.
    [[nodiscard]] std::shared_ptr<const PredictionProfile> predictionProfile(
        const std::string& token) const;

private:
    WorkloadKey key_;
    Prepared prepared_;
    mutable std::once_flag profileOnce_;
    mutable std::optional<ProgramProfile> profile_;
    mutable std::once_flag accuracyOnce_;
    mutable std::map<std::uint32_t, double> accuracy_;
    mutable std::mutex predictionsMutex_;
    mutable std::map<std::string,
                     std::shared_future<std::shared_ptr<const PredictionProfile>>>
        predictions_;
};

/// Immutable branch selection: candidates plus the extracted table contents,
/// ready to stamp out fresh AsbrUnits.  The stored BranchInfos are exactly
/// what AsbrUnit::loadBank stores (the BIT keeps them unchanged), so units
/// built here are bit-identical to the pre-driver profile->select->extract
/// path.
class SelectionArtifacts {
public:
    SelectionArtifacts(std::shared_ptr<const WorkloadArtifacts> workload,
                       const SelectionKey& key);

    [[nodiscard]] const SelectionKey& key() const { return key_; }
    [[nodiscard]] const WorkloadArtifacts& workload() const {
        return *workload_;
    }
    [[nodiscard]] const std::vector<Candidate>& candidates() const {
        return candidates_;
    }
    [[nodiscard]] const std::vector<StaticFoldCandidate>& staticCandidates()
        const {
        return staticCandidates_;
    }
    [[nodiscard]] std::uint64_t bitSlotsReclaimed() const {
        return bitSlotsReclaimed_;
    }
    /// Predictor-aware selection summary (zeros unless key().predictorAware).
    [[nodiscard]] const PredictorAwareSelectionMetrics& awareMetrics() const {
        return awareMetrics_;
    }
    /// Hardness taxonomy per foldable site (empty unless predictorAware).
    [[nodiscard]] const std::map<std::uint32_t, BranchHardness>& hardness()
        const {
        return hardness_;
    }
    [[nodiscard]] const std::vector<BranchInfo>& branchInfos() const {
        return infos_;
    }

    /// Fresh ASBR unit with bank 0 (and the static fold table, when the
    /// selection has one) loaded.  Safe to call concurrently.
    [[nodiscard]] std::unique_ptr<AsbrUnit> makeUnit(
        bool parityProtected) const;

private:
    std::shared_ptr<const WorkloadArtifacts> workload_;
    SelectionKey key_;
    std::vector<Candidate> candidates_;
    std::vector<StaticFoldCandidate> staticCandidates_;
    std::uint64_t bitSlotsReclaimed_ = 0;
    PredictorAwareSelectionMetrics awareMetrics_{};
    std::map<std::uint32_t, BranchHardness> hardness_;
    std::vector<BranchInfo> infos_;
    std::vector<StaticFoldEntry> staticEntries_;
};

/// Thread-safe once-per-key artifact store.
class ArtifactCache {
public:
    [[nodiscard]] std::shared_ptr<const WorkloadArtifacts> workload(
        const WorkloadKey& key);
    [[nodiscard]] std::shared_ptr<const SelectionArtifacts> selection(
        const SelectionKey& key);

    struct Stats {
        std::uint64_t workloadComputes = 0;
        std::uint64_t selectionComputes = 0;
        /// Requests served from an already-inserted entry.  Deterministic:
        /// always requests - unique keys, however the races fall.
        std::uint64_t hits = 0;
    };
    [[nodiscard]] Stats stats() const;

private:
    template <typename Key, typename Value, typename Make>
    std::shared_ptr<const Value> getOrCompute(
        std::map<Key, std::shared_future<std::shared_ptr<const Value>>>& slots,
        const Key& key, std::atomic<std::uint64_t>& computes, Make make);

    mutable std::mutex mutex_;
    std::map<WorkloadKey,
             std::shared_future<std::shared_ptr<const WorkloadArtifacts>>>
        workloads_;
    std::map<SelectionKey,
             std::shared_future<std::shared_ptr<const SelectionArtifacts>>>
        selections_;
    std::atomic<std::uint64_t> workloadComputes_{0};
    std::atomic<std::uint64_t> selectionComputes_{0};
    std::atomic<std::uint64_t> hits_{0};
};

}  // namespace asbr::driver

#include "driver/deadline.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace asbr::driver {

void Deadline::onCycle(std::uint64_t cycle) {
    if (inner_ != nullptr) inner_->onCycle(cycle);
    if (++sinceCheck_ < kCheckInterval) return;
    sinceCheck_ = 0;
    check();
}

void Deadline::check() const {
    if (interrupted_ != nullptr &&
        interrupted_->load(std::memory_order_relaxed))
        throw JobInterruptedError(
            "job interrupted: checkpoint requested (SIGINT/SIGTERM)");
    if (wallMs_ == 0) return;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
    if (static_cast<std::uint64_t>(elapsed) > wallMs_)
        throw JobTimeoutError(watchdogMessage("job", "wall-clock", wallMs_,
                                              "ms"));
}

std::uint64_t backoffDelayMs(std::uint64_t attempt) {
    if (attempt <= 1) return 0;
    const std::uint64_t shift = std::min<std::uint64_t>(attempt - 2, 63);
    return std::min<std::uint64_t>(400, 25ULL << shift);
}

}  // namespace asbr::driver

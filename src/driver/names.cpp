#include "driver/names.hpp"

namespace asbr::driver {

std::optional<BenchId> benchFromToken(const std::string& token) {
    if (token == "adpcm-enc") return BenchId::kAdpcmEncode;
    if (token == "adpcm-dec") return BenchId::kAdpcmDecode;
    if (token == "g721-enc") return BenchId::kG721Encode;
    if (token == "g721-dec") return BenchId::kG721Decode;
    if (token == "g711-enc") return BenchId::kG711Encode;
    if (token == "g711-dec") return BenchId::kG711Decode;
    return std::nullopt;
}

const char* benchToken(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode: return "adpcm-enc";
        case BenchId::kAdpcmDecode: return "adpcm-dec";
        case BenchId::kG721Encode: return "g721-enc";
        case BenchId::kG721Decode: return "g721-dec";
        case BenchId::kG711Encode: return "g711-enc";
        case BenchId::kG711Decode: return "g711-dec";
    }
    return "?";
}

const char* benchTokenList() {
    return "adpcm-enc|adpcm-dec|g721-enc|g721-dec|g711-enc|g711-dec";
}

std::unique_ptr<BranchPredictor> makePredictorByToken(const std::string& token) {
    if (token == "not-taken") return makeNotTaken();
    if (token == "taken") return std::make_unique<AlwaysTakenPredictor>(2048);
    if (token == "bimodal") return makeBimodal2048();
    if (token == "gshare") return makeGshare2048();
    if (token == "tournament") return makeTournament2048();
    if (token == "bi512") return makeBimodal(512, 512);
    if (token == "bi256") return makeBimodal(256, 512);
    return nullptr;
}

const char* predictorTokenList() {
    return "not-taken|taken|bimodal|gshare|tournament|bi512|bi256";
}

std::optional<ValueStage> stageFromToken(const std::string& token) {
    if (token == "ex_end") return ValueStage::kExEnd;
    if (token == "mem_end") return ValueStage::kMemEnd;
    if (token == "commit") return ValueStage::kCommit;
    return std::nullopt;
}

std::size_t paperBitEntries(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode: return 4;
        case BenchId::kAdpcmDecode: return 3;
        case BenchId::kG721Encode: return 16;
        case BenchId::kG721Decode: return 15;
        case BenchId::kG711Encode:
        case BenchId::kG711Decode: return 8;  // extension: not in the paper
    }
    return 16;
}

std::uint32_t thresholdFor(ValueStage stage) {
    switch (stage) {
        case ValueStage::kExEnd: return 2;
        case ValueStage::kMemEnd: return 3;
        case ValueStage::kCommit: return 4;
    }
    return 3;
}

}  // namespace asbr::driver

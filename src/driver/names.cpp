#include "driver/names.hpp"

#include "bp/registry.hpp"

namespace asbr::driver {

std::optional<BenchId> benchFromToken(const std::string& token) {
    if (token == "adpcm-enc") return BenchId::kAdpcmEncode;
    if (token == "adpcm-dec") return BenchId::kAdpcmDecode;
    if (token == "g721-enc") return BenchId::kG721Encode;
    if (token == "g721-dec") return BenchId::kG721Decode;
    if (token == "g711-enc") return BenchId::kG711Encode;
    if (token == "g711-dec") return BenchId::kG711Decode;
    return std::nullopt;
}

const char* benchToken(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode: return "adpcm-enc";
        case BenchId::kAdpcmDecode: return "adpcm-dec";
        case BenchId::kG721Encode: return "g721-enc";
        case BenchId::kG721Decode: return "g721-dec";
        case BenchId::kG711Encode: return "g711-enc";
        case BenchId::kG711Decode: return "g711-dec";
    }
    return "?";
}

const char* benchTokenList() {
    return "adpcm-enc|adpcm-dec|g721-enc|g721-dec|g711-enc|g711-dec";
}

std::unique_ptr<BranchPredictor> makePredictorByToken(const std::string& token,
                                                      std::string* error) {
    const PredictorRegistry& registry = PredictorRegistry::instance();
    std::unique_ptr<BranchPredictor> predictor = registry.make(token);
    if (!predictor && error) *error = registry.unknownTokenMessage(token);
    return predictor;
}

std::string predictorTokenList() {
    return PredictorRegistry::instance().tokenList();
}

std::optional<ValueStage> stageFromToken(const std::string& token) {
    if (token == "ex_end") return ValueStage::kExEnd;
    if (token == "mem_end") return ValueStage::kMemEnd;
    if (token == "commit") return ValueStage::kCommit;
    return std::nullopt;
}

std::size_t paperBitEntries(BenchId id) {
    switch (id) {
        case BenchId::kAdpcmEncode: return 4;
        case BenchId::kAdpcmDecode: return 3;
        case BenchId::kG721Encode: return 16;
        case BenchId::kG721Decode: return 15;
        case BenchId::kG711Encode:
        case BenchId::kG711Decode: return 8;  // extension: not in the paper
    }
    return 16;
}

std::uint32_t thresholdFor(ValueStage stage) {
    switch (stage) {
        case ValueStage::kExEnd: return 2;
        case ValueStage::kMemEnd: return 3;
        case ValueStage::kCommit: return 4;
    }
    return 3;
}

}  // namespace asbr::driver

// Shared command-line plumbing for every driver-backed binary.
//
// The bench/ table regenerators and the asbr-stats / asbr-faults /
// asbr-sweep CLIs all accept the same set of shared options; previously each
// binary re-implemented the parsing loop.  consumeSharedOption() handles one
// argument; binaries keep their own loop for tool-specific flags and call
// cliFail() for anything unrecognized, producing the one-line structured
// error style the CLI-hardening tests enforce:
//
//   <program>: unknown option '--frob' (try --help)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/sampling.hpp"
#include "workloads/workloads.hpp"

namespace asbr::driver {

/// Options every driver-backed binary understands:
///   --quick        small inputs (CI-speed smoke run)
///   --seed=N       input generator seed
///   --adpcm=N      ADPCM sample count
///   --g721=N       G.721 sample count
///   --threads=N    engine worker count (0 = hardware concurrency)
///   --workload=W   restrict to one workload (token, e.g. g721-enc)
///   --csv          additionally print tables as CSV
///   --json=FILE    write the machine-readable report ("-" = stdout)
///   --sample=W:M:S sampled simulation: warmup/measure/skip instructions
///                  per window (docs/simulation.md)
///   --job-timeout=MS  per-job wall-clock watchdog (docs/robustness.md)
///   --max-attempts=N  bounded retry before a job fails/quarantines
///   --journal=DIR  write-ahead job journal (asbr-sweep, asbr-faults
///                  campaign; other tools reject it with a clear error)
///   --resume       resume a --journal=DIR left by an earlier run
struct CliOptions {
    std::size_t adpcmSamples = 100'000;
    std::size_t g721Samples = 20'000;
    std::uint64_t seed = 2001;
    std::size_t threads = 1;
    std::optional<BenchId> workload;  ///< --workload= filter; nullopt = all
    bool csv = false;
    std::string jsonPath;  ///< empty = no JSON export; "-" = stdout
    std::optional<SamplingConfig> sample;  ///< --sample= window geometry
    std::string journalDir;          ///< --journal=DIR; empty = no journal
    bool resume = false;             ///< --resume (requires --journal)
    std::uint64_t jobTimeoutMs = 0;  ///< --job-timeout=MS; 0 = no watchdog
    std::uint64_t maxAttempts = 1;   ///< --max-attempts=N; >= 1
};

/// Help-text fragment describing the shared options (one line, no newline).
[[nodiscard]] const char* sharedOptionsHelp();

/// Numeric "--prefix=N" argument; nullopt when `arg` does not start with
/// `prefix`.
[[nodiscard]] std::optional<std::uint64_t> numArg(const std::string& arg,
                                                  const char* prefix);

/// Try to consume `arg` as one of the shared options.  Returns true when the
/// argument was recognized; a recognized-but-invalid value (e.g.
/// --workload=quake3) also returns true and sets `error` to a one-line
/// diagnostic the caller must report (via cliFail or its own prefix).
[[nodiscard]] bool consumeSharedOption(const std::string& arg, CliOptions& out,
                                       std::string& error);

/// Print "<program>: <message>" to stderr and exit(2) — the uniform
/// structured rejection for bad command lines.
[[noreturn]] void cliFail(const char* program, const std::string& message);

/// Samples to feed a given workload under these options (capped at the
/// program's buffer capacity).
[[nodiscard]] std::size_t samplesFor(const CliOptions& options, BenchId id);

}  // namespace asbr::driver

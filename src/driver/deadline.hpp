// driver::Deadline — the per-job wall-clock watchdog and cooperative
// interrupt check, delivered through the same CycleHook seam the fault
// injector uses (docs/robustness.md).
//
// Every watchdog in the tree now reports through one structured one-line
// message shape (util/ensure.hpp watchdogMessage):
//
//   functional watchdog: run exceeded the configured instruction bound ...
//   pipeline watchdog:   run exceeded the configured cycle bound ...
//   job watchdog:        run exceeded the configured wall-clock bound ...
//
// The first two bound *simulated* work and stay part of the simulation's
// semantics (a fault campaign classifies the cycle bound as a hang).  The
// Deadline bounds *host* time: exceeding it throws JobTimeoutError, which
// the durable engine treats as a failed attempt — retried with backoff and
// eventually quarantined, never classified as a simulated outcome.
//
// Cost discipline: the wall clock is only consulted every kCheckInterval
// cycles (host-time reads are expensive and the hook runs once per simulated
// cycle), and the engine installs the hook at all only when a timeout or an
// interrupt flag is actually configured — plain runs keep a null cycleHook.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "sim/pipeline.hpp"

namespace asbr::driver {

class Deadline : public CycleHook {
public:
    /// Cycles between wall-clock checks (power of two; the hook is on the
    /// per-cycle path, so the common case must be one counter increment).
    static constexpr std::uint64_t kCheckInterval = 1u << 16;

    /// `wallMs == 0` disables the timeout; `interrupted` may be null.
    explicit Deadline(std::uint64_t wallMs,
                      const std::atomic<bool>* interrupted = nullptr)
        : wallMs_(wallMs),
          interrupted_(interrupted),
          start_(std::chrono::steady_clock::now()) {}

    /// True when the hook has anything to watch — callers skip installing
    /// an inert hook so un-watched runs pay nothing per cycle.
    [[nodiscard]] bool active() const {
        return wallMs_ != 0 || interrupted_ != nullptr;
    }

    /// Optional inner hook (e.g. the fault injector) run before the check.
    void chainAfter(CycleHook* inner) { inner_ = inner; }

    void onCycle(std::uint64_t cycle) override;

    /// Immediate check, also usable outside a simulation loop.  Throws
    /// JobInterruptedError / JobTimeoutError.
    void check() const;

private:
    CycleHook* inner_ = nullptr;
    std::uint64_t wallMs_;
    const std::atomic<bool>* interrupted_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t sinceCheck_ = 0;
};

/// Deterministic retry backoff: milliseconds slept before executing attempt
/// `attempt` (1-based).  The first attempt never waits; later attempts wait
/// 25 << (attempt - 2) ms, capped at 400 ms.  Pure function of the attempt
/// number — results never include wall-clock time, so the schedule cannot
/// perturb report bytes.
[[nodiscard]] std::uint64_t backoffDelayMs(std::uint64_t attempt);

}  // namespace asbr::driver

#include "driver/pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace asbr::driver {

std::size_t resolveThreads(std::size_t threads) {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void parallelFor(std::size_t count, std::size_t threads,
                 const std::function<void(std::size_t)>& body) {
    threads = std::min(resolveThreads(threads), count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError) firstError = std::current_exception();
                // Keep draining: other indices must still run so callers can
                // rely on every slot being visited (or the batch rethrowing).
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (firstError) std::rethrow_exception(firstError);
}

}  // namespace asbr::driver

#include "driver/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "driver/names.hpp"

namespace asbr::driver {

const char* sharedOptionsHelp() {
    return "--quick --seed=N --adpcm=N --g721=N --threads=N --workload=W "
           "--csv --json=FILE --sample=W:M:S --job-timeout=MS "
           "--max-attempts=N --journal=DIR --resume";
}

std::optional<std::uint64_t> numArg(const std::string& arg,
                                    const char* prefix) {
    const std::size_t len = std::strlen(prefix);
    if (arg.rfind(prefix, 0) != 0) return std::nullopt;
    return std::strtoull(arg.c_str() + len, nullptr, 10);
}

bool consumeSharedOption(const std::string& arg, CliOptions& out,
                         std::string& error) {
    error.clear();
    if (arg == "--quick") {
        out.adpcmSamples = 8'000;
        out.g721Samples = 2'000;
        return true;
    }
    if (const auto v = numArg(arg, "--seed=")) {
        out.seed = *v;
        return true;
    }
    if (const auto v = numArg(arg, "--adpcm=")) {
        out.adpcmSamples = *v;
        return true;
    }
    if (const auto v = numArg(arg, "--g721=")) {
        out.g721Samples = *v;
        return true;
    }
    if (const auto v = numArg(arg, "--threads=")) {
        out.threads = *v;
        return true;
    }
    if (arg.rfind("--workload=", 0) == 0) {
        const std::string token = arg.substr(11);
        const auto id = benchFromToken(token);
        if (!id) {
            error = "unknown workload '" + token + "' (" + benchTokenList() +
                    ")";
            return true;
        }
        out.workload = *id;
        return true;
    }
    if (arg == "--csv") {
        out.csv = true;
        return true;
    }
    if (const auto v = numArg(arg, "--job-timeout=")) {
        out.jobTimeoutMs = *v;
        return true;
    }
    if (const auto v = numArg(arg, "--max-attempts=")) {
        if (*v == 0) {
            error = "--max-attempts must be >= 1";
            return true;
        }
        out.maxAttempts = *v;
        return true;
    }
    if (arg.rfind("--journal=", 0) == 0) {
        out.journalDir = arg.substr(10);
        if (out.journalDir.empty()) {
            error = "--journal needs a directory (--journal=DIR)";
            return true;
        }
        return true;
    }
    if (arg == "--resume") {
        out.resume = true;
        return true;
    }
    if (arg.rfind("--json=", 0) == 0) {
        out.jsonPath = arg.substr(7);
        return true;
    }
    if (arg.rfind("--sample=", 0) == 0) {
        // --sample=WARMUP:MEASURE:SKIP, instruction counts per sampling unit.
        const std::string spec = arg.substr(9);
        const std::size_t first = spec.find(':');
        const std::size_t second =
            first == std::string::npos ? std::string::npos
                                       : spec.find(':', first + 1);
        SamplingConfig sampling;
        char* end = nullptr;
        bool ok = first != std::string::npos && second != std::string::npos;
        if (ok) {
            sampling.warmup = std::strtoull(spec.c_str(), &end, 10);
            ok = end == spec.c_str() + first;
        }
        if (ok) {
            sampling.measure =
                std::strtoull(spec.c_str() + first + 1, &end, 10);
            ok = end == spec.c_str() + second && sampling.measure > 0;
        }
        if (ok) {
            sampling.skip = std::strtoull(spec.c_str() + second + 1, &end, 10);
            ok = *end == '\0';
        }
        if (!ok) {
            error = "bad --sample spec '" + spec +
                    "' (want WARMUP:MEASURE:SKIP with MEASURE > 0)";
            return true;
        }
        out.sample = sampling;
        return true;
    }
    return false;
}

void cliFail(const char* program, const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", program, message.c_str());
    std::exit(2);
}

std::size_t samplesFor(const CliOptions& options, BenchId id) {
    const bool heavy =
        id == BenchId::kG721Encode || id == BenchId::kG721Decode;
    const std::size_t want = heavy ? options.g721Samples : options.adpcmSamples;
    return std::min(want, benchMaxSamples(id));
}

}  // namespace asbr::driver

// SimJob — the declarative description of one cycle-accurate simulation run.
//
// A job names a workload (+ input seed and sample count), a predictor token,
// and an optional ASBR customization (BIT size, BDT update stage, parity
// protection, static folds).  It carries no live objects: everything a run
// needs is constructed by the SimEngine from the job's fields, with the
// expensive load -> profile -> select artifacts resolved through a shared
// immutable cache and the mutable hardware state (predictor, AsbrUnit,
// memory image, MetricRegistry, Tracer) built fresh per run so two engine
// workers can never share hot-path state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asbr/asbr_unit.hpp"
#include "profile/selection.hpp"
#include "report/report.hpp"
#include "sim/pipeline.hpp"
#include "sim/sampling.hpp"
#include "util/trace.hpp"
#include "workloads/workloads.hpp"

namespace asbr::driver {

/// One simulation run, declaratively.  Value type: copy freely, hash/compare
/// fields, build grids of them.
struct SimJob {
    BenchId workload = BenchId::kAdpcmEncode;
    bool scheduled = true;        ///< condition-scheduling compiler pass
    std::uint64_t seed = 2001;    ///< input-generator seed
    std::size_t samples = 0;      ///< input samples (0 = buffer capacity)
    std::string predictor = "bimodal";  ///< driver::makePredictorByToken token
    std::string figure;           ///< report meta tag ("fig6", "sweep", ...)

    // ASBR customization (ignored unless asbr is set).
    bool asbr = false;
    std::size_t bitEntries = 0;   ///< 0 = the paper's count for the workload
    ValueStage updateStage = ValueStage::kMemEnd;
    bool parityProtected = false;
    bool staticFolds = false;     ///< two-class selection + static fold table
    /// Selection uses the bimodal-2048 baseline run as its per-site accuracy
    /// reference (every figure regenerator does; the external-predictor
    /// ablation deliberately selects without one).
    bool accuracyRef = true;
    /// Predictor-aware selection (docs/predictors.md): profile the job's own
    /// fallback predictor over the workload and fold only the branches it
    /// demonstrably loses, handing the rest back to the predictor.
    /// Mutually exclusive with staticFolds.
    bool predictorAware = false;

    // Sampled simulation (docs/simulation.md).  When `sampled` is set the
    // run alternates cycle-accurate windows with functional fast-forward
    // under `sampling`; `sampleReference` additionally executes the full
    // cycle-accurate run so the report can state the achieved CPI error.
    bool sampled = false;
    SamplingConfig sampling{};
    bool sampleReference = false;

    // Observability.  The tracer gate is job-scoped: each traced job gets its
    // own Tracer instance, returned in JobResult::tracer — never a
    // process-global pointer two workers could interleave events into.
    bool trace = false;
    TracerConfig traceConfig{};
};

/// Everything a finished job reports.  The SimReport owns a per-job
/// MetricRegistry that every component published into after the run.
struct JobResult {
    PipelineStats stats;
    SimReport report;

    // ASBR summary (asbr jobs only).
    bool asbr = false;
    std::vector<Candidate> candidates;        ///< BIT-resident selection
    std::size_t staticFoldCount = 0;          ///< static-table branches
    std::uint64_t bitSlotsReclaimed = 0;
    AsbrStats unitStats;                      ///< post-run unit counters
    std::uint64_t unitStorageBits = 0;

    std::uint64_t predictorStorageBits = 0;

    // Predictor-aware selection summary (asbr + predictorAware jobs only).
    bool predictorAware = false;
    std::uint64_t awareHardSites = 0;       ///< sites the predictor loses
    std::uint64_t awareKeptForPredictor = 0;  ///< foldable sites left to it
    std::uint64_t awareReclaimedSlots = 0;  ///< bimodal-era BIT slots freed

    /// Sampled-run outcome (only when SimJob::sampled was set).  `stats`
    /// then holds the detailed-window statistics; when sampleReference was
    /// also set, `reference` carries the full run's cycle/commit counts.
    std::shared_ptr<SampledResult> sampled;
    bool hasReference = false;
    std::uint64_t referenceCycles = 0;
    std::uint64_t referenceCommitted = 0;

    /// Host wall-clock seconds spent in the simulation phase alone — the
    /// pipeline / sampled run plus any sampleReference run, excluding the
    /// compile/profile/select artifact work (which is cached across jobs and
    /// would otherwise dominate short runs).  Host-dependent by nature:
    /// feeds the human-facing `sim speed` line and the sim.mips counter,
    /// never a JSON artifact.
    double simSeconds = 0.0;

    /// Per-job tracer (only when SimJob::trace was set).
    std::shared_ptr<Tracer> tracer;
};

}  // namespace asbr::driver

#include "driver/artifacts.hpp"

#include <algorithm>
#include <utility>

#include "asbr/extract.hpp"
#include "bp/bimodal.hpp"
#include "driver/names.hpp"
#include "util/ensure.hpp"
#include "workloads/input_gen.hpp"

namespace asbr::driver {

Prepared prepare(BenchId id, bool scheduled, std::uint64_t seed,
                 std::size_t samples) {
    Prepared prepared;
    prepared.id = id;
    prepared.scheduled = scheduled;
    prepared.program = buildBench(id, scheduled);
    prepared.pcm = generateSpeech(std::min(samples, benchMaxSamples(id)), seed);
    if (!benchIsEncoder(id)) {
        // Decoders consume the matching encoder's output, as in MediaBench.
        switch (id) {
            case BenchId::kAdpcmDecode:
                prepared.codes = adpcmEncodeRef(prepared.pcm);
                break;
            case BenchId::kG721Decode:
                prepared.codes = g721EncodeRef(prepared.pcm);
                break;
            case BenchId::kG711Decode:
                prepared.codes = g711EncodeRef(prepared.pcm);
                break;
            default:
                ASBR_ENSURE(false, "prepare: unexpected decoder");
        }
    }
    return prepared;
}

Memory makeMemory(const Prepared& prepared) {
    Memory memory;
    memory.loadProgram(prepared.program);
    if (benchIsEncoder(prepared.id)) {
        loadPcmInput(memory, prepared.program, prepared.pcm);
    } else {
        loadCodeInput(memory, prepared.program, prepared.codes);
    }
    return memory;
}

PipelineResult runPipeline(const Prepared& prepared, BranchPredictor& predictor,
                           FetchCustomizer* customizer,
                           const PipelineConfig& config) {
    Memory memory = makeMemory(prepared);
    predictor.reset();
    PipelineSim sim(prepared.program, memory, predictor, config, customizer);
    PipelineResult result = sim.run();
    ASBR_ENSURE(result.exited && result.exitCode == 0,
                "benchmark did not exit cleanly");
    return result;
}

SampledResult runSampledPipeline(const Prepared& prepared,
                                 BranchPredictor& predictor,
                                 FetchCustomizer* customizer,
                                 const SamplingConfig& sampling,
                                 const PipelineConfig& config) {
    Memory memory = makeMemory(prepared);
    predictor.reset();
    SampledResult result = runSampled(prepared.program, memory, predictor,
                                      sampling, config, customizer);
    ASBR_ENSURE(result.exited && result.exitCode == 0,
                "benchmark did not exit cleanly");
    return result;
}

std::map<std::uint32_t, double> accuracyMap(const PipelineStats& stats) {
    std::map<std::uint32_t, double> out;
    for (const auto& [pc, site] : stats.branchSites) out[pc] = site.accuracy();
    return out;
}

WorkloadArtifacts::WorkloadArtifacts(const WorkloadKey& key)
    : key_(key),
      prepared_(prepare(key.workload, key.scheduled, key.seed, key.samples)) {}

const ProgramProfile& WorkloadArtifacts::profile() const {
    std::call_once(profileOnce_, [this] {
        Memory memory = makeMemory(prepared_);
        profile_ = profileProgram(prepared_.program, memory);
    });
    return *profile_;
}

const std::map<std::uint32_t, double>& WorkloadArtifacts::baselineAccuracy()
    const {
    std::call_once(accuracyOnce_, [this] {
        auto baseline = makeBimodal2048();
        const PipelineResult base = runPipeline(prepared_, *baseline);
        accuracy_ = accuracyMap(base.stats);
    });
    return accuracy_;
}

std::shared_ptr<const PredictionProfile> WorkloadArtifacts::predictionProfile(
    const std::string& token) const {
    std::promise<std::shared_ptr<const PredictionProfile>> promise;
    std::shared_future<std::shared_ptr<const PredictionProfile>> slot;
    bool compute = false;
    {
        std::lock_guard<std::mutex> lock(predictionsMutex_);
        const auto it = predictions_.find(token);
        if (it != predictions_.end()) {
            slot = it->second;
        } else {
            slot = promise.get_future().share();
            predictions_.emplace(token, slot);
            compute = true;
        }
    }
    if (compute) {
        try {
            std::string error;
            auto predictor = makePredictorByToken(token, &error);
            ASBR_ENSURE(predictor != nullptr, error);
            Memory memory = makeMemory(prepared_);
            auto profile = std::make_shared<PredictionProfile>(
                profilePredictions(prepared_.program, memory, *predictor));
            promise.set_value(std::move(profile));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return slot.get();
}

SelectionArtifacts::SelectionArtifacts(
    std::shared_ptr<const WorkloadArtifacts> workload, const SelectionKey& key)
    : workload_(std::move(workload)), key_(key) {
    ASBR_ENSURE(key_.bitEntries > 0, "selection: BIT capacity must be resolved");
    ASBR_ENSURE(!(key_.staticFolds && key_.predictorAware),
                "selection: staticFolds and predictorAware are exclusive");
    ASBR_ENSURE(!key_.predictorAware || !key_.predictorToken.empty(),
                "selection: predictor-aware needs a predictor token");
    const ProgramProfile& profile = workload_->profile();
    const std::map<std::uint32_t, double> noAccuracy;
    const std::map<std::uint32_t, double>& accuracy =
        key_.useAccuracy ? workload_->baselineAccuracy() : noAccuracy;
    SelectionConfig config;
    config.bitCapacity = key_.bitEntries;
    config.threshold = thresholdFor(key_.updateStage);
    const Program& program = workload_->prepared().program;
    if (key_.predictorAware) {
        // The baseline-era comparison needs the bimodal reference even when
        // useAccuracy is off — reclaimed slots are measured against the
        // policy the paper's figures used.
        PredictorAwareSelection aware = selectBranchesPredictorAware(
            program, profile,
            *workload_->predictionProfile(key_.predictorToken),
            workload_->baselineAccuracy(), config);
        awareMetrics_.countSelection(aware);
        candidates_ = std::move(aware.folded);
        hardness_ = std::move(aware.hardness);
    } else if (key_.staticFolds) {
        FoldSelection selection =
            selectWithStaticVerdicts(program, profile, accuracy, config);
        candidates_ = std::move(selection.dynamic);
        staticCandidates_ = std::move(selection.statics);
        bitSlotsReclaimed_ = selection.bitSlotsReclaimed;
    } else {
        candidates_ =
            selectFoldableBranches(program, profile, accuracy, config);
    }
    infos_ = extractBranchInfos(program, candidatePcs(candidates_));
    staticEntries_.reserve(staticCandidates_.size());
    for (const StaticFoldCandidate& s : staticCandidates_)
        staticEntries_.push_back(extractStaticFold(program, s.pc, s.taken));
}

std::unique_ptr<AsbrUnit> SelectionArtifacts::makeUnit(
    bool parityProtected) const {
    AsbrConfig config;
    config.updateStage = key_.updateStage;
    config.bitCapacity = key_.bitEntries;
    config.parityProtected = parityProtected;
    auto unit = std::make_unique<AsbrUnit>(config);
    unit->loadBank(0, infos_);
    if (!staticEntries_.empty())
        unit->loadStaticFolds(staticEntries_, bitSlotsReclaimed_);
    return unit;
}

template <typename Key, typename Value, typename Make>
std::shared_ptr<const Value> ArtifactCache::getOrCompute(
    std::map<Key, std::shared_future<std::shared_ptr<const Value>>>& slots,
    const Key& key, std::atomic<std::uint64_t>& computes, Make make) {
    std::promise<std::shared_ptr<const Value>> promise;
    std::shared_future<std::shared_ptr<const Value>> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots.find(key);
        if (it == slots.end()) {
            future = promise.get_future().share();
            slots.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
            hits_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (owner) {
        // Compute outside the lock: concurrent requests for *other* keys
        // proceed; concurrent requests for *this* key block on the future.
        try {
            promise.set_value(make());
            computes.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::shared_ptr<const WorkloadArtifacts> ArtifactCache::workload(
    const WorkloadKey& key) {
    return getOrCompute(workloads_, key, workloadComputes_, [&key] {
        return std::make_shared<const WorkloadArtifacts>(key);
    });
}

std::shared_ptr<const SelectionArtifacts> ArtifactCache::selection(
    const SelectionKey& key) {
    return getOrCompute(selections_, key, selectionComputes_, [this, &key] {
        return std::make_shared<const SelectionArtifacts>(workload(key.workload),
                                                          key);
    });
}

ArtifactCache::Stats ArtifactCache::stats() const {
    Stats stats;
    stats.workloadComputes = workloadComputes_.load(std::memory_order_relaxed);
    stats.selectionComputes =
        selectionComputes_.load(std::memory_order_relaxed);
    stats.hits = hits_.load(std::memory_order_relaxed);
    return stats;
}

}  // namespace asbr::driver

#include "driver/sweep.hpp"

#include <iterator>

namespace asbr::driver {

std::vector<SimJob> expandSweep(const SweepGrid& grid,
                                const CliOptions& options) {
    std::vector<BenchId> workloads = grid.workloads;
    if (workloads.empty())
        workloads.assign(std::begin(kAllBenchesExtended),
                         std::end(kAllBenchesExtended));

    std::vector<SimJob> jobs;
    for (const BenchId id : workloads) {
        SimJob base;
        base.workload = id;
        base.seed = options.seed;
        base.samples = samplesFor(options, id);
        base.figure = "sweep";
        for (const std::string& predictor : grid.predictors) {
            base.predictor = predictor;
            if (grid.includeBaseline) {
                SimJob job = base;
                job.asbr = false;
                jobs.push_back(job);
            }
            for (const std::size_t bits : grid.bitSizes) {
                for (const ValueStage stage : grid.stages) {
                    SimJob job = base;
                    job.asbr = true;
                    job.bitEntries = bits;
                    job.updateStage = stage;
                    job.parityProtected = grid.parityProtected;
                    job.staticFolds = grid.staticFolds;
                    job.predictorAware = grid.predictorAware;
                    jobs.push_back(job);
                }
            }
        }
    }
    return jobs;
}

}  // namespace asbr::driver

#include "driver/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/ensure.hpp"
#include "util/json.hpp"

namespace asbr::driver {

namespace {

constexpr const char* kJournalFile = "journal.jsonl";
constexpr const char* kArtifactDir = "artifacts";

void makeDir(const std::string& path) {
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
    ASBR_ENSURE(false, "journal: cannot create directory '" + path + "': " +
                           std::strerror(errno));
}

[[nodiscard]] bool fileExists(const std::string& path) {
    struct stat st {};
    return ::stat(path.c_str(), &st) == 0;
}

[[nodiscard]] std::string readFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

[[nodiscard]] std::string jsonLine(JsonObject fields) {
    return JsonValue(std::move(fields)).dump() + "\n";
}

/// Member lookup helpers tolerant of any malformed shape — replay must
/// treat a half-written record as noise, never crash on it.
[[nodiscard]] const JsonValue* strMember(const JsonValue& obj,
                                         const char* key) {
    const JsonValue* v = obj.find(key);
    return v != nullptr && v->isString() ? v : nullptr;
}

[[nodiscard]] const JsonValue* numMember(const JsonValue& obj,
                                         const char* key) {
    const JsonValue* v = obj.find(key);
    return v != nullptr && v->isNumber() ? v : nullptr;
}

}  // namespace

std::string fnv1a64Hex(std::string_view bytes) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    char out[17];
    std::snprintf(out, sizeof out, "%016llx",
                  static_cast<unsigned long long>(hash));
    return out;
}

JobJournal::JobJournal(std::string dir, bool resume,
                       const std::string& gridDigest, std::uint64_t jobCount)
    : dir_(std::move(dir)) {
    makeDir(dir_);
    makeDir(dir_ + "/" + kArtifactDir);
    const std::string path = dir_ + "/" + kJournalFile;

    if (!resume) {
        struct stat st {};
        ASBR_ENSURE(::stat(path.c_str(), &st) != 0 || st.st_size == 0,
                    "journal: '" + path +
                        "' already holds a journal — pass --resume to "
                        "continue it, or point --journal at a fresh "
                        "directory");
    } else {
        ASBR_ENSURE(fileExists(path),
                    "journal: nothing to resume — '" + path +
                        "' does not exist (run once without --resume first)");
        replay(readFile(path));
    }

    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    ASBR_ENSURE(fd_ >= 0, "journal: cannot open '" + path +
                              "' for appending: " + std::strerror(errno));
    if (!resume) {
        JsonObject manifest;
        manifest.emplace_back("status", "manifest");
        manifest.emplace_back("gridDigest", gridDigest);
        manifest.emplace_back("jobs", jobCount);
        append(jsonLine(std::move(manifest)));
        manifestDigest_ = gridDigest;
        manifestJobs_ = jobCount;
    }
    ASBR_ENSURE(!manifestDigest_.empty(),
                "journal: '" + path +
                    "' has no readable manifest record — it is not a journal "
                    "this grid can resume");
    ASBR_ENSURE(manifestDigest_ == gridDigest && manifestJobs_ == jobCount,
                "journal: manifest mismatch — '" + path +
                    "' was written by a different grid (digest " +
                    manifestDigest_ + ", " + std::to_string(manifestJobs_) +
                    " job(s); this run: digest " + gridDigest + ", " +
                    std::to_string(jobCount) +
                    " job(s)) — refusing to splice mismatched results");
}

JobJournal::~JobJournal() {
    if (fd_ >= 0) ::close(fd_);
}

void JobJournal::replay(const std::string& text) {
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) end = text.size();
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty()) continue;
        const JsonParseResult parsed = parseJson(line);
        // Torn or garbage trailing line: skip, don't trust, don't crash.
        if (!parsed.ok() || !parsed.value->isObject()) {
            ++skippedLines_;
            continue;
        }
        const JsonValue& record = *parsed.value;
        const JsonValue* status = strMember(record, "status");
        if (status == nullptr) {
            ++skippedLines_;
            continue;
        }
        if (status->asString() == "manifest") {
            const JsonValue* digest = strMember(record, "gridDigest");
            const JsonValue* jobs = numMember(record, "jobs");
            if (digest == nullptr || jobs == nullptr) {
                ++skippedLines_;
                continue;
            }
            // First manifest wins; later ones would be corruption.
            if (manifestDigest_.empty()) {
                manifestDigest_ = digest->asString();
                manifestJobs_ = jobs->asUint();
            }
            continue;
        }
        const JsonValue* key = strMember(record, "jobKey");
        const JsonValue* attempt = numMember(record, "attempt");
        if (key == nullptr || attempt == nullptr) {
            ++skippedLines_;
            continue;
        }
        JournalEntry& entry = entries_[key->asString()];
        if (status->asString() == "running") {
            // Write-ahead marker only: a dangling start means the attempt
            // never concluded — nothing to fold into the entry.
            continue;
        }
        if (status->asString() == "done") {
            const JsonValue* digest = strMember(record, "resultDigest");
            const JsonValue* artifact = strMember(record, "artifactPath");
            if (digest == nullptr || artifact == nullptr) {
                ++skippedLines_;
                continue;
            }
            entry.done = true;
            entry.doneAttempt = attempt->asUint();
            entry.resultDigest = digest->asString();
            entry.artifactPath = artifact->asString();
            continue;
        }
        if (status->asString() == "failed") {
            if (attempt->asUint() >= entry.failedAttempts) {
                entry.failedAttempts = attempt->asUint();
                const JsonValue* error = strMember(record, "error");
                entry.lastError =
                    error != nullptr ? error->asString() : "unknown error";
            }
            continue;
        }
        ++skippedLines_;
    }
}

void JobJournal::append(const std::string& line) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + written, line.size() - written);
        ASBR_ENSURE(n >= 0, std::string("journal: append failed: ") +
                                std::strerror(errno));
        written += static_cast<std::size_t>(n);
    }
    ASBR_ENSURE(::fsync(fd_) == 0,
                std::string("journal: fsync failed: ") + std::strerror(errno));
}

void JobJournal::recordStart(const std::string& jobKey, std::uint64_t attempt) {
    JsonObject record;
    record.emplace_back("status", "running");
    record.emplace_back("jobKey", jobKey);
    record.emplace_back("attempt", attempt);
    append(jsonLine(std::move(record)));
}

void JobJournal::recordDone(const std::string& jobKey, std::uint64_t attempt,
                            const std::string& artifactPath,
                            const std::string& resultDigest) {
    JsonObject record;
    record.emplace_back("status", "done");
    record.emplace_back("jobKey", jobKey);
    record.emplace_back("attempt", attempt);
    record.emplace_back("resultDigest", resultDigest);
    record.emplace_back("artifactPath", artifactPath);
    append(jsonLine(std::move(record)));
}

void JobJournal::recordFailed(const std::string& jobKey, std::uint64_t attempt,
                              const std::string& error) {
    JsonObject record;
    record.emplace_back("status", "failed");
    record.emplace_back("jobKey", jobKey);
    record.emplace_back("attempt", attempt);
    record.emplace_back("error", error);
    append(jsonLine(std::move(record)));
}

const JournalEntry* JobJournal::entry(const std::string& jobKey) const {
    const auto it = entries_.find(jobKey);
    return it == entries_.end() ? nullptr : &it->second;
}

std::string JobJournal::artifactPathFor(const std::string& jobKey) {
    std::string safe;
    safe.reserve(jobKey.size());
    for (const char c : jobKey) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                        c == '.';
        safe.push_back(ok ? c : '_');
    }
    return std::string(kArtifactDir) + "/" + safe + "-" +
           fnv1a64Hex(jobKey).substr(0, 8) + ".json";
}

void JobJournal::writeArtifact(const std::string& relPath,
                               const std::string& bytes) {
    const std::string path = dir_ + "/" + relPath;
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASBR_ENSURE(fd >= 0, "journal: cannot write artifact '" + tmp +
                             "': " + std::strerror(errno));
    std::size_t written = 0;
    bool ok = true;
    while (ok && written < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + written, bytes.size() - written);
        ok = n >= 0;
        if (ok) written += static_cast<std::size_t>(n);
    }
    ok = ok && ::fsync(fd) == 0;
    ::close(fd);
    ok = ok && ::rename(tmp.c_str(), path.c_str()) == 0;
    ASBR_ENSURE(ok, "journal: artifact write failed for '" + path +
                        "': " + std::strerror(errno));
}

std::optional<std::string> JobJournal::readArtifact(
    const std::string& relPath, const std::string& expectDigest) const {
    const std::string path = dir_ + "/" + relPath;
    if (!fileExists(path)) return std::nullopt;
    std::string bytes = readFile(path);
    if (fnv1a64Hex(bytes) != expectDigest) return std::nullopt;
    return bytes;
}

}  // namespace asbr::driver

// ep32 instruction set architecture.
//
// ep32 is the MIPS-like, 32-register load/store ISA the reproduction's
// embedded core executes.  It mirrors the architecture the paper simulates
// with SimpleScalar: single-word 32-bit instructions, no delay slots, and
// conditional branches that support *all zero comparisons* (the property the
// Branch Direction Table exploits — every branch predicate is a comparison of
// one register against zero).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

namespace asbr {

/// Number of architectural general-purpose registers.  r0 is hardwired to 0.
inline constexpr int kNumRegs = 32;

/// Byte size of one instruction word.
inline constexpr std::uint32_t kInstrBytes = 4;

/// ABI register numbers (MIPS o32-style names).
namespace reg {
inline constexpr std::uint8_t zero = 0;
inline constexpr std::uint8_t at = 1;
inline constexpr std::uint8_t v0 = 2;
inline constexpr std::uint8_t v1 = 3;
inline constexpr std::uint8_t a0 = 4;
inline constexpr std::uint8_t a1 = 5;
inline constexpr std::uint8_t a2 = 6;
inline constexpr std::uint8_t a3 = 7;
inline constexpr std::uint8_t t0 = 8;   // t0..t7 = 8..15
inline constexpr std::uint8_t t7 = 15;
inline constexpr std::uint8_t s0 = 16;  // s0..s7 = 16..23
inline constexpr std::uint8_t s7 = 23;
inline constexpr std::uint8_t t8 = 24;
inline constexpr std::uint8_t t9 = 25;
inline constexpr std::uint8_t k0 = 26;
inline constexpr std::uint8_t k1 = 27;
inline constexpr std::uint8_t gp = 28;
inline constexpr std::uint8_t sp = 29;
inline constexpr std::uint8_t fp = 30;
inline constexpr std::uint8_t ra = 31;
}  // namespace reg

/// Every ep32 opcode.  The numeric value is the 6-bit encoding field.
enum class Op : std::uint8_t {
    // R-type ALU (rd <- rs OP rt)
    kAddu, kSubu, kAnd, kOr, kXor, kNor, kSlt, kSltu, kSllv, kSrlv, kSrav,
    kMul, kMulh, kDiv, kDivu, kRem, kRemu,
    // I-type ALU (rd <- rs OP imm)
    kAddiu, kAndi, kOri, kXori, kSlti, kSltiu, kLui,
    kSll, kSrl, kSra,  // shift by immediate amount
    // Loads (rd <- mem[rs + imm]) and stores (mem[rs + imm] <- rt)
    kLb, kLbu, kLh, kLhu, kLw, kSb, kSh, kSw,
    // Conditional branches on a zero comparison of rs.
    // Target = pc + 4 + imm*4 (imm counts instruction words).
    kBeqz, kBnez, kBlez, kBgtz, kBltz, kBgez,
    // Jumps.  J/JAL: imm is an absolute instruction-word index within the
    // current 256MB region.  JR: pc <- rs.  JALR: rd <- pc+4; pc <- rs.
    kJ, kJal, kJr, kJalr,
    // System call: service number in v0, arguments in a0..a2, result in v0.
    kSys,
    // Canonical no-op.
    kNop,
};

/// Number of distinct opcodes (for table sizing / encode validation).
inline constexpr int kNumOps = static_cast<int>(Op::kNop) + 1;

/// The zero-comparison branch conditions supported by the ISA — the exact
/// per-register condition bits the Branch Direction Table precomputes.
enum class Cond : std::uint8_t { kEqz, kNez, kLez, kGtz, kLtz, kGez };

inline constexpr int kNumConds = 6;

/// Evaluate a zero-comparison condition on a register value.
[[nodiscard]] constexpr bool evalCond(Cond c, std::int32_t value) {
    switch (c) {
        case Cond::kEqz: return value == 0;
        case Cond::kNez: return value != 0;
        case Cond::kLez: return value <= 0;
        case Cond::kGtz: return value > 0;
        case Cond::kLtz: return value < 0;
        case Cond::kGez: return value >= 0;
    }
    return false;
}

/// One decoded ep32 instruction.
///
/// Field roles by class:
///  - R-type ALU:  rd <- rs OP rt
///  - I-type ALU:  rd <- rs OP imm    (shifts-by-immediate use imm as shamt)
///  - load:        rd <- mem[rs+imm]
///  - store:       mem[rs+imm] <- rt
///  - branch:      test rs, offset imm (instruction words, relative to pc+4)
///  - J/JAL:       imm = absolute instruction-word index
///  - JR/JALR:     target in rs (JALR links into rd)
struct Instruction {
    Op op = Op::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int32_t imm = 0;

    bool operator==(const Instruction&) const = default;
};

/// Static classification of an opcode.
[[nodiscard]] bool isCondBranch(Op op);
[[nodiscard]] bool isJump(Op op);
[[nodiscard]] bool isControl(Op op);  // branch or jump
[[nodiscard]] bool isLoad(Op op);
[[nodiscard]] bool isStore(Op op);
[[nodiscard]] bool isMulDiv(Op op);

/// The branch condition for a conditional-branch opcode.
[[nodiscard]] Cond branchCond(Op op);

/// The conditional-branch opcode for a condition (inverse of branchCond).
[[nodiscard]] Op condToBranchOp(Cond c);

/// The logically-negated condition (e.g. kEqz -> kNez).
[[nodiscard]] Cond negateCond(Cond c);

/// Destination register written by the instruction, if any.  Writes to r0
/// are reported here but discarded by the machine.
[[nodiscard]] std::optional<std::uint8_t> destReg(const Instruction& ins);

/// Source registers read by the instruction (0, 1 or 2 entries).
struct SrcRegs {
    std::array<std::uint8_t, 2> regs{};
    int count = 0;
};
[[nodiscard]] SrcRegs srcRegs(const Instruction& ins);

/// Lowercase mnemonic ("addu", "beqz", ...).
[[nodiscard]] const char* opName(Op op);

/// Parse a mnemonic; nullopt for unknown strings.
[[nodiscard]] std::optional<Op> opFromName(const std::string& name);

/// ABI name of a register ("zero", "a0", "t3", ...).
[[nodiscard]] const char* regName(std::uint8_t r);

/// Parse a register name: "$a0", "a0", "$4", "r4" all accept register 4.
[[nodiscard]] std::optional<std::uint8_t> regFromName(const std::string& name);

/// Condition mnemonic suffix ("eqz", "nez", ...).
[[nodiscard]] const char* condName(Cond c);

/// System-call service numbers (placed in v0 before `sys`).
enum class Syscall : std::int32_t {
    kExit = 1,     // a0 = exit code
    kPutChar = 2,  // a0 = character
    kPutInt = 3,   // a0 = signed integer, printed in decimal
};

}  // namespace asbr

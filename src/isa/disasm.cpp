#include "isa/disasm.hpp"

#include <iomanip>
#include <sstream>

namespace asbr {

namespace {

bool isRAlu(Op op) { return op >= Op::kAddu && op <= Op::kRemu; }

bool isIAlu(Op op) { return op >= Op::kAddiu && op <= Op::kSra; }

std::string hex(std::uint32_t v) {
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

}  // namespace

std::string disassemble(const Instruction& ins) {
    std::ostringstream os;
    os << opName(ins.op);
    const Op op = ins.op;
    if (op == Op::kNop || op == Op::kSys) return os.str();
    os << ' ';
    if (isRAlu(op)) {
        os << regName(ins.rd) << ", " << regName(ins.rs) << ", " << regName(ins.rt);
    } else if (op == Op::kLui) {
        os << regName(ins.rd) << ", " << ins.imm;
    } else if (isIAlu(op)) {
        os << regName(ins.rd) << ", " << regName(ins.rs) << ", " << ins.imm;
    } else if (isLoad(op)) {
        os << regName(ins.rd) << ", " << ins.imm << '(' << regName(ins.rs) << ')';
    } else if (isStore(op)) {
        os << regName(ins.rt) << ", " << ins.imm << '(' << regName(ins.rs) << ')';
    } else if (isCondBranch(op)) {
        os << regName(ins.rs) << ", " << ins.imm;
    } else if (op == Op::kJ || op == Op::kJal) {
        os << hex(static_cast<std::uint32_t>(ins.imm) * kInstrBytes);
    } else if (op == Op::kJr) {
        os << regName(ins.rs);
    } else if (op == Op::kJalr) {
        os << regName(ins.rd) << ", " << regName(ins.rs);
    }
    return os.str();
}

std::string disassembleAt(const Instruction& ins, std::uint32_t pc) {
    std::ostringstream os;
    os << std::hex << std::setw(8) << std::setfill('0') << pc << ": " << std::dec;
    if (isCondBranch(ins.op)) {
        const std::uint32_t target =
            pc + kInstrBytes +
            static_cast<std::uint32_t>(ins.imm) * kInstrBytes;
        os << opName(ins.op) << ' ' << regName(ins.rs) << ", " << hex(target);
        return os.str();
    }
    os << disassemble(ins);
    return os.str();
}

}  // namespace asbr

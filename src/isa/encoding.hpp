// Binary encoding of ep32 instructions.
//
// Layouts (bit 31 .. bit 0):
//   R-type:   [op:6][rd:5][rs:5][rt:5][pad:11]
//   I-type:   [op:6][rd:5][rs:5][imm:16]          (branches put rs in the rs
//                                                  field and leave rd = 0)
//   J-type:   [op:6][index:26]                    (J / JAL)
//
// Shift-by-immediate instructions use the I layout with imm = shamt (0..31).
#pragma once

#include <cstdint>

#include "isa/isa.hpp"

namespace asbr {

/// Encode an instruction into its 32-bit word.  Throws EnsureError when a
/// field is out of range (immediate does not fit 16 bits, bad shamt, ...).
[[nodiscard]] std::uint32_t encode(const Instruction& ins);

/// Decode a 32-bit word.  Throws EnsureError on an invalid opcode field.
[[nodiscard]] Instruction decode(std::uint32_t word);

/// True when `value` is representable as the signed 16-bit immediate.
[[nodiscard]] constexpr bool fitsSimm16(std::int64_t value) {
    return value >= -32768 && value <= 32767;
}

/// True when `value` is representable as the unsigned 16-bit immediate used
/// by andi/ori/xori.
[[nodiscard]] constexpr bool fitsUimm16(std::int64_t value) {
    return value >= 0 && value <= 65535;
}

}  // namespace asbr

#include "isa/isa.hpp"

#include <unordered_map>

#include "util/ensure.hpp"

namespace asbr {

namespace {

constexpr std::array<const char*, kNumOps> kOpNames = {
    "addu", "subu", "and",  "or",   "xor",  "nor",  "slt",  "sltu", "sllv",
    "srlv", "srav", "mul",  "mulh", "div",  "divu", "rem",  "remu", "addiu",
    "andi", "ori",  "xori", "slti", "sltiu", "lui", "sll",  "srl",  "sra",
    "lb",   "lbu",  "lh",   "lhu",  "lw",   "sb",   "sh",   "sw",   "beqz",
    "bnez", "blez", "bgtz", "bltz", "bgez", "j",    "jal",  "jr",   "jalr",
    "sys",  "nop",
};

constexpr std::array<const char*, kNumRegs> kRegNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2",
    "t3",   "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5",
    "s6",   "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
};

constexpr std::array<const char*, kNumConds> kCondNames = {
    "eqz", "nez", "lez", "gtz", "ltz", "gez",
};

}  // namespace

bool isCondBranch(Op op) { return op >= Op::kBeqz && op <= Op::kBgez; }

bool isJump(Op op) { return op >= Op::kJ && op <= Op::kJalr; }

bool isControl(Op op) { return isCondBranch(op) || isJump(op); }

bool isLoad(Op op) { return op >= Op::kLb && op <= Op::kLw; }

bool isStore(Op op) { return op >= Op::kSb && op <= Op::kSw; }

bool isMulDiv(Op op) { return op >= Op::kMul && op <= Op::kRemu; }

Cond branchCond(Op op) {
    ASBR_ENSURE(isCondBranch(op), "branchCond on non-branch");
    return static_cast<Cond>(static_cast<int>(op) - static_cast<int>(Op::kBeqz));
}

Op condToBranchOp(Cond c) {
    return static_cast<Op>(static_cast<int>(Op::kBeqz) + static_cast<int>(c));
}

Cond negateCond(Cond c) {
    switch (c) {
        case Cond::kEqz: return Cond::kNez;
        case Cond::kNez: return Cond::kEqz;
        case Cond::kLez: return Cond::kGtz;
        case Cond::kGtz: return Cond::kLez;
        case Cond::kLtz: return Cond::kGez;
        case Cond::kGez: return Cond::kLtz;
    }
    return Cond::kEqz;
}

std::optional<std::uint8_t> destReg(const Instruction& ins) {
    const Op op = ins.op;
    if (isStore(op) || isCondBranch(op) || op == Op::kJ || op == Op::kJr ||
        op == Op::kSys || op == Op::kNop) {
        return std::nullopt;
    }
    if (op == Op::kJal) return reg::ra;
    return ins.rd;  // ALU, loads, JALR
}

SrcRegs srcRegs(const Instruction& ins) {
    SrcRegs out;
    auto add = [&out](std::uint8_t r) { out.regs[out.count++] = r; };
    const Op op = ins.op;
    if (op == Op::kNop || op == Op::kJ || op == Op::kJal) return out;
    if (op == Op::kLui) return out;  // imm only
    if (op == Op::kSys) {
        // By convention SYS reads v0 (service) and a0 (argument).
        add(reg::v0);
        add(reg::a0);
        return out;
    }
    if (isStore(op)) {
        add(ins.rs);  // base address
        add(ins.rt);  // data
        return out;
    }
    if (isCondBranch(op) || op == Op::kJr || op == Op::kJalr) {
        add(ins.rs);
        return out;
    }
    // R-type ALU reads rs and rt; I-type ALU and loads read rs only.
    add(ins.rs);
    if (op <= Op::kRemu) add(ins.rt);
    return out;
}

const char* opName(Op op) {
    const int i = static_cast<int>(op);
    ASBR_ENSURE(i >= 0 && i < kNumOps, "opName: bad opcode");
    return kOpNames[static_cast<std::size_t>(i)];
}

std::optional<Op> opFromName(const std::string& name) {
    static const std::unordered_map<std::string, Op> table = [] {
        std::unordered_map<std::string, Op> t;
        for (int i = 0; i < kNumOps; ++i)
            t.emplace(kOpNames[static_cast<std::size_t>(i)], static_cast<Op>(i));
        return t;
    }();
    const auto it = table.find(name);
    if (it == table.end()) return std::nullopt;
    return it->second;
}

const char* regName(std::uint8_t r) {
    ASBR_ENSURE(r < kNumRegs, "regName: bad register");
    return kRegNames[r];
}

std::optional<std::uint8_t> regFromName(const std::string& name) {
    std::string s = name;
    if (!s.empty() && s.front() == '$') s.erase(0, 1);
    if (s.empty()) return std::nullopt;
    // Numeric forms: "4" or "r4".
    std::string num = s;
    if (num.front() == 'r' && num.size() > 1 &&
        num.find_first_not_of("0123456789", 1) == std::string::npos) {
        num.erase(0, 1);
    }
    if (num.find_first_not_of("0123456789") == std::string::npos) {
        const int v = std::stoi(num);
        if (v >= 0 && v < kNumRegs) return static_cast<std::uint8_t>(v);
        return std::nullopt;
    }
    static const std::unordered_map<std::string, std::uint8_t> table = [] {
        std::unordered_map<std::string, std::uint8_t> t;
        for (int i = 0; i < kNumRegs; ++i)
            t.emplace(kRegNames[static_cast<std::size_t>(i)],
                      static_cast<std::uint8_t>(i));
        return t;
    }();
    const auto it = table.find(s);
    if (it == table.end()) return std::nullopt;
    return it->second;
}

const char* condName(Cond c) {
    return kCondNames[static_cast<std::size_t>(c)];
}

}  // namespace asbr

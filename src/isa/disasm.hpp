// Textual disassembly of ep32 instructions, round-trippable through the
// assembler (asm module) for everything except label names.
#pragma once

#include <string>

#include "isa/isa.hpp"

namespace asbr {

/// Render one instruction, e.g. "addu t0, t1, t2" or "bnez a0, -3".
/// Branch/jump operands are shown numerically (no symbol table here).
[[nodiscard]] std::string disassemble(const Instruction& ins);

/// Render with the instruction's address, resolving branch targets to
/// absolute addresses: "00001004: bnez a0, 0x1010".
[[nodiscard]] std::string disassembleAt(const Instruction& ins, std::uint32_t pc);

}  // namespace asbr

#include "isa/encoding.hpp"

#include "util/ensure.hpp"

namespace asbr {

namespace {

bool isRLayout(Op op) {
    return isMulDiv(op) || (op >= Op::kAddu && op <= Op::kSrav) ||
           op == Op::kJr || op == Op::kJalr;
}

bool isJLayout(Op op) { return op == Op::kJ || op == Op::kJal; }

bool isUnsignedImm(Op op) {
    return op == Op::kAndi || op == Op::kOri || op == Op::kXori || op == Op::kLui;
}

bool isShiftImm(Op op) {
    return op == Op::kSll || op == Op::kSrl || op == Op::kSra;
}

}  // namespace

std::uint32_t encode(const Instruction& ins) {
    const auto op = static_cast<std::uint32_t>(ins.op);
    ASBR_ENSURE(op < static_cast<std::uint32_t>(kNumOps), "encode: bad opcode");
    ASBR_ENSURE(ins.rd < kNumRegs && ins.rs < kNumRegs && ins.rt < kNumRegs,
                "encode: bad register number");

    if (isJLayout(ins.op)) {
        ASBR_ENSURE(ins.imm >= 0 && ins.imm < (1 << 26), "encode: jump index range");
        return (op << 26) | static_cast<std::uint32_t>(ins.imm);
    }
    if (isRLayout(ins.op)) {
        return (op << 26) | (static_cast<std::uint32_t>(ins.rd) << 21) |
               (static_cast<std::uint32_t>(ins.rs) << 16) |
               (static_cast<std::uint32_t>(ins.rt) << 11);
    }
    // I layout.  Stores carry their data register in the rd field.
    const std::uint8_t rdField = isStore(ins.op) ? ins.rt : ins.rd;
    if (isShiftImm(ins.op)) {
        ASBR_ENSURE(ins.imm >= 0 && ins.imm < 32, "encode: shift amount range");
    } else if (isUnsignedImm(ins.op)) {
        ASBR_ENSURE(fitsUimm16(ins.imm), "encode: unsigned immediate range");
    } else {
        ASBR_ENSURE(fitsSimm16(ins.imm), "encode: signed immediate range");
    }
    return (op << 26) | (static_cast<std::uint32_t>(rdField) << 21) |
           (static_cast<std::uint32_t>(ins.rs) << 16) |
           (static_cast<std::uint32_t>(ins.imm) & 0xFFFFu);
}

Instruction decode(std::uint32_t word) {
    Instruction ins;
    const std::uint32_t opField = word >> 26;
    ASBR_ENSURE(opField < static_cast<std::uint32_t>(kNumOps),
                "decode: bad opcode field");
    ins.op = static_cast<Op>(opField);

    if (isJLayout(ins.op)) {
        ins.imm = static_cast<std::int32_t>(word & 0x03FFFFFFu);
        return ins;
    }
    if (isRLayout(ins.op)) {
        ins.rd = static_cast<std::uint8_t>((word >> 21) & 0x1Fu);
        ins.rs = static_cast<std::uint8_t>((word >> 16) & 0x1Fu);
        ins.rt = static_cast<std::uint8_t>((word >> 11) & 0x1Fu);
        return ins;
    }
    const auto rdField = static_cast<std::uint8_t>((word >> 21) & 0x1Fu);
    ins.rs = static_cast<std::uint8_t>((word >> 16) & 0x1Fu);
    if (isStore(ins.op)) {
        ins.rt = rdField;
    } else {
        ins.rd = rdField;
    }
    const std::uint32_t imm16 = word & 0xFFFFu;
    if (isUnsignedImm(ins.op) || isShiftImm(ins.op)) {
        ins.imm = static_cast<std::int32_t>(imm16);
    } else {
        ins.imm = static_cast<std::int32_t>(static_cast<std::int16_t>(imm16));
    }
    return ins;
}

}  // namespace asbr

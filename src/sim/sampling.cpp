#include "sim/sampling.hpp"

#include <cmath>

#include "asbr/asbr_unit.hpp"
#include "util/ensure.hpp"
#include "util/metrics.hpp"

namespace asbr {

namespace {

/// One fast-forward burst: decode-cached functional execution with the
/// customizer fed the exact event stream the pipeline would emit
/// (replayArchStep via the batched onArchStep hook).  Templated on the
/// concrete customizer type so that for the common AsbrUnit case every hook
/// body inlines into the loop — the replay then costs a couple of table
/// writes per instruction instead of a chain of virtual calls.
template <class Customizer>
std::uint64_t fastForwardBurst(Customizer& customizer, DecodeCache& cache,
                               ArchState& state, Memory& memory, IoContext& io,
                               std::uint64_t budget) {
    std::uint64_t skipped = 0;
    while (skipped < budget && !io.exited) {
        const DecodedOp& dec = cache.lookup(state.pc);
        const StepResult sr = stepDecoded(state, memory, dec, io);
        ++skipped;
        customizer.onArchStep(dec, sr);
    }
    return skipped;
}

}  // namespace

void SampledResult::publish(MetricRegistry& registry) const {
    registry
        .counter("sim.sampled_windows",
                 "cycle-accurate measurement windows in a sampled run")
        .add(windows.size());
    registry
        .counter("sim.sampled_instructions",
                 "instructions measured inside cycle-accurate windows")
        .add(measuredInstructions);
    registry
        .counter("sim.fast_forward_instructions",
                 "instructions executed on the functional fast-forward path "
                 "between windows")
        .add(fastForwardInstructions);
}

void SimSpeed::publish(MetricRegistry& registry) const {
    registry
        .counter("sim.mips",
                 "host throughput in million simulated instructions per "
                 "second (host-dependent: human-facing output only, never "
                 "JSON artifacts)")
        .add(mips);
}

SampledResult runSampled(const Program& program, Memory& memory,
                         BranchPredictor& predictor,
                         const SamplingConfig& sampling,
                         const PipelineConfig& config,
                         FetchCustomizer* customizer) {
    ASBR_ENSURE(sampling.measure > 0,
                "sampling: the measure window must be nonzero");

    PipelineSim sim(program, memory, predictor, config, customizer);
    DecodeCache fastForward(program);
    SampledResult out;

    // Architectural thread state, handed back and forth between the pipeline
    // and the functional fast-forward loop.
    ArchState state;
    state.pc = program.entry;
    state.setReg(reg::sp, static_cast<std::int32_t>(kStackTop));
    state.setReg(reg::gp, static_cast<std::int32_t>(program.dataBase + 0x8000));
    IoContext io;

    while (!io.exited) {
        // Detailed unit: warmup (discarded) then the measured slice.  Each
        // phase starts from a drained pipeline; warmup exists to re-warm the
        // short-lived state the drain loses, while caches/predictor/BDT stay
        // warm across the whole run.
        sim.warmStart(state, io);
        if (sampling.warmup > 0) {
            sim.run(sampling.warmup);
            sim.warmStart(sim.archState(), sim.io());
        }
        const std::uint64_t preCycles = sim.stats().cycles;
        const std::uint64_t preCommitted = sim.stats().committed;
        if (!sim.io().exited) sim.run(sampling.measure);
        const std::uint64_t windowInstructions =
            sim.stats().committed - preCommitted;
        const std::uint64_t windowCycles = sim.stats().cycles - preCycles;
        state = sim.archState();
        io = sim.io();
        if (windowInstructions > 0) {
            out.windows.push_back(SampleWindow{
                preCommitted + out.fastForwardInstructions, windowInstructions,
                windowCycles});
            out.measuredInstructions += windowInstructions;
            out.measuredCycles += windowCycles;
        }
        if (io.exited) break;

        // Fast-forward between detailed windows.  The AsbrUnit case gets a
        // fully inlined replay loop; any other customizer goes through the
        // virtual onArchStep hook; the bare loop skips replay entirely.
        std::uint64_t skipped = 0;
        if (auto* unit = dynamic_cast<AsbrUnit*>(customizer)) {
            skipped = fastForwardBurst(*unit, fastForward, state, memory, io,
                                       sampling.skip);
        } else if (customizer != nullptr) {
            skipped = fastForwardBurst(*customizer, fastForward, state, memory,
                                       io, sampling.skip);
        } else {
            while (skipped < sampling.skip && !io.exited) {
                stepDecoded(state, memory, fastForward.lookup(state.pc), io);
                ++skipped;
            }
        }
        out.fastForwardInstructions += skipped;
    }

    // Cumulative detailed-window stats; the cache/decode-cache snapshot
    // fields were refreshed when the last run() call returned.
    out.stats = sim.stats();
    out.totalInstructions = out.stats.committed + out.fastForwardInstructions;
    out.exited = io.exited;
    out.exitCode = io.exitCode;
    out.output = std::move(io.output);

    out.cpiEstimate =
        out.measuredInstructions == 0
            ? 0.0
            : static_cast<double>(out.measuredCycles) /
                  static_cast<double>(out.measuredInstructions);
    const std::size_t n = out.windows.size();
    if (n >= 2) {
        double mean = 0.0;
        for (const SampleWindow& w : out.windows) mean += w.cpi();
        mean /= static_cast<double>(n);
        double varSum = 0.0;
        for (const SampleWindow& w : out.windows) {
            const double d = w.cpi() - mean;
            varSum += d * d;
        }
        const double stddev = std::sqrt(varSum / static_cast<double>(n - 1));
        out.ci95HalfWidth = 1.96 * stddev / std::sqrt(static_cast<double>(n));
    }
    return out;
}

}  // namespace asbr

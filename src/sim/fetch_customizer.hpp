// Fetch-stage customization hook.
//
// This is the seam the paper's microarchitectural customization plugs into:
// the pipeline consults the customizer on every fetch (before the branch
// predictor) and feeds it the register-production events the Early Condition
// Evaluation phase needs.  The ASBR unit (src/asbr) is the production
// implementation; tests install scripted fakes.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/isa.hpp"
#include "sim/exec.hpp"

namespace asbr {

/// Pipeline points at which a register value can be captured by the early
/// condition evaluation logic (Section 5.2 of the paper):
///   kExEnd  — end of the execute stage (most aggressive, threshold 2)
///   kMemEnd — forwarding path right after execute (threshold 3)
///   kCommit — register commit / writeback (baseline, threshold 4)
enum class ValueStage : std::uint8_t { kExEnd = 0, kMemEnd = 1, kCommit = 2 };

/// Replay, architecturally, the customizer event stream one instruction
/// generates on its way down the pipeline: producer registration at ID,
/// value captures at EX-end (non-loads), MEM-end and commit, and the store
/// port.  With zero instruction overlap this is exactly the in-order event
/// sequence, so BDT validity counters return to zero after every instruction
/// and direction bits track architectural values bit-for-bit.
///
/// This is THE definition of the per-instruction event stream — the
/// fast-forward path of sampled simulation replays it between detailed
/// windows.  It is a template so that a `final` customizer class (like
/// AsbrUnit) gets every inner hook devirtualized and inlined; the generic
/// FetchCustomizer::onArchStep default instantiates it with virtual dispatch.
template <class Customizer>
inline void replayArchStep(Customizer& customizer, const DecodedOp& dec,
                           const StepResult& sr) {
    if (dec.writesDest) customizer.onProducerDecoded(dec.dest);
    if (sr.write) {
        const ValueStage first =
            sr.isLoadOp ? ValueStage::kMemEnd : ValueStage::kExEnd;
        if (first == ValueStage::kExEnd)
            customizer.onValueAvailable(sr.write->reg, sr.write->value,
                                        ValueStage::kExEnd, first);
        customizer.onValueAvailable(sr.write->reg, sr.write->value,
                                    ValueStage::kMemEnd, first);
        customizer.onValueAvailable(sr.write->reg, sr.write->value,
                                    ValueStage::kCommit, first);
    }
    if (sr.isStoreOp) customizer.onStore(sr.memAddr, sr.storeValue);
    // There is no fetch stream to stall during a replay; drain any
    // parity-recovery debt so it cannot leak into later pipeline timing.
    (void)customizer.takeRecoveryStall();
}

class FetchCustomizer {
public:
    virtual ~FetchCustomizer() = default;

    /// Replacement produced by folding a branch out of the fetch slot.
    struct FoldOutcome {
        Instruction replacement;       ///< BTI or BFI
        std::uint32_t replacementPc;   ///< address the replacement executes at
        bool taken = false;            ///< resolved branch direction
    };

    /// Called for every fetched instruction.  Returning a FoldOutcome removes
    /// the fetched instruction from the stream and injects the replacement;
    /// the next fetch continues at replacementPc + 4.
    virtual std::optional<FoldOutcome> onFetch(std::uint32_t pc,
                                               const Instruction& fetched) = 0;

    /// An instruction producing `reg` completed decode (it will definitely
    /// execute — the pipeline never lets wrong-path instructions past
    /// decode).  Never called for r0.
    virtual void onProducerDecoded(std::uint8_t reg) = 0;

    /// `reg` now holds `value` as the producing instruction passes `stage`.
    /// Fired once per stage the value exists in: ALU results at kExEnd,
    /// kMemEnd and kCommit; load results at kMemEnd and kCommit.
    /// `firstStage` is the earliest stage the value exists at.
    virtual void onValueAvailable(std::uint8_t reg, std::int32_t value,
                                  ValueStage stage, ValueStage firstStage) = 0;

    /// A store to `addr` completed (MEM stage).  Default: ignored.  The ASBR
    /// unit watches a memory-mapped control register here to switch BIT banks
    /// at loop transitions (paper, Section 7).
    virtual void onStore(std::uint32_t addr, std::int32_t value) {
        (void)addr;
        (void)value;
    }

    /// Batched replay of the full event stream of one architecturally
    /// executed instruction (fast-forward hot path).  Semantically identical
    /// to firing the fine-grained hooks above in pipeline order — the default
    /// literally does that via replayArchStep().  A concrete customizer may
    /// override with replayArchStep(*this, ...) to collapse up to five
    /// virtual dispatches per instruction into one (AsbrUnit does).
    virtual void onArchStep(const DecodedOp& dec, const StepResult& sr) {
        replayArchStep(*this, dec, sr);
    }

    /// Fetch bubbles the customizer wants inserted after the current fetch —
    /// the resynchronization cost of an internal recovery (e.g. an ASBR
    /// parity-scrub after a detected soft error).  Called once per consulted
    /// fetch; the return value is consumed (the customizer must clear its
    /// pending debt).  Default: no stall.
    virtual std::uint32_t takeRecoveryStall() { return 0; }

    virtual void reset() = 0;
};

}  // namespace asbr

// Sampled cycle-accurate simulation (systematic sampling, SMARTS-style).
//
// Alternates short cycle-accurate windows with long functional fast-forward
// phases: one persistent PipelineSim keeps every long-lived microarchitectural
// structure warm across windows (caches, predictor, BDT/BIT, decode cache),
// while the skipped instructions execute on the decode-cached functional path
// with the fetch customizer fed the same producer/value/store event stream the
// pipeline would have produced — so ASBR direction bits stay architecturally
// exact and a sampled run emits the *same program output* as a full run.
//
// The CPI estimate is the ratio estimator over all measured windows
// (measured cycles / measured instructions); the reported error bound is the
// 95% confidence half-width of the per-window CPI mean.  docs/simulation.md
// derives the math and documents the bound's caveats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.hpp"
#include "bp/predictor.hpp"
#include "mem/memory.hpp"
#include "sim/fetch_customizer.hpp"
#include "sim/pipeline.hpp"

namespace asbr {

class MetricRegistry;

/// Window geometry, in instructions.  A sampling unit is
/// [warmup (detailed, discarded) | measure (detailed, counted)] followed by
/// `skip` fast-forwarded instructions; units repeat until program exit.
struct SamplingConfig {
    std::uint64_t warmup = 2'000;
    std::uint64_t measure = 10'000;
    std::uint64_t skip = 100'000;
};

/// One measured window.
struct SampleWindow {
    std::uint64_t startInstruction = 0;  ///< executed-instruction index at
                                         ///< the start of measurement
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    [[nodiscard]] double cpi() const {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(cycles) / static_cast<double>(instructions);
    }
};

/// Outcome of a sampled run.
struct SampledResult {
    std::vector<SampleWindow> windows;
    std::uint64_t totalInstructions = 0;     ///< detailed + fast-forwarded
    std::uint64_t measuredInstructions = 0;  ///< sum over windows
    std::uint64_t measuredCycles = 0;
    std::uint64_t fastForwardInstructions = 0;
    /// Ratio estimator: measuredCycles / measuredInstructions.
    double cpiEstimate = 0.0;
    /// 95% confidence half-width of the per-window CPI mean (0 with fewer
    /// than two windows).
    double ci95HalfWidth = 0.0;
    bool exited = false;
    std::int32_t exitCode = 0;
    std::string output;  ///< full program output (identical to a full run)
    /// Cumulative pipeline statistics over the detailed windows only —
    /// fold rate / predictor accuracy estimates come from here.
    PipelineStats stats;

    /// Register sim.sampled_* counters (docs/metrics.md).
    void publish(MetricRegistry& registry) const;
};

/// Host-throughput gauge for the "how fast is the simulator" story
/// (docs/simulation.md).  sim.mips is host-dependent by construction, so it
/// only ever appears in human-facing output — never in JSON artifacts that
/// CI byte-compares across thread counts.
struct SimSpeed {
    std::uint64_t mips = 0;  ///< million simulated instructions per host second
    void publish(MetricRegistry& registry) const;
};

/// Run `program` to completion under systematic sampling.  `memory` must be
/// freshly prepared (same contract as PipelineSim); `customizer` may be null.
SampledResult runSampled(const Program& program, Memory& memory,
                         BranchPredictor& predictor,
                         const SamplingConfig& sampling,
                         const PipelineConfig& config = {},
                         FetchCustomizer* customizer = nullptr);

}  // namespace asbr

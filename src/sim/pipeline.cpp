#include "sim/pipeline.hpp"

#include "util/ensure.hpp"

namespace asbr {

PipelineSim::PipelineSim(const Program& program, Memory& memory,
                         BranchPredictor& predictor, const PipelineConfig& config,
                         FetchCustomizer* customizer)
    : program_(program),
      memory_(memory),
      predictor_(predictor),
      config_(config),
      customizer_(customizer),
      icache_(config.icache),
      dcache_(config.dcache) {
    state_.pc = program_.entry;
    state_.setReg(reg::sp, static_cast<std::int32_t>(kStackTop));
    state_.setReg(reg::gp, static_cast<std::int32_t>(program_.dataBase + 0x8000));
    fetchPc_ = program_.entry;
}

std::uint32_t PipelineSim::exOccupancy(Op op) const {
    if (op == Op::kMul || op == Op::kMulh) return config_.mulLatency;
    if (op == Op::kDiv || op == Op::kDivu || op == Op::kRem || op == Op::kRemu)
        return config_.divLatency;
    return 1;
}

void PipelineSim::emitValue(const Slot& slot, ValueStage stage) {
    if (!customizer_ || !slot.exec.write) return;
    const ValueStage first =
        slot.exec.isLoadOp ? ValueStage::kMemEnd : ValueStage::kExEnd;
    customizer_->onValueAvailable(slot.exec.write->reg, slot.exec.write->value,
                                  stage, first);
}

void PipelineSim::stageWriteback() {
    if (!memWb_.valid) return;
    ++stats_.committed;
    emitValue(memWb_, ValueStage::kCommit);
    memWb_.valid = false;
}

void PipelineSim::stageMemory() {
    if (!exMem_.valid) return;
    if (!memStarted_) {
        memStarted_ = true;
        if (exMem_.exec.memAccess) {
            const std::uint32_t penalty = dcache_.access(exMem_.exec.memAddr);
            if (penalty > 0) {
                memBusy_ = penalty;
                stats_.dcacheStallCycles += penalty;
            }
        }
    }
    if (memBusy_ > 0) {
        --memBusy_;
        return;  // stalled; memWb_ is already drained by stageWriteback
    }
    if (customizer_ && exMem_.exec.isStoreOp) {
        customizer_->onStore(exMem_.exec.memAddr, exMem_.exec.storeValue);
    }
    emitValue(exMem_, ValueStage::kMemEnd);
    memWb_ = exMem_;
    exMem_.valid = false;
    memStarted_ = false;
}

void PipelineSim::stageExecute() {
    if (!idEx_.valid) return;
    ASBR_ENSURE(!idEx_.outOfText,
                "executing outside the text segment (runaway control flow)");
    if (!exStarted_) {
        exStarted_ = true;
        idEx_.exec = step(state_, memory_, idEx_.ins, io_, idEx_.pc);
        const std::uint32_t occupancy = exOccupancy(idEx_.ins.op);
        if (occupancy > 1) {
            exBusy_ = occupancy - 1;
            stats_.mulDivStallCycles += occupancy - 1;
        }
    }
    if (exBusy_ > 0) {
        --exBusy_;
        return;
    }
    if (exMem_.valid) return;  // structural stall: MEM is busy

    const StepResult& e = idEx_.exec;

    if (idEx_.wasFolded) {
        ++stats_.foldedBranches;
        ++stats_.condBranches;
        BranchSiteStats& site = stats_.branchSites[idEx_.foldOrigin];
        ++site.execs;
        ++site.folded;
        if (idEx_.foldTaken) ++site.taken;
    }
    if (e.isBranch) {
        ++stats_.condBranches;
        ++stats_.predictedBranches;
        BranchSiteStats& site = stats_.branchSites[idEx_.pc];
        ++site.execs;
        if (e.branchTaken) ++site.taken;
        predictor_.update(idEx_.pc, e.branchTaken, e.branchTarget);
        const bool correct = idEx_.predictedNext == e.nextPc;
        if (correct) {
            ++stats_.predictedCorrect;
            ++site.predicted;
        } else {
            ++stats_.mispredicts;
            redirect(e.nextPc);
        }
    } else if (e.nextPc != idEx_.predictedNext) {
        // Indirect jump (jr/jalr) resolving in EX.
        ++stats_.mispredicts;
        redirect(e.nextPc);
    }

    if (io_.exited) {
        halting_ = true;
        ifId_.valid = false;
    }

    if (!e.isLoadOp) emitValue(idEx_, ValueStage::kExEnd);
    exMem_ = idEx_;
    idEx_.valid = false;
    exStarted_ = false;
}

void PipelineSim::redirect(std::uint32_t target) {
    ifId_.valid = false;
    flushedThisCycle_ = true;
    fetchPc_ = target;
    ifBusy_ = 0;  // cancel any wrong-path I-cache fill in flight
    redirectStall_ = config_.redirectBubbles;
}

void PipelineSim::stageDecode() {
    if (!ifId_.valid || flushedThisCycle_ || halting_) return;
    if (idEx_.valid) return;  // EX occupied (multi-cycle op or structural stall)
    if (loadUseHazard_) {
        const SrcRegs srcs = srcRegs(ifId_.ins);
        // loadUseHazard_ is only set when the EX instruction at cycle start
        // was a load; hazardReg_ is its destination.
        for (int i = 0; i < srcs.count; ++i) {
            if (srcs.regs[i] != reg::zero && srcs.regs[i] == hazardReg_) {
                ++stats_.loadUseStalls;
                return;
            }
        }
    }
    if (customizer_) {
        const auto d = destReg(ifId_.ins);
        if (d && *d != reg::zero) customizer_->onProducerDecoded(*d);
    }
    idEx_ = ifId_;
    ifId_.valid = false;
}

void PipelineSim::stageFetch() {
    if (halting_ || flushedThisCycle_) return;
    if (ifId_.valid) return;  // ID did not drain the latch
    if (redirectStall_ > 0) {
        --redirectStall_;
        ++stats_.redirectStallCycles;
        return;
    }
    if (!program_.inText(fetchPc_)) {
        // Speculative fetch past the text segment (prefetch beyond an exit
        // syscall or down a wrong path).  Deliver an inert bubble; it is an
        // error only if it reaches execute (genuine runaway control flow).
        Slot bubble;
        bubble.valid = true;
        bubble.pc = fetchPc_;
        bubble.ins = Instruction{};  // nop
        bubble.predictedNext = fetchPc_ + kInstrBytes;
        bubble.outOfText = true;
        fetchPc_ = bubble.predictedNext;
        ifId_ = bubble;
        return;
    }
    if (ifBusy_ > 0) {
        --ifBusy_;
        if (ifBusy_ > 0) {
            ++stats_.icacheStallCycles;
            return;
        }
        // Miss serviced; the instruction is delivered this cycle.
    } else {
        const std::uint32_t penalty = icache_.access(fetchPc_);
        if (penalty > 0) {
            ifBusy_ = penalty;
            ++stats_.icacheStallCycles;
            return;
        }
    }

    std::uint32_t pc = fetchPc_;
    Instruction ins = program_.at(pc);

    Slot slot;
    if (customizer_) {
        if (const auto fold = customizer_->onFetch(pc, ins)) {
            // Accounting happens when the replacement reaches EX — fetches
            // on a wrong path are squashed and must not count.
            slot.wasFolded = true;
            slot.foldOrigin = pc;
            slot.foldTaken = fold->taken;
            pc = fold->replacementPc;
            ins = fold->replacement;
        }
    }

    slot.valid = true;
    slot.pc = pc;
    slot.ins = ins;
    if (isCondBranch(ins.op)) {
        const Prediction p = predictor_.predict(pc);
        slot.wasPredicted = true;
        slot.predictedNext = p.effectiveTaken() ? *p.target : pc + kInstrBytes;
    } else if (ins.op == Op::kJ || ins.op == Op::kJal) {
        slot.predictedNext = (pc & 0xF000'0000u) |
                             (static_cast<std::uint32_t>(ins.imm) * kInstrBytes);
    } else {
        slot.predictedNext = pc + kInstrBytes;
    }
    fetchPc_ = slot.predictedNext;
    ifId_ = slot;
    ++stats_.fetched;
}

PipelineResult PipelineSim::run() {
    if (customizer_) customizer_->reset();
    while (true) {
        ++stats_.cycles;
        ASBR_ENSURE(stats_.cycles <= config_.maxCycles,
                    "pipeline run exceeded cycle limit");
        flushedThisCycle_ = false;
        // Snapshot for the load-use interlock: the instruction occupying EX
        // at the start of the cycle.
        loadUseHazard_ = idEx_.valid && isLoad(idEx_.ins.op);
        hazardReg_ = loadUseHazard_ ? idEx_.ins.rd : reg::zero;

        stageWriteback();
        stageMemory();
        stageExecute();
        stageDecode();
        stageFetch();

        if (io_.exited && !idEx_.valid && !exMem_.valid && !memWb_.valid) break;
    }

    PipelineResult result;
    stats_.icache = icache_.stats();
    stats_.dcache = dcache_.stats();
    result.stats = stats_;
    result.exited = io_.exited;
    result.exitCode = io_.exitCode;
    result.output = io_.output;
    result.finalState = state_;
    return result;
}

}  // namespace asbr

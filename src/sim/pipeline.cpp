#include "sim/pipeline.hpp"

#include "util/ensure.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace asbr {

void PipelineStats::publish(MetricRegistry& registry) const {
    const auto c = [&registry](const char* name, const char* help,
                               std::uint64_t value) {
        registry.counter(name, help).add(value);
    };
    c("pipeline.cycles", "total simulated cycles", cycles);
    c("pipeline.committed", "architecturally completed instructions",
      committed);
    c("pipeline.fetched",
      "instructions entering the pipeline (incl. wrong-path, excl. folded-out "
      "branches) — the paper's pipeline-activity power proxy",
      fetched);
    c("pipeline.cond_branches",
      "executed conditional branches (incl. folded)", condBranches);
    c("pipeline.folded_branches",
      "branches resolved by the fetch customizer (ASBR folds reaching EX)",
      foldedBranches);
    c("pipeline.predicted_branches",
      "branches handled by the direction predictor", predictedBranches);
    c("pipeline.predicted_correct",
      "predictor-handled branches with a correct fetch redirect",
      predictedCorrect);
    c("pipeline.mispredicts", "control flushes (branches + jr/jalr)",
      mispredicts);
    c("pipeline.load_use_stalls", "cycles lost to the load-use interlock",
      loadUseStalls);
    c("pipeline.redirect_stall_cycles",
      "fetch bubbles after control-flow redirects", redirectStallCycles);
    c("pipeline.parity_stall_cycles",
      "fetch bubbles spent resynchronizing after ASBR parity recoveries",
      parityStallCycles);
    c("pipeline.icache_stall_cycles", "fetch cycles stalled on I-cache misses",
      icacheStallCycles);
    c("pipeline.dcache_stall_cycles", "MEM cycles stalled on D-cache misses",
      dcacheStallCycles);
    c("pipeline.muldiv_stall_cycles",
      "extra EX occupancy cycles of multi-cycle mul/div", mulDivStallCycles);
    c("sim.decode_cache_lookups",
      "in-text fetches served through the decode cache", decodeCacheLookups);
    c("sim.decode_cache_hits",
      "decode-cache lookups reusing an already-decoded micro-op record "
      "(host-speed only; simulated timing is unaffected)",
      decodeCacheHits);
    icache.publish(registry, "mem.icache");
    dcache.publish(registry, "mem.dcache");

    SiteTable& execs = registry.sites("pipeline.site.execs",
                                      "per-branch-site dynamic executions");
    SiteTable& taken =
        registry.sites("pipeline.site.taken", "per-branch-site taken count");
    SiteTable& predicted = registry.sites(
        "pipeline.site.predicted",
        "per-branch-site correct fetch redirects (excl. folded)");
    SiteTable& folded = registry.sites(
        "pipeline.site.folded", "per-branch-site customizer-resolved count");
    Histogram& takenRate = registry.histogram(
        "pipeline.site.taken_rate_dist",
        "distribution of per-site taken rates across branch sites",
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
    Histogram& execDist = registry.histogram(
        "pipeline.site.exec_dist",
        "distribution of per-site dynamic execution counts",
        {1e2, 1e3, 1e4, 1e5, 1e6, 1e7});
    for (const auto& [pc, site] : branchSites) {
        execs.add(pc, site.execs);
        taken.add(pc, site.taken);
        predicted.add(pc, site.predicted);
        folded.add(pc, site.folded);
        takenRate.record(site.takenRate());
        execDist.record(static_cast<double>(site.execs));
    }
}

namespace {
/// Tracer lane indices (Tracer's default lane names match this order).
constexpr std::uint8_t kLaneIfId = 0;
constexpr std::uint8_t kLaneIdEx = 1;
constexpr std::uint8_t kLaneExMem = 2;
constexpr std::uint8_t kLaneMemWb = 3;
constexpr std::uint8_t kLaneResolve = 4;
}  // namespace

// Tracing hooks compile to nothing when the build disables ASBR_TRACING, so
// the simulator hot path carries no tracer reads at all.
#ifdef ASBR_TRACING
#define ASBR_TRACE(...)                                                 \
    do {                                                                \
        if (config_.tracer != nullptr)                                  \
            config_.tracer->record(TraceEvent{__VA_ARGS__});            \
    } while (false)
#else
#define ASBR_TRACE(...) \
    do {                \
    } while (false)
#endif

PipelineSim::PipelineSim(const Program& program, Memory& memory,
                         BranchPredictor& predictor, const PipelineConfig& config,
                         FetchCustomizer* customizer)
    : program_(program),
      memory_(memory),
      predictor_(predictor),
      config_(config),
      customizer_(customizer),
      icache_(config.icache),
      dcache_(config.dcache),
      decode_(program) {
    state_.pc = program_.entry;
    state_.setReg(reg::sp, static_cast<std::int32_t>(kStackTop));
    state_.setReg(reg::gp, static_cast<std::int32_t>(program_.dataBase + 0x8000));
    fetchPc_ = program_.entry;
    // The customizer starts each simulation clean; resetting here (rather
    // than in run()) lets bounded runs resume without wiping warm BDT state.
    if (customizer_ != nullptr) customizer_->reset();
}

std::uint32_t PipelineSim::exOccupancy(Op op) const {
    if (op == Op::kMul || op == Op::kMulh) return config_.mulLatency;
    if (op == Op::kDiv || op == Op::kDivu || op == Op::kRem || op == Op::kRemu)
        return config_.divLatency;
    return 1;
}

void PipelineSim::emitValue(const Slot& slot, ValueStage stage) {
    if (!customizer_ || !slot.exec.write) return;
    const ValueStage first =
        slot.exec.isLoadOp ? ValueStage::kMemEnd : ValueStage::kExEnd;
    customizer_->onValueAvailable(slot.exec.write->reg, slot.exec.write->value,
                                  stage, first);
}

void PipelineSim::stageWriteback() {
    if (!memWb_.valid) return;
    ++stats_.committed;
    emitValue(memWb_, ValueStage::kCommit);
    memWb_.valid = false;
}

void PipelineSim::stageMemory() {
    if (!exMem_.valid) return;
    if (!memStarted_) {
        memStarted_ = true;
        if (exMem_.exec.memAccess) {
            const std::uint32_t penalty = dcache_.access(exMem_.exec.memAddr);
            if (penalty > 0) {
                memBusy_ = penalty;
                stats_.dcacheStallCycles += penalty;
            }
        }
    }
    if (memBusy_ > 0) {
        --memBusy_;
        return;  // stalled; memWb_ is already drained by stageWriteback
    }
    if (customizer_ && exMem_.exec.isStoreOp) {
        customizer_->onStore(exMem_.exec.memAddr, exMem_.exec.storeValue);
    }
    emitValue(exMem_, ValueStage::kMemEnd);
    memWb_ = exMem_;
    exMem_.valid = false;
    memStarted_ = false;
}

void PipelineSim::stageExecute() {
    if (!idEx_.valid) return;
    ASBR_ENSURE(!idEx_.outOfText,
                "executing outside the text segment (runaway control flow)");
    if (!exStarted_) {
        exStarted_ = true;
        idEx_.exec = stepDecoded(state_, memory_, *idEx_.dec, io_);
        const std::uint32_t occupancy = exOccupancy(idEx_.dec->ins.op);
        if (occupancy > 1) {
            exBusy_ = occupancy - 1;
            stats_.mulDivStallCycles += occupancy - 1;
        }
    }
    if (exBusy_ > 0) {
        --exBusy_;
        return;
    }
    if (exMem_.valid) return;  // structural stall: MEM is busy

    const StepResult& e = idEx_.exec;

    if (idEx_.wasFolded) {
        ++stats_.foldedBranches;
        ++stats_.condBranches;
        BranchSiteStats& site = stats_.branchSites[idEx_.foldOrigin];
        ++site.execs;
        ++site.folded;
        if (idEx_.foldTaken) ++site.taken;
        ASBR_TRACE(.cycle = stats_.cycles, .kind = TraceKind::kFold,
                   .lane = kLaneResolve, .flag = idEx_.foldTaken,
                   .pc = idEx_.foldOrigin, .arg = idEx_.pc,
                   .name = opName(idEx_.dec->ins.op));
    }
    if (e.isBranch) {
        ++stats_.condBranches;
        ++stats_.predictedBranches;
        BranchSiteStats& site = stats_.branchSites[idEx_.pc];
        ++site.execs;
        if (e.branchTaken) ++site.taken;
        predictor_.update(idEx_.pc, e.branchTaken, e.branchTarget);
        const bool correct = idEx_.predictedNext == e.nextPc;
        ASBR_TRACE(.cycle = stats_.cycles, .kind = TraceKind::kBranch,
                   .lane = kLaneResolve, .flag = e.branchTaken, .pc = idEx_.pc,
                   .arg = e.nextPc, .name = opName(idEx_.dec->ins.op));
        if (correct) {
            ++stats_.predictedCorrect;
            ++site.predicted;
        } else {
            ++stats_.mispredicts;
            ASBR_TRACE(.cycle = stats_.cycles, .kind = TraceKind::kMispredict,
                       .lane = kLaneResolve, .flag = e.branchTaken,
                       .pc = idEx_.pc, .arg = e.nextPc,
                       .name = opName(idEx_.dec->ins.op));
            redirect(e.nextPc);
        }
    } else if (e.nextPc != idEx_.predictedNext) {
        // Indirect jump (jr/jalr) resolving in EX.
        ++stats_.mispredicts;
        ASBR_TRACE(.cycle = stats_.cycles, .kind = TraceKind::kMispredict,
                   .lane = kLaneResolve, .flag = true, .pc = idEx_.pc,
                   .arg = e.nextPc, .name = opName(idEx_.dec->ins.op));
        redirect(e.nextPc);
    }

    if (io_.exited) {
        halting_ = true;
        ifId_.valid = false;
    }

    if (!e.isLoadOp) emitValue(idEx_, ValueStage::kExEnd);
    exMem_ = idEx_;
    idEx_.valid = false;
    exStarted_ = false;
}

const DecodedOp* PipelineSim::inject(const DecodedOp& dec) {
    DecodedOp& slot = injected_[injectedIdx_++ % injected_.size()];
    slot = dec;
    return &slot;
}

void PipelineSim::redirect(std::uint32_t target) {
    ifId_.valid = false;
    flushedThisCycle_ = true;
    fetchPc_ = target;
    ifBusy_ = 0;  // cancel any wrong-path I-cache fill in flight
    redirectStall_ = config_.redirectBubbles;
}

void PipelineSim::stageDecode() {
    if (!ifId_.valid || flushedThisCycle_ || halting_) return;
    if (idEx_.valid) return;  // EX occupied (multi-cycle op or structural stall)
    if (loadUseHazard_) {
        const SrcRegs& srcs = ifId_.dec->srcs;
        // loadUseHazard_ is only set when the EX instruction at cycle start
        // was a load; hazardReg_ is its destination.
        for (int i = 0; i < srcs.count; ++i) {
            if (srcs.regs[i] != reg::zero && srcs.regs[i] == hazardReg_) {
                ++stats_.loadUseStalls;
                return;
            }
        }
    }
    if (customizer_ && ifId_.dec->writesDest) {
        customizer_->onProducerDecoded(ifId_.dec->dest);
    }
    idEx_ = ifId_;
    ifId_.valid = false;
}

void PipelineSim::stageFetch() {
    if (halting_ || flushedThisCycle_) return;
    if (ifId_.valid) return;  // ID did not drain the latch
    if (redirectStall_ > 0) {
        --redirectStall_;
        ++stats_.redirectStallCycles;
        return;
    }
    if (parityStall_ > 0) {
        --parityStall_;
        ++stats_.parityStallCycles;
        return;
    }
    if (!program_.inText(fetchPc_)) {
        // Speculative fetch past the text segment (prefetch beyond an exit
        // syscall or down a wrong path).  Deliver an inert bubble; it is an
        // error only if it reaches execute (genuine runaway control flow).
        Slot bubble;
        bubble.valid = true;
        bubble.pc = fetchPc_;
        bubble.dec = inject(decodeOne(Instruction{}, fetchPc_));  // inert nop
        bubble.predictedNext = fetchPc_ + kInstrBytes;
        bubble.outOfText = true;
        fetchPc_ = bubble.predictedNext;
        ifId_ = bubble;
        return;
    }
    if (ifBusy_ > 0) {
        --ifBusy_;
        if (ifBusy_ > 0) {
            ++stats_.icacheStallCycles;
            return;
        }
        // Miss serviced; the instruction is delivered this cycle.
    } else {
        const std::uint32_t penalty = icache_.access(fetchPc_);
        if (penalty > 0) {
            ifBusy_ = penalty;
            ++stats_.icacheStallCycles;
            return;
        }
    }

    // Steady-state hot path: the text word at fetchPc_ was decoded the
    // first time it was fetched; every later trip is an indexed cache read.
    const DecodedOp& cached = decode_.lookup(fetchPc_);

    Slot slot;
    if (customizer_) {
        if (const auto fold = customizer_->onFetch(fetchPc_, cached.ins)) {
            // Accounting happens when the replacement reaches EX — fetches
            // on a wrong path are squashed and must not count.  The
            // replacement is decoded fresh: a BTI/BFI injected by the BIT is
            // not guaranteed to match the program image at replacementPc, so
            // it must never be served from (or written into) the cache.
            slot.wasFolded = true;
            slot.foldOrigin = fetchPc_;
            slot.foldTaken = fold->taken;
            slot.dec = inject(decodeOne(fold->replacement, fold->replacementPc));
        }
        // A parity recovery inside the customizer costs resync bubbles on
        // the fetches that follow (the fetched instruction itself proceeds).
        parityStall_ += customizer_->takeRecoveryStall();
    }
    if (!slot.wasFolded) slot.dec = &cached;

    slot.valid = true;
    slot.pc = slot.dec->pc;
    if (slot.dec->condBranch) {
        const Prediction p = predictor_.predict(slot.pc);
        slot.wasPredicted = true;
        slot.predictedNext =
            p.effectiveTaken() ? *p.target : slot.dec->fallthrough;
    } else {
        // Pre-resolved at decode time: j/jal redirect to their target,
        // everything else falls through.
        slot.predictedNext = slot.dec->fetchNext;
    }
    fetchPc_ = slot.predictedNext;
    ifId_ = slot;
    ++stats_.fetched;
}

void PipelineSim::traceLatches() {
    const auto occupied = [this](const Slot& slot, std::uint8_t lane) {
        if (!slot.valid) return;
        config_.tracer->record(TraceEvent{.cycle = stats_.cycles,
                                          .kind = TraceKind::kStage,
                                          .lane = lane,
                                          .flag = slot.wasFolded,
                                          .pc = slot.pc,
                                          .arg = 0,
                                          .name = opName(slot.dec->ins.op)});
    };
    // End-of-cycle snapshot of the four inter-stage latches.
    occupied(ifId_, kLaneIfId);
    occupied(idEx_, kLaneIdEx);
    occupied(exMem_, kLaneExMem);
    occupied(memWb_, kLaneMemWb);
}

void PipelineSim::warmStart(const ArchState& state, IoContext io) {
    state_ = state;
    io_ = std::move(io);
    ifId_ = Slot{};
    idEx_ = Slot{};
    exMem_ = Slot{};
    memWb_ = Slot{};
    fetchPc_ = state_.pc;
    commitLimit_ = 0;
    ifBusy_ = 0;
    exBusy_ = 0;
    memBusy_ = 0;
    redirectStall_ = 0;
    parityStall_ = 0;
    exStarted_ = false;
    memStarted_ = false;
    flushedThisCycle_ = false;
    halting_ = false;
    loadUseHazard_ = false;
    hazardReg_ = reg::zero;
    // Deliberately untouched: icache_/dcache_/decode_ contents, the
    // predictor, the customizer's BDT/BIT state, and cumulative stats_ —
    // a warm start resumes the microarchitecture, not the program.
}

PipelineResult PipelineSim::run(std::uint64_t maxCommits) {
    commitLimit_ = maxCommits == 0 ? 0 : stats_.committed + maxCommits;
    while (true) {
        ++stats_.cycles;
        if (stats_.cycles > config_.maxCycles)
            throw SimTimeoutError(
                watchdogMessage("pipeline", "cycle", config_.maxCycles,
                                "cycles"));
        if (config_.cycleHook != nullptr)
            config_.cycleHook->onCycle(stats_.cycles);
        flushedThisCycle_ = false;
        // Snapshot for the load-use interlock: the instruction occupying EX
        // at the start of the cycle.
        loadUseHazard_ = idEx_.valid && idEx_.dec->load;
        hazardReg_ = loadUseHazard_ ? idEx_.dec->ins.rd : reg::zero;

        stageWriteback();
        stageMemory();
        stageExecute();
        stageDecode();
        stageFetch();

#ifdef ASBR_TRACING
        if (config_.tracer != nullptr && config_.tracer->wants(stats_.cycles))
            traceLatches();
#endif

        // A spent commit budget halts fetch and drops the not-yet-executed
        // ifId_ instruction (it re-fetches on resume); in-flight EX/MEM/WB
        // work drains architecturally, so committed may overshoot slightly.
        if (commitLimit_ != 0 && stats_.committed >= commitLimit_ &&
            !halting_) {
            halting_ = true;
            ifId_.valid = false;
        }
        if ((io_.exited || halting_) && !idEx_.valid && !exMem_.valid &&
            !memWb_.valid)
            break;
    }

    PipelineResult result;
    stats_.icache = icache_.stats();
    stats_.dcache = dcache_.stats();
    stats_.decodeCacheLookups = decode_.stats().lookups;
    stats_.decodeCacheHits = decode_.stats().hits();
    result.stats = stats_;
    result.exited = io_.exited;
    result.exitCode = io_.exitCode;
    result.output = io_.output;
    result.finalState = state_;
    return result;
}

}  // namespace asbr

#include "sim/functional.hpp"

#include "util/ensure.hpp"

namespace asbr {

FunctionalSim::FunctionalSim(const Program& program, Memory& memory)
    : program_(program), memory_(memory) {
    reset();
}

void FunctionalSim::reset() {
    state_ = ArchState{};
    state_.pc = program_.entry;
    state_.setReg(reg::sp, static_cast<std::int32_t>(kStackTop));
    state_.setReg(reg::gp, static_cast<std::int32_t>(program_.dataBase + 0x8000));
}

FunctionalResult FunctionalSim::run(std::uint64_t maxInstructions) {
    FunctionalResult result;
    IoContext io;
    while (!io.exited) {
        if (result.instructions >= maxInstructions)
            throw SimTimeoutError(
                "functional watchdog: run exceeded the instruction limit of " +
                std::to_string(maxInstructions));
        const Instruction& ins = program_.at(state_.pc);
        const StepResult sr = step(state_, memory_, ins, io);
        ++result.instructions;
        if (hook_) hook_(ins, sr);
    }
    result.exited = io.exited;
    result.exitCode = io.exitCode;
    result.output = std::move(io.output);
    return result;
}

}  // namespace asbr

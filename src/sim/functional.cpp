#include "sim/functional.hpp"

#include "util/ensure.hpp"

namespace asbr {

FunctionalSim::FunctionalSim(const Program& program, Memory& memory)
    : program_(program), memory_(memory), decode_(program) {
    reset();
}

void FunctionalSim::reset() {
    state_ = ArchState{};
    state_.pc = program_.entry;
    state_.setReg(reg::sp, static_cast<std::int32_t>(kStackTop));
    state_.setReg(reg::gp, static_cast<std::int32_t>(program_.dataBase + 0x8000));
}

FunctionalResult FunctionalSim::run(std::uint64_t maxInstructions) {
    FunctionalResult result;
    IoContext io;
    while (!io.exited) {
        if (result.instructions >= maxInstructions)
            throw SimTimeoutError(watchdogMessage(
                "functional", "instruction", maxInstructions, "instructions"));
        // Decode-cached hot path: identical semantics to step() — the
        // record was produced by the same decodeOne() — without re-running
        // the decoder on every trip around a loop.
        const DecodedOp& dec = decode_.lookup(state_.pc);
        const StepResult sr = stepDecoded(state_, memory_, dec, io);
        ++result.instructions;
        if (hook_) hook_(dec.ins, sr);
    }
    result.exited = io.exited;
    result.exitCode = io.exitCode;
    result.output = std::move(io.output);
    return result;
}

}  // namespace asbr

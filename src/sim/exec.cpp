#include "sim/exec.hpp"

namespace asbr {

namespace exec_detail {

// Out of line deliberately: syscalls are rare (I/O and exit), and keeping
// the string machinery out of the inline stepDecoded() body keeps the hot
// switch compact.
void doSyscall(ArchState& state, IoContext& io) {
    const auto service = static_cast<Syscall>(state.reg(reg::v0));
    const std::int32_t arg = state.reg(reg::a0);
    switch (service) {
        case Syscall::kExit:
            io.exited = true;
            io.exitCode = arg;
            return;
        case Syscall::kPutChar:
            io.output.push_back(static_cast<char>(arg & 0xFF));
            return;
        case Syscall::kPutInt:
            io.output += std::to_string(arg);
            return;
    }
    ASBR_ENSURE(false, "unknown syscall service " + std::to_string(state.reg(reg::v0)));
}

}  // namespace exec_detail

StepResult step(ArchState& state, Memory& memory, const Instruction& ins,
                IoContext& io, std::optional<std::uint32_t> overridePc) {
    return stepDecoded(state, memory, decodeOne(ins, overridePc.value_or(state.pc)),
                       io);
}

}  // namespace asbr

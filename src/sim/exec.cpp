#include "sim/exec.hpp"

#include <limits>

#include "util/ensure.hpp"

namespace asbr {

namespace {

std::int32_t aluOp(Op op, std::int32_t a, std::int32_t b) {
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
        case Op::kAddu: return static_cast<std::int32_t>(ua + ub);
        case Op::kSubu: return static_cast<std::int32_t>(ua - ub);
        case Op::kAnd: return a & b;
        case Op::kOr: return a | b;
        case Op::kXor: return a ^ b;
        case Op::kNor: return ~(a | b);
        case Op::kSlt: return a < b ? 1 : 0;
        case Op::kSltu: return ua < ub ? 1 : 0;
        case Op::kSllv: return static_cast<std::int32_t>(ua << (ub & 31u));
        case Op::kSrlv: return static_cast<std::int32_t>(ua >> (ub & 31u));
        case Op::kSrav: return a >> (ub & 31u);
        case Op::kMul:
            return static_cast<std::int32_t>(
                static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b));
        case Op::kMulh:
            return static_cast<std::int32_t>(
                (static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)) >> 32);
        case Op::kDiv:
            // Deterministic trap-free definitions: /0 -> 0; INT_MIN/-1 wraps.
            if (b == 0) return 0;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
            return a / b;
        case Op::kDivu: return ub == 0 ? 0 : static_cast<std::int32_t>(ua / ub);
        case Op::kRem:
            if (b == 0) return a;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
            return a % b;
        case Op::kRemu: return ub == 0 ? a : static_cast<std::int32_t>(ua % ub);
        default: ASBR_ENSURE(false, "aluOp: not an R-type ALU opcode"); return 0;
    }
}

std::int32_t aluImmOp(Op op, std::int32_t a, std::int32_t imm) {
    switch (op) {
        case Op::kAddiu:
            return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                             static_cast<std::uint32_t>(imm));
        case Op::kAndi: return a & imm;
        case Op::kOri: return a | imm;
        case Op::kXori: return a ^ imm;
        case Op::kSlti: return a < imm ? 1 : 0;
        case Op::kSltiu:
            return static_cast<std::uint32_t>(a) < static_cast<std::uint32_t>(imm)
                       ? 1 : 0;
        case Op::kLui: return static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(imm) << 16);
        case Op::kSll: return static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(a) << (imm & 31));
        case Op::kSrl: return static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(a) >> (imm & 31));
        case Op::kSra: return a >> (imm & 31);
        default: ASBR_ENSURE(false, "aluImmOp: not an I-type ALU opcode"); return 0;
    }
}

void doSyscall(ArchState& state, IoContext& io) {
    const auto service = static_cast<Syscall>(state.reg(reg::v0));
    const std::int32_t arg = state.reg(reg::a0);
    switch (service) {
        case Syscall::kExit:
            io.exited = true;
            io.exitCode = arg;
            return;
        case Syscall::kPutChar:
            io.output.push_back(static_cast<char>(arg & 0xFF));
            return;
        case Syscall::kPutInt:
            io.output += std::to_string(arg);
            return;
    }
    ASBR_ENSURE(false, "unknown syscall service " + std::to_string(state.reg(reg::v0)));
}

}  // namespace

StepResult step(ArchState& state, Memory& memory, const Instruction& ins,
                IoContext& io, std::optional<std::uint32_t> overridePc) {
    const std::uint32_t pc = overridePc.value_or(state.pc);
    StepResult r;
    r.pc = pc;
    r.nextPc = pc + kInstrBytes;
    const Op op = ins.op;

    if (op <= Op::kRemu) {  // R-type ALU
        const std::int32_t v = aluOp(op, state.reg(ins.rs), state.reg(ins.rt));
        state.setReg(ins.rd, v);
        r.write = RegWrite{ins.rd, v};
    } else if (op >= Op::kAddiu && op <= Op::kSra) {  // I-type ALU
        const std::int32_t v = aluImmOp(op, state.reg(ins.rs), ins.imm);
        state.setReg(ins.rd, v);
        r.write = RegWrite{ins.rd, v};
    } else if (isLoad(op)) {
        const std::uint32_t addr =
            static_cast<std::uint32_t>(state.reg(ins.rs)) +
            static_cast<std::uint32_t>(ins.imm);
        std::int32_t v = 0;
        switch (op) {
            case Op::kLb: v = static_cast<std::int8_t>(memory.read8(addr)); break;
            case Op::kLbu: v = memory.read8(addr); break;
            case Op::kLh: v = static_cast<std::int16_t>(memory.read16(addr)); break;
            case Op::kLhu: v = memory.read16(addr); break;
            case Op::kLw: v = static_cast<std::int32_t>(memory.read32(addr)); break;
            default: break;
        }
        state.setReg(ins.rd, v);
        r.write = RegWrite{ins.rd, v};
        r.memAccess = true;
        r.isLoadOp = true;
        r.memAddr = addr;
    } else if (isStore(op)) {
        const std::uint32_t addr =
            static_cast<std::uint32_t>(state.reg(ins.rs)) +
            static_cast<std::uint32_t>(ins.imm);
        const std::int32_t v = state.reg(ins.rt);
        switch (op) {
            case Op::kSb: memory.write8(addr, static_cast<std::uint8_t>(v)); break;
            case Op::kSh:
                memory.write16(addr, static_cast<std::uint16_t>(v));
                break;
            case Op::kSw:
                memory.write32(addr, static_cast<std::uint32_t>(v));
                break;
            default: break;
        }
        r.memAccess = true;
        r.isStoreOp = true;
        r.memAddr = addr;
        r.storeValue = v;
    } else if (isCondBranch(op)) {
        r.isBranch = true;
        r.branchTarget = pc + kInstrBytes +
                         static_cast<std::uint32_t>(ins.imm) * kInstrBytes;
        r.branchTaken = evalCond(branchCond(op), state.reg(ins.rs));
        if (r.branchTaken) r.nextPc = r.branchTarget;
    } else if (op == Op::kJ || op == Op::kJal) {
        const std::uint32_t target =
            (pc & 0xF000'0000u) |
            (static_cast<std::uint32_t>(ins.imm) * kInstrBytes);
        if (op == Op::kJal) {
            state.setReg(reg::ra, static_cast<std::int32_t>(pc + kInstrBytes));
            r.write = RegWrite{reg::ra, static_cast<std::int32_t>(pc + kInstrBytes)};
        }
        r.nextPc = target;
    } else if (op == Op::kJr || op == Op::kJalr) {
        const auto target = static_cast<std::uint32_t>(state.reg(ins.rs));
        ASBR_ENSURE((target & 3u) == 0, "jr/jalr to unaligned address");
        if (op == Op::kJalr) {
            const auto link = static_cast<std::int32_t>(pc + kInstrBytes);
            state.setReg(ins.rd, link);
            r.write = RegWrite{ins.rd, link};
        }
        r.nextPc = target;
    } else if (op == Op::kSys) {
        doSyscall(state, io);
    } else {
        ASBR_ENSURE(op == Op::kNop, "step: unhandled opcode");
    }

    // Writes to r0 are architecturally discarded; hide them from the timing
    // model and BDT too.
    if (r.write && r.write->reg == reg::zero) r.write.reset();

    state.pc = r.nextPc;
    return r;
}

}  // namespace asbr

// Pre-decoded micro-op records and the per-program decode cache.
//
// The cycle-accurate pipeline used to re-run the full decoder — opcode
// classification, source/destination extraction, target arithmetic — for
// every fetched instruction on every trip around a loop.  The decode cache
// does that work exactly once per PC: the first fetch of an address fills a
// specialized DecodedOp record (direct per-class dispatch tag, operands and
// control-flow targets pre-resolved), and every later fetch of the same
// address is an indexed array read.  Records are keyed by fetch address and
// invalidated wholesale when a different program is bound, so a program
// reload can never serve stale micro-ops.
//
// Correctness contract: a DecodedOp is a pure function of (instruction word,
// decode-time PC).  Executing a record via stepDecoded() is bit-identical to
// decoding and executing the raw instruction at the same PC — exec.cpp's
// step() is literally implemented as decodeOne() + stepDecoded(), so the
// cached and uncached paths share one semantics implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "asm/program.hpp"
#include "isa/isa.hpp"
#include "util/ensure.hpp"

namespace asbr {

/// Direct-dispatch execution class of a decoded instruction.  stepDecoded()
/// switches on this tag instead of re-classifying the opcode.
enum class ExecClass : std::uint8_t {
    kAluReg,      ///< R-type ALU: rd <- rs OP rt
    kAluImm,      ///< I-type ALU: rd <- rs OP imm
    kLoad,        ///< rd <- mem[rs + imm]
    kStore,       ///< mem[rs + imm] <- rt
    kCondBranch,  ///< zero-comparison branch on rs
    kJump,        ///< j: unconditional direct jump
    kJumpLink,    ///< jal: direct jump + link into ra
    kJumpReg,     ///< jr/jalr: indirect jump (jalr links into rd)
    kSyscall,     ///< sys
    kNop,
};

/// One pre-decoded micro-op.  Everything the hot path needs — dispatch tag,
/// source/destination registers, absolute control-flow targets — is resolved
/// at decode time; steady-state execution never consults the decoder again.
struct DecodedOp {
    Instruction ins{};                    ///< original instruction word
    ExecClass cls = ExecClass::kNop;
    Cond cond = Cond::kEqz;               ///< branch condition (kCondBranch)
    std::uint32_t pc = 0;                 ///< address the record decodes at
    std::uint32_t fallthrough = 0;        ///< pc + 4
    std::uint32_t target = 0;             ///< absolute taken/jump target
    /// Static IF-stage successor: the fetch redirect for non-branch control
    /// (j/jal predecode to their target), pc+4 otherwise.  Conditional
    /// branches consult the predictor instead.
    std::uint32_t fetchNext = 0;
    SrcRegs srcs{};                       ///< pre-resolved source registers
    std::uint8_t dest = reg::zero;        ///< architected destination
    bool writesDest = false;              ///< dest exists and is not r0
    bool load = false;
    bool store = false;
    bool condBranch = false;
};

/// Decode one instruction as located at `pc`.  Pure; shared by the cache
/// fill path and by callers that must decode off-program-text words (the
/// pipeline decodes customizer-injected fold replacements this way, since a
/// BTI/BFI replacement is not guaranteed to match the program image).
[[nodiscard]] DecodedOp decodeOne(const Instruction& ins, std::uint32_t pc);

/// Lazily-filled decode cache over one program's text segment, keyed by
/// fetch address.  One slot per instruction word; a fill happens at most
/// once per PC until the cache is rebound or invalidated.
class DecodeCache {
public:
    DecodeCache() = default;
    explicit DecodeCache(const Program& program) { bind(program); }

    /// Hit/fill statistics (published as sim.decode_cache_* counters).
    struct Stats {
        std::uint64_t lookups = 0;
        std::uint64_t fills = 0;
        [[nodiscard]] std::uint64_t hits() const { return lookups - fills; }
    };

    /// Bind to a program: size one slot per text word and invalidate all
    /// records.  Call again on program reload — records decoded from the
    /// previous image are discarded, never served.
    void bind(const Program& program);

    /// Drop every cached record (slots refill lazily on next lookup).
    void invalidate();

    /// The record for a text-segment PC, filling the slot on first use.
    /// Inline: this is the per-fetch hot path of both simulators; the
    /// steady-state trip is two bounds checks and an indexed read.
    const DecodedOp& lookup(std::uint32_t pc) {
        ASBR_ENSURE(program_ != nullptr, "decode cache lookup before bind()");
        ASBR_ENSURE(program_->inText(pc),
                    "decode cache lookup outside the text segment");
        const std::size_t index = (pc - textBase_) / kInstrBytes;
        ++stats_.lookups;
        if (filled_[index] == 0) fill(index, pc);
        return slots_[index];
    }

    [[nodiscard]] const Stats& stats() const { return stats_; }
    [[nodiscard]] bool bound() const { return program_ != nullptr; }

private:
    void fill(std::size_t index, std::uint32_t pc);  ///< first-use decode

    const Program* program_ = nullptr;
    std::uint32_t textBase_ = 0;
    std::vector<DecodedOp> slots_;
    std::vector<std::uint8_t> filled_;
    Stats stats_;
};

}  // namespace asbr

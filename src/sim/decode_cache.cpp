#include "sim/decode_cache.hpp"

#include "util/ensure.hpp"

namespace asbr {

DecodedOp decodeOne(const Instruction& ins, std::uint32_t pc) {
    DecodedOp d;
    d.ins = ins;
    d.pc = pc;
    d.fallthrough = pc + kInstrBytes;
    d.fetchNext = d.fallthrough;
    d.srcs = srcRegs(ins);
    if (const auto dest = destReg(ins)) {
        d.dest = *dest;
        d.writesDest = *dest != reg::zero;
    }

    const Op op = ins.op;
    if (op <= Op::kRemu) {
        d.cls = ExecClass::kAluReg;
    } else if (op >= Op::kAddiu && op <= Op::kSra) {
        d.cls = ExecClass::kAluImm;
    } else if (isLoad(op)) {
        d.cls = ExecClass::kLoad;
        d.load = true;
    } else if (isStore(op)) {
        d.cls = ExecClass::kStore;
        d.store = true;
    } else if (isCondBranch(op)) {
        d.cls = ExecClass::kCondBranch;
        d.condBranch = true;
        d.cond = branchCond(op);
        d.target = pc + kInstrBytes +
                   static_cast<std::uint32_t>(ins.imm) * kInstrBytes;
    } else if (op == Op::kJ || op == Op::kJal) {
        d.cls = op == Op::kJ ? ExecClass::kJump : ExecClass::kJumpLink;
        d.target = (pc & 0xF000'0000u) |
                   (static_cast<std::uint32_t>(ins.imm) * kInstrBytes);
        d.fetchNext = d.target;
    } else if (op == Op::kJr || op == Op::kJalr) {
        d.cls = ExecClass::kJumpReg;
    } else if (op == Op::kSys) {
        d.cls = ExecClass::kSyscall;
    } else {
        ASBR_ENSURE(op == Op::kNop, "decodeOne: unhandled opcode");
        d.cls = ExecClass::kNop;
    }
    return d;
}

void DecodeCache::bind(const Program& program) {
    program_ = &program;
    textBase_ = program.textBase;
    slots_.assign(program.code.size(), DecodedOp{});
    filled_.assign(program.code.size(), 0);
}

void DecodeCache::invalidate() {
    filled_.assign(filled_.size(), 0);
}

void DecodeCache::fill(std::size_t index, std::uint32_t pc) {
    slots_[index] = decodeOne(program_->code[index], pc);
    filled_[index] = 1;
    ++stats_.fills;
}

}  // namespace asbr

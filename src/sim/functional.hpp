// Fast functional instruction-set simulator.
//
// Used by the profiler (per-branch statistics, def-to-branch distance
// analysis) and as the golden reference in differential tests against the
// cycle-accurate pipeline.
#pragma once

#include <cstdint>
#include <functional>

#include "asm/program.hpp"
#include "mem/memory.hpp"
#include "sim/decode_cache.hpp"
#include "sim/exec.hpp"

namespace asbr {

/// Outcome of a functional run.
struct FunctionalResult {
    std::uint64_t instructions = 0;
    bool exited = false;
    std::int32_t exitCode = 0;
    std::string output;
};

class FunctionalSim {
public:
    /// Observer invoked after each committed instruction.
    using TraceHook = std::function<void(const Instruction&, const StepResult&)>;

    FunctionalSim(const Program& program, Memory& memory);

    /// Reset architectural state (PC to entry, SP to stack top, regs to 0).
    void reset();

    /// Run until exit or the instruction limit; throws EnsureError if the
    /// limit is reached (runaway program).
    FunctionalResult run(std::uint64_t maxInstructions = 500'000'000);

    /// Install an optional per-instruction observer.
    void setTraceHook(TraceHook hook) { hook_ = std::move(hook); }

    [[nodiscard]] const ArchState& state() const { return state_; }
    [[nodiscard]] ArchState& state() { return state_; }

private:
    const Program& program_;
    Memory& memory_;
    DecodeCache decode_;  ///< per-PC micro-op records; survive reset()
    ArchState state_;
    TraceHook hook_;
};

}  // namespace asbr

// Shared architectural semantics of ep32 instructions.
//
// Both the functional ISS and the cycle-accurate pipeline execute
// instructions through one semantics implementation, stepDecoded(), which
// dispatches directly on a pre-decoded micro-op record (sim/decode_cache.hpp)
// — so they are functionally equivalent by construction and the pipeline
// layers *timing* on top.  step() is the convenience wrapper that decodes
// and executes in one call.  Differential tests assert the equivalence
// anyway.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "isa/isa.hpp"
#include "mem/memory.hpp"
#include "sim/decode_cache.hpp"
#include "util/ensure.hpp"

namespace asbr {

/// Architectural register file + PC.  r0 reads as zero and swallows writes.
struct ArchState {
    std::array<std::int32_t, kNumRegs> regs{};
    std::uint32_t pc = 0;

    [[nodiscard]] std::int32_t reg(std::uint8_t r) const { return regs[r]; }
    void setReg(std::uint8_t r, std::int32_t v) {
        if (r != reg::zero) regs[r] = v;
    }
};

/// Program I/O and termination collected across a run.
struct IoContext {
    std::string output;
    bool exited = false;
    std::int32_t exitCode = 0;
};

/// A completed register write (for pipeline forwarding / BDT updates).
struct RegWrite {
    std::uint8_t reg = 0;
    std::int32_t value = 0;
};

/// Everything the timing model needs to know about one executed instruction.
struct StepResult {
    std::uint32_t pc = 0;        ///< address the instruction executed at
    std::uint32_t nextPc = 0;    ///< architectural successor PC
    std::optional<RegWrite> write;
    bool isBranch = false;       ///< conditional branch
    bool branchTaken = false;
    std::uint32_t branchTarget = 0;  ///< valid when isBranch
    bool memAccess = false;      ///< load or store touched memory
    std::uint32_t memAddr = 0;
    bool isLoadOp = false;
    bool isStoreOp = false;
    std::int32_t storeValue = 0;  ///< value written (valid when isStoreOp)
};

namespace exec_detail {

inline std::int32_t aluOp(Op op, std::int32_t a, std::int32_t b) {
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
        case Op::kAddu: return static_cast<std::int32_t>(ua + ub);
        case Op::kSubu: return static_cast<std::int32_t>(ua - ub);
        case Op::kAnd: return a & b;
        case Op::kOr: return a | b;
        case Op::kXor: return a ^ b;
        case Op::kNor: return ~(a | b);
        case Op::kSlt: return a < b ? 1 : 0;
        case Op::kSltu: return ua < ub ? 1 : 0;
        case Op::kSllv: return static_cast<std::int32_t>(ua << (ub & 31u));
        case Op::kSrlv: return static_cast<std::int32_t>(ua >> (ub & 31u));
        case Op::kSrav: return a >> (ub & 31u);
        case Op::kMul:
            return static_cast<std::int32_t>(
                static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b));
        case Op::kMulh:
            return static_cast<std::int32_t>(
                (static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)) >> 32);
        case Op::kDiv:
            // Deterministic trap-free definitions: /0 -> 0; INT_MIN/-1 wraps.
            if (b == 0) return 0;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return a;
            return a / b;
        case Op::kDivu: return ub == 0 ? 0 : static_cast<std::int32_t>(ua / ub);
        case Op::kRem:
            if (b == 0) return a;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1) return 0;
            return a % b;
        case Op::kRemu: return ub == 0 ? a : static_cast<std::int32_t>(ua % ub);
        default: ASBR_ENSURE(false, "aluOp: not an R-type ALU opcode"); return 0;
    }
}

inline std::int32_t aluImmOp(Op op, std::int32_t a, std::int32_t imm) {
    switch (op) {
        case Op::kAddiu:
            return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                             static_cast<std::uint32_t>(imm));
        case Op::kAndi: return a & imm;
        case Op::kOri: return a | imm;
        case Op::kXori: return a ^ imm;
        case Op::kSlti: return a < imm ? 1 : 0;
        case Op::kSltiu:
            return static_cast<std::uint32_t>(a) < static_cast<std::uint32_t>(imm)
                       ? 1 : 0;
        case Op::kLui: return static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(imm) << 16);
        case Op::kSll: return static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(a) << (imm & 31));
        case Op::kSrl: return static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(a) >> (imm & 31));
        case Op::kSra: return a >> (imm & 31);
        default: ASBR_ENSURE(false, "aluImmOp: not an I-type ALU opcode"); return 0;
    }
}

void doSyscall(ArchState& state, IoContext& io);  // cold path: exec.cpp

}  // namespace exec_detail

/// Execute one pre-decoded micro-op against memory, updating state
/// (including state.pc) and io.  The record's decode-time PC is the
/// execution PC — all control-flow targets were resolved against it.  This
/// is THE semantics implementation; step() and the decode-cached hot paths
/// all land here.  Inline: it sits on the per-instruction hot path of both
/// simulators and the sampled fast-forward loop.
inline StepResult stepDecoded(ArchState& state, Memory& memory,
                              const DecodedOp& dec, IoContext& io) {
    const Instruction& ins = dec.ins;
    StepResult r;
    r.pc = dec.pc;
    r.nextPc = dec.fallthrough;

    switch (dec.cls) {
        case ExecClass::kAluReg: {
            const std::int32_t v =
                exec_detail::aluOp(ins.op, state.reg(ins.rs), state.reg(ins.rt));
            state.setReg(ins.rd, v);
            r.write = RegWrite{ins.rd, v};
            break;
        }
        case ExecClass::kAluImm: {
            const std::int32_t v =
                exec_detail::aluImmOp(ins.op, state.reg(ins.rs), ins.imm);
            state.setReg(ins.rd, v);
            r.write = RegWrite{ins.rd, v};
            break;
        }
        case ExecClass::kLoad: {
            const std::uint32_t addr =
                static_cast<std::uint32_t>(state.reg(ins.rs)) +
                static_cast<std::uint32_t>(ins.imm);
            std::int32_t v = 0;
            switch (ins.op) {
                case Op::kLb: v = static_cast<std::int8_t>(memory.read8(addr)); break;
                case Op::kLbu: v = memory.read8(addr); break;
                case Op::kLh: v = static_cast<std::int16_t>(memory.read16(addr)); break;
                case Op::kLhu: v = memory.read16(addr); break;
                case Op::kLw: v = static_cast<std::int32_t>(memory.read32(addr)); break;
                default: break;
            }
            state.setReg(ins.rd, v);
            r.write = RegWrite{ins.rd, v};
            r.memAccess = true;
            r.isLoadOp = true;
            r.memAddr = addr;
            break;
        }
        case ExecClass::kStore: {
            const std::uint32_t addr =
                static_cast<std::uint32_t>(state.reg(ins.rs)) +
                static_cast<std::uint32_t>(ins.imm);
            const std::int32_t v = state.reg(ins.rt);
            switch (ins.op) {
                case Op::kSb: memory.write8(addr, static_cast<std::uint8_t>(v)); break;
                case Op::kSh:
                    memory.write16(addr, static_cast<std::uint16_t>(v));
                    break;
                case Op::kSw:
                    memory.write32(addr, static_cast<std::uint32_t>(v));
                    break;
                default: break;
            }
            r.memAccess = true;
            r.isStoreOp = true;
            r.memAddr = addr;
            r.storeValue = v;
            break;
        }
        case ExecClass::kCondBranch:
            r.isBranch = true;
            r.branchTarget = dec.target;
            r.branchTaken = evalCond(dec.cond, state.reg(ins.rs));
            if (r.branchTaken) r.nextPc = r.branchTarget;
            break;
        case ExecClass::kJumpLink: {
            const auto link = static_cast<std::int32_t>(dec.fallthrough);
            state.setReg(reg::ra, link);
            r.write = RegWrite{reg::ra, link};
            r.nextPc = dec.target;
            break;
        }
        case ExecClass::kJump:
            r.nextPc = dec.target;
            break;
        case ExecClass::kJumpReg: {
            const auto target = static_cast<std::uint32_t>(state.reg(ins.rs));
            ASBR_ENSURE((target & 3u) == 0, "jr/jalr to unaligned address");
            if (ins.op == Op::kJalr) {
                const auto link = static_cast<std::int32_t>(dec.fallthrough);
                state.setReg(ins.rd, link);
                r.write = RegWrite{ins.rd, link};
            }
            r.nextPc = target;
            break;
        }
        case ExecClass::kSyscall:
            exec_detail::doSyscall(state, io);
            break;
        case ExecClass::kNop:
            break;
    }

    // Writes to r0 are architecturally discarded; hide them from the timing
    // model and BDT too.
    if (r.write && r.write->reg == reg::zero) r.write.reset();

    state.pc = r.nextPc;
    return r;
}

/// Execute one instruction at state.pc against memory, updating state
/// (including state.pc) and io.  `overridePc`, when set, executes the
/// instruction as if it were located at that address (used for folded branch
/// target instructions injected by the ASBR unit).  Implemented as
/// decodeOne() + stepDecoded().
StepResult step(ArchState& state, Memory& memory, const Instruction& ins,
                IoContext& io, std::optional<std::uint32_t> overridePc = {});

}  // namespace asbr

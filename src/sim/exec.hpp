// Shared architectural semantics of ep32 instructions.
//
// Both the functional ISS and the cycle-accurate pipeline execute
// instructions through step(), so they are functionally equivalent by
// construction — the pipeline layers *timing* on top.  Differential tests
// assert the equivalence anyway.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "isa/isa.hpp"
#include "mem/memory.hpp"

namespace asbr {

/// Architectural register file + PC.  r0 reads as zero and swallows writes.
struct ArchState {
    std::array<std::int32_t, kNumRegs> regs{};
    std::uint32_t pc = 0;

    [[nodiscard]] std::int32_t reg(std::uint8_t r) const { return regs[r]; }
    void setReg(std::uint8_t r, std::int32_t v) {
        if (r != reg::zero) regs[r] = v;
    }
};

/// Program I/O and termination collected across a run.
struct IoContext {
    std::string output;
    bool exited = false;
    std::int32_t exitCode = 0;
};

/// A completed register write (for pipeline forwarding / BDT updates).
struct RegWrite {
    std::uint8_t reg = 0;
    std::int32_t value = 0;
};

/// Everything the timing model needs to know about one executed instruction.
struct StepResult {
    std::uint32_t pc = 0;        ///< address the instruction executed at
    std::uint32_t nextPc = 0;    ///< architectural successor PC
    std::optional<RegWrite> write;
    bool isBranch = false;       ///< conditional branch
    bool branchTaken = false;
    std::uint32_t branchTarget = 0;  ///< valid when isBranch
    bool memAccess = false;      ///< load or store touched memory
    std::uint32_t memAddr = 0;
    bool isLoadOp = false;
    bool isStoreOp = false;
    std::int32_t storeValue = 0;  ///< value written (valid when isStoreOp)
};

/// Execute one instruction at state.pc against memory, updating state
/// (including state.pc) and io.  `overridePc`, when set, executes the
/// instruction as if it were located at that address (used for folded branch
/// target instructions injected by the ASBR unit).
StepResult step(ArchState& state, Memory& memory, const Instruction& ins,
                IoContext& io, std::optional<std::uint32_t> overridePc = {});

}  // namespace asbr

// Cycle-accurate 5-stage in-order single-issue pipeline (IF ID EX MEM WB).
//
// Timing model (matching the paper's embedded-core configuration):
//  - full forwarding EX->EX and MEM->EX; one-cycle load-use interlock
//  - conditional branches predicted in IF (customizer first, then the branch
//    predictor + BTB) and resolved in EX; a mispredict flushes the two
//    younger stages => 2-cycle penalty
//  - direct jumps (j/jal) redirect in IF (predecode); jr/jalr resolve in EX
//  - multi-cycle mul/div occupy EX (blocking)
//  - I-cache miss stalls fetch; D-cache miss stalls MEM; penalties from
//    CacheConfig
//
// Architectural execution happens when an instruction enters EX; wrong-path
// instructions never get past ID, so the pipeline is functionally equivalent
// to the functional ISS by construction.
//
// Fetch is served by a decode cache (sim/decode_cache.hpp): each text PC is
// decoded once into a DecodedOp micro-op record and every later fetch of the
// same address reuses it.  Customizer-injected fold replacements are decoded
// on the fly instead — a BTI/BFI is not guaranteed to match the program
// image — so the cache can never leak a stale or wrong record into the
// fold path.  The cache affects host speed only, never simulated timing.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>

#include "asm/program.hpp"
#include "bp/predictor.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "sim/decode_cache.hpp"
#include "sim/exec.hpp"
#include "sim/fetch_customizer.hpp"

namespace asbr {

class MetricRegistry;
class Tracer;

/// Per-cycle observer consulted at the top of every simulated cycle, before
/// any stage runs.  Fault-injection campaigns use it to arm single-bit flips
/// at exact cycles; it may mutate microarchitectural state but must not touch
/// the pipeline's own latches.  Never affects timing by itself.
class CycleHook {
public:
    virtual ~CycleHook() = default;
    virtual void onCycle(std::uint64_t cycle) = 0;
};

/// Pipeline configuration.
struct PipelineConfig {
    CacheConfig icache{8 * 1024, 32, 2, 8};
    CacheConfig dcache{8 * 1024, 32, 2, 8};
    std::uint32_t mulLatency = 4;   ///< EX occupancy cycles for mul/mulh
    std::uint32_t divLatency = 12;  ///< EX occupancy cycles for div/rem
    /// Extra fetch bubbles after a control-flow redirect (mispredict or
    /// jr/jalr), modeling a registered fetch address.  Total mispredict
    /// penalty = 2 (flushed stages) + redirectBubbles; the default of 1
    /// matches the 3-cycle penalty of the paper's SimpleScalar fetch path.
    std::uint32_t redirectBubbles = 1;
    /// Watchdog: run() throws SimTimeoutError once this many cycles pass
    /// without the program exiting.  The default is generous (a runaway
    /// program, not a long one); fault campaigns tighten it to a small
    /// multiple of the fault-free cycle count to classify hangs quickly.
    std::uint64_t maxCycles = 4'000'000'000ULL;
    /// Optional per-cycle observer (fault injection).  Non-owning.
    CycleHook* cycleHook = nullptr;
    /// Optional structured event tracer (docs/tracing.md).  Non-owning; only
    /// consulted when the build compiles the hooks in (ASBR_TRACING).
    /// Tracing never changes simulated timing — only host-side cost.
    Tracer* tracer = nullptr;
};

/// Per-branch-site dynamic statistics.
struct BranchSiteStats {
    std::uint64_t execs = 0;      ///< dynamic executions (incl. folded)
    std::uint64_t taken = 0;
    std::uint64_t predicted = 0;  ///< correct fetch redirects (excl. folded)
    std::uint64_t folded = 0;     ///< executions resolved by the customizer

    [[nodiscard]] double accuracy() const {
        const std::uint64_t p = execs - folded;
        return p == 0 ? 0.0 : static_cast<double>(predicted) / static_cast<double>(p);
    }
    [[nodiscard]] double takenRate() const {
        return execs == 0 ? 0.0 : static_cast<double>(taken) / static_cast<double>(execs);
    }
};

/// Aggregate run statistics.
struct PipelineStats {
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;   ///< architecturally completed instructions
    std::uint64_t fetched = 0;     ///< instructions entering the pipeline
                                   ///< (includes wrong-path, excludes folded-out branches)
    std::uint64_t condBranches = 0;   ///< executed conditional branches (incl. folded)
    std::uint64_t foldedBranches = 0; ///< resolved by the fetch customizer
    std::uint64_t predictedBranches = 0;  ///< handled by the predictor
    std::uint64_t predictedCorrect = 0;   ///< ... with a correct fetch redirect
    std::uint64_t mispredicts = 0;        ///< control flushes (branches + jr/jalr)
    std::uint64_t loadUseStalls = 0;
    std::uint64_t redirectStallCycles = 0;
    std::uint64_t parityStallCycles = 0;  ///< resync bubbles after parity recoveries
    std::uint64_t icacheStallCycles = 0;
    std::uint64_t dcacheStallCycles = 0;
    std::uint64_t mulDivStallCycles = 0;
    std::uint64_t decodeCacheLookups = 0;  ///< fetches served by the decode cache
    std::uint64_t decodeCacheHits = 0;     ///< ... without running the decoder
    CacheStats icache;
    CacheStats dcache;
    std::map<std::uint32_t, BranchSiteStats> branchSites;

    [[nodiscard]] double cpi() const {
        return committed == 0 ? 0.0
                              : static_cast<double>(cycles) / static_cast<double>(committed);
    }
    /// Direction-prediction accuracy over predictor-handled branches.
    [[nodiscard]] double predictorAccuracy() const {
        return predictedBranches == 0
                   ? 0.0
                   : static_cast<double>(predictedCorrect) /
                         static_cast<double>(predictedBranches);
    }
    /// Overall branch-resolution accuracy counting folds as certain.
    [[nodiscard]] double resolutionAccuracy() const {
        return condBranches == 0
                   ? 0.0
                   : static_cast<double>(predictedCorrect + foldedBranches) /
                         static_cast<double>(condBranches);
    }
    /// Fraction of executed conditional branches resolved by folding.
    [[nodiscard]] double foldRate() const {
        return condBranches == 0
                   ? 0.0
                   : static_cast<double>(foldedBranches) /
                         static_cast<double>(condBranches);
    }
    /// Conditional branches as a fraction of committed instructions.
    [[nodiscard]] double branchFraction() const {
        return committed == 0 ? 0.0
                              : static_cast<double>(condBranches) /
                                    static_cast<double>(committed);
    }

    /// Register every counter, per-site table and distribution under
    /// `pipeline.*` / `mem.*` in the metric registry (docs/metrics.md is the
    /// reference; CI checks it against these names).
    void publish(MetricRegistry& registry) const;
};

/// Result of a pipeline run.
struct PipelineResult {
    PipelineStats stats;
    bool exited = false;
    std::int32_t exitCode = 0;
    std::string output;
    ArchState finalState;
};

class PipelineSim {
public:
    /// `predictor` must outlive the simulator; `customizer` may be null.
    PipelineSim(const Program& program, Memory& memory,
                BranchPredictor& predictor, const PipelineConfig& config = {},
                FetchCustomizer* customizer = nullptr);

    /// Run the program to completion (exit syscall), or — when maxCommits is
    /// nonzero — until at least that many further instructions commit (the
    /// pipeline drains in-flight work, so the actual count may overshoot by
    /// the pipeline depth).  Throws SimTimeoutError if config.maxCycles is
    /// exceeded.  Cycle/commit counters accumulate across calls; after a
    /// bounded run, resume with warmStart() + run().
    PipelineResult run(std::uint64_t maxCommits = 0);

    /// Re-arm a drained simulator to resume execution from `state` with I/O
    /// context `io`: clears latches and transient stall state, sets the
    /// fetch PC, and — deliberately — preserves everything warm: caches,
    /// predictor, customizer (BDT/BIT), decode cache, and cumulative stats.
    /// Sampled simulation uses this to re-enter cycle-accurate windows after
    /// functional fast-forward.
    void warmStart(const ArchState& state, IoContext io);

    /// Cumulative statistics so far (valid between run() calls; cache-stat
    /// snapshots are refreshed at the end of each run() call).
    [[nodiscard]] const PipelineStats& stats() const { return stats_; }
    /// Architectural state after the last run() call.
    [[nodiscard]] const ArchState& archState() const { return state_; }
    /// I/O context accumulated so far.
    [[nodiscard]] const IoContext& io() const { return io_; }

private:
    struct Slot {
        bool valid = false;
        std::uint32_t pc = 0;
        /// Pre-decoded micro-op.  Points either into the decode cache (whose
        /// slots are sized once at bind() and filled in place, so records
        /// never move) or into injected_ for customizer replacements and
        /// out-of-text bubbles.  A pointer keeps the per-cycle latch copies
        /// at one word instead of a full DecodedOp.
        const DecodedOp* dec = nullptr;
        std::uint32_t predictedNext = 0;
        bool wasPredicted = false;   ///< predictor consulted in IF
        bool wasFolded = false;      ///< injected by the customizer
        std::uint32_t foldOrigin = 0;  ///< folded branch's own PC
        bool foldTaken = false;      ///< resolved direction of the fold
        bool outOfText = false;      ///< speculative fetch past the text end
        StepResult exec;             ///< filled when entering EX
    };

    /// Store a freshly-decoded record (fold replacement or out-of-text
    /// bubble) in the injected-op ring and return its stable address.  At
    /// most one injection per fetch and at most five slots in flight, so a
    /// ring of eight can never overwrite a live record.
    const DecodedOp* inject(const DecodedOp& dec);

    void redirect(std::uint32_t target);
    void stageWriteback();
    void stageMemory();
    void stageExecute();
    void stageDecode();
    void stageFetch();

    void emitValue(const Slot& slot, ValueStage stage);
    [[nodiscard]] std::uint32_t exOccupancy(Op op) const;
    void traceLatches();  ///< record end-of-cycle stage occupancy (tracing)

    const Program& program_;
    Memory& memory_;
    BranchPredictor& predictor_;
    PipelineConfig config_;
    FetchCustomizer* customizer_;

    Cache icache_;
    Cache dcache_;
    DecodeCache decode_;  ///< per-PC micro-op records; filled lazily
    ArchState state_;
    IoContext io_;
    PipelineStats stats_;

    Slot ifId_, idEx_, exMem_, memWb_;
    std::array<DecodedOp, 8> injected_{};  ///< ring backing injected decodes
    std::uint32_t injectedIdx_ = 0;
    std::uint64_t commitLimit_ = 0;  ///< absolute committed-count bound (0 = none)
    std::uint32_t fetchPc_ = 0;
    std::uint32_t ifBusy_ = 0;   ///< remaining I-cache miss stall cycles
    std::uint32_t exBusy_ = 0;   ///< remaining extra EX cycles (mul/div)
    std::uint32_t memBusy_ = 0;  ///< remaining D-cache miss stall cycles
    std::uint32_t redirectStall_ = 0;  ///< remaining post-redirect bubbles
    std::uint32_t parityStall_ = 0;    ///< remaining parity-recovery bubbles
    bool exStarted_ = false;     ///< idEx_ already executed architecturally
    bool memStarted_ = false;    ///< exMem_ already probed the D-cache
    bool flushedThisCycle_ = false;
    bool halting_ = false;       ///< exit syscall executed; drain only
    bool loadUseHazard_ = false;
    std::uint8_t hazardReg_ = 0;  ///< dest of the load in EX at cycle start
};

}  // namespace asbr

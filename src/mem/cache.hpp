// Set-associative cache timing model.
//
// The cache models *timing only*: data always lives in Memory, and the cache
// tracks tags + LRU state to decide whether an access hits.  This matches the
// role caches play in the paper's SimpleScalar configuration (8KB I / 8KB D):
// they contribute stall cycles, not functional behaviour.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/ensure.hpp"

namespace asbr {

class MetricRegistry;

/// Geometry and timing of one cache.
struct CacheConfig {
    std::uint32_t sizeBytes = 8 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 2;
    std::uint32_t missPenalty = 8;  ///< extra cycles on a miss

    [[nodiscard]] std::uint32_t numLines() const { return sizeBytes / lineBytes; }
    [[nodiscard]] std::uint32_t numSets() const { return numLines() / assoc; }
};

/// Aggregate cache statistics.
struct CacheStats {
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    [[nodiscard]] double missRate() const {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses) / static_cast<double>(accesses);
    }

    /// Register these totals under `<prefix>.accesses` / `<prefix>.misses`
    /// (e.g. "mem.icache") in the metric registry.
    void publish(MetricRegistry& registry, std::string_view prefix) const;
};

class Cache {
public:
    explicit Cache(const CacheConfig& config);

    /// Access one address; returns the stall penalty in cycles (0 on hit).
    /// Misses allocate the line (write-allocate for stores).
    std::uint32_t access(std::uint32_t addr);

    /// True when the line containing addr is currently resident (no state
    /// change) — used by tests and by the fetch stage's "free" re-probe of a
    /// just-filled line.
    [[nodiscard]] bool probe(std::uint32_t addr) const;

    /// Invalidate everything (e.g. between benchmark runs).
    void reset();

    [[nodiscard]] const CacheStats& stats() const { return stats_; }
    [[nodiscard]] const CacheConfig& config() const { return config_; }

private:
    struct Line {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t lastUse = 0;  // for LRU
    };

    [[nodiscard]] std::uint32_t setIndex(std::uint32_t addr) const;
    [[nodiscard]] std::uint32_t tagOf(std::uint32_t addr) const;

    CacheConfig config_;
    std::vector<Line> lines_;  // sets_ * assoc_, row-major by set
    CacheStats stats_;
    std::uint64_t tick_ = 0;
};

}  // namespace asbr

// Byte-addressable sparse main memory.
//
// Backing store is a page map so the full 32-bit address space (text, data,
// heap, stack) is usable without reserving 4GB.  All multi-byte accesses are
// little-endian and must be naturally aligned — ep32 has no unaligned
// accesses, and benchmarks that violate alignment are bugs we want to catch.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "asm/program.hpp"

namespace asbr {

class Memory {
public:
    /// Read/write primitives.  Throw EnsureError on misalignment.
    [[nodiscard]] std::uint8_t read8(std::uint32_t addr) const;
    [[nodiscard]] std::uint16_t read16(std::uint32_t addr) const;
    [[nodiscard]] std::uint32_t read32(std::uint32_t addr) const;
    void write8(std::uint32_t addr, std::uint8_t value);
    void write16(std::uint32_t addr, std::uint16_t value);
    void write32(std::uint32_t addr, std::uint32_t value);

    /// Bulk helpers.
    void writeBlock(std::uint32_t addr, std::span<const std::uint8_t> bytes);
    void readBlock(std::uint32_t addr, std::span<std::uint8_t> out) const;

    /// Copy a program image (encoded text + initialized data) into memory.
    void loadProgram(const Program& program);

    /// Convenience typed accessors used by workload harnesses.
    [[nodiscard]] std::int32_t readWord(std::uint32_t addr) const {
        return static_cast<std::int32_t>(read32(addr));
    }
    void writeWord(std::uint32_t addr, std::int32_t value) {
        write32(addr, static_cast<std::uint32_t>(value));
    }
    [[nodiscard]] std::int16_t readHalf(std::uint32_t addr) const {
        return static_cast<std::int16_t>(read16(addr));
    }
    void writeHalf(std::uint32_t addr, std::int16_t value) {
        write16(addr, static_cast<std::uint16_t>(value));
    }

private:
    static constexpr std::uint32_t kPageBits = 12;
    static constexpr std::uint32_t kPageSize = 1u << kPageBits;
    using Page = std::array<std::uint8_t, kPageSize>;

    [[nodiscard]] const Page* findPage(std::uint32_t addr) const;
    Page& pageFor(std::uint32_t addr);

    std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

}  // namespace asbr

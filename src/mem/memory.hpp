// Byte-addressable sparse main memory.
//
// Backing store is a page map so the full 32-bit address space (text, data,
// heap, stack) is usable without reserving 4GB.  All multi-byte accesses are
// little-endian and must be naturally aligned — ep32 has no unaligned
// accesses, and benchmarks that violate alignment are bugs we want to catch.
//
// The accessors are the simulators' per-instruction load/store port, so they
// are inline and word-wide (an aligned access never crosses the 4 KiB page
// boundary), with a one-entry last-page cache in front of the hash map —
// consecutive accesses overwhelmingly hit the same page.  The cache is an
// instance member: each engine worker builds its own Memory, so there is no
// shared mutable state across threads.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "asm/program.hpp"
#include "util/ensure.hpp"

namespace asbr {

class Memory {
public:
    /// Read/write primitives.  Throw EnsureError on misalignment.
    [[nodiscard]] std::uint8_t read8(std::uint32_t addr) const {
        const Page* page = cachedPage(addr);
        return page != nullptr ? (*page)[addr & kOffsetMask] : 0;
    }
    [[nodiscard]] std::uint16_t read16(std::uint32_t addr) const {
        ASBR_ENSURE((addr & 1u) == 0, "unaligned 16-bit read");
        const Page* page = cachedPage(addr);
        if (page == nullptr) return 0;
        const std::uint32_t off = addr & kOffsetMask;
        return static_cast<std::uint16_t>(
            (*page)[off] | (static_cast<std::uint16_t>((*page)[off + 1]) << 8));
    }
    [[nodiscard]] std::uint32_t read32(std::uint32_t addr) const {
        ASBR_ENSURE((addr & 3u) == 0, "unaligned 32-bit read");
        const Page* page = cachedPage(addr);
        if (page == nullptr) return 0;
        const std::uint32_t off = addr & kOffsetMask;
        return static_cast<std::uint32_t>((*page)[off]) |
               (static_cast<std::uint32_t>((*page)[off + 1]) << 8) |
               (static_cast<std::uint32_t>((*page)[off + 2]) << 16) |
               (static_cast<std::uint32_t>((*page)[off + 3]) << 24);
    }
    void write8(std::uint32_t addr, std::uint8_t value) {
        cachedPageMut(addr)[addr & kOffsetMask] = value;
    }
    void write16(std::uint32_t addr, std::uint16_t value) {
        ASBR_ENSURE((addr & 1u) == 0, "unaligned 16-bit write");
        Page& page = cachedPageMut(addr);
        const std::uint32_t off = addr & kOffsetMask;
        page[off] = static_cast<std::uint8_t>(value & 0xFF);
        page[off + 1] = static_cast<std::uint8_t>(value >> 8);
    }
    void write32(std::uint32_t addr, std::uint32_t value) {
        ASBR_ENSURE((addr & 3u) == 0, "unaligned 32-bit write");
        Page& page = cachedPageMut(addr);
        const std::uint32_t off = addr & kOffsetMask;
        page[off] = static_cast<std::uint8_t>(value & 0xFF);
        page[off + 1] = static_cast<std::uint8_t>((value >> 8) & 0xFF);
        page[off + 2] = static_cast<std::uint8_t>((value >> 16) & 0xFF);
        page[off + 3] = static_cast<std::uint8_t>((value >> 24) & 0xFF);
    }

    /// Bulk helpers.
    void writeBlock(std::uint32_t addr, std::span<const std::uint8_t> bytes);
    void readBlock(std::uint32_t addr, std::span<std::uint8_t> out) const;

    /// Copy a program image (encoded text + initialized data) into memory.
    void loadProgram(const Program& program);

    /// Convenience typed accessors used by workload harnesses.
    [[nodiscard]] std::int32_t readWord(std::uint32_t addr) const {
        return static_cast<std::int32_t>(read32(addr));
    }
    void writeWord(std::uint32_t addr, std::int32_t value) {
        write32(addr, static_cast<std::uint32_t>(value));
    }
    [[nodiscard]] std::int16_t readHalf(std::uint32_t addr) const {
        return static_cast<std::int16_t>(read16(addr));
    }
    void writeHalf(std::uint32_t addr, std::int16_t value) {
        write16(addr, static_cast<std::uint16_t>(value));
    }

private:
    static constexpr std::uint32_t kPageBits = 12;
    static constexpr std::uint32_t kPageSize = 1u << kPageBits;
    static constexpr std::uint32_t kOffsetMask = kPageSize - 1;
    using Page = std::array<std::uint8_t, kPageSize>;

    /// Last-page fast path.  Pages live behind unique_ptr and are never
    /// erased, so a cached pointer stays valid across map rehashes; a read
    /// of a not-yet-allocated page returns nullptr without polluting the
    /// cache (a later write allocates the page and refreshes it).
    [[nodiscard]] const Page* cachedPage(std::uint32_t addr) const {
        const std::uint32_t tag = addr >> kPageBits;
        if (cached_ != nullptr && cachedTag_ == tag) return cached_;
        return findPage(tag);
    }
    [[nodiscard]] Page& cachedPageMut(std::uint32_t addr) {
        const std::uint32_t tag = addr >> kPageBits;
        if (cached_ != nullptr && cachedTag_ == tag) return *cached_;
        return pageFor(tag);
    }

    [[nodiscard]] const Page* findPage(std::uint32_t tag) const;
    Page& pageFor(std::uint32_t tag);

    std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
    mutable Page* cached_ = nullptr;  ///< one-entry page cache (per instance)
    mutable std::uint32_t cachedTag_ = 0;
};

}  // namespace asbr

#include "mem/cache.hpp"

#include <string>

#include "util/metrics.hpp"

namespace asbr {

void CacheStats::publish(MetricRegistry& registry,
                         std::string_view prefix) const {
    const std::string base(prefix);
    registry.counter(base + ".accesses", "cache accesses (timing probes)")
        .add(accesses);
    registry.counter(base + ".misses", "cache misses (each costs missPenalty)")
        .add(misses);
}

namespace {
bool isPow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
    ASBR_ENSURE(isPow2(config.lineBytes) && config.lineBytes >= 4,
                "line size must be a power of two >= 4");
    ASBR_ENSURE(config.assoc >= 1, "associativity must be >= 1");
    ASBR_ENSURE(config.sizeBytes % (config.lineBytes * config.assoc) == 0,
                "size must be a multiple of lineBytes*assoc");
    ASBR_ENSURE(isPow2(config.numSets()), "number of sets must be a power of two");
    lines_.resize(config.numLines());
}

std::uint32_t Cache::setIndex(std::uint32_t addr) const {
    return (addr / config_.lineBytes) & (config_.numSets() - 1);
}

std::uint32_t Cache::tagOf(std::uint32_t addr) const {
    return (addr / config_.lineBytes) / config_.numSets();
}

std::uint32_t Cache::access(std::uint32_t addr) {
    ++tick_;
    ++stats_.accesses;
    const std::uint32_t set = setIndex(addr);
    const std::uint32_t tag = tagOf(addr);
    Line* base = &lines_[set * config_.assoc];
    Line* victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = tick_;
            return 0;
        }
        if (!line.valid || line.lastUse < victim->lastUse ||
            (victim->valid && !line.valid)) {
            victim = &line;
        }
    }
    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick_;
    return config_.missPenalty;
}

bool Cache::probe(std::uint32_t addr) const {
    const std::uint32_t set = setIndex(addr);
    const std::uint32_t tag = tagOf(addr);
    const Line* base = &lines_[set * config_.assoc];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) return true;
    }
    return false;
}

void Cache::reset() {
    for (Line& line : lines_) line = Line{};
    stats_ = CacheStats{};
    tick_ = 0;
}

}  // namespace asbr

#include "mem/memory.hpp"

#include "isa/encoding.hpp"
#include "util/ensure.hpp"

namespace asbr {

const Memory::Page* Memory::findPage(std::uint32_t addr) const {
    const auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : it->second.get();
}

Memory::Page& Memory::pageFor(std::uint32_t addr) {
    auto& slot = pages_[addr >> kPageBits];
    if (!slot) slot = std::make_unique<Page>(Page{});
    return *slot;
}

std::uint8_t Memory::read8(std::uint32_t addr) const {
    const Page* page = findPage(addr);
    return page ? (*page)[addr & (kPageSize - 1)] : 0;
}

std::uint16_t Memory::read16(std::uint32_t addr) const {
    ASBR_ENSURE((addr & 1u) == 0, "unaligned 16-bit read");
    return static_cast<std::uint16_t>(read8(addr) |
                                      (static_cast<std::uint16_t>(read8(addr + 1)) << 8));
}

std::uint32_t Memory::read32(std::uint32_t addr) const {
    ASBR_ENSURE((addr & 3u) == 0, "unaligned 32-bit read");
    return static_cast<std::uint32_t>(read8(addr)) |
           (static_cast<std::uint32_t>(read8(addr + 1)) << 8) |
           (static_cast<std::uint32_t>(read8(addr + 2)) << 16) |
           (static_cast<std::uint32_t>(read8(addr + 3)) << 24);
}

void Memory::write8(std::uint32_t addr, std::uint8_t value) {
    pageFor(addr)[addr & (kPageSize - 1)] = value;
}

void Memory::write16(std::uint32_t addr, std::uint16_t value) {
    ASBR_ENSURE((addr & 1u) == 0, "unaligned 16-bit write");
    write8(addr, static_cast<std::uint8_t>(value & 0xFF));
    write8(addr + 1, static_cast<std::uint8_t>(value >> 8));
}

void Memory::write32(std::uint32_t addr, std::uint32_t value) {
    ASBR_ENSURE((addr & 3u) == 0, "unaligned 32-bit write");
    write8(addr, static_cast<std::uint8_t>(value & 0xFF));
    write8(addr + 1, static_cast<std::uint8_t>((value >> 8) & 0xFF));
    write8(addr + 2, static_cast<std::uint8_t>((value >> 16) & 0xFF));
    write8(addr + 3, static_cast<std::uint8_t>((value >> 24) & 0xFF));
}

void Memory::writeBlock(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
    for (std::size_t i = 0; i < bytes.size(); ++i)
        write8(addr + static_cast<std::uint32_t>(i), bytes[i]);
}

void Memory::readBlock(std::uint32_t addr, std::span<std::uint8_t> out) const {
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = read8(addr + static_cast<std::uint32_t>(i));
}

void Memory::loadProgram(const Program& program) {
    std::uint32_t addr = program.textBase;
    for (const Instruction& ins : program.code) {
        write32(addr, encode(ins));
        addr += kInstrBytes;
    }
    writeBlock(program.dataBase, program.data);
}

}  // namespace asbr

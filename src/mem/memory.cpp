#include "mem/memory.hpp"

#include "isa/encoding.hpp"
#include "util/ensure.hpp"

namespace asbr {

const Memory::Page* Memory::findPage(std::uint32_t tag) const {
    const auto it = pages_.find(tag);
    if (it == pages_.end()) return nullptr;
    cached_ = it->second.get();
    cachedTag_ = tag;
    return cached_;
}

Memory::Page& Memory::pageFor(std::uint32_t tag) {
    auto& slot = pages_[tag];
    if (!slot) slot = std::make_unique<Page>(Page{});
    cached_ = slot.get();
    cachedTag_ = tag;
    return *slot;
}

void Memory::writeBlock(std::uint32_t addr, std::span<const std::uint8_t> bytes) {
    for (std::size_t i = 0; i < bytes.size(); ++i)
        write8(addr + static_cast<std::uint32_t>(i), bytes[i]);
}

void Memory::readBlock(std::uint32_t addr, std::span<std::uint8_t> out) const {
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = read8(addr + static_cast<std::uint32_t>(i));
}

void Memory::loadProgram(const Program& program) {
    std::uint32_t addr = program.textBase;
    for (const Instruction& ins : program.code) {
        write32(addr, encode(ins));
        addr += kInstrBytes;
    }
    writeBlock(program.dataBase, program.data);
}

}  // namespace asbr

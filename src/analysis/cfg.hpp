// Control-flow graph construction over a linked Program.
//
// Basic blocks and successor edges are recovered purely from the `isa`
// branch/jump decoding — the static view of the program the fold-legality
// verifier reasons over.  Direct calls (`jal label`) edge into the callee;
// returns (`jr ra`) are resolved context-insensitively to the return points
// of every call site of the enclosing function, so the graph is a standard
// interprocedural supergraph.  Indirect jumps the builder cannot resolve
// (`jalr`, `jr` through a non-ra register, `jr ra` in unreachable code) are
// over-approximated with edges to every known function entry and return
// point and flagged, keeping downstream min-analyses sound.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "asm/program.hpp"

namespace asbr::analysis {

/// Instruction-word index into Program::code.
using InstrIndex = std::uint32_t;

/// Sentinel block id ("no such block").
inline constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

/// A maximal straight-line run of instructions [first, last] (inclusive).
struct BasicBlock {
    InstrIndex first = 0;
    InstrIndex last = 0;
    std::vector<std::size_t> succs;  ///< successor block ids
    std::vector<std::size_t> preds;  ///< predecessor block ids
    /// Block ends in an indirect jump whose targets could not be resolved
    /// from the call structure; its successor set is the conservative
    /// all-entries/all-return-points over-approximation.
    bool endsInUnresolvedIndirect = false;
};

/// A direct call: the `jal` instruction and the callee entry it names.
struct CallSite {
    InstrIndex pc = 0;      ///< index of the jal instruction
    InstrIndex callee = 0;  ///< index of the callee's first instruction
};

struct Cfg {
    const Program* program = nullptr;
    std::vector<BasicBlock> blocks;
    std::vector<std::size_t> blockOf;  ///< instruction index -> block id
    std::size_t entryBlock = kNoBlock;
    /// Function entries: the program entry plus every `jal` target.
    std::vector<InstrIndex> functionEntries;
    std::vector<CallSite> callSites;
    bool hasUnresolvedIndirect = false;

    [[nodiscard]] std::size_t numInstructions() const {
        return program->code.size();
    }
    [[nodiscard]] std::uint32_t pcOf(InstrIndex i) const {
        return program->textBase + i * kInstrBytes;
    }
    [[nodiscard]] InstrIndex indexOf(std::uint32_t pc) const {
        ASBR_ENSURE(program->inText(pc), "Cfg::indexOf: pc outside text");
        return (pc - program->textBase) / kInstrBytes;
    }
    [[nodiscard]] std::size_t blockAt(std::uint32_t pc) const {
        return blockOf[indexOf(pc)];
    }
};

/// Statically resolved targets of one indirect-control instruction, as
/// produced by the value-set analysis (analysis/ipa/valueset).  `isCall`
/// distinguishes a `jalr` (call: control returns to the site) from a `jr`
/// through a non-ra register (computed goto: control does not return).
struct ResolvedIndirect {
    bool isCall = false;
    std::vector<InstrIndex> targets;  ///< sorted, deduplicated, inside text

    [[nodiscard]] bool operator==(const ResolvedIndirect&) const = default;
};

/// Resolved indirect jumps keyed by instruction index.  Sites absent from
/// the map keep the conservative all-entries/all-return-points edges.
using IndirectMap = std::map<InstrIndex, ResolvedIndirect>;

/// Build the interprocedural CFG for a linked program.
[[nodiscard]] Cfg buildCfg(const Program& program);

/// Build the CFG with value-set-resolved indirect jumps: a resolved `jalr`
/// becomes an ordinary multi-target call (edges into each callee, a call
/// site per target, returns matched through `jr ra` like direct calls); a
/// resolved `jr` becomes a precise computed goto.  Passing nullptr (or an
/// empty map) reproduces buildCfg(program) exactly.
[[nodiscard]] Cfg buildCfg(const Program& program,
                           const IndirectMap* resolved);

}  // namespace asbr::analysis

// Static fold-legality verification (compile-time side of ASBR).
//
// The ASBR methodology is only sound when a folded branch's
// predicate-defining instruction runs at least `threshold` instructions
// ahead of the branch; the repo historically established this dynamically
// (profiler foldable fractions), which says nothing about unprofiled paths.
// The verifier decides it statically from the CFG + reaching-producer
// analysis and issues one of three verdicts per branch:
//
//   kProvablySafe        — every static path gives distance >= threshold:
//                          the fold is legal on all inputs.
//   kSafeOnProfiledPaths — some static path is shorter than the threshold,
//                          but the supplied profile never observed a
//                          distance below it: the fold was legal on every
//                          profiled execution, yet an unprofiled path could
//                          still reach the branch with the producer in
//                          flight (validity counter nonzero).
//   kIllegal             — a short path exists and the profile either also
//                          observed one or was not supplied; folding relies
//                          entirely on the runtime validity counter.
//
// The report additionally covers BIT-geometry conflicts (duplicate PCs and
// index-set collisions for a set-associative geometry) and BTA/BTI/BFI
// consistency of externally supplied BranchInfo entries against
// re-extraction from the program image.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "analysis/absint/absint.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/ipa/ipa.hpp"
#include "analysis/loops.hpp"
#include "analysis/reaching.hpp"
#include "asbr/bit.hpp"

namespace asbr::analysis {

enum class FoldLegality : std::uint8_t {
    kProvablySafe,
    kSafeOnProfiledPaths,
    kIllegal,
};

[[nodiscard]] const char* foldLegalityName(FoldLegality v);

/// BIT geometry for conflict detection.  The shipped hardware model is
/// fully associative (sets == 1); a set-associative variant indexes with
/// the branch's word address modulo the set count.
struct BitGeometry {
    std::size_t sets = 1;
    std::size_t ways = 16;

    [[nodiscard]] std::size_t indexOf(std::uint32_t pc) const {
        return (pc / kInstrBytes) % sets;
    }
    [[nodiscard]] std::size_t capacity() const { return sets * ways; }
};

struct VerifyConfig {
    std::uint32_t threshold = 3;  ///< 2 / 3 / 4, per the BDT update stage
    BitGeometry geometry{};
};

/// Per-execution-site evidence from a dynamic profile: the smallest
/// observed def-to-branch distance, keyed by branch PC.  Sites that never
/// executed must be absent (absence means "no dynamic evidence").
using ObservedMinDistances = std::map<std::uint32_t, std::uint64_t>;

struct BranchVerdict {
    std::uint32_t pc = 0;
    FoldLegality verdict = FoldLegality::kIllegal;
    /// Minimum static path distance (kFarAway = no producer on any path),
    /// measured over the *feasible* paths only — the abstract interpreter's
    /// edge pruning applied to the reaching-producer fixpoint.
    Dist staticMinDistance = 0;
    /// The PR 1 distance over all graph paths, feasible or not.  Whenever
    /// it is smaller than staticMinDistance, value analysis sharpened the
    /// verdict (typically a loop-carried producer on an infeasible arm).
    Dist unrefinedMinDistance = 0;
    /// Static direction verdict from the abstract interpreter.  Always- and
    /// never-taken branches can fold with no BDT dependence at all.
    BranchDirection direction = BranchDirection::kDynamic;
    bool extractable = true;  ///< target and fall-through inside text
    bool reachable = true;    ///< reachable from the program entry
    int sourceLine = -1;      ///< Program::sourceLine diagnostics
    std::string reason;       ///< human-readable cause for non-safe verdicts

    /// The branch's outcome is a compile-time constant (and it can execute).
    [[nodiscard]] bool staticallyDecided() const {
        return direction == BranchDirection::kAlwaysTaken ||
               direction == BranchDirection::kNeverTaken;
    }
};

/// One structured finding from the value analysis, printable as a single
/// `kind pc=0x... line=N: message` line (the asbr-verify lint surface).
struct StaticLint {
    enum class Kind : std::uint8_t {
        kUnreachableBlock,   ///< block can never execute
        kDeadBranchArm,      ///< branch executes but one arm never does
        kRefinementWin,      ///< informational: pruning raised the distance
        kUnboundedLoop,      ///< loop with neither inferred nor annotated bound
        kDanglingLoopBound,  ///< .loopbound on a line that is no loop head
        kDeadStore,          ///< informational: register value never read
        kNeverWrittenRead,   ///< informational: only the reset value is read
        kCorrelatedBranch,   ///< informational: re-test of a decided value
    };
    Kind kind = Kind::kUnreachableBlock;
    std::uint32_t pc = 0;  ///< block-start or branch pc
    int sourceLine = -1;
    std::string message;
};

[[nodiscard]] const char* staticLintKindName(StaticLint::Kind k);

/// Error-class lints fail `--strict` runs; the others are informational.
[[nodiscard]] bool isErrorLint(StaticLint::Kind k);

/// Render in the one-line structured form consumed by CI greps.
[[nodiscard]] std::string formatLint(const StaticLint& lint);

struct VerifyReport {
    std::vector<BranchVerdict> branches;
    std::vector<std::string> conflicts;        ///< BIT geometry violations
    std::vector<std::string> inconsistencies;  ///< BranchInfo mismatches

    [[nodiscard]] std::size_t count(FoldLegality v) const;
    /// No illegal folds, no conflicts, no inconsistencies.
    [[nodiscard]] bool ok() const;
};

/// The verifier: builds the CFG and the reaching-producer fixpoint once,
/// then answers per-branch and per-bank queries against them.
class FoldLegalityVerifier {
public:
    explicit FoldLegalityVerifier(const Program& program);

    /// Verdict for the conditional branch at `pc`.  `observed` supplies
    /// dynamic evidence for the SafeOnProfiledPaths verdict; pass nullptr
    /// for a purely static run.
    [[nodiscard]] BranchVerdict verdictFor(
        std::uint32_t pc, const VerifyConfig& config,
        const ObservedMinDistances* observed = nullptr) const;

    /// Verify a candidate PC set plus its BIT geometry.
    [[nodiscard]] VerifyReport verify(
        std::span<const std::uint32_t> pcs, const VerifyConfig& config,
        const ObservedMinDistances* observed = nullptr) const;

    /// Verify an assembled BIT bank: per-branch verdicts, geometry
    /// conflicts, and BTA/BTI/BFI consistency against re-extraction.
    [[nodiscard]] VerifyReport verifyBank(
        std::span<const BranchInfo> entries, const VerifyConfig& config,
        const ObservedMinDistances* observed = nullptr) const;

    /// Value-analysis lints: unreachable blocks, provably-dead branch arms,
    /// and branches whose distance the edge pruning lifted across the
    /// threshold (the PR 1 false rejections), sorted by pc.
    [[nodiscard]] std::vector<StaticLint> lints(
        const VerifyConfig& config) const;

    [[nodiscard]] const Cfg& cfg() const { return ipa_.cfg; }
    /// Refined reaching-producer fixpoint (infeasible edges pruned).
    [[nodiscard]] const ReachingProducers& dataflow() const { return rp_; }
    /// The PR 1 fixpoint over every graph edge, for comparison.
    [[nodiscard]] const ReachingProducers& unrefinedDataflow() const {
        return rpUnrefined_;
    }
    [[nodiscard]] const DominatorTree& dominators() const { return ipa_.doms; }
    [[nodiscard]] const LoopForest& loops() const { return ipa_.loops; }
    /// Dense fixpoint with SCCP merged in (the interprocedural reduced
    /// product) — every consumer of the dense analysis upgrades for free.
    [[nodiscard]] const ValueAnalysis& values() const { return ipa_.values; }
    /// The full interprocedural pipeline outputs (SSA form, SCCP solution,
    /// indirect-jump resolution, call graph).
    [[nodiscard]] const ipa::IpaAnalysis& ipa() const { return ipa_; }

private:
    /// SSA-based lints: dead stores, reads of never-written registers,
    /// correlated branch pairs (all informational).
    void appendSsaLints(std::vector<StaticLint>& out) const;

    const Program& program_;
    ipa::IpaAnalysis ipa_;
    ReachingProducers rpUnrefined_;
    ReachingProducers rp_;
};

}  // namespace asbr::analysis

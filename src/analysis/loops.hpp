// Natural-loop detection over the interprocedural CFG.
//
// A back edge is an edge b -> h whose target dominates its source; the
// natural loop of that edge is h plus every block that can reach b without
// passing through h.  Loops sharing a head are merged (one Loop per head),
// nesting depth is the number of enclosing loop bodies a block belongs to,
// and the innermost loop of each block is recorded for O(1) membership
// queries.
//
// Separately from the dominator-based loops, the pass records the *widening
// set*: targets of retreating edges of a fixed depth-first traversal.  Every
// cycle of the graph — including irreducible cycles the conservative
// indirect-jump edges can create, which have no dominating head — contains
// at least one retreating edge, so widening at exactly these blocks is
// enough to force the abstract-interpretation fixpoint (analysis/absint) to
// terminate.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"

namespace asbr::analysis {

struct Loop {
    std::size_t head = kNoBlock;          ///< the loop-header block
    std::vector<std::size_t> latches;     ///< back-edge sources (b of b -> head)
    std::vector<std::size_t> blocks;      ///< body incl. head, sorted ascending
    std::size_t parent = kNoBlock;        ///< enclosing loop index; kNoBlock = outermost
    std::size_t depth = 1;                ///< 1 = outermost

    [[nodiscard]] bool contains(std::size_t block) const;
};

struct LoopForest {
    std::vector<Loop> loops;  ///< ordered outermost-first (by body size, desc)
    /// Innermost loop index per block; kNoBlock when the block is in no loop.
    std::vector<std::size_t> innermost;
    /// Loop-nesting depth per block (0 = not in any loop).
    std::vector<std::size_t> depthOf;
    /// Blocks where the abstract interpreter must widen: targets of DFS
    /// retreating edges.  Superset-compatible with the loop heads on
    /// reducible graphs; additionally cuts irreducible cycles.
    std::vector<char> wideningPoint;

    [[nodiscard]] bool isWideningPoint(std::size_t block) const {
        return wideningPoint[block] != 0;
    }
    /// True when `block` belongs to the loop headed at `head` (any nesting).
    [[nodiscard]] bool inLoopHeadedAt(std::size_t head, std::size_t block) const;
};

/// Detect natural loops and widening points for `cfg` using `doms`.
[[nodiscard]] LoopForest computeLoops(const Cfg& cfg, const DominatorTree& doms);

}  // namespace asbr::analysis

#include "analysis/reaching.hpp"

#include <deque>

namespace asbr::analysis {

void applyTransfer(const Instruction& ins, RegDistances& d) {
    for (Dist& x : d)
        if (x < kFarAway) ++x;
    const auto w = destReg(ins);
    if (w && *w != reg::zero) d[*w] = 1;
}

namespace {

/// out = transfer of the whole block applied to its entry state.
RegDistances blockOut(const Cfg& cfg, std::size_t block, RegDistances d) {
    const BasicBlock& b = cfg.blocks[block];
    for (InstrIndex i = b.first; i <= b.last; ++i)
        applyTransfer(cfg.program->code[i], d);
    return d;
}

/// Elementwise minimum; returns true when `into` changed.
bool meetInto(RegDistances& into, const RegDistances& from) {
    bool changed = false;
    for (int r = 0; r < kNumRegs; ++r)
        if (from[static_cast<std::size_t>(r)] <
            into[static_cast<std::size_t>(r)]) {
            into[static_cast<std::size_t>(r)] =
                from[static_cast<std::size_t>(r)];
            changed = true;
        }
    return changed;
}

}  // namespace

ReachingProducers computeReachingProducers(const Cfg& cfg) {
    return computeReachingProducers(cfg, {});
}

ReachingProducers computeReachingProducers(const Cfg& cfg,
                                           const EdgeMask& feasibleEdge) {
    ReachingProducers rp;
    RegDistances top;
    top.fill(kFarAway);
    rp.blockIn.assign(cfg.blocks.size(), top);
    rp.blockReachable.assign(cfg.blocks.size(), 0);
    if (cfg.entryBlock == kNoBlock) return rp;

    // Machine reset: every register was last written "infinitely long ago",
    // so the entry state is all-kFarAway (== top, already set).
    rp.blockReachable[cfg.entryBlock] = 1;

    std::deque<std::size_t> worklist{cfg.entryBlock};
    std::vector<char> queued(cfg.blocks.size(), 0);
    queued[cfg.entryBlock] = 1;
    while (!worklist.empty()) {
        const std::size_t b = worklist.front();
        worklist.pop_front();
        queued[b] = 0;
        const RegDistances out = blockOut(cfg, b, rp.blockIn[b]);
        const auto& succs = cfg.blocks[b].succs;
        for (std::size_t i = 0; i < succs.size(); ++i) {
            // Edges the value analysis proved infeasible carry no state; the
            // min-distance meet only sharpens (distances can rise back
            // toward kFarAway when a short-producer path was infeasible).
            if (!feasibleEdge.empty() && feasibleEdge[b][i] == 0) continue;
            const std::size_t s = succs[i];
            const bool first = rp.blockReachable[s] == 0;
            rp.blockReachable[s] = 1;
            if ((meetInto(rp.blockIn[s], out) || first) && !queued[s]) {
                queued[s] = 1;
                worklist.push_back(s);
            }
        }
    }
    return rp;
}

Dist distanceAt(const Cfg& cfg, const ReachingProducers& rp, InstrIndex idx,
                std::uint8_t reg) {
    ASBR_ENSURE(idx < cfg.numInstructions(), "distanceAt: index outside text");
    ASBR_ENSURE(reg < kNumRegs, "distanceAt: bad register");
    const std::size_t block = cfg.blockOf[idx];
    if (!rp.reachable(block)) return kFarAway;
    RegDistances d = rp.blockIn[block];
    for (InstrIndex i = cfg.blocks[block].first; i < idx; ++i)
        applyTransfer(cfg.program->code[i], d);
    return d[reg];
}

}  // namespace asbr::analysis

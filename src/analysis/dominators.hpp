// Dominator tree over the interprocedural CFG.
//
// Classic iterative algorithm (Cooper/Harvey/Kennedy, "A Simple, Fast
// Dominance Algorithm"): immediate dominators are computed over the reverse
// post-order of the blocks reachable from the entry, intersecting
// predecessor dominators until the assignment stabilizes.  Blocks the entry
// cannot reach keep kNoBlock as their idom and are excluded from every
// dominance query (nothing dominates code that cannot run).
//
// The tree is the structural backbone of the loop detector
// (analysis/loops.*): an edge b -> h is a natural-loop back edge exactly
// when h dominates b.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/cfg.hpp"

namespace asbr::analysis {

struct DominatorTree {
    /// Immediate dominator per block; entry's idom is itself, unreachable
    /// blocks hold kNoBlock.
    std::vector<std::size_t> idom;
    /// Reverse post-order of the reachable blocks (entry first).
    std::vector<std::size_t> rpo;
    /// Position of each block in `rpo`; kNoBlock when unreachable.
    std::vector<std::size_t> rpoIndex;

    [[nodiscard]] bool reachable(std::size_t block) const {
        return idom[block] != kNoBlock;
    }

    /// True when `a` dominates `b` (reflexive).  Unreachable operands never
    /// dominate and are never dominated.
    [[nodiscard]] bool dominates(std::size_t a, std::size_t b) const;
};

/// Build the dominator tree for `cfg` (empty CFGs yield empty vectors).
[[nodiscard]] DominatorTree computeDominators(const Cfg& cfg);

}  // namespace asbr::analysis

#include "analysis/cfg.hpp"

#include <algorithm>
#include <optional>

namespace asbr::analysis {

namespace {

/// Conditional-branch target as an instruction index; nullopt when the
/// target leaves the text segment.
std::optional<InstrIndex> branchTarget(const Program& program, InstrIndex i) {
    const Instruction& ins = program.code[i];
    const std::int64_t t = static_cast<std::int64_t>(i) + 1 + ins.imm;
    if (t < 0 || t >= static_cast<std::int64_t>(program.code.size()))
        return std::nullopt;
    return static_cast<InstrIndex>(t);
}

/// J/JAL target as an instruction index (exec.cpp semantics: absolute word
/// index within the current 256MB region); nullopt when outside text.
std::optional<InstrIndex> jumpTarget(const Program& program, InstrIndex i) {
    const Instruction& ins = program.code[i];
    const std::uint32_t pc = program.textBase + i * kInstrBytes;
    const std::uint32_t addr =
        (pc & 0xF000'0000u) |
        (static_cast<std::uint32_t>(ins.imm) * kInstrBytes);
    if (!program.inText(addr)) return std::nullopt;
    return (addr - program.textBase) / kInstrBytes;
}

/// Intraprocedural successors used for function-membership discovery: calls
/// are stepped over (flow resumes at the return point) and returns stop the
/// walk.
void intraSuccessors(const Program& program, InstrIndex i,
                     std::vector<InstrIndex>& out) {
    const std::size_t n = program.code.size();
    const Instruction& ins = program.code[i];
    out.clear();
    if (isCondBranch(ins.op)) {
        if (const auto t = branchTarget(program, i)) out.push_back(*t);
        if (i + 1 < n) out.push_back(i + 1);
    } else if (ins.op == Op::kJ) {
        if (const auto t = jumpTarget(program, i)) out.push_back(*t);
    } else if (ins.op == Op::kJal || ins.op == Op::kJalr) {
        if (i + 1 < n) out.push_back(i + 1);  // resume at the return point
    } else if (ins.op == Op::kJr) {
        // return — the walk ends here
    } else {
        if (i + 1 < n) out.push_back(i + 1);
    }
}

void addEdge(Cfg& cfg, std::size_t from, std::size_t to) {
    auto& succs = cfg.blocks[from].succs;
    if (std::find(succs.begin(), succs.end(), to) != succs.end()) return;
    succs.push_back(to);
    cfg.blocks[to].preds.push_back(from);
}

}  // namespace

Cfg buildCfg(const Program& program) {
    Cfg cfg;
    cfg.program = &program;
    const std::size_t n = program.code.size();
    if (n == 0) return cfg;

    // ---- function entries and call sites -------------------------------
    const InstrIndex entryIdx = cfg.indexOf(program.entry);
    cfg.functionEntries.push_back(entryIdx);
    bool hasIndirectCall = false;
    for (InstrIndex i = 0; i < n; ++i) {
        const Instruction& ins = program.code[i];
        if (ins.op == Op::kJal) {
            if (const auto t = jumpTarget(program, i)) {
                if (std::find(cfg.functionEntries.begin(),
                              cfg.functionEntries.end(),
                              *t) == cfg.functionEntries.end())
                    cfg.functionEntries.push_back(*t);
                cfg.callSites.push_back({i, *t});
            }
        } else if (ins.op == Op::kJalr) {
            hasIndirectCall = true;
        }
    }
    std::sort(cfg.functionEntries.begin(), cfg.functionEntries.end());

    // ---- function membership (for jr-ra return matching) ---------------
    // funcsOf[i] = entries of every function whose intraprocedural walk
    // reaches instruction i.  Shared tails reached by several functions get
    // several owners; the return edges become the union, which stays sound.
    std::vector<std::vector<InstrIndex>> funcsOf(n);
    {
        std::vector<InstrIndex> stack, succs;
        std::vector<char> seen(n);
        for (const InstrIndex entry : cfg.functionEntries) {
            std::fill(seen.begin(), seen.end(), 0);
            stack.assign(1, entry);
            seen[entry] = 1;
            while (!stack.empty()) {
                const InstrIndex i = stack.back();
                stack.pop_back();
                funcsOf[i].push_back(entry);
                intraSuccessors(program, i, succs);
                for (const InstrIndex s : succs)
                    if (!seen[s]) {
                        seen[s] = 1;
                        stack.push_back(s);
                    }
            }
        }
    }

    // ---- leaders and blocks --------------------------------------------
    std::vector<char> leader(n, 0);
    leader[entryIdx] = 1;
    for (InstrIndex i = 0; i < n; ++i) {
        const Instruction& ins = program.code[i];
        if (isCondBranch(ins.op)) {
            if (const auto t = branchTarget(program, i)) leader[*t] = 1;
        } else if (ins.op == Op::kJ || ins.op == Op::kJal) {
            if (const auto t = jumpTarget(program, i)) leader[*t] = 1;
        }
        if (isControl(ins.op) && i + 1 < n) leader[i + 1] = 1;
    }

    cfg.blockOf.assign(n, kNoBlock);
    for (InstrIndex i = 0; i < n;) {
        BasicBlock block;
        block.first = i;
        while (true) {
            cfg.blockOf[i] = cfg.blocks.size();
            block.last = i;
            ++i;
            if (i >= n || leader[i] || isControl(program.code[block.last].op))
                break;
        }
        cfg.blocks.push_back(std::move(block));
    }
    cfg.entryBlock = cfg.blockOf[entryIdx];

    // Return points of every direct call site, plus — when indirect calls
    // exist — of every jalr; used for conservative indirect-jump edges.
    std::vector<InstrIndex> returnPoints;
    for (const CallSite& cs : cfg.callSites)
        if (cs.pc + 1 < n) returnPoints.push_back(cs.pc + 1);
    if (hasIndirectCall)
        for (InstrIndex i = 0; i < n; ++i)
            if (program.code[i].op == Op::kJalr && i + 1 < n)
                returnPoints.push_back(i + 1);

    // ---- edges ----------------------------------------------------------
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const InstrIndex lastIdx = cfg.blocks[b].last;
        const Instruction& ins = program.code[lastIdx];
        if (isCondBranch(ins.op)) {
            if (const auto t = branchTarget(program, lastIdx))
                addEdge(cfg, b, cfg.blockOf[*t]);
            if (lastIdx + 1 < n) addEdge(cfg, b, cfg.blockOf[lastIdx + 1]);
        } else if (ins.op == Op::kJ || ins.op == Op::kJal) {
            if (const auto t = jumpTarget(program, lastIdx))
                addEdge(cfg, b, cfg.blockOf[*t]);
        } else if (ins.op == Op::kJr && ins.rs == reg::ra &&
                   !funcsOf[lastIdx].empty()) {
            // Return: edge to the return point of every call site of every
            // function this instruction belongs to.  With indirect calls in
            // the program the function may also be entered via jalr, so the
            // jalr return points are added as well.
            for (const CallSite& cs : cfg.callSites) {
                if (cs.pc + 1 >= n) continue;
                const auto& owners = funcsOf[lastIdx];
                if (std::find(owners.begin(), owners.end(), cs.callee) !=
                    owners.end())
                    addEdge(cfg, b, cfg.blockOf[cs.pc + 1]);
            }
            if (hasIndirectCall)
                for (InstrIndex i = 0; i < n; ++i)
                    if (program.code[i].op == Op::kJalr && i + 1 < n)
                        addEdge(cfg, b, cfg.blockOf[i + 1]);
        } else if (ins.op == Op::kJr || ins.op == Op::kJalr) {
            // Unresolvable indirect flow: over-approximate with every
            // function entry and every return point.
            cfg.blocks[b].endsInUnresolvedIndirect = true;
            cfg.hasUnresolvedIndirect = true;
            for (const InstrIndex e : cfg.functionEntries)
                addEdge(cfg, b, cfg.blockOf[e]);
            for (const InstrIndex r : returnPoints)
                addEdge(cfg, b, cfg.blockOf[r]);
        } else {
            if (lastIdx + 1 < n) addEdge(cfg, b, cfg.blockOf[lastIdx + 1]);
        }
    }
    return cfg;
}

}  // namespace asbr::analysis

#include "analysis/cfg.hpp"

#include <algorithm>
#include <optional>

namespace asbr::analysis {

namespace {

/// Conditional-branch target as an instruction index; nullopt when the
/// target leaves the text segment.
std::optional<InstrIndex> branchTarget(const Program& program, InstrIndex i) {
    const Instruction& ins = program.code[i];
    const std::int64_t t = static_cast<std::int64_t>(i) + 1 + ins.imm;
    if (t < 0 || t >= static_cast<std::int64_t>(program.code.size()))
        return std::nullopt;
    return static_cast<InstrIndex>(t);
}

/// J/JAL target as an instruction index (exec.cpp semantics: absolute word
/// index within the current 256MB region); nullopt when outside text.
std::optional<InstrIndex> jumpTarget(const Program& program, InstrIndex i) {
    const Instruction& ins = program.code[i];
    const std::uint32_t pc = program.textBase + i * kInstrBytes;
    const std::uint32_t addr =
        (pc & 0xF000'0000u) |
        (static_cast<std::uint32_t>(ins.imm) * kInstrBytes);
    if (!program.inText(addr)) return std::nullopt;
    return (addr - program.textBase) / kInstrBytes;
}

/// Resolution entry for instruction i, or nullptr.
const ResolvedIndirect* resolutionAt(const IndirectMap* resolved,
                                     InstrIndex i) {
    if (!resolved) return nullptr;
    const auto it = resolved->find(i);
    return it == resolved->end() ? nullptr : &it->second;
}

/// Intraprocedural successors used for function-membership discovery: calls
/// are stepped over (flow resumes at the return point), returns stop the
/// walk, and a value-set-resolved `jr` is a computed goto to its targets.
void intraSuccessors(const Program& program, const IndirectMap* resolved,
                     InstrIndex i, std::vector<InstrIndex>& out) {
    const std::size_t n = program.code.size();
    const Instruction& ins = program.code[i];
    out.clear();
    if (isCondBranch(ins.op)) {
        if (const auto t = branchTarget(program, i)) out.push_back(*t);
        if (i + 1 < n) out.push_back(i + 1);
    } else if (ins.op == Op::kJ) {
        if (const auto t = jumpTarget(program, i)) out.push_back(*t);
    } else if (ins.op == Op::kJal || ins.op == Op::kJalr) {
        if (i + 1 < n) out.push_back(i + 1);  // resume at the return point
    } else if (ins.op == Op::kJr) {
        if (const ResolvedIndirect* r = resolutionAt(resolved, i);
            r && !r->isCall)
            out.assign(r->targets.begin(), r->targets.end());
        // else: return — the walk ends here
    } else {
        if (i + 1 < n) out.push_back(i + 1);
    }
}

void addEdge(Cfg& cfg, std::size_t from, std::size_t to) {
    auto& succs = cfg.blocks[from].succs;
    if (std::find(succs.begin(), succs.end(), to) != succs.end()) return;
    succs.push_back(to);
    cfg.blocks[to].preds.push_back(from);
}

}  // namespace

Cfg buildCfg(const Program& program) { return buildCfg(program, nullptr); }

Cfg buildCfg(const Program& program, const IndirectMap* resolved) {
    Cfg cfg;
    cfg.program = &program;
    const std::size_t n = program.code.size();
    if (n == 0) return cfg;

    // ---- function entries and call sites -------------------------------
    const InstrIndex entryIdx = cfg.indexOf(program.entry);
    cfg.functionEntries.push_back(entryIdx);
    auto addEntry = [&cfg](InstrIndex e) {
        if (std::find(cfg.functionEntries.begin(), cfg.functionEntries.end(),
                      e) == cfg.functionEntries.end())
            cfg.functionEntries.push_back(e);
    };
    bool hasUnresolvedCall = false;
    for (InstrIndex i = 0; i < n; ++i) {
        const Instruction& ins = program.code[i];
        if (ins.op == Op::kJal) {
            if (const auto t = jumpTarget(program, i)) {
                addEntry(*t);
                cfg.callSites.push_back({i, *t});
            }
        } else if (ins.op == Op::kJalr) {
            // A resolved jalr is a multi-target direct call; each target is
            // a function entry with its own call-site record, so jr-ra
            // return matching works exactly as for jal.
            if (const ResolvedIndirect* r = resolutionAt(resolved, i);
                r && r->isCall) {
                for (const InstrIndex t : r->targets) {
                    addEntry(t);
                    cfg.callSites.push_back({i, t});
                }
            } else {
                hasUnresolvedCall = true;
            }
        }
    }
    std::sort(cfg.functionEntries.begin(), cfg.functionEntries.end());

    // ---- function membership (for jr-ra return matching) ---------------
    // funcsOf[i] = entries of every function whose intraprocedural walk
    // reaches instruction i.  Shared tails reached by several functions get
    // several owners; the return edges become the union, which stays sound.
    std::vector<std::vector<InstrIndex>> funcsOf(n);
    {
        std::vector<InstrIndex> stack, succs;
        std::vector<char> seen(n);
        for (const InstrIndex entry : cfg.functionEntries) {
            std::fill(seen.begin(), seen.end(), 0);
            stack.assign(1, entry);
            seen[entry] = 1;
            while (!stack.empty()) {
                const InstrIndex i = stack.back();
                stack.pop_back();
                funcsOf[i].push_back(entry);
                intraSuccessors(program, resolved, i, succs);
                for (const InstrIndex s : succs)
                    if (!seen[s]) {
                        seen[s] = 1;
                        stack.push_back(s);
                    }
            }
        }
    }

    // ---- leaders and blocks --------------------------------------------
    std::vector<char> leader(n, 0);
    leader[entryIdx] = 1;
    for (InstrIndex i = 0; i < n; ++i) {
        const Instruction& ins = program.code[i];
        if (isCondBranch(ins.op)) {
            if (const auto t = branchTarget(program, i)) leader[*t] = 1;
        } else if (ins.op == Op::kJ || ins.op == Op::kJal) {
            if (const auto t = jumpTarget(program, i)) leader[*t] = 1;
        } else if (ins.op == Op::kJr || ins.op == Op::kJalr) {
            if (const ResolvedIndirect* r = resolutionAt(resolved, i))
                for (const InstrIndex t : r->targets) leader[t] = 1;
        }
        if (isControl(ins.op) && i + 1 < n) leader[i + 1] = 1;
    }

    cfg.blockOf.assign(n, kNoBlock);
    for (InstrIndex i = 0; i < n;) {
        BasicBlock block;
        block.first = i;
        while (true) {
            cfg.blockOf[i] = cfg.blocks.size();
            block.last = i;
            ++i;
            if (i >= n || leader[i] || isControl(program.code[block.last].op))
                break;
        }
        cfg.blocks.push_back(std::move(block));
    }
    cfg.entryBlock = cfg.blockOf[entryIdx];

    // Return points of every call site (jal and resolved jalr), plus — when
    // unresolved indirect calls exist — of every unresolved jalr; used for
    // conservative indirect-jump edges.
    std::vector<InstrIndex> returnPoints;
    for (const CallSite& cs : cfg.callSites)
        if (cs.pc + 1 < n) returnPoints.push_back(cs.pc + 1);
    std::vector<InstrIndex> unresolvedJalrReturns;
    if (hasUnresolvedCall)
        for (InstrIndex i = 0; i < n; ++i) {
            const ResolvedIndirect* r = resolutionAt(resolved, i);
            if (program.code[i].op == Op::kJalr && !(r && r->isCall) &&
                i + 1 < n)
                unresolvedJalrReturns.push_back(i + 1);
        }
    returnPoints.insert(returnPoints.end(), unresolvedJalrReturns.begin(),
                        unresolvedJalrReturns.end());

    // ---- edges ----------------------------------------------------------
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const InstrIndex lastIdx = cfg.blocks[b].last;
        const Instruction& ins = program.code[lastIdx];
        const ResolvedIndirect* r = resolutionAt(resolved, lastIdx);
        if (isCondBranch(ins.op)) {
            if (const auto t = branchTarget(program, lastIdx))
                addEdge(cfg, b, cfg.blockOf[*t]);
            if (lastIdx + 1 < n) addEdge(cfg, b, cfg.blockOf[lastIdx + 1]);
        } else if (ins.op == Op::kJ || ins.op == Op::kJal) {
            if (const auto t = jumpTarget(program, lastIdx))
                addEdge(cfg, b, cfg.blockOf[*t]);
        } else if (ins.op == Op::kJalr && r && r->isCall) {
            // Resolved call: edge into every possible callee; control comes
            // back through the callee's jr-ra return edges.
            for (const InstrIndex t : r->targets)
                addEdge(cfg, b, cfg.blockOf[t]);
        } else if (ins.op == Op::kJr && r && !r->isCall) {
            // Resolved computed goto (dispatch-table jr).
            for (const InstrIndex t : r->targets)
                addEdge(cfg, b, cfg.blockOf[t]);
        } else if (ins.op == Op::kJr && ins.rs == reg::ra &&
                   !funcsOf[lastIdx].empty()) {
            // Return: edge to the return point of every call site of every
            // function this instruction belongs to.  With unresolved
            // indirect calls in the program the function may also be
            // entered via an unresolved jalr, so those return points are
            // added as well.
            for (const CallSite& cs : cfg.callSites) {
                if (cs.pc + 1 >= n) continue;
                const auto& owners = funcsOf[lastIdx];
                if (std::find(owners.begin(), owners.end(), cs.callee) !=
                    owners.end())
                    addEdge(cfg, b, cfg.blockOf[cs.pc + 1]);
            }
            for (const InstrIndex rp : unresolvedJalrReturns)
                addEdge(cfg, b, cfg.blockOf[rp]);
        } else if (ins.op == Op::kJr || ins.op == Op::kJalr) {
            // Unresolvable indirect flow: over-approximate with every
            // function entry and every return point.
            cfg.blocks[b].endsInUnresolvedIndirect = true;
            cfg.hasUnresolvedIndirect = true;
            for (const InstrIndex e : cfg.functionEntries)
                addEdge(cfg, b, cfg.blockOf[e]);
            for (const InstrIndex rp : returnPoints)
                addEdge(cfg, b, cfg.blockOf[rp]);
        } else {
            if (lastIdx + 1 < n) addEdge(cfg, b, cfg.blockOf[lastIdx + 1]);
        }
    }
    return cfg;
}

}  // namespace asbr::analysis

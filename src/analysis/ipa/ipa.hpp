// Interprocedural analysis driver: SSA -> SCCP -> value-set resolution,
// iterated to a fixpoint of the indirect-jump map.
//
// Round structure (at most kMaxRounds):
//   1. build the supergraph CFG with the current resolution map (round 0:
//      empty — unresolved jalr/jr get the conservative every-entry edges);
//   2. dominators, loop forest, SSA, SCCP;
//   3. re-resolve every indirect site from the new SCCP solution; when the
//      map is unchanged the iteration is stable and stops.
// Each round's map is sound by induction (round 0 analyzes the
// conservative graph; later rounds analyze a graph refined by an
// already-sound map), so the final CFG edges over-approximate every real
// transfer and all downstream consumers stay sound.
//
// On the final graph the dense interpreter (absint) runs once more and its
// verdicts are *merged* with SCCP's as a reduced product: a branch folds
// statically when either engine proves it, edges are feasible only when
// both agree they can run, and block reachability is the conjunction.  The
// merged ValueAnalysis is a drop-in for the dense one — the
// FoldLegalityVerifier, selection and the WCET engine consume it
// unchanged.
#pragma once

#include <cstddef>

#include "analysis/absint/absint.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/ipa/callgraph.hpp"
#include "analysis/ipa/sccp.hpp"
#include "analysis/ipa/ssa.hpp"
#include "analysis/ipa/valueset.hpp"
#include "analysis/loops.hpp"

namespace asbr::analysis::ipa {

/// Aggregate precision counters for the report and the regression tests.
struct IpaStats {
    std::size_t rounds = 0;
    std::size_t ssaDefs = 0;
    std::size_t ssaPhis = 0;
    std::size_t ssaUses = 0;
    std::size_t sccpIterations = 0;
    bool sccpConverged = true;
    /// Conditional branches proved always/never-taken ...
    std::size_t denseDecided = 0;   ///< ... by the dense interpreter alone
    std::size_t sccpDecided = 0;    ///< ... by SCCP alone
    std::size_t mergedDecided = 0;  ///< ... by the reduced product
};

struct IpaAnalysis {
    Cfg cfg;  ///< final (resolution-refined) supergraph
    DominatorTree doms;
    LoopForest loops;
    SsaForm ssa;
    SccpResult sccp;
    /// Dense fixpoint on the final graph with SCCP merged in (the reduced
    /// product described in the header comment).
    ValueAnalysis values;
    /// The dense verdicts alone, for precision comparison.
    std::vector<BranchDirection> denseDir;
    IndirectResolution resolution;
    CallGraph callGraph;
    IpaStats stats;
};

/// Maximum resolution rounds before the map is frozen.
inline constexpr int kMaxRounds = 4;

/// Run the full interprocedural pipeline on `program`.
[[nodiscard]] IpaAnalysis analyzeProgram(const Program& program);

}  // namespace asbr::analysis::ipa

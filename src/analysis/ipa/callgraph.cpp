#include "analysis/ipa/callgraph.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace asbr::analysis::ipa {

namespace {

const ResolvedIndirect* resolutionAt(const IndirectMap& resolved,
                                     InstrIndex i) {
    const auto it = resolved.find(i);
    return it == resolved.end() ? nullptr : &it->second;
}

/// Membership walk from `entry` over intraprocedural successors (calls
/// stepped over, returns stop, resolved gotos followed); fills the body
/// block set.
std::vector<std::size_t> functionBlocks(const Cfg& cfg,
                                        const IndirectMap& resolved,
                                        InstrIndex entry) {
    std::vector<std::size_t> body;
    std::vector<char> seen(cfg.blocks.size(), 0);
    std::vector<std::size_t> work{cfg.blockOf[entry]};
    seen[cfg.blockOf[entry]] = 1;
    while (!work.empty()) {
        const std::size_t b = work.back();
        work.pop_back();
        body.push_back(b);
        const BasicBlock& block = cfg.blocks[b];
        const Instruction& last = cfg.program->code[block.last];
        std::vector<std::size_t> succs;
        if (block.endsInUnresolvedIndirect) {
            // No intraprocedural successor knowable.
        } else if (last.op == Op::kJal || last.op == Op::kJalr) {
            if (block.last + 1 < cfg.numInstructions())
                succs.push_back(cfg.blockOf[block.last + 1]);
        } else if (last.op == Op::kJr) {
            if (const ResolvedIndirect* r = resolutionAt(resolved, block.last);
                r && !r->isCall)
                for (const InstrIndex t : r->targets)
                    succs.push_back(cfg.blockOf[t]);
        } else {
            succs = block.succs;
        }
        for (const std::size_t s : succs)
            if (!seen[s]) {
                seen[s] = 1;
                work.push_back(s);
            }
    }
    std::sort(body.begin(), body.end());
    return body;
}

std::string hexPc(std::uint32_t pc) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%x", pc);
    return buf;
}

}  // namespace

CallGraph buildCallGraph(const Cfg& cfg, const SsaForm& ssa,
                         const SccpResult& sccp,
                         const IndirectMap& resolved) {
    CallGraph graph;
    if (cfg.blocks.empty() || cfg.entryBlock == kNoBlock) return graph;
    const Program& program = *cfg.program;

    std::vector<InstrIndex> entries = cfg.functionEntries;
    std::sort(entries.begin(), entries.end());
    for (const InstrIndex e : entries) {
        graph.byEntry.emplace(e, graph.functions.size());
        FunctionSummary fs;
        fs.entry = e;
        fs.entryPc = cfg.pcOf(e);
        graph.functions.push_back(std::move(fs));
    }
    graph.mainIndex = graph.byEntry.at(cfg.blocks[cfg.entryBlock].first);

    // Direct + resolved call targets per call-site pc.
    std::map<InstrIndex, std::vector<std::size_t>> calleesAt;
    for (const CallSite& cs : cfg.callSites)
        calleesAt[cs.pc].push_back(graph.byEntry.at(cs.callee));

    std::vector<std::vector<std::size_t>> bodies(graph.functions.size());
    for (std::size_t f = 0; f < graph.functions.size(); ++f) {
        FunctionSummary& fs = graph.functions[f];
        bodies[f] = functionBlocks(cfg, resolved, fs.entry);
        fs.blockCount = bodies[f].size();
        for (const std::size_t b : bodies[f]) {
            const BasicBlock& block = cfg.blocks[b];
            if (block.endsInUnresolvedIndirect) fs.hasUnresolvedIndirect = true;
            for (InstrIndex i = block.first; i <= block.last; ++i)
                if (const auto d = destReg(program.code[i]))
                    fs.clobbered |= 1u << *d;
            const InstrIndex last = block.last;
            const Op op = program.code[last].op;
            if (op == Op::kJal ||
                (op == Op::kJalr && calleesAt.count(last) != 0)) {
                fs.callSitePcs.push_back(cfg.pcOf(last));
                if (const auto it = calleesAt.find(last);
                    it != calleesAt.end())
                    fs.callees.insert(fs.callees.end(), it->second.begin(),
                                      it->second.end());
                else
                    fs.hasUnresolvedIndirect = true;  // jal outside text
            } else if (op == Op::kJalr) {
                fs.hasUnresolvedIndirect = true;
                fs.callSitePcs.push_back(cfg.pcOf(last));
            }
            // Return-value interval at executable jr-ra exits.
            if (op == Op::kJr && program.code[last].rs == reg::ra &&
                sccp.blockExecutable[b]) {
                const std::uint32_t d = ssa.defAtExit[b][reg::v0];
                fs.returnValue = fs.returnValue.join(
                    d == kNoDef ? AbsValue::top() : sccp.value[d]);
            }
        }
        std::sort(fs.callees.begin(), fs.callees.end());
        fs.callees.erase(std::unique(fs.callees.begin(), fs.callees.end()),
                         fs.callees.end());
        std::sort(fs.callSitePcs.begin(), fs.callSitePcs.end());
        if (fs.hasUnresolvedIndirect) {
            fs.clobbered = ~0u;
            fs.returnValue = AbsValue::top();
        }
    }

    // Transitive clobber closure (monotone; recursion converges to the
    // union).
    for (bool changed = true; changed;) {
        changed = false;
        for (FunctionSummary& fs : graph.functions) {
            std::uint32_t mask = fs.clobbered;
            for (const std::size_t c : fs.callees)
                mask |= graph.functions[c].clobbered;
            if (mask != fs.clobbered) {
                fs.clobbered = mask;
                changed = true;
            }
        }
    }

    // Bottom-up (postorder) over the part reachable from main; a grey-grey
    // edge marks recursion and is skipped so the order stays well-defined.
    enum : char { kWhite, kGrey, kBlack };
    std::vector<char> color(graph.functions.size(), kWhite);
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(graph.mainIndex, 0);
    color[graph.mainIndex] = kGrey;
    while (!stack.empty()) {
        auto& [f, i] = stack.back();
        if (i < graph.functions[f].callees.size()) {
            const std::size_t callee = graph.functions[f].callees[i++];
            if (color[callee] == kGrey) {
                graph.recursive = true;
            } else if (color[callee] == kWhite) {
                color[callee] = kGrey;
                stack.emplace_back(callee, 0);
            }
            continue;
        }
        color[f] = kBlack;
        graph.functions[f].reachableFromMain = true;
        graph.bottomUp.push_back(f);
        stack.pop_back();
    }
    return graph;
}

std::string callGraphDot(const CallGraph& graph) {
    std::ostringstream os;
    os << "digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n";
    for (std::size_t f = 0; f < graph.functions.size(); ++f) {
        const FunctionSummary& fs = graph.functions[f];
        os << "  f" << f << " [label=\"" << hexPc(fs.entryPc) << "\\nclobbers="
           << __builtin_popcount(fs.clobbered);
        if (fs.wcetBounded) os << "\\nwcet=" << fs.wcetCycles;
        if (fs.hasUnresolvedIndirect) os << "\\nindirect";
        os << '"';
        if (f == graph.mainIndex) os << " style=bold";
        if (!fs.reachableFromMain) os << " style=dotted";
        os << "];\n";
    }
    for (std::size_t f = 0; f < graph.functions.size(); ++f)
        for (const std::size_t c : graph.functions[f].callees)
            os << "  f" << f << " -> f" << c << ";\n";
    os << "}\n";
    return os.str();
}

}  // namespace asbr::analysis::ipa

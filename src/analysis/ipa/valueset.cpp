#include "analysis/ipa/valueset.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace asbr::analysis::ipa {

namespace {

/// Largest dispatch table (in words) the resolver will enumerate; bigger
/// intervals are treated as unresolved.
constexpr std::int64_t kMaxTableWords = 64;
/// φ-chain recursion limit for unioning operand value sets.
constexpr int kMaxPhiDepth = 4;
/// Largest target set worth tracking; beyond this the conservative CFG
/// edges are cheaper than the refined ones.
constexpr std::size_t kMaxTargets = 64;

struct StoreRange {
    std::int64_t lo;
    std::int64_t hi;  ///< inclusive last byte written
};

/// Byte intervals possibly written by executable stores.  `wild` is set
/// when some store's address is unbounded — every table read is then
/// unsafe.
struct StoreCoverage {
    std::vector<StoreRange> ranges;
    bool wild = false;

    [[nodiscard]] bool overlaps(std::int64_t lo, std::int64_t hi) const {
        if (wild) return true;
        for (const StoreRange& r : ranges)
            if (r.lo <= hi && lo <= r.hi) return true;
        return false;
    }
};

StoreCoverage collectStores(const Cfg& cfg, const SsaForm& ssa,
                            const SccpResult& sccp) {
    StoreCoverage cov;
    const Program& program = *cfg.program;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!sccp.blockExecutable[b]) continue;
        const BasicBlock& block = cfg.blocks[b];
        for (InstrIndex i = block.first; i <= block.last; ++i) {
            const Instruction& ins = program.code[i];
            if (!isStore(ins.op)) continue;
            const std::uint32_t base = ssa.srcDef[i][0];
            const AbsValue v =
                base == kNoDef ? AbsValue::top() : sccp.value[base];
            if (v.isBottom()) continue;  // store never executes
            const std::int64_t width =
                ins.op == Op::kSw ? 4 : (ins.op == Op::kSh ? 2 : 1);
            if (v.isTop() || v.hi - v.lo > std::int64_t{1} << 32) {
                cov.wild = true;
                return cov;
            }
            cov.ranges.push_back({v.lo + ins.imm, v.hi + ins.imm + width - 1});
        }
    }
    return cov;
}

struct Resolver {
    const Cfg& cfg;
    const SsaForm& ssa;
    const SccpResult& sccp;
    const StoreCoverage stores;
    bool usedTableLoad = false;

    Resolver(const Cfg& c, const SsaForm& s, const SccpResult& v)
        : cfg(c), ssa(s), sccp(v), stores(collectStores(c, s, v)) {}

    /// Append the value set of def `d` to `out` as text addresses; false
    /// when the set cannot be bounded (treat as top).
    bool resolveDef(std::uint32_t d, int depth,
                    std::vector<std::uint32_t>& out) {
        if (d == kNoDef) return false;
        const AbsValue v = sccp.value[d];
        if (v.isBottom()) return true;  // unreachable operand contributes {}
        if (v.isConstant()) {
            out.push_back(static_cast<std::uint32_t>(v.lo));
            return out.size() <= kMaxTargets;
        }
        const SsaDef& def = ssa.defs[d];
        if (def.isPhi) {
            if (depth == 0) return false;
            for (const std::uint32_t arg : ssa.phis[def.phi].args) {
                if (arg == kNoDef) continue;  // unreachable pred
                if (!resolveDef(arg, depth - 1, out)) return false;
            }
            return true;
        }
        if (!def.isEntry && cfg.program->code[def.instr].op == Op::kLw)
            return resolveTableLoad(def.instr, out);
        return false;
    }

    /// `lw` from a provably read-only, in-data, bounded address interval:
    /// enumerate the aligned words of the table from the program image.
    bool resolveTableLoad(InstrIndex i, std::vector<std::uint32_t>& out) {
        const Program& program = *cfg.program;
        const Instruction& ins = program.code[i];
        const std::uint32_t base = ssa.srcDef[i][0];
        if (base == kNoDef) return false;
        const AbsValue v = sccp.value[base];
        if (v.isBottom() || v.isTop()) return false;
        const std::int64_t lo = v.lo + ins.imm;
        const std::int64_t hi = v.hi + ins.imm;
        const auto dataBase = static_cast<std::int64_t>(program.dataBase);
        const std::int64_t dataEnd =
            dataBase + static_cast<std::int64_t>(program.data.size());
        // Confined to the initialized data segment, word-aligned start, and
        // small enough to enumerate.
        if (lo < dataBase || hi + 4 > dataEnd) return false;
        if ((lo & 3) != 0) return false;
        if ((hi - lo) / 4 + 1 > kMaxTableWords) return false;
        // Read-only: no executable store may touch the table.
        if (stores.overlaps(lo, hi + 3)) return false;
        for (std::int64_t a = lo; a <= hi; a += 4) {
            if ((a & 3) != 0) continue;  // unaligned loads trap; infeasible
            const auto off = static_cast<std::size_t>(a - dataBase);
            const std::uint32_t word =
                static_cast<std::uint32_t>(program.data[off]) |
                static_cast<std::uint32_t>(program.data[off + 1]) << 8 |
                static_cast<std::uint32_t>(program.data[off + 2]) << 16 |
                static_cast<std::uint32_t>(program.data[off + 3]) << 24;
            out.push_back(word);
            if (out.size() > kMaxTargets) return false;
        }
        usedTableLoad = true;
        return true;
    }
};

}  // namespace

IndirectResolution resolveIndirects(const Cfg& cfg, const SsaForm& ssa,
                                    const SccpResult& sccp) {
    IndirectResolution res;
    const Program& program = *cfg.program;
    Resolver resolver(cfg, ssa, sccp);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!sccp.blockExecutable[b]) continue;
        const InstrIndex i = cfg.blocks[b].last;
        const Instruction& ins = program.code[i];
        const bool isCall = ins.op == Op::kJalr;
        if (!isCall && !(ins.op == Op::kJr && ins.rs != reg::ra)) continue;
        std::vector<std::uint32_t> addrs;
        resolver.usedTableLoad = false;
        const bool ok =
            resolver.resolveDef(ssa.srcDef[i][0], kMaxPhiDepth, addrs);
        // Every member of the set must be a text address; a single escapee
        // means the interval over-approximated and the set is unusable.
        const bool allText =
            ok && !addrs.empty() &&
            std::all_of(addrs.begin(), addrs.end(), [&](std::uint32_t a) {
                return program.inText(a);
            });
        if (!allText) {
            ++res.unresolvedSites;
            continue;
        }
        ResolvedIndirect entry;
        entry.isCall = isCall;
        for (const std::uint32_t a : addrs)
            entry.targets.push_back((a - program.textBase) / kInstrBytes);
        std::sort(entry.targets.begin(), entry.targets.end());
        entry.targets.erase(
            std::unique(entry.targets.begin(), entry.targets.end()),
            entry.targets.end());
        res.map.emplace(i, std::move(entry));
        if (resolver.usedTableLoad) ++res.tableLoads;
        if (isCall)
            ++res.resolvedCalls;
        else
            ++res.resolvedGotos;
    }
    return res;
}

}  // namespace asbr::analysis::ipa
